//! Property-based tests (proptest) on the platform's core invariants:
//! the regexp engine's chunking independence, TCP reassembly, container
//! expiration, the VM/interpreter equivalence, and value round trips.

use proptest::prelude::*;

use hilti::value::Value;
use hilti::Program;
use hilti_rt::bytestring::Bytes;
use hilti_rt::containers::{ExpireStrategy, ExpiringMap};
use hilti_rt::regexp::Regex;
use hilti_rt::time::{Interval, Time};
use netpkt::reassembly::StreamReassembler;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental regexp matching must be independent of input chunking.
    #[test]
    fn regexp_chunking_independence(
        input in proptest::collection::vec(any::<u8>(), 0..200),
        cuts in proptest::collection::vec(1usize..20, 0..10),
    ) {
        let re = Regex::set(&[
            "[A-Za-z]+",
            "[0-9]+\\.[0-9]+",
            "GET [^ ]+",
        ]).unwrap();
        let whole = re.match_prefix(&input);
        let mut m = re.matcher();
        let mut pos = 0usize;
        for c in cuts {
            let end = (pos + c).min(input.len());
            m.feed(&input[pos..end]);
            pos = end;
        }
        m.feed(&input[pos..]);
        prop_assert_eq!(whole, m.finish());
    }

    /// The reassembler reconstructs the stream for any delivery order of
    /// non-overlapping segments.
    #[test]
    fn reassembly_any_order(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..20), 1..20),
        order_seed in any::<u64>(),
        isn in any::<u32>(),
    ) {
        let mut segments = Vec::new();
        let mut expected = Vec::new();
        let mut seq = isn.wrapping_add(1);
        for c in &chunks {
            segments.push((seq, c.clone()));
            expected.extend_from_slice(c);
            seq = seq.wrapping_add(c.len() as u32);
        }
        // Deterministic pseudo-shuffle from the seed.
        let mut order: Vec<usize> = (0..segments.len()).collect();
        let mut s = order_seed | 1;
        for i in (1..order.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            order.swap(i, (s as usize) % (i + 1));
        }
        let mut r = StreamReassembler::new(isn);
        let mut out = Vec::new();
        for &i in &order {
            let (sq, data) = &segments[i];
            out.extend(r.segment(*sq, data));
        }
        prop_assert_eq!(out, expected);
        prop_assert_eq!(r.gap_bytes(), 0);
    }

    /// Bytes: any split of appends yields the same contents, and logical
    /// offsets survive trims.
    #[test]
    fn bytes_append_split_equivalence(
        data in proptest::collection::vec(any::<u8>(), 0..100),
        split in 0usize..100,
        trim in 0usize..50,
    ) {
        let split = split.min(data.len());
        let b = Bytes::new();
        b.append(&data[..split]).unwrap();
        b.append(&data[split..]).unwrap();
        prop_assert_eq!(b.to_vec(), data.clone());

        let trim = trim.min(data.len());
        b.trim(trim as u64).unwrap();
        for (i, expect) in data.iter().enumerate().skip(trim) {
            prop_assert_eq!(b.at(i as u64).unwrap(), *expect);
        }
    }

    /// Container expiration: an entry is alive iff its (possibly
    /// refreshed) deadline has not passed.
    #[test]
    fn expiration_model(
        timeout_s in 1u64..100,
        events in proptest::collection::vec((0u64..500, any::<bool>()), 1..40),
    ) {
        let mut m: ExpiringMap<u32, u32> = ExpiringMap::new();
        m.set_timeout(ExpireStrategy::Access, Interval::from_secs(timeout_s as i64));
        let mut events = events;
        events.sort_by_key(|(t, _)| *t);
        let mut model_deadline: Option<u64> = None;
        for (t, is_touch) in events {
            let now = Time::from_secs(t);
            m.advance(now);
            // Model: entry expired if deadline <= now.
            let model_alive = model_deadline.map(|d| d > t).unwrap_or(false);
            prop_assert_eq!(m.contains(&1), model_alive, "at t={}", t);
            if is_touch {
                if model_alive {
                    let _ = m.get(&1, now);
                } else {
                    m.insert(1, 0, now);
                }
                model_deadline = Some(t + timeout_s);
            }
        }
    }

    /// VM and interpreter agree on arbitrary arithmetic expressions.
    #[test]
    fn engines_agree_on_arith(a in -1000i64..1000, b in 1i64..1000, c in -1000i64..1000) {
        let src = r#"
module M
int<64> f(int<64> a, int<64> b, int<64> c) {
    local int<64> x
    local int<64> y
    x = int.mul a c
    y = int.div x b
    y = int.add y a
    y = int.sub y c
    x = int.mod y b
    y = int.add y x
    return y
}
"#;
        let mut p = Program::from_source(src).unwrap();
        let args = vec![Value::Int(a), Value::Int(b), Value::Int(c)];
        let vm = p.run("M::f", &args).unwrap();
        let it = p.run_interpreted("M::f", &args).unwrap();
        prop_assert!(vm.equals(&it));
    }

    /// Value → portable → value round trips preserve equality.
    #[test]
    fn portable_roundtrip(
        ints in proptest::collection::vec(any::<i64>(), 0..10),
        s in "[a-zA-Z0-9 ]{0,20}",
        flag in any::<bool>(),
    ) {
        let v = Value::Tuple(std::rc::Rc::new(vec![
            Value::str(&s),
            Value::Bool(flag),
            Value::Vector(std::rc::Rc::new(std::cell::RefCell::new(
                ints.iter().map(|i| Value::Int(*i)).collect(),
            ))),
        ]));
        let p = v.to_portable().unwrap();
        let v2 = Value::from_portable(&p);
        prop_assert!(v.equals(&v2));
    }

    /// Addr mask: masked address is contained in the network it defines.
    #[test]
    fn addr_mask_consistency(raw in any::<u32>(), bits in 0u8..=32) {
        let a = hilti_rt::addr::Addr::from_v4_u32(raw);
        let net = hilti_rt::addr::Network::new(a, bits).unwrap();
        prop_assert!(net.contains(&a));
        let masked = a.mask(bits);
        prop_assert!(net.contains(&masked));
        prop_assert!(masked.is_v4());
    }

    /// DNS round trip: any name the builder writes, the parser reads back.
    #[test]
    fn dns_name_roundtrip(labels in proptest::collection::vec("[a-z]{1,10}", 1..5)) {
        let name = labels.join(".");
        let msg = netpkt::dns::DnsBuilder::new(1, false, 0)
            .question(&name, 1)
            .build();
        let parsed = netpkt::dns::parse_message(&msg).unwrap();
        prop_assert_eq!(&parsed.questions[0].name, &name);
    }

    /// Classifier backends agree for arbitrary probes.
    #[test]
    fn classifier_backends_equivalent(
        probes in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..30),
    ) {
        use hilti_rt::classifier::{Backend, Classifier, FieldMatcher, FieldValue};
        let mk = |backend| {
            let mut c = Classifier::with_backend(backend);
            for i in 0u8..20 {
                let net: hilti_rt::addr::Network =
                    format!("10.{}.0.0/16", i).parse().unwrap();
                c.add(vec![FieldMatcher::Net(net)], i).unwrap();
            }
            c.compile();
            c
        };
        let lin = mk(Backend::LinearScan);
        let idx = mk(Backend::FieldIndexed);
        for (a, b) in probes {
            let key = [FieldValue::Addr(hilti_rt::addr::Addr::v4(10, a % 25, b, 1))];
            prop_assert_eq!(lin.matches(&key), idx.matches(&key));
        }
    }
}

#[test]
fn sha1_streaming_equals_oneshot_property() {
    // A deterministic sweep standing in for a proptest with large inputs.
    let data: Vec<u8> = (0..2048u32).map(|i| (i * 31 % 251) as u8).collect();
    let oneshot = hilti_rt::sha1::sha1_hex(&data);
    for chunk in [1usize, 13, 64, 100, 1000] {
        let mut h = hilti_rt::sha1::Sha1::new();
        for c in data.chunks(chunk) {
            h.update(c);
        }
        assert_eq!(h.finish_hex(), oneshot, "chunk size {chunk}");
    }
}
