//! Link-order independence: the observable behaviour of a multi-module
//! program must not depend on the order compilation units are handed to
//! the linker — global slot layout, cross-unit hook merging, and callee
//! qualification all have to produce equivalent programs either way
//! (§5 "Linker").

use hilti::passes::OptLevel;
use hilti::{Program, Value};

const MOD_A: &str = r#"
module A
import Hilti

global int<64> base = 10

int<64> compute(int<64> x) {
    local int<64> y
    y = call B::scale (x)
    y = int.add y base
    hook.run on_compute y
    return y
}

hook void on_compute(int<64> v) {
    call Hilti::print "A-hook"
}
"#;

const MOD_B: &str = r#"
module B
import Hilti

global int<64> factor = 3

int<64> scale(int<64> x) {
    local int<64> r
    r = int.mul x factor
    return r
}

hook void A::on_compute(int<64> v) &priority = 7 {
    call Hilti::print "B-hook-first"
    call Hilti::print v
}
"#;

/// Runs `A::compute(5)` on a given module order and engine, returning the
/// result and the printed output.
fn run(order: &[&str], opt: OptLevel, interp: bool) -> (i64, Vec<String>) {
    let mut p = Program::from_sources(order, opt).expect("program builds");
    let r = if interp {
        p.run_interpreted("A::compute", &[Value::Int(5)])
    } else {
        p.run("A::compute", &[Value::Int(5)])
    };
    (r.unwrap().as_int().unwrap(), p.take_output())
}

#[test]
fn module_order_does_not_change_behaviour() {
    let expected_out = vec![
        "B-hook-first".to_string(),
        "25".to_string(),
        "A-hook".to_string(),
    ];
    for interp in [false, true] {
        for opt in [OptLevel::None, OptLevel::Full] {
            let (v_ab, out_ab) = run(&[MOD_A, MOD_B], opt, interp);
            let (v_ba, out_ba) = run(&[MOD_B, MOD_A], opt, interp);
            assert_eq!(v_ab, 25, "interp={interp} opt={opt:?}");
            assert_eq!(v_ab, v_ba, "interp={interp} opt={opt:?}");
            assert_eq!(out_ab, expected_out, "interp={interp} opt={opt:?}");
            assert_eq!(out_ab, out_ba, "interp={interp} opt={opt:?}");
        }
    }
}

/// Global initializers must land in the right slots whatever the unit
/// order — a layout bug would silently swap `base` and `factor` here
/// (both reads would still be in-bounds).
#[test]
fn global_slot_layout_is_order_independent() {
    let (v_ab, _) = run(&[MOD_A, MOD_B], OptLevel::Full, false);
    let (v_ba, _) = run(&[MOD_B, MOD_A], OptLevel::Full, false);
    // compute(5) = 5 * factor(3) + base(10); a swapped layout would give
    // 5 * 10 + 3 = 53 instead.
    assert_eq!(v_ab, 25);
    assert_eq!(v_ba, 25);
}

/// Hook priority wins over unit order: B's body (priority 7) runs before
/// A's default-priority body even when A is linked first, and vice versa.
#[test]
fn hook_priority_beats_unit_order() {
    for order in [[MOD_A, MOD_B], [MOD_B, MOD_A]] {
        let (_, out) = run(&order, OptLevel::Full, false);
        let first_hook = out.first().expect("hook output");
        assert_eq!(first_hook, "B-hook-first", "order={order:?}");
    }
}
