//! Differential testing of container semantics across the engines.
//!
//! Where `tests/differential.rs` fuzzes arithmetic and control flow, this
//! harness fuzzes the *runtime library surface*: random sequences of
//! map/set/vector/list operations — including ones that trap (lookup of a
//! missing key, out-of-range vector access, pop from an empty list) — are
//! emitted as textual HILTI and executed by the interpreter, the
//! unoptimized VM, and the fully optimized VM. All three must agree on
//! the returned checksum (which folds in element values and final
//! container sizes), the kind of any trap, and every `Hilti::print` line
//! emitted along the way.

use hilti::passes::OptLevel;
use hilti::{Program, Value};
use proptest::prelude::*;

/// Value sources for container operations: `t0`/`t1` are the function
/// arguments, `t2`/`t3` constants, `acc` the running checksum.
const VAL_SLOTS: [&str; 5] = ["t0", "t1", "t2", "t3", "acc"];

#[derive(Debug, Clone)]
enum CStep {
    MapInsert {
        k: u8,
        v: u8,
    },
    /// `acc += map.get m k` — traps IndexError when `k` is missing.
    MapGet {
        k: u8,
    },
    MapGetDefault {
        k: u8,
        d: i8,
    },
    MapRemove {
        k: u8,
    },
    MapSize,
    SetInsert {
        k: u8,
    },
    SetRemove {
        k: u8,
    },
    /// `if set.exists s k { acc += 100 }`
    SetExists {
        k: u8,
    },
    SetSize,
    VecPush {
        v: u8,
    },
    /// `acc += vector.get v i` — traps IndexError when out of range.
    VecGet {
        i: u8,
    },
    /// `vector.set v i <val>` — traps IndexError when out of range.
    VecSet {
        i: u8,
        v: u8,
    },
    VecLen,
    ListPushBack {
        v: u8,
    },
    ListPushFront {
        v: u8,
    },
    /// `acc += list.pop_back l` — traps on an empty list.
    ListPopBack,
    ListPopFront,
    ListLen,
    /// `call Hilti::print acc` — output must match across engines too.
    Print,
}

fn step_strategy() -> impl Strategy<Value = CStep> {
    let key = || 0u8..6; // small key space so hits and misses both happen
    let val = || 0u8..VAL_SLOTS.len() as u8;
    prop_oneof![
        3 => (key(), val()).prop_map(|(k, v)| CStep::MapInsert { k, v }),
        2 => key().prop_map(|k| CStep::MapGet { k }),
        1 => (key(), -9i8..9).prop_map(|(k, d)| CStep::MapGetDefault { k, d }),
        1 => key().prop_map(|k| CStep::MapRemove { k }),
        1 => Just(CStep::MapSize),
        3 => key().prop_map(|k| CStep::SetInsert { k }),
        1 => key().prop_map(|k| CStep::SetRemove { k }),
        2 => key().prop_map(|k| CStep::SetExists { k }),
        1 => Just(CStep::SetSize),
        3 => val().prop_map(|v| CStep::VecPush { v }),
        2 => key().prop_map(|i| CStep::VecGet { i }),
        1 => (key(), val()).prop_map(|(i, v)| CStep::VecSet { i, v }),
        1 => Just(CStep::VecLen),
        2 => val().prop_map(|v| CStep::ListPushBack { v }),
        1 => val().prop_map(|v| CStep::ListPushFront { v }),
        1 => Just(CStep::ListPopBack),
        1 => Just(CStep::ListPopFront),
        1 => Just(CStep::ListLen),
        1 => Just(CStep::Print),
    ]
}

fn emit(recipe: &[CStep], c2: i64, c3: i64) -> String {
    let mut src = String::from(
        "module Fuzz\nimport Hilti\n\nint<64> kernel(int<64> a, int<64> b) {\n\
         \x20   local int<64> t0\n\
         \x20   local int<64> t1\n\
         \x20   local int<64> t2\n\
         \x20   local int<64> t3\n\
         \x20   local int<64> acc\n\
         \x20   local int<64> x\n\
         \x20   local ref<map<int<64>, int<64>>> m\n\
         \x20   local ref<set<int<64>>> s\n\
         \x20   local ref<vector<int<64>>> v\n\
         \x20   local ref<list<int<64>>> l\n",
    );
    for (i, step) in recipe.iter().enumerate() {
        if matches!(step, CStep::SetExists { .. }) {
            src.push_str(&format!("    local bool e{i}\n"));
        }
    }
    src.push_str(&format!(
        "    t0 = assign a\n    t1 = assign b\n    t2 = assign {c2}\n    t3 = assign {c3}\n\
         \x20   acc = assign 0\n\
         \x20   m = new map<int<64>, int<64>>\n\
         \x20   s = new set<int<64>>\n\
         \x20   v = new vector<int<64>>\n\
         \x20   l = new list<int<64>>\n"
    ));
    let val = |v: u8| VAL_SLOTS[v as usize];
    for (i, step) in recipe.iter().enumerate() {
        match *step {
            CStep::MapInsert { k, v } => {
                src.push_str(&format!("    map.insert m {k} {}\n", val(v)))
            }
            CStep::MapGet { k } => {
                src.push_str(&format!("    x = map.get m {k}\n"));
                src.push_str("    acc = int.add acc x\n");
            }
            CStep::MapGetDefault { k, d } => {
                src.push_str(&format!("    x = map.get_default m {k} {d}\n"));
                src.push_str("    acc = int.add acc x\n");
            }
            CStep::MapRemove { k } => src.push_str(&format!("    map.remove m {k}\n")),
            CStep::MapSize => {
                src.push_str("    x = map.size m\n    acc = int.add acc x\n");
            }
            CStep::SetInsert { k } => src.push_str(&format!("    set.insert s {k}\n")),
            CStep::SetRemove { k } => src.push_str(&format!("    set.remove s {k}\n")),
            CStep::SetExists { k } => {
                src.push_str(&format!("    e{i} = set.exists s {k}\n"));
                src.push_str(&format!("    if.else e{i} hit{i} end{i}\nhit{i}:\n"));
                src.push_str("    acc = int.add acc 100\n");
                src.push_str(&format!("    jump end{i}\nend{i}:\n"));
            }
            CStep::SetSize => {
                src.push_str("    x = set.size s\n    acc = int.add acc x\n");
            }
            CStep::VecPush { v } => src.push_str(&format!("    vector.push_back v {}\n", val(v))),
            CStep::VecGet { i } => {
                src.push_str(&format!("    x = vector.get v {i}\n"));
                src.push_str("    acc = int.add acc x\n");
            }
            CStep::VecSet { i, v } => src.push_str(&format!("    vector.set v {i} {}\n", val(v))),
            CStep::VecLen => {
                src.push_str("    x = vector.length v\n    acc = int.add acc x\n");
            }
            CStep::ListPushBack { v } => {
                src.push_str(&format!("    list.push_back l {}\n", val(v)))
            }
            CStep::ListPushFront { v } => {
                src.push_str(&format!("    list.push_front l {}\n", val(v)))
            }
            CStep::ListPopBack => {
                src.push_str("    x = list.pop_back l\n    acc = int.add acc x\n");
            }
            CStep::ListPopFront => {
                src.push_str("    x = list.pop_front l\n    acc = int.add acc x\n");
            }
            CStep::ListLen => {
                src.push_str("    x = list.length l\n    acc = int.add acc x\n");
            }
            CStep::Print => src.push_str("    call Hilti::print acc\n"),
        }
    }
    // Fold final container sizes into the checksum so divergent end states
    // are caught even when no intermediate read observed them.
    src.push_str(
        "    x = map.size m\n    acc = int.add acc x\n\
         \x20   x = set.size s\n    x = int.mul x 10\n    acc = int.add acc x\n\
         \x20   x = vector.length v\n    x = int.mul x 100\n    acc = int.add acc x\n\
         \x20   x = list.length l\n    x = int.mul x 1000\n    acc = int.add acc x\n\
         \x20   return acc\n}\n",
    );
    src
}

/// (value-or-trap-kind, printed lines) — the full observable behaviour.
fn observe(p: &mut Program, interp: bool, args: &[Value]) -> (Result<i64, String>, Vec<String>) {
    let r = if interp {
        p.run_interpreted("Fuzz::kernel", args)
    } else {
        p.run("Fuzz::kernel", args)
    };
    let outcome = match r {
        Ok(v) => Ok(v.as_int().expect("kernel returns int<64>")),
        Err(e) => Err(e.kind.name().to_string()),
    };
    (outcome, p.take_output())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn container_semantics_agree_across_engines(
        recipe in prop::collection::vec(step_strategy(), 1..16),
        c2 in -9i64..9,
        c3 in 0i64..9,
        a in -5i64..5,
        b in -5i64..5,
    ) {
        let src = emit(&recipe, c2, c3);
        let args = [Value::Int(a), Value::Int(b)];

        let mut plain = Program::from_sources(&[&src], OptLevel::None)
            .unwrap_or_else(|e| panic!("generated program rejected: {e}\n{src}"));
        let mut opt = Program::from_sources(&[&src], OptLevel::Full)
            .unwrap_or_else(|e| panic!("optimized build rejected: {e}\n{src}"));

        let oracle = observe(&mut plain, true, &args);
        let vm = observe(&mut plain, false, &args);
        let vm_opt = observe(&mut opt, false, &args);

        prop_assert_eq!(&oracle, &vm, "interpreter vs VM diverged\n{}", src);
        prop_assert_eq!(&oracle, &vm_opt, "optimizer changed behaviour\n{}", src);
    }
}

/// Fixed cases pinning the trap kinds the fuzzer relies on, so a future
/// semantics change shows up as a named failure here rather than as an
/// opaque fuzz divergence.
#[test]
fn container_trap_kinds_are_stable() {
    let cases = [
        ("x = map.get m 1", "Hilti::IndexError"),
        ("x = vector.get v 0", "Hilti::IndexError"),
        ("x = list.pop_back l", "Hilti::IndexError"),
        ("x = list.pop_front l", "Hilti::IndexError"),
    ];
    for (op, kind) in cases {
        let src = format!(
            "module Fuzz\n\nint<64> kernel() {{\n\
             \x20   local int<64> x\n\
             \x20   local ref<map<int<64>, int<64>>> m\n\
             \x20   local ref<vector<int<64>>> v\n\
             \x20   local ref<list<int<64>>> l\n\
             \x20   m = new map<int<64>, int<64>>\n\
             \x20   v = new vector<int<64>>\n\
             \x20   l = new list<int<64>>\n\
             \x20   {op}\n\
             \x20   return x\n}}\n"
        );
        let mut p = Program::from_sources(&[&src], OptLevel::Full).unwrap();
        let err = p.run("Fuzz::kernel", &[]).unwrap_err();
        assert_eq!(err.kind.name(), kind, "{op}");
        let err = p.run_interpreted("Fuzz::kernel", &[]).unwrap_err();
        assert_eq!(err.kind.name(), kind, "{op} (interpreted)");
    }
}
