//! Differential testing of the execution engines and the optimizer.
//!
//! Random structured programs are generated from a compact recipe, emitted
//! as textual HILTI, and executed several ways:
//!
//!   1. the tree-walking interpreter on unoptimized IR (the oracle),
//!   2. the bytecode VM on unoptimized IR, specializer off,
//!   3. the bytecode VM on unoptimized IR, specializer on,
//!   4. the bytecode VM on fully optimized IR, specializer off,
//!   5. the bytecode VM on fully optimized IR, specializer on.
//!
//! All must agree on the outcome — the returned value, or the kind of
//! exception raised — *and* on printed output (each kernel prints its
//! result through `Hilti::print`, so host-call marshalling is covered
//! too). Integer arithmetic wraps in HILTI, so the only reachable trap in
//! these programs is division/modulo by zero — which the generator
//! deliberately does not avoid, so that trap behaviour is differentially
//! tested too (e.g. that dead-code elimination never deletes a trapping
//! instruction, constant folding never hides one, and the specialized
//! fast tier raises exactly where the generic path would).

use hilti::host::BuildOptions;
use hilti::passes::OptLevel;
use hilti::tier::{TierConfig, TieringMode};
use hilti::{Program, Value};
use proptest::prelude::*;

const SLOTS: u8 = 6;

/// One step of a generated kernel, operating on int slots `t0..t5`.
/// `t0`/`t1` start as the two function arguments, `t2..t5` as constants.
#[derive(Debug, Clone)]
enum Step {
    /// `t[dst] = <add|sub|mul|div|mod> t[a] t[b]`
    Bin { op: u8, dst: u8, a: u8, b: u8 },
    /// `if t[a] <eq|lt|gt> t[b] { t[dst] = t[x] + t[y] } else { t[dst] = t[x] - t[y] }`
    Diamond {
        cmp: u8,
        a: u8,
        b: u8,
        dst: u8,
        x: u8,
        y: u8,
    },
    /// `repeat iters times: t[dst] = t[dst] + t[src]`
    Loop { iters: u8, dst: u8, src: u8 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let slot = || 0u8..SLOTS;
    prop_oneof![
        3 => (0u8..5, slot(), slot(), slot())
            .prop_map(|(op, dst, a, b)| Step::Bin { op, dst, a, b }),
        2 => (0u8..3, slot(), slot(), slot(), slot(), slot())
            .prop_map(|(cmp, a, b, dst, x, y)| Step::Diamond { cmp, a, b, dst, x, y }),
        1 => (1u8..5, slot(), slot())
            .prop_map(|(iters, dst, src)| Step::Loop { iters, dst, src }),
    ]
}

/// Loop-heavy variant: the distribution the specializer targets — counted
/// loops with compare-and-branch back-edges dominate, with longer
/// iteration counts so the fast tier executes thousands of specialized
/// instructions per case rather than a handful.
fn loop_heavy_step_strategy() -> impl Strategy<Value = Step> {
    let slot = || 0u8..SLOTS;
    prop_oneof![
        4 => (1u8..40, slot(), slot())
            .prop_map(|(iters, dst, src)| Step::Loop { iters, dst, src }),
        2 => (0u8..3, slot(), slot(), slot(), slot(), slot())
            .prop_map(|(cmp, a, b, dst, x, y)| Step::Diamond { cmp, a, b, dst, x, y }),
        2 => (0u8..5, slot(), slot(), slot())
            .prop_map(|(op, dst, a, b)| Step::Bin { op, dst, a, b }),
    ]
}

/// Renders a recipe as a textual HILTI module with a single
/// `int<64> kernel(int<64> a, int<64> b)` function.
fn emit(recipe: &[Step], consts: &[i64], ret: u8) -> String {
    let mut src = String::from("module Fuzz\n\nint<64> kernel(int<64> a, int<64> b) {\n");
    for t in 0..SLOTS {
        src.push_str(&format!("    local int<64> t{t}\n"));
    }
    for (i, step) in recipe.iter().enumerate() {
        match step {
            Step::Diamond { .. } => src.push_str(&format!("    local bool c{i}\n")),
            Step::Loop { .. } => {
                src.push_str(&format!("    local int<64> i{i}\n"));
                src.push_str(&format!("    local bool m{i}\n"));
            }
            Step::Bin { .. } => {}
        }
    }
    src.push_str("    t0 = assign a\n    t1 = assign b\n");
    for (t, c) in consts.iter().enumerate() {
        src.push_str(&format!("    t{} = assign {c}\n", t + 2));
    }
    for (i, step) in recipe.iter().enumerate() {
        match *step {
            Step::Bin { op, dst, a, b } => {
                let mnem = ["int.add", "int.sub", "int.mul", "int.div", "int.mod"][op as usize];
                src.push_str(&format!("    t{dst} = {mnem} t{a} t{b}\n"));
            }
            Step::Diamond {
                cmp,
                a,
                b,
                dst,
                x,
                y,
            } => {
                let mnem = ["int.eq", "int.lt", "int.gt"][cmp as usize];
                src.push_str(&format!("    c{i} = {mnem} t{a} t{b}\n"));
                src.push_str(&format!("    if.else c{i} then{i} else{i}\n"));
                src.push_str(&format!("then{i}:\n"));
                src.push_str(&format!("    t{dst} = int.add t{x} t{y}\n"));
                src.push_str(&format!("    jump end{i}\n"));
                src.push_str(&format!("else{i}:\n"));
                src.push_str(&format!("    t{dst} = int.sub t{x} t{y}\n"));
                src.push_str(&format!("end{i}:\n"));
            }
            Step::Loop { iters, dst, src: s } => {
                src.push_str(&format!("    i{i} = assign 0\n"));
                src.push_str(&format!("loop{i}:\n"));
                src.push_str(&format!("    t{dst} = int.add t{dst} t{s}\n"));
                src.push_str(&format!("    i{i} = int.add i{i} 1\n"));
                src.push_str(&format!("    m{i} = int.lt i{i} {iters}\n"));
                src.push_str(&format!("    if.else m{i} loop{i} end{i}\n"));
                src.push_str(&format!("end{i}:\n"));
            }
        }
    }
    // Print the result so output parity is differentially tested too.
    src.push_str(&format!("    call Hilti::print t{ret}\n"));
    src.push_str(&format!("    return t{ret}\n}}\n"));
    src
}

/// Builds the generated source with the given optimization level and
/// specializer switch.
fn build(src: &str, opt: OptLevel, specialize: bool) -> Program {
    Program::from_sources_opts(
        &[src],
        opt,
        BuildOptions {
            specialize,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("generated program rejected: {e}\n{src}"))
}

/// Runs one engine configuration, returning (outcome, printed output).
fn run_vm(p: &mut Program, args: &[Value]) -> (Result<i64, String>, Vec<String>) {
    let r = outcome(p.run("Fuzz::kernel", args));
    (r, p.take_output())
}

/// Normalizes a run result to something comparable across engines:
/// the integer outcome, or the exception kind's HILTI-level name.
fn outcome(r: Result<Value, hilti_rt::error::RtError>) -> Result<i64, String> {
    match r {
        Ok(v) => Ok(v.as_int().expect("kernel returns int<64>")),
        Err(e) => Err(e.kind.name().to_string()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn engines_and_optimizer_agree(
        recipe in prop::collection::vec(step_strategy(), 1..10),
        consts in prop::collection::vec(-50i64..50, 4),
        ret in 0u8..SLOTS,
        a in -1000i64..1000,
        b in -1000i64..1000,
    ) {
        let src = emit(&recipe, &consts, ret);
        let args = [Value::Int(a), Value::Int(b)];

        let mut plain = build(&src, OptLevel::None, true);
        let mut plain_nospec = build(&src, OptLevel::None, false);
        let mut opt = build(&src, OptLevel::Full, true);
        let mut opt_nospec = build(&src, OptLevel::Full, false);

        let oracle = outcome(plain.run_interpreted("Fuzz::kernel", &args));
        let oracle_out = plain.take_output();

        for (label, p) in [
            ("plain VM, specialized", &mut plain),
            ("plain VM, no specializer", &mut plain_nospec),
            ("optimized VM, specialized", &mut opt),
            ("optimized VM, no specializer", &mut opt_nospec),
        ] {
            let (r, out) = run_vm(p, &args);
            prop_assert_eq!(&oracle, &r, "{} diverged from interpreter\n{}", label, src);
            prop_assert_eq!(&oracle_out, &out, "{} printed differently\n{}", label, src);
        }
    }

    /// The specializer's target distribution: loop-heavy integer/branch
    /// kernels, run with the pass on and off at both optimization levels.
    #[test]
    fn loop_heavy_specializer_on_off_agree(
        recipe in prop::collection::vec(loop_heavy_step_strategy(), 2..12),
        consts in prop::collection::vec(-50i64..50, 4),
        ret in 0u8..SLOTS,
        a in -1000i64..1000,
        b in -1000i64..1000,
    ) {
        let src = emit(&recipe, &consts, ret);
        let args = [Value::Int(a), Value::Int(b)];

        let mut plain_nospec = build(&src, OptLevel::None, false);
        let mut plain_spec = build(&src, OptLevel::None, true);
        let mut opt_spec = build(&src, OptLevel::Full, true);

        let oracle = outcome(plain_nospec.run_interpreted("Fuzz::kernel", &args));
        let oracle_out = plain_nospec.take_output();

        let (vm_nospec, out_nospec) = run_vm(&mut plain_nospec, &args);
        let (vm_spec, out_spec) = run_vm(&mut plain_spec, &args);
        let (vm_opt_spec, out_opt_spec) = run_vm(&mut opt_spec, &args);

        prop_assert_eq!(&oracle, &vm_nospec, "generic VM diverged\n{}", src);
        prop_assert_eq!(&oracle, &vm_spec, "specialized VM diverged\n{}", src);
        prop_assert_eq!(&oracle, &vm_opt_spec, "optimized+specialized VM diverged\n{}", src);
        prop_assert_eq!(&oracle_out, &out_nospec, "generic VM printed differently\n{}", src);
        prop_assert_eq!(&oracle_out, &out_spec, "specialized VM printed differently\n{}", src);
        prop_assert_eq!(&oracle_out, &out_opt_spec, "optimized+specialized VM printed differently\n{}", src);
    }

    /// Resource governance differential: under a fuel limit, the
    /// tree-walking interpreter and the bytecode VM (specializer on and
    /// off) must exhaust at the *same* point — same outcome (including
    /// `Hilti::ResourceExhausted`), same printed prefix, same remaining
    /// fuel. Fuel parity holds only at matching optimization level, so
    /// every engine runs unoptimized IR here.
    #[test]
    fn fuel_exhaustion_is_engine_equivalent(
        recipe in prop::collection::vec(loop_heavy_step_strategy(), 2..10),
        consts in prop::collection::vec(-50i64..50, 4),
        ret in 0u8..SLOTS,
        a in -1000i64..1000,
        fuel_limit in 0u64..400,
    ) {
        let src = emit(&recipe, &consts, ret);
        let args = [Value::Int(a), Value::Int(9)];
        let limits = hilti_rt::limits::ResourceLimits {
            fuel: Some(fuel_limit),
            ..Default::default()
        };

        let mut interp = build(&src, OptLevel::None, true);
        interp.set_limits(limits);
        let oracle = outcome(interp.run_interpreted("Fuzz::kernel", &args));
        let oracle_out = interp.take_output();
        let oracle_left = interp.context().fuel_remaining();

        for (label, specialize) in [("specialized", true), ("generic", false)] {
            let mut vm = build(&src, OptLevel::None, specialize);
            vm.set_limits(limits);
            let (r, out) = run_vm(&mut vm, &args);
            prop_assert_eq!(&oracle, &r, "{} VM outcome diverged under fuel\n{}", label, src);
            prop_assert_eq!(&oracle_out, &out, "{} VM output diverged under fuel\n{}", label, src);
            prop_assert_eq!(
                oracle_left,
                vm.context().fuel_remaining(),
                "{} VM remaining fuel diverged\n{}",
                label,
                src
            );
        }
    }

    /// The optimizer is deterministic and idempotent at the outcome level:
    /// two independent optimized builds of the same source agree.
    #[test]
    fn optimized_build_is_deterministic(
        recipe in prop::collection::vec(step_strategy(), 1..6),
        consts in prop::collection::vec(-20i64..20, 4),
        a in -100i64..100,
    ) {
        let src = emit(&recipe, &consts, 0);
        let args = [Value::Int(a), Value::Int(7)];
        let mut p1 = Program::from_sources(&[&src], OptLevel::Full).unwrap();
        let mut p2 = Program::from_sources(&[&src], OptLevel::Full).unwrap();
        prop_assert_eq!(
            outcome(p1.run("Fuzz::kernel", &args)),
            outcome(p2.run("Fuzz::kernel", &args))
        );
    }
}

/// A fixed regression-style case: division by zero must trap identically
/// under every engine/optimization combination, even when the dividend is
/// a compile-time constant (constant folding must not fold the trap away
/// or turn it into a different exception).
#[test]
fn div_by_zero_trap_is_engine_independent() {
    let src = "module Fuzz\n\nint<64> kernel(int<64> a, int<64> b) {\n    local int<64> z\n    z = int.sub b b\n    a = int.div 7 z\n    return a\n}\n";
    let args = [Value::Int(3), Value::Int(5)];
    let mut plain = Program::from_sources(&[src], OptLevel::None).unwrap();
    let mut opt = Program::from_sources(&[src], OptLevel::Full).unwrap();
    let oracle = outcome(plain.run_interpreted("Fuzz::kernel", &args));
    assert_eq!(oracle, outcome(plain.run("Fuzz::kernel", &args)));
    assert_eq!(oracle, outcome(opt.run("Fuzz::kernel", &args)));
    assert_eq!(oracle, Err("Hilti::ArithmeticError".to_string()));
}

/// Fixed-case fuel differential: sweeping a small fuel budget over a
/// looping, printing kernel, both engines transition from exhausted to
/// completed at the same budget, and agree on everything in between.
#[test]
fn fuel_sweep_hits_resource_exhausted_at_equivalent_points() {
    let recipe = [
        Step::Loop {
            iters: 10,
            dst: 2,
            src: 3,
        },
        Step::Bin {
            op: 0,
            dst: 0,
            a: 2,
            b: 1,
        },
    ];
    let src = emit(&recipe, &[1, 2, 3, 4], 0);
    let args = [Value::Int(5), Value::Int(7)];
    let (mut exhausted, mut completed) = (0u32, 0u32);
    for fuel in 0..=120u64 {
        let limits = hilti_rt::limits::ResourceLimits {
            fuel: Some(fuel),
            ..Default::default()
        };
        let mut interp = build(&src, OptLevel::None, true);
        interp.set_limits(limits);
        let oracle = outcome(interp.run_interpreted("Fuzz::kernel", &args));
        let oracle_out = interp.take_output();
        for specialize in [true, false] {
            let mut vm = build(&src, OptLevel::None, specialize);
            vm.set_limits(limits);
            let (r, out) = run_vm(&mut vm, &args);
            assert_eq!(oracle, r, "fuel={fuel} specialize={specialize}\n{src}");
            assert_eq!(
                oracle_out, out,
                "fuel={fuel} specialize={specialize}\n{src}"
            );
        }
        match &oracle {
            Err(k) if k == "Hilti::ResourceExhausted" => exhausted += 1,
            Ok(_) => completed += 1,
            Err(other) => panic!("unexpected exception {other} at fuel={fuel}"),
        }
    }
    // The sweep must actually cross the boundary: small budgets exhaust,
    // large ones complete.
    assert!(exhausted > 0, "no budget was small enough to exhaust");
    assert!(completed > 0, "no budget was large enough to complete");
}

/// Exception handling differential: a trap raised inside `try` must be
/// caught by the handler — and reach the same handler — in all three
/// configurations, including when every operand feeding the trap is a
/// compile-time constant the optimizer could fold.
#[test]
fn try_catch_is_engine_and_optimizer_independent() {
    let src = r#"
module Fuzz

int<64> kernel(int<64> a, int<64> b) {
    local int<64> r
    local int<64> z
    r = assign 0
    try {
        z = int.sub b b
        r = int.div a z
        r = assign 99
    } catch ( ref<Hilti::ArithmeticError> e ) {
        r = assign -1
    }
    return r
}
"#;
    let args = [Value::Int(3), Value::Int(5)];
    let mut plain = Program::from_sources(&[src], OptLevel::None).unwrap();
    let mut opt = Program::from_sources(&[src], OptLevel::Full).unwrap();
    let oracle = outcome(plain.run_interpreted("Fuzz::kernel", &args));
    assert_eq!(oracle, Ok(-1));
    assert_eq!(oracle, outcome(plain.run("Fuzz::kernel", &args)));
    assert_eq!(oracle, outcome(opt.run("Fuzz::kernel", &args)));
}

/// Builds the generated source with adaptive tiering armed at tiny
/// thresholds, so `lazy` re-lowers mid-kernel (the counters cross inside
/// the first run) and `eager` tiers on first dispatch.
fn build_tiered(src: &str, opt: OptLevel, specialize: bool, mode: TieringMode) -> Program {
    let mut p = Program::from_sources_opts(
        &[src],
        opt,
        BuildOptions {
            specialize,
            tiering: Some(mode),
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("generated program rejected: {e}\n{src}"));
    p.context_mut().set_tiering_config(
        mode,
        TierConfig {
            hot_invocations: 1,
            hot_retired: 8,
            ic_cap: 4,
        },
    );
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The adaptive-tiering dimension: off × lazy × eager, crossed with
    /// the static specializer switch, must agree with the interpreter
    /// oracle on outcome (value or exception kind), printed output *and*
    /// total fuel — tier-up and inline caches may only change dispatch
    /// speed, never observable behaviour. Unoptimized IR throughout, so
    /// fuel parity with the oracle is exact.
    #[test]
    fn tiering_modes_agree_with_oracle(
        recipe in prop::collection::vec(loop_heavy_step_strategy(), 2..10),
        consts in prop::collection::vec(-50i64..50, 4),
        ret in 0u8..SLOTS,
        a in -1000i64..1000,
        b in -1000i64..1000,
    ) {
        let src = emit(&recipe, &consts, ret);
        let args = [Value::Int(a), Value::Int(b)];

        let mut oracle_p = build(&src, OptLevel::None, true);
        let oracle = outcome(oracle_p.run_interpreted("Fuzz::kernel", &args));
        let oracle_out = oracle_p.take_output();
        let oracle_fuel = oracle_p.context().fuel_spent();

        for mode in [TieringMode::Off, TieringMode::Lazy, TieringMode::Eager] {
            for specialize in [true, false] {
                let mut p = build_tiered(&src, OptLevel::None, specialize, mode);
                let (r, out) = run_vm(&mut p, &args);
                prop_assert_eq!(
                    &oracle, &r,
                    "tiering={:?} spec={} outcome diverged\n{}", mode, specialize, src
                );
                prop_assert_eq!(
                    &oracle_out, &out,
                    "tiering={:?} spec={} printed differently\n{}", mode, specialize, src
                );
                prop_assert_eq!(
                    oracle_fuel, p.context().fuel_spent(),
                    "tiering={:?} spec={} fuel diverged\n{}", mode, specialize, src
                );
            }
        }
    }

    /// Fuel exhaustion under adaptive tiering: a limited run must trip
    /// `Hilti::ResourceExhausted` at exactly the same point in every
    /// tiering mode — tiered code charges instruction-identical fuel.
    #[test]
    fn tiering_fuel_exhaustion_parity(
        recipe in prop::collection::vec(loop_heavy_step_strategy(), 2..8),
        consts in prop::collection::vec(-50i64..50, 4),
        ret in 0u8..SLOTS,
        a in -1000i64..1000,
        fuel_limit in 0u64..400,
    ) {
        let src = emit(&recipe, &consts, ret);
        let args = [Value::Int(a), Value::Int(9)];
        let limits = hilti_rt::limits::ResourceLimits {
            fuel: Some(fuel_limit),
            ..Default::default()
        };

        let mut interp = build(&src, OptLevel::None, true);
        interp.set_limits(limits);
        let oracle = outcome(interp.run_interpreted("Fuzz::kernel", &args));
        let oracle_out = interp.take_output();
        let oracle_left = interp.context().fuel_remaining();

        for mode in [TieringMode::Off, TieringMode::Lazy, TieringMode::Eager] {
            let mut vm = build_tiered(&src, OptLevel::None, true, mode);
            vm.set_limits(limits);
            let (r, out) = run_vm(&mut vm, &args);
            prop_assert_eq!(&oracle, &r, "tiering={:?} outcome diverged under fuel\n{}", mode, src);
            prop_assert_eq!(&oracle_out, &out, "tiering={:?} output diverged under fuel\n{}", mode, src);
            prop_assert_eq!(
                oracle_left,
                vm.context().fuel_remaining(),
                "tiering={:?} remaining fuel diverged\n{}",
                mode,
                src
            );
        }
    }
}
