//! Cross-crate integration tests: the whole platform exercised end to end,
//! from trace synthesis through parsers and scripts to logs.

use broscript::host::Engine;
use broscript::pipeline::{run_dns_analysis, run_http_analysis, ParserStack};
use hilti::passes::OptLevel;
use hilti::value::Value;
use hilti::Program;
use netpkt::logs::agreement;
use netpkt::synth::{dns_trace, http_trace, SynthConfig};

#[test]
fn figure3_hello_world_end_to_end() {
    let mut p = Program::from_source(
        "module Main\nimport Hilti\n\nvoid run() {\n    call Hilti::print \"Hello, World!\"\n}\n",
    )
    .expect("hello world compiles");
    p.run_void("Main::run", &[]).expect("runs");
    assert_eq!(p.take_output(), vec!["Hello, World!"]);
}

#[test]
fn engines_agree_on_program_suite() {
    // Differential check: both execution engines produce identical results
    // over a suite of programs covering arithmetic, containers, strings,
    // control flow, and exceptions.
    let suite: &[(&str, &str, Vec<Value>)] = &[
        (
            r#"
module M
int<64> collatz_steps(int<64> n) {
    local int<64> steps
    local bool even
    local int<64> r
    local bool done
    steps = assign 0
loop:
    done = int.eq n 1
    if.else done out step
step:
    r = int.mod n 2
    even = int.eq r 0
    if.else even half triple
half:
    n = int.div n 2
    jump next
triple:
    n = int.mul n 3
    n = int.add n 1
next:
    steps = int.add steps 1
    jump loop
out:
    return steps
}
"#,
            "M::collatz_steps",
            vec![Value::Int(27)],
        ),
        (
            r#"
module M
int<64> table_trip(int<64> n) {
    local ref<map<int<64>, int<64>>> m
    local int<64> i
    local bool more
    local int<64> acc
    local int<64> v
    m = new map<int<64>, int<64>>
    i = assign 0
fill:
    more = int.lt i n
    if.else more fill_one sum
fill_one:
    v = int.mul i i
    map.insert m i v
    i = int.add i 1
    jump fill
sum:
    acc = assign 0
    i = assign 0
sum_loop:
    more = int.lt i n
    if.else more sum_one out
sum_one:
    v = map.get m i
    acc = int.add acc v
    i = int.add i 1
    jump sum_loop
out:
    return acc
}
"#,
            "M::table_trip",
            vec![Value::Int(50)],
        ),
        (
            r#"
module M
string shout(string s) {
    local string u
    local string r
    u = string.upper s
    r = string.concat u "!"
    return r
}
"#,
            "M::shout",
            vec![Value::str("hilti")],
        ),
        (
            r#"
module M
int<64> guarded(int<64> d) {
    local int<64> x
    try {
        x = int.div 100 d
    } catch ( ref<Hilti::ArithmeticError> e ) {
        return -1
    }
    return x
}
"#,
            "M::guarded",
            vec![Value::Int(0)],
        ),
    ];
    for (src, func, args) in suite {
        let mut p = Program::from_source(src).expect("suite program compiles");
        let compiled = p.run(func, args).unwrap_or_else(|e| panic!("{func}: {e}"));
        let interpreted = p
            .run_interpreted(func, args)
            .unwrap_or_else(|e| panic!("{func} (interp): {e}"));
        assert!(
            compiled.equals(&interpreted),
            "{func}: compiled {compiled:?} != interpreted {interpreted:?}"
        );
    }
}

#[test]
fn optimizer_never_changes_results() {
    let src = r#"
module M
int<64> mix(int<64> a, int<64> b) {
    local int<64> x
    local int<64> y
    local int<64> z
    x = int.add a b
    y = int.add a b
    z = int.mul x y
    x = int.add 40 2
    z = int.add z x
    z = int.sub z b
    return z
}
"#;
    for (a, b) in [(0i64, 0i64), (1, 2), (-5, 17), (1_000_000, -1)] {
        let mut p0 = Program::from_sources(&[src], OptLevel::None).expect("compiles");
        let mut p1 = Program::from_sources(&[src], OptLevel::Full).expect("compiles");
        let v0 = p0
            .run("M::mix", &[Value::Int(a), Value::Int(b)])
            .expect("runs");
        let v1 = p1
            .run("M::mix", &[Value::Int(a), Value::Int(b)])
            .expect("runs");
        assert!(v0.equals(&v1), "opt changed result for ({a},{b})");
    }
}

#[test]
fn http_pipeline_all_four_configurations_agree() {
    // 2 parser stacks x 2 script engines: all four produce consistent logs
    // (up to the documented parser-stack differences).
    let trace = http_trace(&SynthConfig::new(99, 10));
    let mut logs = Vec::new();
    for stack in [ParserStack::Standard, ParserStack::Binpac] {
        for engine in [Engine::Interpreted, Engine::Compiled] {
            let r = run_http_analysis(&trace, stack, engine)
                .unwrap_or_else(|e| panic!("{stack:?}/{engine:?}: {e}"));
            assert!(!r.http_log.is_empty(), "{stack:?}/{engine:?} empty log");
            logs.push((stack, engine, r));
        }
    }
    // Same stack, different engines: identical.
    let ag = agreement(&logs[0].2.http_log, &logs[1].2.http_log);
    assert_eq!(ag.percent(), 100.0, "standard stack engines differ: {ag:?}");
    let ag = agreement(&logs[2].2.http_log, &logs[3].2.http_log);
    assert_eq!(ag.percent(), 100.0, "binpac stack engines differ: {ag:?}");
    // Different stacks: high agreement.
    let ag = agreement(&logs[0].2.http_log, &logs[2].2.http_log);
    assert!(ag.percent() > 90.0, "stacks diverge: {ag:?}");
}

#[test]
fn dns_pipeline_consistency() {
    let trace = dns_trace(&SynthConfig::new(77, 80));
    let std_i = run_dns_analysis(&trace, ParserStack::Standard, Engine::Interpreted).unwrap();
    let std_c = run_dns_analysis(&trace, ParserStack::Standard, Engine::Compiled).unwrap();
    let pac_i = run_dns_analysis(&trace, ParserStack::Binpac, Engine::Interpreted).unwrap();
    assert!(std_i.dns_log.len() > 30);
    assert_eq!(
        agreement(&std_i.dns_log, &std_c.dns_log).percent(),
        100.0,
        "engines must agree exactly"
    );
    let stacks = agreement(&std_i.dns_log, &pac_i.dns_log);
    assert!(stacks.percent() > 90.0, "{stacks:?}");
    assert!(
        stacks.percent() <= 100.0,
        "TXT semantics should differ somewhere"
    );
}

#[test]
fn firewall_matches_reference_on_trace_derived_stream() {
    use hilti_firewall::{HiltiFirewall, ReferenceFirewall, Rule};
    let rules = vec![
        Rule::new("10.2.0.0/16", "8.8.8.0/24", true).unwrap(),
        Rule::new("8.8.8.0/24", "10.2.0.0/16", false).unwrap(),
    ];
    let mut fw = HiltiFirewall::compile(&rules, OptLevel::Full).unwrap();
    let mut rf = ReferenceFirewall::new(&rules);
    let trace = dns_trace(&SynthConfig::new(55, 150));
    for pkt in &trace {
        if let Ok(d) = netpkt::decode::decode_ethernet(pkt) {
            let h = fw.match_packet(pkt.ts, d.src, d.dst).unwrap();
            let r = rf.match_packet(pkt.ts, d.src, d.dst);
            assert_eq!(h, r, "verdict differs for {} -> {}", d.src, d.dst);
        }
    }
}

#[test]
fn bpf_hilti_and_classic_agree_on_trace() {
    let trace = http_trace(&SynthConfig::new(44, 12));
    let expr =
        hilti_bpf::parse_filter("tcp and dst port 80 and not src net 93.184.0.0/16").unwrap();
    let classic = hilti_bpf::classic::compile_classic(&expr).unwrap();
    let mut hf = hilti_bpf::HiltiFilter::compile(&expr, OptLevel::Full).unwrap();
    for pkt in &trace {
        assert_eq!(
            hilti_bpf::classic::bpf_filter(&classic, &pkt.data),
            hf.matches(&pkt.data).unwrap()
        );
    }
}

#[test]
fn binpac_http_survives_any_chunking() {
    // The incremental-parsing invariant: event stream is independent of
    // how payload is chunked.
    use binpac::http::BinpacHttp;
    use hilti_rt::addr::Port;
    use netpkt::events::{ConnId, Event};

    let id = ConnId {
        orig_h: "10.0.0.1".parse().unwrap(),
        orig_p: Port::tcp(40000),
        resp_h: "1.2.3.4".parse().unwrap(),
        resp_p: Port::tcp(80),
    };
    let wire: &[u8] =
        b"GET /path HTTP/1.1\r\nHost: h\r\n\r\nGET /two HTTP/1.1\r\nContent-Length: 4\r\n\r\nBODY";

    let squash = |evs: &[Event]| -> Vec<String> {
        evs.iter()
            .map(|e| match e {
                Event::HttpBodyData { data, .. } => {
                    format!("body:{}", String::from_utf8_lossy(data))
                }
                other => format!("{:?}", other.name()),
            })
            .collect()
    };

    let mut reference: Option<Vec<String>> = None;
    for chunk_size in [1usize, 3, 7, 1000] {
        let mut h = BinpacHttp::new(OptLevel::Full, None).unwrap();
        for chunk in wire.chunks(chunk_size) {
            h.feed("C1", id, true, hilti_rt::time::Time::from_secs(1), chunk)
                .unwrap();
        }
        let got = squash(&h.take_events());
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "chunk size {chunk_size}"),
        }
    }
}

#[test]
fn track_bro_matches_figure8_output_shape() {
    use broscript::host::ScriptHost;
    use broscript::scripts::TRACK_BRO;
    use netpkt::flow::FlowTable;

    let trace = http_trace(&SynthConfig::new(8, 10));
    for engine in [Engine::Interpreted, Engine::Compiled] {
        let mut host = ScriptHost::new(&[TRACK_BRO], engine, None).unwrap();
        let mut flows = FlowTable::new();
        for pkt in &trace {
            let Ok(d) = netpkt::decode::decode_ethernet(pkt) else {
                continue;
            };
            let delivery = flows.process(&d);
            if delivery.established_now {
                let ev = netpkt::events::Event::ConnectionEstablished {
                    ts: pkt.ts,
                    uid: delivery.flow.uid.to_string(),
                    id: delivery.flow.id,
                };
                host.dispatch_event(&ev).unwrap();
            }
        }
        host.done().unwrap();
        let out = host.take_output();
        assert!(!out.is_empty(), "{engine:?}: should print responder IPs");
        // All outputs are valid addresses, sorted and unique.
        let mut sorted = out.clone();
        sorted.sort_by_key(|s| s.parse::<hilti_rt::addr::Addr>().unwrap().raw());
        assert_eq!(out, sorted);
    }
}

#[test]
fn threads_scale_without_losing_work() {
    let trace = dns_trace(&SynthConfig::new(66, 120));
    let one = bench::threads_experiment(&trace, 1).unwrap();
    let four = bench::threads_experiment(&trace, 4).unwrap();
    assert_eq!(one.datagrams_parsed, one.datagrams_sent);
    assert_eq!(four.datagrams_parsed, four.datagrams_sent);
    assert_eq!(one.datagrams_parsed, four.datagrams_parsed);
}

#[test]
fn shipped_hlt_examples_build_and_run() {
    // The textual example programs under examples/hlt/ must keep working
    // on both engines.
    for (path, entry, expected) in [
        ("examples/hlt/hello.hlt", "Main::run", vec!["Hello, World!"]),
        (
            "examples/hlt/scan_detector.hlt",
            "Scan::demo",
            vec!["False", "True"],
        ),
    ] {
        let src = std::fs::read_to_string(path).expect("example file exists");
        let mut p = Program::from_source(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
        p.run_void(entry, &[])
            .unwrap_or_else(|e| panic!("{path}: {e}"));
        assert_eq!(p.take_output(), expected, "{path}");
        p.run_interpreted(entry, &[])
            .unwrap_or_else(|e| panic!("{path} (interp): {e}"));
    }
}
