//! Offline drop-in subset of `rand` 0.8.
//!
//! Provides the surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_ratio,
//! gen_bool, fill}`. The generator is xoshiro256++ seeded via SplitMix64 —
//! a different stream than upstream `StdRng` (ChaCha12), which is fine:
//! the workspace only requires determinism for a fixed seed, not a
//! specific stream.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded sampling via 128-bit multiply (Lemire's method
/// without the rejection step — bias is < 2^-64, irrelevant here).
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Primitive integer types `gen_range` can sample. The blanket
/// `SampleRange` impls below key on this so type inference unifies the
/// range's element type with the requested output type — matching
/// upstream rand, where `gen_range(0..450) * 1_000u64` infers `u64`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                lo + bounded(rng, (hi - lo) as u64) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(bounded(rng, span) as $u as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span + 1) as $u as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        bounded(self, denominator as u64) < numerator as u64
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ with SplitMix64 seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 10, "all values in a small range should appear");
        for _ in 0..1000 {
            let v: i8 = rng.gen_range(-9i8..9);
            assert!((-9..9).contains(&v));
            let w: usize = rng.gen_range(0usize..3);
            assert!(w < 3);
            let x: u8 = rng.gen_range(1u8..=32);
            assert!((1..=32).contains(&x));
        }
    }

    #[test]
    fn gen_ratio_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(rng.gen_ratio(1, 1));
            assert!(!rng.gen_ratio(0, 1));
        }
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 10)).count();
        assert!((700..1300).contains(&hits), "1/10 ratio wildly off: {hits}");
    }

    #[test]
    fn fill_covers_whole_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
