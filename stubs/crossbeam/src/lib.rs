//! Offline drop-in subset of `crossbeam`, backed by `std::sync::mpsc`.
//!
//! Only the `channel` module surface the workspace uses is provided:
//! `unbounded()`, cloneable `Sender`, cloneable `Receiver`, and the
//! `send`/`recv`/`try_recv` methods with crossbeam-shaped error types.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    // crossbeam receivers are cloneable (mpmc); emulate with a shared
    // mutex around the single std consumer.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let rx = self.0.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let rx = self.0.lock().unwrap_or_else(|e| e.into_inner());
            rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_send_recv_across_threads() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(7).unwrap();
        });
        tx.send(3).unwrap();
        h.join().unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![3, 7]);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
