//! Offline drop-in subset of `parking_lot`, backed by `std::sync`.
//!
//! The repo builds hermetically without a crates.io mirror; this stub
//! provides the small API surface the workspace uses (`Mutex`, `RwLock`,
//! `Condvar` with `wait(&mut guard)`) with parking_lot's non-poisoning
//! semantics: a poisoned std lock is recovered transparently.

use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// parking_lot-style wait: re-acquires into the same guard slot.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);

        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        h.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
