//! Offline placeholder for `serde`.
//!
//! The workspace hand-rolls its JSON output (`hilti_rt::telemetry::json`)
//! and derives nothing; this crate exists so the declared dependency
//! resolves without a registry. The `derive` feature is accepted and is a
//! no-op.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
