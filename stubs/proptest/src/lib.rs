//! Offline drop-in subset of `proptest`.
//!
//! Supports the surface the workspace tests use: the `proptest!` macro
//! (with optional `#![proptest_config(..)]`), `prop_assert!`/
//! `prop_assert_eq!`, `prop_oneof!` (weighted and unweighted), `Just`,
//! `any::<T>()`, integer-range strategies, tuple strategies, `.prop_map`,
//! `collection::vec`, and a small `[class]{m,n}` regex-string strategy.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test RNG (seeded from the test name) and failing cases are NOT
//! shrunk — the failing input is simply reported via panic. That keeps
//! the tests meaningful offline without the full shrinking machinery.

pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Config accepted by `#![proptest_config(..)]`. Field-compatible with
    /// the struct-literal-with-default-spread form the tests use.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            // FNV-1a over the test name: every test gets its own stable
            // stream, independent of execution order.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRunner { config, seed }
        }

        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        pub fn rng_for_case(&self, case: u32) -> TestRng {
            TestRng::seed_from_u64(
                self.seed ^ ((case as u64) << 1 | 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            )
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

    /// Weighted choice among boxed strategies — backs `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(
                total > 0,
                "prop_oneof! needs at least one arm with weight > 0"
            );
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (weight, strat) in &self.arms {
                if pick < *weight as u64 {
                    return strat.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick within total")
        }
    }

    /// Erases a strategy's concrete type so `prop_oneof!` arms unify.
    pub fn boxed<T, S: Strategy<Value = T> + 'static>(strat: S) -> Box<dyn Strategy<Value = T>> {
        Box::new(strat)
    }

    /// `&str` regex strategy — the `[class]{m,n}` / literal subset the
    /// workspace tests use (e.g. `"[a-z]{1,10}"`).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                assert!(
                    !"\\.*+?()|^$".contains(c),
                    "unsupported regex syntax {c:?} in pattern {pattern:?}: \
                     this offline stub handles literals and [class]{{m,n}} only"
                );
                i += 1;
                vec![c]
            };

            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("repeat min"),
                        n.trim().parse::<usize>().expect("repeat max"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };

            let count = if min == max {
                min
            } else {
                rng.gen_range(min..=max)
            };
            for _ in 0..count {
                let pick = rng.gen_range(0..alphabet.len());
                out.push(alphabet[pick]);
            }
        }
        out
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirrors upstream's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_fns!(($config); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn ranges_and_vecs(xs in prop::collection::vec(0u8..10, 0..20), n in 1usize..5) {
            prop_assert!(xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assert!(n >= 1 && n < 5);
        }

        fn regex_strings(s in "[a-z]{1,10}") {
            prop_assert!(!s.is_empty() && s.len() <= 10);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        fn oneof_and_map(ops in prop::collection::vec(prop_oneof![
            2 => (0u8..100).prop_map(Op::Push),
            1 => Just(Op::Pop),
        ], 1..30)) {
            prop_assert!(!ops.is_empty());
        }

        fn tuples(pair in (any::<bool>(), 0u64..7), mut acc in 0u32..3) {
            acc += pair.1 as u32;
            prop_assert!(acc < 10, "acc was {}", acc);
            prop_assert_eq!(pair.1 < 7, true);
        }
    }

    #[test]
    fn cases_are_deterministic_per_test() {
        use crate::strategy::Strategy;
        let runner =
            crate::test_runner::TestRunner::new(ProptestConfig::with_cases(4), "fixed_name");
        let a: Vec<u64> = (0..4)
            .map(|c| (0u64..1000).generate(&mut runner.rng_for_case(c)))
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| (0u64..1000).generate(&mut runner.rng_for_case(c)))
            .collect();
        assert_eq!(a, b);
    }
}
