//! Offline placeholder for the `bytes` crate.
//!
//! The workspace declares the dependency but implements its own rope-backed
//! `Bytes` in `hilti-rt::bytestring`; nothing links against this API today.
//! A minimal `Bytes` view type is provided so the crate is a real library.

/// Immutable byte buffer, API-compatible with the subset of `bytes::Bytes`
/// a future caller is most likely to reach for.
#[derive(Clone, Default, PartialEq, Eq, Hash, Debug)]
pub struct Bytes(std::sync::Arc<Vec<u8>>);

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(std::sync::Arc::new(data.to_vec()))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(std::sync::Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn slice_view_roundtrip() {
        let b = Bytes::from(&b"abc"[..]);
        assert_eq!(&*b, b"abc");
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
