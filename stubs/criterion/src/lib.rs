//! Offline drop-in subset of `criterion` 0.5.
//!
//! Implements the surface the workspace benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `BenchmarkId`,
//! `sample_size`, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros (struct form included) — with a simple
//! wall-clock measurement loop. The harness honours the CLI contract
//! `cargo bench` relies on: `--test` runs every benchmark exactly once
//! (smoke mode), `--bench`/flag arguments are ignored, and any bare
//! argument acts as a substring filter on benchmark names.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 100;
// Per-sample measurement budget; total time per bench is roughly
// sample_size * TARGET_SAMPLE_TIME, capped by MAX_BENCH_TIME below.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);
const MAX_BENCH_TIME: Duration = Duration::from_secs(5);

#[derive(Clone)]
struct Config {
    sample_size: usize,
    test_mode: bool,
    filters: Vec<String>,
}

impl Config {
    fn from_args() -> (bool, Vec<String>) {
        let mut test_mode = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if s.starts_with('-') => {} // --bench, --noplot, etc.
                s => filters.push(s.to_string()),
            }
        }
        (test_mode, filters)
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }
}

pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        let (test_mode, filters) = Config::from_args();
        Criterion {
            config: Config {
                sample_size: DEFAULT_SAMPLE_SIZE,
                test_mode,
                filters,
            },
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            _marker: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into_benchmark_id().full_name(), &self.config, |b| f(b));
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().full_name());
        run_benchmark(&full, &self.config, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().full_name());
        run_benchmark(&full, &self.config, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self.to_string(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self,
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for &String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self.clone(),
            parameter: None,
        }
    }
}

pub struct Bencher {
    test_mode: bool,
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    ns_per_iter: f64,
    samples_wanted: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.ns_per_iter = 0.0;
            return;
        }
        // Warm-up + calibration: find an iteration count that fills the
        // per-sample budget, so cheap closures aren't dominated by clock
        // reads.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME || iters_per_sample >= 1 << 30 {
                break;
            }
            let scale = if elapsed.is_zero() {
                100
            } else {
                (TARGET_SAMPLE_TIME.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            };
            iters_per_sample = iters_per_sample.saturating_mul(scale.clamp(2, 100));
        }

        let bench_start = Instant::now();
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        let mut samples: u64 = 0;
        while samples < self.samples_wanted && bench_start.elapsed() < MAX_BENCH_TIME {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            total_time += start.elapsed();
            total_iters += iters_per_sample;
            samples += 1;
        }
        self.ns_per_iter = if total_iters == 0 {
            0.0
        } else {
            total_time.as_nanos() as f64 / total_iters as f64
        };
    }

    /// Like upstream `iter_custom`: the closure runs `iters` iterations
    /// itself and returns the elapsed time for exactly those iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f(1));
            self.ns_per_iter = 0.0;
            return;
        }
        // Calibrate the per-sample iteration count against the budget.
        let mut iters_per_sample: u64 = 1;
        loop {
            let elapsed = f(iters_per_sample);
            if elapsed >= TARGET_SAMPLE_TIME || iters_per_sample >= 1 << 30 {
                break;
            }
            let scale = if elapsed.is_zero() {
                100
            } else {
                (TARGET_SAMPLE_TIME.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            };
            iters_per_sample = iters_per_sample.saturating_mul(scale.clamp(2, 100));
        }

        let bench_start = Instant::now();
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        let mut samples: u64 = 0;
        while samples < self.samples_wanted && bench_start.elapsed() < MAX_BENCH_TIME {
            total_time += f(iters_per_sample);
            total_iters += iters_per_sample;
            samples += 1;
        }
        self.ns_per_iter = if total_iters == 0 {
            0.0
        } else {
            total_time.as_nanos() as f64 / total_iters as f64
        };
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, config: &Config, mut f: F) {
    if !config.matches(name) {
        return;
    }
    let mut b = Bencher {
        test_mode: config.test_mode,
        ns_per_iter: 0.0,
        samples_wanted: config.sample_size.min(20) as u64,
    };
    f(&mut b);
    if config.test_mode {
        println!("Testing {name} ... ok");
    } else {
        println!("{name:<50} time: {}", format_ns(b.ns_per_iter));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
