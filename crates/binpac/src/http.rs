//! The BinPAC++ HTTP grammar and its Bro-style event adapter.
//!
//! This is the HTTP case study of §6.4: a grammar-generated parser meant to
//! "mimic Bro's standard parsers as closely as possible". The grammar
//! covers request/status lines, headers, `Content-Length` bodies, chunked
//! transfer-coding with trailers, `HEAD`/`204`/`304` body suppression, and
//! read-to-close bodies — with the framing decisions expressed as the
//! grammar's embedded semantic constructs (§4: BinPAC++ "extends the
//! grammar language with semantic constructs for annotating, controlling,
//! and interfacing to the parsing process").
//!
//! [`BinpacHttp`] drives per-connection sessions through the generated
//! incremental parser and converts unit hooks into the same
//! [`netpkt::events::Event`] vocabulary the standard parser emits — the
//! host-side *glue* whose cost Figure 9 charges separately.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use hilti::passes::OptLevel;
use hilti::value::Value;
use hilti_rt::bytestring::FeedChunk;
use hilti_rt::error::{RtError, RtResult};
use hilti_rt::limits::AllocBudget;
use hilti_rt::profile::{Component, Profiler};
use hilti_rt::time::Time;

use netpkt::events::{ConnId, Event};

use crate::grammar::{Field, FieldKind, Grammar, Repeat, Unit};
use crate::parser::{BinpacParser, ParserIr, Session};

/// Builds the HTTP grammar (`http.pac2`).
pub fn http_grammar() -> Grammar {
    let request_line = Unit::new("RequestLine")
        .field(Field::token("method", "[A-Z]+"))
        .field(Field::anon(FieldKind::Token(vec!["[ \\t]+".into()])))
        .field(Field::token("uri", "[^ \\t\\r\\n]+"))
        .field(Field::anon(FieldKind::Token(vec!["[ \\t]+".into()])))
        .field(Field::anon(FieldKind::Token(vec!["HTTP\\/".into()])))
        .field(Field::token("version", "[0-9]+\\.[0-9]+"))
        .field(Field::anon(FieldKind::Token(vec!["\\r?\\n".into()])))
        .on_done("Http::on_request_line");

    let status_line = Unit::new("StatusLine")
        .field(Field::anon(FieldKind::Token(vec!["HTTP\\/".into()])))
        .field(Field::token("version", "[0-9]+\\.[0-9]+"))
        .field(Field::anon(FieldKind::Token(vec!["[ \\t]+".into()])))
        .field(Field::token("status", "[0-9]+"))
        .field(Field::anon(FieldKind::Token(vec!["[ \\t]*".into()])))
        .field(Field::token("reason", "[^\\r\\n]*"))
        .field(Field::anon(FieldKind::Token(vec!["\\r?\\n".into()])))
        .on_done("Http::on_reply_line");

    let req_header = header_unit("ReqHeader", "Http::on_req_header");
    let resp_header = header_unit("RespHeader", "Http::on_resp_header");

    // Header scan shared by both directions: sets `blen` (or -1) and
    // `chunked` from the parsed header vector.
    let scan = |prefix: &str, default_len: i64| -> Vec<String> {
        let p = prefix;
        vec![
            format!("blen = assign {default_len}"),
            "chunked = assign False".into(),
            "local any __hdrs".into(),
            "__hdrs = struct.get self headers".into(),
            "n = vector.length __hdrs".into(),
            "i = assign 0".into(),
            format!("{p}_scan:"),
            "local bool __more".into(),
            "__more = int.lt i n".into(),
            format!("if.else __more {p}_one {p}_done"),
            format!("{p}_one:"),
            "local any __h".into(),
            "__h = vector.get __hdrs i".into(),
            "local any __hn".into(),
            "__hn = struct.get __h name".into(),
            "local string __hns".into(),
            "__hns = bytes.to_string __hn".into(),
            "__hns = string.lower __hns".into(),
            "local bool __is_cl".into(),
            "__is_cl = equal __hns \"content-length\"".into(),
            format!("if.else __is_cl {p}_cl {p}_te"),
            format!("{p}_cl:"),
            "local any __hv".into(),
            "__hv = struct.get __h value".into(),
            "try {".into(),
            "    blen = bytes.to_int __hv 10".into(),
            "} catch ( exception e ) {".into(),
            format!("    blen = assign {default_len}"),
            "}".into(),
            format!("jump {p}_next"),
            format!("{p}_te:"),
            "local bool __is_te".into(),
            "__is_te = equal __hns \"transfer-encoding\"".into(),
            format!("if.else __is_te {p}_te2 {p}_next"),
            format!("{p}_te2:"),
            "local any __hv2".into(),
            "__hv2 = struct.get __h value".into(),
            "local string __hvs".into(),
            "__hvs = bytes.to_string __hv2".into(),
            "__hvs = string.lower __hvs".into(),
            "chunked = equal __hvs \"chunked\"".into(),
            format!("jump {p}_next"),
            format!("{p}_next:"),
            "i = int.add i 1".into(),
            format!("jump {p}_scan"),
            format!("{p}_done:"),
        ]
    };

    let request = Unit::new("Request")
        .var("blen", "int<64>")
        .var("chunked", "bool")
        .var("has_body", "bool")
        .var("i", "int<64>")
        .var("n", "int<64>")
        .field(Field::named(
            "request_line",
            FieldKind::SubUnit("RequestLine".into()),
        ))
        .field(Field::named(
            "headers",
            FieldKind::List(
                "ReqHeader".into(),
                Repeat::UntilToken(vec!["\\r?\\n".into()]),
            ),
        ))
        .field(Field::anon(FieldKind::Embedded({
            let mut v = scan("rq", 0);
            v.push("has_body = int.gt blen 0".into());
            v
        })))
        .field(Field::named(
            "body",
            FieldKind::IfVar(
                "has_body".into(),
                Box::new(Field::named("body", FieldKind::BytesVar("blen".into()))),
            ),
        ))
        .on_done("Http::on_request_done");

    // Chunked-body loop, written as embedded semantic code (the paper's
    // grammars embed code for exactly this kind of framing logic).
    let chunked_code: Vec<String> = r#"
local regexp __reH
__reH = regexp.new /[0-9a-fA-F]+/
local regexp __reEL
__reEL = regexp.new /[^\r\n]*\r?\n/
local regexp __reNL
__reNL = regexp.new /\r?\n/
local any __body
__body = new bytes
local any __ctr
local int<64> __ctid
local bool __cok
local any __cnit
local any __szb
local any __dend
local any __dchunk
rpc_loop:
__ctr = regexp.match_token __reH it
__ctid = tuple.get __ctr 0
__cok = int.geq __ctid 0
if.else __cok rpc_size rpc_fail
rpc_fail:
exception.throw Hilti::ValueError "Reply: bad chunk size"
rpc_size:
__cnit = tuple.get __ctr 1
__szb = bytes.sub it __cnit
it = assign __cnit
csize = bytes.to_int __szb 16
__ctr = regexp.match_token __reEL it
__ctid = tuple.get __ctr 0
__cok = int.geq __ctid 0
if.else __cok rpc_ext rpc_fail
rpc_ext:
it = tuple.get __ctr 1
local bool __last
__last = int.eq csize 0
if.else __last rpc_trailers rpc_data
rpc_data:
__dend = iterator.incr it csize
__dchunk = bytes.sub it __dend
bytes.append __body __dchunk
it = assign __dend
__ctr = regexp.match_token __reNL it
__ctid = tuple.get __ctr 0
__cok = int.geq __ctid 0
if.else __cok rpc_data_nl rpc_fail
rpc_data_nl:
it = tuple.get __ctr 1
jump rpc_loop
rpc_trailers:
__ctr = regexp.match_token __reNL it
__ctid = tuple.get __ctr 0
__cok = int.geq __ctid 0
if.else __cok rpc_finish rpc_one_trailer
rpc_one_trailer:
__ctr = regexp.match_token __reEL it
__ctid = tuple.get __ctr 0
__cok = int.geq __ctid 0
if.else __cok rpc_tr_next rpc_fail
rpc_tr_next:
it = tuple.get __ctr 1
jump rpc_trailers
rpc_finish:
it = tuple.get __ctr 1
bytes.freeze __body
struct.set self body __body
"#
    .lines()
    .map(str::trim)
    .filter(|l| !l.is_empty())
    .map(str::to_owned)
    .collect();

    let reply = Unit::new("Reply")
        .var("blen", "int<64>")
        .var("chunked", "bool")
        .var("status", "int<64>")
        .var("bmode", "int<64>")
        .var("csize", "int<64>")
        .var("i", "int<64>")
        .var("n", "int<64>")
        .field(Field::named(
            "status_line",
            FieldKind::SubUnit("StatusLine".into()),
        ))
        .field(Field::named(
            "headers",
            FieldKind::List(
                "RespHeader".into(),
                Repeat::UntilToken(vec!["\\r?\\n".into()]),
            ),
        ))
        .field(Field::anon(FieldKind::Embedded({
            let mut v = vec![
                "local any __sl".into(),
                "__sl = struct.get self status_line".into(),
                "local any __stb".into(),
                "__stb = struct.get __sl status".into(),
                "status = bytes.to_int __stb 10".into(),
            ];
            v.extend(scan("rp", -1));
            v.extend(
                [
                    "local bool __supp",
                    "__supp = call.c Http::suppress_reply_body ()",
                    "bmode = assign 3",
                    "local bool __t1",
                    "__t1 = int.geq blen 0",
                    "if.else __t1 rp_m1 rp_m2",
                    "rp_m1:",
                    "bmode = assign 1",
                    "rp_m2:",
                    "if.else chunked rp_m3 rp_m4",
                    "rp_m3:",
                    "bmode = assign 2",
                    "rp_m4:",
                    "local bool __s1",
                    "__s1 = int.eq status 204",
                    "local bool __s2",
                    "__s2 = int.eq status 304",
                    "__s1 = or __s1 __s2",
                    "__s1 = or __s1 __supp",
                    "if.else __s1 rp_m5 rp_m6",
                    "rp_m5:",
                    "bmode = assign 0",
                    "rp_m6:",
                ]
                .iter()
                .map(|s| s.to_string()),
            );
            v
        })))
        .field(Field::named(
            "body",
            FieldKind::SwitchInt {
                on: "bmode".into(),
                cases: vec![
                    (
                        0,
                        Box::new(Field::anon(FieldKind::Embedded(vec![
                            "local any __eb".into(),
                            "__eb = new bytes".into(),
                            "bytes.freeze __eb".into(),
                            "struct.set self body __eb".into(),
                        ]))),
                    ),
                    (
                        1,
                        Box::new(Field::named("body", FieldKind::BytesVar("blen".into()))),
                    ),
                    (2, Box::new(Field::anon(FieldKind::Embedded(chunked_code)))),
                ],
                default: Some(Box::new(Field::named("body", FieldKind::Eod))),
            },
        ))
        .on_done("Http::on_reply_done");

    Grammar::new("Http")
        .unit(request_line)
        .unit(status_line)
        .unit(req_header)
        .unit(resp_header)
        .unit(request)
        .unit(reply)
}

fn header_unit(name: &str, hook: &str) -> Unit {
    Unit::new(name)
        .field(Field::token("name", "[^:\\r\\n]+"))
        .field(Field::anon(FieldKind::Token(vec![":[ \\t]*".into()])))
        .field(Field::token("value", "[^\\r\\n]*"))
        .field(Field::anon(FieldKind::Token(vec!["\\r?\\n".into()])))
        .on_done(hook)
}

// ---------------------------------------------------------------------------
// Event adapter

#[derive(Clone)]
struct Cur {
    /// Interned connection uid: one `Arc<str>` per connection, shared by
    /// the session map, span recorder, and event glue.
    uid: Arc<str>,
    id: ConnId,
    ts: Time,
}

#[derive(Default)]
struct Shared {
    current: Option<Cur>,
    /// uid → outstanding request methods (for HEAD suppression).
    outstanding: HashMap<Arc<str>, VecDeque<String>>,
    events: Vec<Event>,
}

impl Shared {
    fn cur(&self) -> RtResult<&Cur> {
        self.current
            .as_ref()
            .ok_or_else(|| RtError::runtime("HTTP hook fired with no active session"))
    }
}

/// Per-connection session pair (client + server streams). Both directions
/// share one [`AllocBudget`] when a per-connection limit is configured.
struct ConnSessions {
    client: Session,
    server: Session,
    budget: Option<AllocBudget>,
}

/// The generated HTTP parser wired to Bro-style events.
pub struct BinpacHttp {
    parser: BinpacParser,
    shared: Rc<RefCell<Shared>>,
    sessions: HashMap<Arc<str>, ConnSessions>,
    profiler: Option<Profiler>,
    /// Per-connection byte budget applied to newly created sessions.
    session_budget: Option<u64>,
    /// High-water mark of buffered bytes across all budgeted connections.
    peak_session_bytes: u64,
    /// Wall-clock watchdog re-armed at the start of every delivery.
    deadline_ms: Option<u64>,
    /// Parse-stage span hook (flight recorder + current packet slot); set
    /// only when the host pipeline traces, so the off path is one branch.
    recorder: Option<hilti_rt::trace::SharedRecorder>,
    span_slot: u64,
}

/// Reads field `idx` from a unit struct value.
fn slot(v: &Value, idx: usize) -> RtResult<Value> {
    match v {
        Value::Struct(s) => s
            .borrow()
            .fields
            .get(idx)
            .cloned()
            .ok_or_else(|| RtError::index("missing struct slot")),
        other => Err(RtError::type_error(format!(
            "expected unit struct, got {}",
            other.type_name()
        ))),
    }
}

fn slot_text(v: &Value, idx: usize) -> RtResult<String> {
    Ok(slot(v, idx)?.render())
}

fn slot_bytes(v: &Value, idx: usize) -> RtResult<Vec<u8>> {
    match slot(v, idx)? {
        Value::Bytes(b) => Ok(b.to_vec()),
        Value::Null => Ok(Vec::new()),
        other => Err(RtError::type_error(format!(
            "expected bytes slot, got {}",
            other.type_name()
        ))),
    }
}

impl BinpacHttp {
    /// Compiles the HTTP grammar and wires the event hooks. If a profiler
    /// is supplied, hook (glue) time is charged to [`Component::Glue`].
    pub fn new(opt: OptLevel, profiler: Option<Profiler>) -> RtResult<BinpacHttp> {
        Self::wire(
            BinpacParser::compile(&http_grammar(), &["Request", "Reply"], opt)?,
            profiler,
        )
    }

    /// The shareable front end of [`BinpacHttp::new`]: grammar codegen and
    /// IR optimization, no bytecode. Build once, then materialize one
    /// parser per worker thread with [`BinpacHttp::from_ir`].
    pub fn front_end(opt: OptLevel) -> RtResult<ParserIr> {
        BinpacParser::front_end(&http_grammar(), &["Request", "Reply"], opt)
    }

    /// Per-thread construction from a shared front end: bytecode lowering
    /// plus event-hook wiring only.
    pub fn from_ir(ir: &ParserIr, profiler: Option<Profiler>) -> RtResult<BinpacHttp> {
        Self::wire(BinpacParser::from_ir(ir)?, profiler)
    }

    fn wire(mut parser: BinpacParser, profiler: Option<Profiler>) -> RtResult<BinpacHttp> {
        let shared: Rc<RefCell<Shared>> = Rc::new(RefCell::new(Shared::default()));

        // Slot layouts (grammar is fixed; indices are stable).
        // RequestLine: [method, uri, version]
        // StatusLine:  [version, status, reason]
        // Headers:     [name, value]
        // Request:     [request_line, headers, body]
        // Reply:       [status_line, headers, body]
        let glue = |p: &Option<Profiler>| p.as_ref().map(|p| p.enter(Component::Glue));

        let s = shared.clone();
        let prof = profiler.clone();
        parser.register_hook("Http::on_request_line", move |args| {
            let _g = glue(&prof);
            let mut sh = s.borrow_mut();
            let cur = sh.cur()?.clone();
            let method = slot_text(&args[0], 0)?;
            let uri = slot_text(&args[0], 1)?;
            let version = slot_text(&args[0], 2)?;
            sh.outstanding
                .entry(cur.uid.clone())
                .or_default()
                .push_back(method.clone());
            sh.events.push(Event::HttpRequest {
                ts: cur.ts,
                uid: cur.uid.as_ref().to_owned(),
                id: cur.id,
                method,
                uri,
                version,
            });
            Ok(Value::Null)
        });

        let s = shared.clone();
        let prof = profiler.clone();
        parser.register_hook("Http::on_reply_line", move |args| {
            let _g = glue(&prof);
            let mut sh = s.borrow_mut();
            let cur = sh.cur()?.clone();
            let version = slot_text(&args[0], 0)?;
            let status: u32 = slot_text(&args[0], 1)?
                .parse()
                .map_err(|_| RtError::value("bad status"))?;
            let reason = slot_text(&args[0], 2)?;
            sh.events.push(Event::HttpReply {
                ts: cur.ts,
                uid: cur.uid.as_ref().to_owned(),
                id: cur.id,
                status,
                reason,
                version,
            });
            Ok(Value::Null)
        });

        for (hook, orig) in [
            ("Http::on_req_header", true),
            ("Http::on_resp_header", false),
        ] {
            let s = shared.clone();
            let prof = profiler.clone();
            parser.register_hook(hook, move |args| {
                let _g = prof.as_ref().map(|p| p.enter(Component::Glue));
                let mut sh = s.borrow_mut();
                let cur = sh.cur()?.clone();
                let name = slot_text(&args[0], 0)?;
                let value = slot_text(&args[0], 1)?;
                sh.events.push(Event::HttpHeader {
                    ts: cur.ts,
                    uid: cur.uid.as_ref().to_owned(),
                    is_orig: orig,
                    name,
                    value,
                });
                Ok(Value::Null)
            });
        }

        let s = shared.clone();
        parser.register_hook("Http::suppress_reply_body", move |_args| {
            let mut sh = s.borrow_mut();
            let cur = sh.cur()?.clone();
            let method = sh.outstanding.get_mut(&cur.uid).and_then(|q| q.pop_front());
            Ok(Value::Bool(method.as_deref() == Some("HEAD")))
        });

        for (hook, orig, body_idx) in [
            ("Http::on_request_done", true, 2usize),
            ("Http::on_reply_done", false, 2usize),
        ] {
            let s = shared.clone();
            let prof = profiler.clone();
            parser.register_hook(hook, move |args| {
                let _g = prof.as_ref().map(|p| p.enter(Component::Glue));
                let mut sh = s.borrow_mut();
                let cur = sh.cur()?.clone();
                let body = slot_bytes(&args[0], body_idx)?;
                let len = body.len() as u64;
                if !body.is_empty() {
                    sh.events.push(Event::HttpBodyData {
                        ts: cur.ts,
                        uid: cur.uid.as_ref().to_owned(),
                        is_orig: orig,
                        data: body,
                    });
                }
                sh.events.push(Event::HttpMessageDone {
                    ts: cur.ts,
                    uid: cur.uid.as_ref().to_owned(),
                    is_orig: orig,
                    body_len: len,
                });
                Ok(Value::Null)
            });
        }

        Ok(BinpacHttp {
            parser,
            shared,
            sessions: HashMap::new(),
            profiler,
            session_budget: None,
            peak_session_bytes: 0,
            deadline_ms: None,
            recorder: None,
            span_slot: 0,
        })
    }

    /// Parse-stage span hook: every subsequent `feed`/`finish_conn` records
    /// a `Stage::Parse` span into `rec`, keyed by the packet slot last set
    /// with [`BinpacHttp::set_span_slot`]. The recorder stays on the owning
    /// thread (`Rc`), so this cannot introduce cross-thread traffic.
    pub fn set_recorder(&mut self, rec: hilti_rt::trace::SharedRecorder) {
        self.recorder = Some(rec);
    }

    /// Packet slot (merge major) attributed to the next parse-stage spans.
    pub fn set_span_slot(&mut self, slot: u64) {
        self.span_slot = slot;
    }

    fn record_parse_span(&mut self, uid: &Arc<str>, begin_ns: u64) {
        if let Some(rec) = &self.recorder {
            rec.borrow_mut().record(
                hilti_rt::trace::Stage::Parse,
                self.span_slot,
                Some(uid),
                begin_ns,
            );
        }
    }

    /// The interned uid for a connection: the live session key when one
    /// exists, otherwise a fresh `Arc` (one allocation per connection).
    fn intern_uid(&self, uid: &str) -> Arc<str> {
        match self.sessions.get_key_value(uid) {
            Some((k, _)) => k.clone(),
            None => Arc::from(uid),
        }
    }

    /// Arms a per-delivery wall-clock watchdog: every `feed`/`finish_conn`
    /// must complete within `ms` milliseconds or the parser VM trips
    /// `Hilti::ResourceExhausted` (see `ResourceLimits::deadline_ms`).
    pub fn set_delivery_deadline_ms(&mut self, ms: Option<u64>) {
        self.deadline_ms = ms;
        if ms.is_none() {
            self.parser
                .program_mut()
                .context_mut()
                .arm_deadline_after_ms(None);
        }
    }

    /// Caps buffered stream state per connection. Feeding a connection
    /// past its budget raises `Hilti::ResourceExhausted` from
    /// [`BinpacHttp::feed`]; existing connections keep their old budget.
    pub fn set_session_budget(&mut self, bytes: u64) {
        self.session_budget = Some(bytes);
    }

    /// High-water mark of buffered bytes over all budgeted connections.
    pub fn peak_session_bytes(&self) -> u64 {
        self.peak_session_bytes
    }

    /// Whether a live session exists for `uid`.
    pub fn has_conn(&self, uid: &str) -> bool {
        self.sessions.contains_key(uid)
    }

    /// UIDs of all live connections, sorted (deterministic teardown order).
    pub fn live_uids(&self) -> Vec<Arc<str>> {
        let mut uids: Vec<Arc<str>> = self.sessions.keys().cloned().collect();
        uids.sort();
        uids
    }

    /// Attaches telemetry to the parser VM: retired-instruction counters
    /// flushed per parse step, plus fiber suspend/resume and
    /// resource-limit events on the sink.
    pub fn set_telemetry(&mut self, telemetry: &hilti_rt::telemetry::Telemetry) {
        self.parser
            .program_mut()
            .context_mut()
            .set_telemetry(telemetry);
    }

    /// Chaos hook: arms the parser VM to fail with `error` after `steps`
    /// charged execution steps (see `Context::inject_fault_after`). The
    /// fault surfaces from whichever flow's fiber is running at that
    /// point — deterministic for a fixed trace.
    pub fn inject_fault_after(&mut self, steps: u64, error: RtError) {
        self.parser
            .program_mut()
            .context_mut()
            .inject_fault_after(steps, error);
    }

    fn set_current(&self, uid: &Arc<str>, id: ConnId, ts: Time) {
        self.shared.borrow_mut().current = Some(Cur {
            uid: uid.clone(),
            id,
            ts,
        });
    }

    /// Feeds reassembled payload for one direction of a connection.
    pub fn feed(
        &mut self,
        uid: &str,
        id: ConnId,
        is_orig: bool,
        ts: Time,
        data: &[u8],
    ) -> RtResult<()> {
        let uid = self.intern_uid(uid);
        self.feed_chunk(&uid, id, is_orig, ts, FeedChunk::Copy(data))
    }

    /// Feeds one delivery for one direction of a connection. The uid is the
    /// caller's interned handle (cloned, never re-allocated); a borrowed
    /// chunk lands in the session's byte string without copying.
    pub fn feed_chunk(
        &mut self,
        uid: &Arc<str>,
        id: ConnId,
        is_orig: bool,
        ts: Time,
        data: FeedChunk<'_>,
    ) -> RtResult<()> {
        let _p = self
            .profiler
            .as_ref()
            .map(|p| p.enter(Component::ProtocolParsing));
        let span_begin = self.recorder.is_some().then(hilti_rt::trace::monotonic_ns);
        if let Some(ms) = self.deadline_ms {
            self.parser
                .program_mut()
                .context_mut()
                .arm_deadline_after_ms(Some(ms));
        }
        self.set_current(uid, id, ts);
        let limit = self.session_budget;
        let parser = &self.parser;
        let sessions = self.sessions.entry(uid.clone()).or_insert_with(|| {
            let client = parser.session("Request");
            let server = parser.session("Reply");
            // One budget per connection, shared by both directions.
            let budget = limit.map(AllocBudget::with_limit);
            if let Some(b) = &budget {
                client.set_budget(b.clone());
                server.set_budget(b.clone());
            }
            ConnSessions {
                client,
                server,
                budget,
            }
        });
        let budget = sessions.budget.clone();
        let session = if is_orig {
            &mut sessions.client
        } else {
            &mut sessions.server
        };
        let r = self.parser.feed_chunk(session, data);
        if let Some(b) = budget {
            self.peak_session_bytes = self.peak_session_bytes.max(b.peak());
        }
        if let Some(begin) = span_begin {
            self.record_parse_span(uid, begin);
        }
        r
    }

    /// Ends a connection: freezes both directions (flushing read-to-close
    /// bodies) and drops its state.
    pub fn finish_conn(&mut self, uid: &str, id: ConnId, ts: Time) -> RtResult<()> {
        let _p = self
            .profiler
            .as_ref()
            .map(|p| p.enter(Component::ProtocolParsing));
        let span_begin = self.recorder.is_some().then(hilti_rt::trace::monotonic_ns);
        if let Some(ms) = self.deadline_ms {
            self.parser
                .program_mut()
                .context_mut()
                .arm_deadline_after_ms(Some(ms));
        }
        let uid = self.intern_uid(uid);
        let r = self.finish_conn_inner(&uid, id, ts);
        if let Some(begin) = span_begin {
            self.record_parse_span(&uid, begin);
        }
        r
    }

    fn finish_conn_inner(&mut self, uid: &Arc<str>, id: ConnId, ts: Time) -> RtResult<()> {
        if let Some(mut sessions) = self.sessions.remove(uid.as_ref()) {
            self.set_current(uid, id, ts);
            self.parser.finish(&mut sessions.server)?;
            self.set_current(uid, id, ts);
            self.parser.finish(&mut sessions.client)?;
        }
        self.shared.borrow_mut().outstanding.remove(uid.as_ref());
        Ok(())
    }

    /// Quarantine teardown: discards a connection's parser state without
    /// running the finish path (which could re-raise out of a poisoned
    /// session). Pending events for other flows are untouched.
    pub fn drop_conn(&mut self, uid: &str) {
        if let Some(sessions) = self.sessions.remove(uid) {
            if let Some(b) = &sessions.budget {
                self.peak_session_bytes = self.peak_session_bytes.max(b.peak());
            }
        }
        self.shared.borrow_mut().outstanding.remove(uid);
    }

    /// Flushes all still-open connections (end of trace).
    pub fn finish_all(&mut self, ts: Time) -> RtResult<()> {
        // Sorted (via live_uids), not HashMap order: the flush order decides
        // event order and must be deterministic.
        for uid in self.live_uids() {
            // ConnId is embedded in events only; reuse a placeholder for
            // the final flush of connections we never saw close.
            let id = ConnId {
                orig_h: hilti_rt::addr::Addr::v4(0, 0, 0, 0),
                orig_p: hilti_rt::addr::Port::tcp(0),
                resp_h: hilti_rt::addr::Addr::v4(0, 0, 0, 0),
                resp_p: hilti_rt::addr::Port::tcp(0),
            };
            self.finish_conn(&uid, id, ts)?;
        }
        Ok(())
    }

    /// Takes the accumulated events.
    pub fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.shared.borrow_mut().events)
    }

    /// Moves the accumulated events into `out`, keeping the internal
    /// buffer's capacity (no per-delivery allocation, unlike
    /// [`take_events`](Self::take_events)).
    pub fn drain_events_into(&mut self, out: &mut Vec<Event>) {
        out.append(&mut self.shared.borrow_mut().events);
    }

    /// Number of live connection sessions.
    pub fn live_sessions(&self) -> usize {
        self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilti_rt::addr::Port;

    fn conn_id() -> ConnId {
        ConnId {
            orig_h: "10.0.0.1".parse().unwrap(),
            orig_p: Port::tcp(40000),
            resp_h: "93.184.216.34".parse().unwrap(),
            resp_p: Port::tcp(80),
        }
    }

    fn t(s: u64) -> Time {
        Time::from_secs(s)
    }

    fn names(evs: &[Event]) -> Vec<&'static str> {
        evs.iter().map(|e| e.name()).collect()
    }

    #[test]
    fn simple_get_exchange() {
        let mut h = BinpacHttp::new(OptLevel::Full, None).unwrap();
        h.feed(
            "C1",
            conn_id(),
            true,
            t(1),
            b"GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n",
        )
        .unwrap();
        h.feed(
            "C1",
            conn_id(),
            false,
            t(1),
            b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\nContent-Type: text/html\r\n\r\nhello",
        )
        .unwrap();
        let evs = h.take_events();
        assert_eq!(
            names(&evs),
            vec![
                "http_request",
                "http_header",
                "http_message_done",
                "http_reply",
                "http_header",
                "http_header",
                "http_body_data",
                "http_message_done",
            ],
            "{evs:#?}"
        );
        match &evs[0] {
            Event::HttpRequest {
                method,
                uri,
                version,
                ..
            } => {
                assert_eq!(method, "GET");
                assert_eq!(uri, "/index.html");
                assert_eq!(version, "1.1");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &evs[3] {
            Event::HttpReply { status, reason, .. } => {
                assert_eq!(*status, 200);
                assert_eq!(reason, "OK");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn byte_at_a_time_suspends_transparently() {
        let wire_c = b"POST /submit HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
        let mut h = BinpacHttp::new(OptLevel::Full, None).unwrap();
        for b in wire_c {
            h.feed("C1", conn_id(), true, t(1), &[*b]).unwrap();
        }
        let evs = h.take_events();
        assert_eq!(
            names(&evs),
            vec![
                "http_request",
                "http_header",
                "http_body_data",
                "http_message_done"
            ],
            "{evs:#?}"
        );
        match &evs[2] {
            Event::HttpBodyData { data, .. } => assert_eq!(data, b"abc"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chunked_reply_with_trailers() {
        let mut h = BinpacHttp::new(OptLevel::Full, None).unwrap();
        h.feed(
            "C1",
            conn_id(),
            false,
            t(1),
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
              5\r\nhello\r\n6;ext=1\r\n world\r\n0\r\nX-T: v\r\n\r\n",
        )
        .unwrap();
        let evs = h.take_events();
        let body: Vec<u8> = evs
            .iter()
            .filter_map(|e| match e {
                Event::HttpBodyData { data, .. } => Some(data.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(body, b"hello world");
        let done = evs.iter().rev().find_map(|e| match e {
            Event::HttpMessageDone { body_len, .. } => Some(*body_len),
            _ => None,
        });
        assert_eq!(done, Some(11));
    }

    #[test]
    fn head_suppresses_reply_body() {
        let mut h = BinpacHttp::new(OptLevel::Full, None).unwrap();
        h.feed("C1", conn_id(), true, t(1), b"HEAD /big HTTP/1.1\r\n\r\n")
            .unwrap();
        h.feed(
            "C1",
            conn_id(),
            false,
            t(1),
            b"HTTP/1.1 200 OK\r\nContent-Length: 10000\r\n\r\n",
        )
        .unwrap();
        let evs = h.take_events();
        let done = evs.iter().find_map(|e| match e {
            Event::HttpMessageDone {
                body_len,
                is_orig: false,
                ..
            } => Some(*body_len),
            _ => None,
        });
        assert_eq!(done, Some(0), "{evs:#?}");
    }

    #[test]
    fn until_close_body_flushes_on_finish() {
        let mut h = BinpacHttp::new(OptLevel::Full, None).unwrap();
        h.feed(
            "C1",
            conn_id(),
            false,
            t(1),
            b"HTTP/1.0 200 OK\r\nServer: x\r\n\r\nunending body",
        )
        .unwrap();
        assert!(h
            .take_events()
            .iter()
            .all(|e| e.name() != "http_message_done"));
        h.finish_conn("C1", conn_id(), t(9)).unwrap();
        let evs = h.take_events();
        let done = evs.iter().find_map(|e| match e {
            Event::HttpMessageDone { body_len, .. } => Some(*body_len),
            _ => None,
        });
        assert_eq!(done, Some(13), "{evs:#?}");
    }

    #[test]
    fn pipelined_requests() {
        let mut h = BinpacHttp::new(OptLevel::Full, None).unwrap();
        h.feed(
            "C1",
            conn_id(),
            true,
            t(1),
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n",
        )
        .unwrap();
        let evs = h.take_events();
        let uris: Vec<&String> = evs
            .iter()
            .filter_map(|e| match e {
                Event::HttpRequest { uri, .. } => Some(uri),
                _ => None,
            })
            .collect();
        assert_eq!(uris, ["/a", "/b"]);
    }

    #[test]
    fn garbage_abandons_stream() {
        let mut h = BinpacHttp::new(OptLevel::Full, None).unwrap();
        h.feed("C1", conn_id(), true, t(1), b"\x00\x01 binary crud\r\n\r\n")
            .unwrap();
        h.finish_conn("C1", conn_id(), t(2)).unwrap();
        assert!(h.take_events().is_empty());
    }

    #[test]
    fn agrees_with_standard_parser_on_simple_exchange() {
        // Differential check against the handwritten baseline.
        let wire_c: &[u8] = b"GET /x HTTP/1.1\r\nHost: a\r\n\r\n";
        let wire_s: &[u8] =
            b"HTTP/1.1 404 Not Found\r\nContent-Length: 9\r\nContent-Type: text/plain\r\n\r\nnot found";

        let mut bp = BinpacHttp::new(OptLevel::Full, None).unwrap();
        bp.feed("C1", conn_id(), true, t(1), wire_c).unwrap();
        bp.feed("C1", conn_id(), false, t(1), wire_s).unwrap();
        let bp_events = bp.take_events();

        let mut std_parser = netpkt::http::HttpConnParser::new("C1".into(), conn_id());
        let mut std_events = Vec::new();
        std_parser.feed(true, wire_c, t(1), &mut std_events);
        std_parser.feed(false, wire_s, t(1), &mut std_events);

        // Same event kinds in the same order; body data squashed.
        let squash = |evs: &[Event]| -> (Vec<&'static str>, Vec<u8>) {
            let mut body = Vec::new();
            let mut kinds = Vec::new();
            for e in evs {
                if let Event::HttpBodyData { data, .. } = e {
                    body.extend_from_slice(data);
                } else {
                    kinds.push(e.name());
                }
            }
            (kinds, body)
        };
        assert_eq!(squash(&bp_events), squash(&std_events));
    }
}

#[cfg(test)]
mod more_http_tests {
    use super::*;
    use hilti_rt::addr::Port;

    fn conn_id() -> ConnId {
        ConnId {
            orig_h: "10.0.0.1".parse().unwrap(),
            orig_p: Port::tcp(40000),
            resp_h: "93.184.216.34".parse().unwrap(),
            resp_p: Port::tcp(80),
        }
    }

    fn t(s: u64) -> Time {
        Time::from_secs(s)
    }

    #[test]
    fn partial_content_206_carries_body() {
        // The Table 2 "Partial Content" case: a 206 with Content-Range
        // still frames by Content-Length.
        let mut h = BinpacHttp::new(OptLevel::Full, None).unwrap();
        h.feed(
            "C1",
            conn_id(),
            true,
            t(1),
            b"GET /big HTTP/1.1\r\nRange: bytes=0-4\r\n\r\n",
        )
        .unwrap();
        h.feed(
            "C1",
            conn_id(),
            false,
            t(1),
            b"HTTP/1.1 206 Partial Content\r\nContent-Range: bytes 0-4/100\r\nContent-Length: 5\r\n\r\nHELLO",
        )
        .unwrap();
        let evs = h.take_events();
        let body: Vec<u8> = evs
            .iter()
            .filter_map(|e| match e {
                Event::HttpBodyData { data, .. } => Some(data.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(body, b"HELLO");
        assert!(evs
            .iter()
            .any(|e| matches!(e, Event::HttpReply { status: 206, .. })));
    }

    #[test]
    fn mixed_head_get_pipeline_suppresses_correctly() {
        // HEAD, then GET on the same connection: only the HEAD reply's
        // body is suppressed; the GET reply's is parsed.
        let mut h = BinpacHttp::new(OptLevel::Full, None).unwrap();
        h.feed(
            "C1",
            conn_id(),
            true,
            t(1),
            b"HEAD /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n",
        )
        .unwrap();
        h.feed(
            "C1",
            conn_id(),
            false,
            t(2),
            b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nHTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nBODY",
        )
        .unwrap();
        let evs = h.take_events();
        let dones: Vec<u64> = evs
            .iter()
            .filter_map(|e| match e {
                Event::HttpMessageDone {
                    is_orig: false,
                    body_len,
                    ..
                } => Some(*body_len),
                _ => None,
            })
            .collect();
        assert_eq!(dones, vec![0, 4], "{evs:#?}");
    }

    #[test]
    fn reply_without_preceding_request_parses() {
        // Mid-stream capture: a reply with no recorded request must not
        // wedge (suppress lookup finds an empty queue).
        let mut h = BinpacHttp::new(OptLevel::Full, None).unwrap();
        h.feed(
            "C1",
            conn_id(),
            false,
            t(1),
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok",
        )
        .unwrap();
        let evs = h.take_events();
        assert!(evs
            .iter()
            .any(|e| matches!(e, Event::HttpMessageDone { body_len: 2, .. })));
    }

    #[test]
    fn many_connections_isolated_state() {
        let mut h = BinpacHttp::new(OptLevel::Full, None).unwrap();
        // Interleave two connections; bodies must not bleed across.
        h.feed(
            "C1",
            conn_id(),
            false,
            t(1),
            b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\n",
        )
        .unwrap();
        h.feed(
            "C2",
            conn_id(),
            false,
            t(1),
            b"HTTP/1.1 404 Not Found\r\nContent-Length: 3\r\n\r\nBBB",
        )
        .unwrap();
        h.feed("C1", conn_id(), false, t(2), b"AAA").unwrap();
        let evs = h.take_events();
        let bodies: Vec<(String, Vec<u8>)> = evs
            .iter()
            .filter_map(|e| match e {
                Event::HttpBodyData { uid, data, .. } => Some((uid.clone(), data.clone())),
                _ => None,
            })
            .collect();
        assert!(bodies.contains(&("C1".to_string(), b"AAA".to_vec())));
        assert!(bodies.contains(&("C2".to_string(), b"BBB".to_vec())));
        assert_eq!(h.live_sessions(), 2);
        h.finish_all(t(3)).unwrap();
        assert_eq!(h.live_sessions(), 0);
    }

    #[test]
    fn session_budget_trips_and_drop_conn_quarantines_one_flow() {
        use hilti_rt::error::ExceptionKind;

        let mut h = BinpacHttp::new(OptLevel::Full, None).unwrap();
        h.set_session_budget(1024);
        // A request claiming a huge body that never completes: buffered
        // state grows until the per-connection budget trips.
        h.feed(
            "C1",
            conn_id(),
            true,
            t(1),
            b"POST /upload HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n",
        )
        .unwrap();
        let mut tripped = None;
        for _ in 0..100 {
            if let Err(e) = h.feed("C1", conn_id(), true, t(2), &[b'x'; 256]) {
                tripped = Some(e);
                break;
            }
        }
        let e = tripped.expect("per-connection budget never tripped");
        assert_eq!(e.kind, ExceptionKind::ResourceExhausted, "{e}");
        // Peak stays near the limit: the budget refused further growth.
        assert!(
            h.peak_session_bytes() <= 1024,
            "peak {}",
            h.peak_session_bytes()
        );
        // Tearing down only the poisoned flow leaves the parser usable.
        h.drop_conn("C1");
        assert_eq!(h.live_sessions(), 0);
        h.feed(
            "C2",
            conn_id(),
            true,
            t(3),
            b"GET / HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        .unwrap();
        assert!(h
            .take_events()
            .iter()
            .any(|e| matches!(e, Event::HttpRequest { .. })));
    }
}
