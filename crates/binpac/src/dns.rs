//! The BinPAC++ DNS grammar and its event adapter.
//!
//! The DNS case study of §6.4. The wire format is binary: counted sections
//! of resource records, with domain names compressed via back-pointers into
//! the message. Name decompression is expressed as a hand-written HILTI
//! helper attached to the grammar (`parse_name`) — the analog of the helper
//! code a `.pac2` author writes — with a pointer-loop guard (fail-safe
//! against hostile input, §7).
//!
//! One deliberate semantic difference from the standard parser reproduces
//! the paper's Table 2 note: **TXT rdata renders all character-strings**,
//! where the standard parser extracts only the first ("Bro's parser
//! extracts only one entry from TXT records, BinPAC++ all").

use std::cell::RefCell;
use std::rc::Rc;

use hilti::passes::OptLevel;
use hilti::value::Value;
use hilti_rt::error::{ExceptionKind, RtError, RtResult};
use hilti_rt::profile::{Component, Profiler};
use hilti_rt::time::Time;

use netpkt::events::{ConnId, DnsAnswer, Event};

use crate::grammar::{Field, FieldKind, Grammar, Repeat, Unit};
use crate::parser::{BinpacParser, ParserIr};

/// Raw HILTI: compressed-name decoding plus the address overlays used for
/// A/AAAA rdata rendering.
const DNS_HELPERS: &str = r#"
type V4 = overlay { a: addr at 0 unpack IPv4InNetworkOrder }
type V6 = overlay { a: addr at 0 unpack IPv6InNetworkOrder }

tuple<any, any> parse_name(ref<bytes> data, iterator<bytes> it) {
    local string name
    local int<64> len
    local int<64> jumps
    local iterator<bytes> cur
    local iterator<bytes> after
    local bool jumped
    local int<64> lo
    local int<64> off
    local iterator<bytes> nxt
    local bool is_ptr
    local bool is_end
    local bool bad
    local iterator<bytes> start
    local iterator<bytes> endp
    local any lblb
    local string lbls
    local bool isfirst
    local bool toomany
    local tuple<any, any> r
    local iterator<bytes> retit

    name = assign ""
    jumps = assign 0
    jumped = assign False
    cur = assign it
name_loop:
    len = iterator.deref cur
    is_ptr = int.geq len 192
    if.else is_ptr name_ptr name_chk_end
name_ptr:
    nxt = iterator.incr cur 1
    lo = iterator.deref nxt
    off = int.and len 63
    off = int.shl off 8
    off = int.or off lo
    if.else jumped name_ptr2 name_ptr1
name_ptr1:
    after = iterator.incr cur 2
    jumped = assign True
name_ptr2:
    jumps = int.add jumps 1
    toomany = int.gt jumps 32
    if.else toomany name_fail name_ptr3
name_ptr3:
    cur = bytes.at data off
    jump name_loop
name_fail:
    exception.throw Hilti::ValueError "DNS name: pointer loop"
name_chk_end:
    is_end = int.eq len 0
    if.else is_end name_done name_label
name_label:
    bad = int.geq len 64
    if.else bad name_fail2 name_lbl2
name_fail2:
    exception.throw Hilti::ValueError "DNS name: reserved label type"
name_lbl2:
    start = iterator.incr cur 1
    endp = iterator.incr start len
    lblb = bytes.sub start endp
    lbls = bytes.to_string lblb
    isfirst = equal name ""
    if.else isfirst name_app1 name_app2
name_app1:
    name = assign lbls
    jump name_next
name_app2:
    name = string.concat name "."
    name = string.concat name lbls
name_next:
    cur = assign endp
    jump name_loop
name_done:
    retit = iterator.incr cur 1
    if.else jumped name_ret_jumped name_ret_plain
name_ret_jumped:
    retit = assign after
name_ret_plain:
    r = tuple.pack name retit
    return r
}
"#;

/// Builds the DNS grammar (`dns.pac2`).
pub fn dns_grammar() -> Grammar {
    let question = Unit::new("Question")
        .slot("name")
        .field(Field::anon(FieldKind::Embedded(vec![
            "local any __nr".into(),
            "__nr = call parse_name (data, it)".into(),
            "local string __nm".into(),
            "__nm = tuple.get __nr 0".into(),
            "struct.set self name __nm".into(),
            "it = tuple.get __nr 1".into(),
        ])))
        .field(Field::named("qtype", FieldKind::UInt(2)))
        .field(Field::named("qclass", FieldKind::UInt(2)));

    // RDATA rendering (before the raw rdata bytes are consumed):
    // all-strings TXT joining is the deliberate Table 2 difference.
    let render: Vec<String> = r#"
local any __rt
__rt = struct.get self rtype
local any __rl
__rl = struct.get self rdlen
local int<64> __off
__off = iterator.offset it
local string __rend
local any __nr
local bool __c
local bool __c2
__rend = assign ""
__c = int.eq __rt 1
if.else __c rr_a rr_c28
rr_a:
local any __a4
__a4 = overlay.get V4 a data __off
__rend = string.render __a4
jump rr_rend_done
rr_c28:
__c = int.eq __rt 28
if.else __c rr_aaaa rr_c5
rr_aaaa:
local any __a6
__a6 = overlay.get V6 a data __off
__rend = string.render __a6
jump rr_rend_done
rr_c5:
__c = int.eq __rt 5
__c2 = int.eq __rt 2
__c = or __c __c2
__c2 = int.eq __rt 12
__c = or __c __c2
if.else __c rr_name rr_c15
rr_name:
__nr = call parse_name (data, it)
__rend = tuple.get __nr 0
jump rr_rend_done
rr_c15:
__c = int.eq __rt 15
if.else __c rr_mx rr_c16
rr_mx:
local iterator<bytes> __mxit
__mxit = iterator.incr it 2
__nr = call parse_name (data, __mxit)
__rend = tuple.get __nr 0
jump rr_rend_done
rr_c16:
__c = int.eq __rt 16
if.else __c rr_txt rr_c6
rr_txt:
local iterator<bytes> __tit
local iterator<bytes> __tend
local int<64> __sl
local any __sb
local string __ss
local bool __tmore
local int<64> __toff
local int<64> __eoff
local iterator<bytes> __sse
local bool __fst
__tit = assign it
__tend = iterator.incr it __rl
rr_txt_loop:
__toff = iterator.offset __tit
__eoff = iterator.offset __tend
__tmore = int.lt __toff __eoff
if.else __tmore rr_txt_one rr_rend_done
rr_txt_one:
__sl = iterator.deref __tit
__tit = iterator.incr __tit 1
__sse = iterator.incr __tit __sl
__sb = bytes.sub __tit __sse
__ss = bytes.to_string __sb
__tit = assign __sse
__fst = equal __rend ""
if.else __fst rr_txt_f rr_txt_s
rr_txt_f:
__rend = assign __ss
jump rr_txt_loop
rr_txt_s:
__rend = string.concat __rend " "
__rend = string.concat __rend __ss
jump rr_txt_loop
rr_c6:
__c = int.eq __rt 6
if.else __c rr_soa rr_other
rr_soa:
__nr = call parse_name (data, it)
__rend = tuple.get __nr 0
jump rr_rend_done
rr_other:
__rend = string.fmt "<rdata:{} bytes>" __rl
rr_rend_done:
struct.set self rdata_text __rend
"#
    .lines()
    .map(str::trim)
    .filter(|l| !l.is_empty())
    .map(str::to_owned)
    .collect();

    let rr = Unit::new("RR")
        .slot("name")
        .slot("rdata_text")
        .field(Field::anon(FieldKind::Embedded(vec![
            "local any __nr0".into(),
            "__nr0 = call parse_name (data, it)".into(),
            "local string __nm0".into(),
            "__nm0 = tuple.get __nr0 0".into(),
            "struct.set self name __nm0".into(),
            "it = tuple.get __nr0 1".into(),
        ])))
        .field(Field::named("rtype", FieldKind::UInt(2)))
        .field(Field::named("class_", FieldKind::UInt(2)))
        .field(Field::named("ttl", FieldKind::UInt(4)))
        .field(Field::named("rdlen", FieldKind::UInt(2)))
        .field(Field::anon(FieldKind::Embedded(render)))
        .field(Field::named("rdata", FieldKind::BytesVar("rdlen".into())));

    let message = Unit::new("Message")
        .field(Field::named("id", FieldKind::UInt(2)))
        .field(Field::named("flags", FieldKind::UInt(2)))
        .field(Field::named("qdcount", FieldKind::UInt(2)))
        .field(Field::named("ancount", FieldKind::UInt(2)))
        .field(Field::named("nscount", FieldKind::UInt(2)))
        .field(Field::named("arcount", FieldKind::UInt(2)))
        .field(Field::anon(FieldKind::Embedded(
            // Implausible counts are rejected before allocating anything
            // (fail-safe processing of untrusted counts, §7).
            r#"
local any __qd
local any __an
local any __ns
local any __ar
local bool __big
local bool __b2
__qd = struct.get self qdcount
__an = struct.get self ancount
__ns = struct.get self nscount
__ar = struct.get self arcount
__big = int.gt __qd 512
__b2 = int.gt __an 512
__big = or __big __b2
__b2 = int.gt __ns 512
__big = or __big __b2
__b2 = int.gt __ar 512
__big = or __big __b2
if.else __big dns_toobig dns_counts_ok
dns_toobig:
exception.throw Hilti::ValueError "DNS: implausible record count"
dns_counts_ok:
"#
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(str::to_owned)
            .collect(),
        )))
        .field(Field::named(
            "questions",
            FieldKind::List("Question".into(), Repeat::CountVar("qdcount".into())),
        ))
        .field(Field::named(
            "answers",
            FieldKind::List("RR".into(), Repeat::CountVar("ancount".into())),
        ))
        .field(Field::named(
            "auth",
            FieldKind::List("RR".into(), Repeat::CountVar("nscount".into())),
        ))
        .field(Field::named(
            "addl",
            FieldKind::List("RR".into(), Repeat::CountVar("arcount".into())),
        ))
        .on_done("Dns::on_message");

    Grammar::new("Dns")
        .unit(question)
        .unit(rr)
        .unit(message)
        .raw(DNS_HELPERS)
}

// Slot layouts (fixed by the grammar above).
mod slots {
    // Question: named [qtype, qclass] + extra [name].
    pub const Q_QTYPE: usize = 0;
    pub const Q_NAME: usize = 2;
    // RR: named [rtype, class_, ttl, rdlen, rdata] + extra [name, rdata_text].
    pub const RR_RTYPE: usize = 0;
    pub const RR_TTL: usize = 2;
    pub const RR_NAME: usize = 5;
    pub const RR_RDATA_TEXT: usize = 6;
    // Message: [id, flags, qdcount, ancount, nscount, arcount,
    //           questions, answers, auth, addl].
    pub const M_ID: usize = 0;
    pub const M_FLAGS: usize = 1;
    pub const M_QUESTIONS: usize = 6;
    pub const M_ANSWERS: usize = 7;
}

#[derive(Default)]
struct DnsShared {
    current: Option<(std::sync::Arc<str>, ConnId, Time)>,
    events: Vec<Event>,
}

/// The generated DNS parser wired to Bro-style events.
pub struct BinpacDns {
    parser: BinpacParser,
    shared: Rc<RefCell<DnsShared>>,
    profiler: Option<Profiler>,
    /// Datagrams that failed to parse (crud on port 53).
    pub failed: u64,
    /// Wall-clock watchdog re-armed at the start of every datagram.
    deadline_ms: Option<u64>,
    /// Parse-stage span hook, mirroring `BinpacHttp::set_recorder`.
    recorder: Option<hilti_rt::trace::SharedRecorder>,
    span_slot: u64,
}

fn slot(v: &Value, idx: usize) -> RtResult<Value> {
    match v {
        Value::Struct(s) => s
            .borrow()
            .fields
            .get(idx)
            .cloned()
            .ok_or_else(|| RtError::index("missing struct slot")),
        other => Err(RtError::type_error(format!(
            "expected unit struct, got {}",
            other.type_name()
        ))),
    }
}

fn slot_int(v: &Value, idx: usize) -> RtResult<i64> {
    slot(v, idx)?.as_int()
}

impl BinpacDns {
    pub fn new(opt: OptLevel, profiler: Option<Profiler>) -> RtResult<BinpacDns> {
        Self::wire(BinpacParser::compile(&dns_grammar(), &[], opt)?, profiler)
    }

    /// The shareable front end of [`BinpacDns::new`]: grammar codegen and
    /// IR optimization, no bytecode (see [`BinpacHttp::front_end`]).
    ///
    /// [`BinpacHttp::front_end`]: crate::http::BinpacHttp::front_end
    pub fn front_end(opt: OptLevel) -> RtResult<ParserIr> {
        BinpacParser::front_end(&dns_grammar(), &[], opt)
    }

    /// Per-thread construction from a shared front end.
    pub fn from_ir(ir: &ParserIr, profiler: Option<Profiler>) -> RtResult<BinpacDns> {
        Self::wire(BinpacParser::from_ir(ir)?, profiler)
    }

    fn wire(mut parser: BinpacParser, profiler: Option<Profiler>) -> RtResult<BinpacDns> {
        let shared: Rc<RefCell<DnsShared>> = Rc::new(RefCell::new(DnsShared::default()));

        let s = shared.clone();
        let prof = profiler.clone();
        parser.register_hook("Dns::on_message", move |args| {
            let _g = prof.as_ref().map(|p| p.enter(Component::Glue));
            let msg = &args[0];
            let mut sh = s.borrow_mut();
            let Some((uid, id, ts)) = sh.current.clone() else {
                return Err(RtError::runtime("DNS hook fired with no active datagram"));
            };
            let trans_id = slot_int(msg, slots::M_ID)? as u16;
            let flags = slot_int(msg, slots::M_FLAGS)? as u16;
            let is_response = flags & 0x8000 != 0;
            let rcode = flags & 0xf;
            // First question drives the query fields.
            let (query, qtype) = match slot(msg, slots::M_QUESTIONS)? {
                Value::Vector(qs) => {
                    let qs = qs.borrow();
                    match qs.first() {
                        Some(q) => (
                            slot(q, slots::Q_NAME)?.render(),
                            slot_int(q, slots::Q_QTYPE)? as u16,
                        ),
                        None => (String::new(), 0),
                    }
                }
                _ => (String::new(), 0),
            };
            if is_response {
                let mut answers = Vec::new();
                if let Value::Vector(ans) = slot(msg, slots::M_ANSWERS)? {
                    for rr in ans.borrow().iter() {
                        let rtype = slot_int(rr, slots::RR_RTYPE)? as u16;
                        if rtype == 41 {
                            continue; // OPT pseudo-record
                        }
                        answers.push(DnsAnswer {
                            name: slot(rr, slots::RR_NAME)?.render(),
                            rtype,
                            ttl: slot_int(rr, slots::RR_TTL)? as u32,
                            rdata: slot(rr, slots::RR_RDATA_TEXT)?.render(),
                        });
                    }
                }
                sh.events.push(Event::DnsReply {
                    ts,
                    uid: uid.as_ref().to_owned(),
                    id,
                    trans_id,
                    rcode,
                    answers,
                });
            } else {
                sh.events.push(Event::DnsRequest {
                    ts,
                    uid: uid.as_ref().to_owned(),
                    id,
                    trans_id,
                    query,
                    qtype,
                });
            }
            Ok(Value::Null)
        });

        Ok(BinpacDns {
            parser,
            shared,
            profiler,
            failed: 0,
            deadline_ms: None,
            recorder: None,
            span_slot: 0,
        })
    }

    /// Parse-stage span hook: every subsequent `datagram` records a
    /// `Stage::Parse` span into `rec` (see `BinpacHttp::set_recorder`).
    pub fn set_recorder(&mut self, rec: hilti_rt::trace::SharedRecorder) {
        self.recorder = Some(rec);
    }

    /// Packet slot (merge major) attributed to the next parse-stage spans.
    pub fn set_span_slot(&mut self, slot: u64) {
        self.span_slot = slot;
    }

    /// Arms a per-datagram wall-clock watchdog, mirroring
    /// `BinpacHttp::set_delivery_deadline_ms`.
    pub fn set_delivery_deadline_ms(&mut self, ms: Option<u64>) {
        self.deadline_ms = ms;
        if ms.is_none() {
            self.parser
                .program_mut()
                .context_mut()
                .arm_deadline_after_ms(None);
        }
    }

    /// Attaches telemetry to the parser VM (retired-instruction counters
    /// and resource-limit events), mirroring `BinpacHttp::set_telemetry`.
    pub fn set_telemetry(&mut self, telemetry: &hilti_rt::telemetry::Telemetry) {
        self.parser
            .program_mut()
            .context_mut()
            .set_telemetry(telemetry);
    }

    /// Parses one UDP datagram; returns false if it was not parseable DNS.
    pub fn datagram(&mut self, uid: &str, id: ConnId, ts: Time, payload: &[u8]) -> RtResult<bool> {
        let uid: std::sync::Arc<str> = std::sync::Arc::from(uid);
        self.datagram_chunk(&uid, id, ts, hilti_rt::bytestring::FeedChunk::Copy(payload))
    }

    /// Parses one UDP datagram handed over as a [`FeedChunk`]; a borrowed
    /// chunk reaches the parser without a payload copy. The uid is the
    /// caller's interned handle (cloned, never re-allocated).
    ///
    /// [`FeedChunk`]: hilti_rt::bytestring::FeedChunk
    pub fn datagram_chunk(
        &mut self,
        uid: &std::sync::Arc<str>,
        id: ConnId,
        ts: Time,
        payload: hilti_rt::bytestring::FeedChunk<'_>,
    ) -> RtResult<bool> {
        let _p = self
            .profiler
            .as_ref()
            .map(|p| p.enter(Component::ProtocolParsing));
        let span_begin = self.recorder.is_some().then(hilti_rt::trace::monotonic_ns);
        if let Some(ms) = self.deadline_ms {
            self.parser
                .program_mut()
                .context_mut()
                .arm_deadline_after_ms(Some(ms));
        }
        self.shared.borrow_mut().current = Some((uid.clone(), id, ts));
        let r = match self.parser.parse_datagram_chunk("Message", payload) {
            Ok(_) => Ok(true),
            // Governance faults (deadline, fuel, heap) must escape to the
            // host; only input-dependent errors count as unparseable crud.
            Err(e) if e.kind == ExceptionKind::ResourceExhausted => Err(e),
            Err(_) => {
                self.failed += 1;
                Ok(false)
            }
        };
        if let (Some(rec), Some(begin)) = (&self.recorder, span_begin) {
            rec.borrow_mut().record(
                hilti_rt::trace::Stage::Parse,
                self.span_slot,
                Some(uid),
                begin,
            );
        }
        r
    }

    pub fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.shared.borrow_mut().events)
    }

    /// Moves the accumulated events into `out`, keeping the internal
    /// buffer's capacity (see `BinpacHttp::drain_events_into`).
    pub fn drain_events_into(&mut self, out: &mut Vec<Event>) {
        out.append(&mut self.shared.borrow_mut().events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilti_rt::addr::Port;
    use netpkt::dns::DnsBuilder;
    use netpkt::events::dns_types;

    fn conn_id() -> ConnId {
        ConnId {
            orig_h: "10.0.0.1".parse().unwrap(),
            orig_p: Port::udp(5353),
            resp_h: "8.8.8.8".parse().unwrap(),
            resp_p: Port::udp(53),
        }
    }

    fn t() -> Time {
        Time::from_secs(1)
    }

    #[test]
    fn query_event() {
        let mut d = BinpacDns::new(OptLevel::Full, None).unwrap();
        let q = DnsBuilder::new(0x1234, false, 0)
            .question("www.example.com", dns_types::A)
            .build();
        assert!(d.datagram("C1", conn_id(), t(), &q).unwrap());
        let evs = d.take_events();
        match &evs[0] {
            Event::DnsRequest {
                trans_id,
                query,
                qtype,
                ..
            } => {
                assert_eq!(*trans_id, 0x1234);
                assert_eq!(query, "www.example.com");
                assert_eq!(*qtype, dns_types::A);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn response_with_a_record() {
        let mut d = BinpacDns::new(OptLevel::Full, None).unwrap();
        let r = DnsBuilder::new(7, true, 0)
            .question("example.com", dns_types::A)
            .answer_a("example.com", 300, [93, 184, 216, 34])
            .build();
        assert!(d.datagram("C1", conn_id(), t(), &r).unwrap());
        let evs = d.take_events();
        match &evs[0] {
            Event::DnsReply { rcode, answers, .. } => {
                assert_eq!(*rcode, 0);
                assert_eq!(answers.len(), 1);
                assert_eq!(answers[0].rdata, "93.184.216.34");
                assert_eq!(answers[0].ttl, 300);
                assert_eq!(answers[0].name, "example.com");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cname_mx_and_compression() {
        let mut d = BinpacDns::new(OptLevel::Full, None).unwrap();
        let r = DnsBuilder::new(7, true, 0)
            .question("mail.example.com", dns_types::MX)
            .answer_cname("mail.example.com", 60, "mx.example.net")
            .answer_mx("mx.example.net", 60, 10, "smtp.example.net")
            .build();
        assert!(d.datagram("C1", conn_id(), t(), &r).unwrap());
        let evs = d.take_events();
        match &evs[0] {
            Event::DnsReply { answers, .. } => {
                assert_eq!(answers[0].rdata, "mx.example.net");
                assert_eq!(answers[1].rdata, "smtp.example.net");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn txt_renders_all_strings() {
        // The deliberate Table 2 semantic difference: ALL strings.
        let mut d = BinpacDns::new(OptLevel::Full, None).unwrap();
        let r = DnsBuilder::new(7, true, 0)
            .question("t.example.com", dns_types::TXT)
            .answer_txt("t.example.com", 60, &["first", "second", "third"])
            .build();
        assert!(d.datagram("C1", conn_id(), t(), &r).unwrap());
        let evs = d.take_events();
        match &evs[0] {
            Event::DnsReply { answers, .. } => {
                assert_eq!(answers[0].rdata, "first second third");
            }
            other => panic!("unexpected {other:?}"),
        }
        // And the standard parser keeps only the first (the difference).
        let msg = DnsBuilder::new(7, true, 0)
            .question("t.example.com", dns_types::TXT)
            .answer_txt("t.example.com", 60, &["first", "second", "third"])
            .build();
        let std = netpkt::dns::parse_message(&msg).unwrap();
        assert_eq!(std.answers[0].rdata, "first");
    }

    #[test]
    fn crud_rejected_not_fatal() {
        let mut d = BinpacDns::new(OptLevel::Full, None).unwrap();
        assert!(!d
            .datagram("C1", conn_id(), t(), b"GET / HTTP/1.1\r\n")
            .unwrap());
        assert!(!d.datagram("C1", conn_id(), t(), &[]).unwrap());
        assert_eq!(d.failed, 2);
        // Still works afterwards.
        let q = DnsBuilder::new(1, false, 0)
            .question("x.org", dns_types::A)
            .build();
        assert!(d.datagram("C1", conn_id(), t(), &q).unwrap());
    }

    #[test]
    fn pointer_loop_rejected() {
        let mut d = BinpacDns::new(OptLevel::Full, None).unwrap();
        let mut msg = DnsBuilder::new(7, false, 0).build();
        msg.extend_from_slice(&[0xc0, 12]); // self-pointer at offset 12
        msg.extend_from_slice(&dns_types::A.to_be_bytes());
        msg.extend_from_slice(&1u16.to_be_bytes());
        msg[4..6].copy_from_slice(&1u16.to_be_bytes());
        assert!(!d.datagram("C1", conn_id(), t(), &msg).unwrap());
    }

    #[test]
    fn nxdomain_rcode() {
        let mut d = BinpacDns::new(OptLevel::Full, None).unwrap();
        let r = DnsBuilder::new(9, true, 3)
            .question("missing.example.com", dns_types::A)
            .build();
        assert!(d.datagram("C1", conn_id(), t(), &r).unwrap());
        match &d.take_events()[0] {
            Event::DnsReply { rcode, answers, .. } => {
                assert_eq!(*rcode, 3);
                assert!(answers.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn agrees_with_standard_parser_on_synth_trace() {
        use netpkt::decode::decode_ethernet;
        let mut d = BinpacDns::new(OptLevel::Full, None).unwrap();
        let pkts = netpkt::synth::dns_trace(&netpkt::synth::SynthConfig::new(5, 60));
        let mut agree = 0;
        let mut total = 0;
        for p in &pkts {
            let dec = decode_ethernet(p).unwrap();
            let std = netpkt::dns::parse_message(&dec.payload);
            let bp_ok = d.datagram("C1", conn_id(), p.ts, &dec.payload).unwrap();
            assert_eq!(std.is_ok(), bp_ok, "parseability must agree");
            if let Ok(stdm) = std {
                total += 1;
                let evs = d.take_events();
                let ev = evs.last().expect("one event per parsed datagram");
                match ev {
                    Event::DnsRequest {
                        trans_id, query, ..
                    } => {
                        assert!(!stdm.is_response);
                        assert_eq!(*trans_id, stdm.id);
                        assert_eq!(query, &stdm.questions[0].name);
                        agree += 1;
                    }
                    Event::DnsReply {
                        trans_id,
                        rcode,
                        answers,
                        ..
                    } => {
                        assert!(stdm.is_response);
                        assert_eq!(*trans_id, stdm.id);
                        assert_eq!(*rcode, stdm.rcode);
                        assert_eq!(answers.len(), stdm.answers.len());
                        // Non-TXT rdata must agree exactly; TXT may differ
                        // (all-strings vs first-only).
                        for (a, b) in answers.iter().zip(stdm.answers.iter()) {
                            assert_eq!(a.name, b.name);
                            assert_eq!(a.ttl, b.ttl);
                            if a.rtype != dns_types::TXT {
                                assert_eq!(a.rdata, b.rdata, "rtype {}", a.rtype);
                            }
                        }
                        agree += 1;
                    }
                    other => panic!("unexpected {other:?}"),
                }
            } else {
                d.take_events();
            }
        }
        assert_eq!(agree, total);
        assert!(total > 80, "total={total}");
    }
}
