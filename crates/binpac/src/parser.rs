//! The host-side driver for generated parsers.
//!
//! [`BinpacParser`] owns the compiled HILTI program for a grammar; it can
//! parse complete PDUs (datagrams) directly, or run stream [`Session`]s —
//! fibers executing the generated `drive_<Unit>` loop, fed chunk by chunk
//! exactly like the paper's host applications feed payload "as it arrives"
//! (§3.2). Host hooks registered by name become the events of the `.evt`
//! configuration layer (Figure 7).

use hilti::fiber::{Fiber, FiberState, Step};
use hilti::host::Program;
use hilti::passes::OptLevel;
use hilti::value::Value;
use hilti_rt::bytestring::{Bytes, FeedChunk};
use hilti_rt::error::{RtError, RtResult};
use hilti_rt::limits::AllocBudget;

use crate::codegen::{generate, generate_driver};
use crate::grammar::Grammar;

/// The `Send` front-end half of a compiled grammar: generated, linked and
/// optimized IR waiting for per-thread bytecode lowering. Build it once
/// with [`BinpacParser::front_end`], then materialize one thread-private
/// parser per worker with [`BinpacParser::from_ir`] — this skips the
/// expensive codegen/link/optimize phases on every shard.
#[derive(Clone)]
pub struct ParserIr {
    ir: hilti::host::ProgramIr,
    module: String,
}

/// A grammar compiled into an executable HILTI parser.
pub struct BinpacParser {
    program: Program,
    module: String,
}

impl BinpacParser {
    /// Compiles `grammar`; `stream_units` get `drive_*` loop functions for
    /// session-style use.
    pub fn compile(
        grammar: &Grammar,
        stream_units: &[&str],
        opt: OptLevel,
    ) -> RtResult<BinpacParser> {
        Self::from_ir(&Self::front_end(grammar, stream_units, opt)?)
    }

    /// The front half of [`BinpacParser::compile`]: grammar codegen plus
    /// the HILTI front end (parse/link/check/optimize). The result is
    /// `Clone + Send`.
    pub fn front_end(
        grammar: &Grammar,
        stream_units: &[&str],
        opt: OptLevel,
    ) -> RtResult<ParserIr> {
        let mut src = generate(grammar)?;
        for u in stream_units {
            src.push_str(&generate_driver(u));
        }
        let ir = Program::front_end(&[&src], opt, Default::default())?;
        Ok(ParserIr {
            ir,
            module: grammar.module.clone(),
        })
    }

    /// The per-thread half of [`BinpacParser::compile`]: bytecode lowering
    /// and a fresh execution context from a shared front end.
    pub fn from_ir(ir: &ParserIr) -> RtResult<BinpacParser> {
        Ok(BinpacParser {
            program: Program::from_ir(ir.ir.clone())?,
            module: ir.module.clone(),
        })
    }

    /// Registers a host hook (field / unit-done callback).
    pub fn register_hook(
        &mut self,
        name: &str,
        f: impl FnMut(&[Value]) -> RtResult<Value> + 'static,
    ) {
        self.program.register_host_fn(name, f);
    }

    pub fn program(&self) -> &Program {
        &self.program
    }

    pub fn program_mut(&mut self) -> &mut Program {
        &mut self.program
    }

    /// Parses one complete PDU with unit `unit`; returns the struct value.
    pub fn parse_datagram(&mut self, unit: &str, payload: &[u8]) -> RtResult<Value> {
        self.run_datagram(unit, Bytes::frozen_from_slice(payload))
    }

    /// Like [`BinpacParser::parse_datagram`], but the PDU arrives as a
    /// [`FeedChunk`]: a borrowed arena chunk is parsed in place, without
    /// copying the payload into the parser's byte string.
    pub fn parse_datagram_chunk(&mut self, unit: &str, payload: FeedChunk<'_>) -> RtResult<Value> {
        let data = Bytes::new();
        data.append_chunk(payload)
            .expect("fresh Bytes cannot be frozen");
        data.freeze();
        self.run_datagram(unit, data)
    }

    fn run_datagram(&mut self, unit: &str, data: Bytes) -> RtResult<Value> {
        let ret = self.program.run(
            &format!("{}::parse_{unit}", self.module),
            &[Value::Bytes(data.clone()), Value::BytesIter(data.begin())],
        )?;
        // parse_* returns (struct, iterator).
        let tuple = ret.as_tuple()?;
        tuple
            .first()
            .cloned()
            .ok_or_else(|| RtError::runtime("parser returned empty tuple"))
    }

    /// Starts a stream session over `drive_<unit>`.
    pub fn session(&self, unit: &str) -> Session {
        let data = Bytes::new();
        let fiber = Fiber::new(
            &format!("{}::drive_{unit}", self.module),
            vec![Value::Bytes(data.clone())],
        );
        Session {
            data,
            fiber,
            failed: false,
        }
    }

    /// Appends payload to a session and resumes its parse fiber.
    pub fn feed(&mut self, session: &mut Session, chunk: &[u8]) -> RtResult<()> {
        self.feed_chunk(session, FeedChunk::Copy(chunk))
    }

    /// Appends one delivery to a session and resumes its parse fiber. A
    /// borrowed chunk goes into the session's byte string without a copy —
    /// the zero-copy path from capture arena to parser.
    pub fn feed_chunk(&mut self, session: &mut Session, chunk: FeedChunk<'_>) -> RtResult<()> {
        if session.failed {
            return Ok(()); // abandoned stream: ignore further data
        }
        if let Err(e) = session.data.append_chunk(chunk) {
            // Heap budget exceeded (or frozen): the stream stops
            // accumulating state, and the caller decides whether to tear
            // the whole flow down.
            session.failed = true;
            return Err(e);
        }
        self.pump(session)
    }

    /// Declares end of stream: freezes the input and lets the parser
    /// consume the remainder.
    pub fn finish(&mut self, session: &mut Session) -> RtResult<()> {
        if session.failed {
            return Ok(());
        }
        session.data.freeze();
        self.pump(session)
    }

    fn pump(&mut self, session: &mut Session) -> RtResult<()> {
        if matches!(session.fiber.state(), FiberState::Done | FiberState::Failed) {
            return Ok(());
        }
        match self.program.resume(&mut session.fiber) {
            Ok(Step::Finished(_)) | Ok(Step::Suspended) => Ok(()),
            Err(e) => {
                // Uncaught errors abandon the session; the drive loop
                // already swallows parse errors, so anything surfacing here
                // is unexpected and reported.
                session.failed = true;
                Err(e)
            }
        }
    }

    /// Takes accumulated program output (debug prints).
    pub fn take_output(&mut self) -> Vec<String> {
        self.program.take_output()
    }

    /// Reads a named field out of a unit struct value.
    pub fn field(&self, unit_value: &Value, name: &str) -> RtResult<Value> {
        field_of(&self.program, unit_value, name)
    }
}

/// Reads a named field from a struct value using the program's type tables.
pub fn field_of(program: &Program, value: &Value, name: &str) -> RtResult<Value> {
    let Value::Struct(s) = value else {
        return Err(RtError::type_error(format!(
            "expected unit struct, got {}",
            value.type_name()
        )));
    };
    let s = s.borrow();
    let fields = program
        .context()
        .struct_fields
        .get(&*s.type_name)
        .ok_or_else(|| RtError::type_error(format!("unknown unit type {}", s.type_name)))?;
    let idx = fields
        .iter()
        .position(|f| f == name)
        .ok_or_else(|| RtError::index(format!("unit {} has no field {name}", s.type_name)))?;
    Ok(s.fields[idx].clone())
}

/// Renders a field value as text (bytes → lossy UTF-8), for tests/logs.
pub fn field_text(program: &Program, value: &Value, name: &str) -> RtResult<String> {
    Ok(field_of(program, value, name)?.render())
}

/// Positional slot access on a unit struct (for hooks that know the
/// grammar's fixed layout).
pub fn field_text_from(value: &Value, idx: usize) -> RtResult<String> {
    let Value::Struct(s) = value else {
        return Err(RtError::type_error(format!(
            "expected unit struct, got {}",
            value.type_name()
        )));
    };
    let s = s.borrow();
    s.fields
        .get(idx)
        .map(Value::render)
        .ok_or_else(|| RtError::index(format!("unit {} has no slot {idx}", s.type_name)))
}

/// One in-flight stream parse.
pub struct Session {
    data: Bytes,
    fiber: Fiber,
    failed: bool,
}

impl Session {
    /// True once the drive loop returned (stream fully handled).
    pub fn done(&self) -> bool {
        self.fiber.state() == FiberState::Done
    }

    /// True if the session died on an unexpected error.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// The underlying input buffer (for inspection).
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// Attaches a heap budget to the session's input buffer. Further
    /// appends charge the budget and fail with
    /// `Hilti::ResourceExhausted` once it is exceeded, which surfaces
    /// through [`BinpacParser::feed`].
    pub fn set_budget(&self, budget: AllocBudget) {
        self.data.set_budget(budget);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{ssh_banner_grammar, Field, FieldKind, Grammar, Repeat, Unit};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn figure7_ssh_banner_datagram() {
        let mut p = BinpacParser::compile(&ssh_banner_grammar(), &[], OptLevel::Full).unwrap();
        let v = p
            .parse_datagram("Banner", b"SSH-1.99-OpenSSH_3.9p1\r\n")
            .unwrap();
        assert_eq!(p.field(&v, "version").unwrap().render(), "1.99");
        assert_eq!(p.field(&v, "software").unwrap().render(), "OpenSSH_3.9p1");
    }

    #[test]
    fn figure7_event_hook_fires() {
        // The .evt layer: on SSH::Banner -> event ssh_banner(version, software).
        let mut g = ssh_banner_grammar();
        g.units[0].done_hook = Some("ssh_banner".into());
        let mut p = BinpacParser::compile(&g, &[], OptLevel::Full).unwrap();
        let seen: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = seen.clone();
        p.register_hook("ssh_banner", move |args| {
            sink.borrow_mut().push(args[0].render());
            Ok(Value::Null)
        });
        p.parse_datagram("Banner", b"SSH-2.0-OpenSSH_3.8.1p1\r\n")
            .unwrap();
        assert_eq!(seen.borrow().len(), 1);
        assert!(seen.borrow()[0].contains("OpenSSH_3.8.1p1"));
    }

    fn length_value_grammar() -> Grammar {
        // A tiny TLV protocol: 2-byte big-endian length, then that many
        // bytes of value.
        Grammar::new("TLV").unit(
            Unit::new("Record")
                .field(Field::named("len", FieldKind::UInt(2)))
                .field(Field::named("value", FieldKind::BytesVar("len".into()))),
        )
    }

    #[test]
    fn binary_length_value() {
        let mut p = BinpacParser::compile(&length_value_grammar(), &[], OptLevel::Full).unwrap();
        let v = p.parse_datagram("Record", b"\x00\x05hello").unwrap();
        assert_eq!(p.field(&v, "len").unwrap().render(), "5");
        assert_eq!(p.field(&v, "value").unwrap().render(), "hello");
    }

    #[test]
    fn incremental_stream_suspends_and_resumes() {
        // The paper's core property: drip-feed a session byte by byte; the
        // parser suspends mid-token/mid-length and resumes transparently.
        let records: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let mut g = length_value_grammar();
        g.units[0].done_hook = Some("on_record".into());
        let mut p = BinpacParser::compile(&g, &["Record"], OptLevel::Full).unwrap();
        let sink = records.clone();
        let prog_fields = Rc::new(RefCell::new(Vec::<String>::new()));
        let _ = prog_fields;
        p.register_hook("on_record", move |args| {
            // args[0] is the Record struct; render captures both fields.
            sink.borrow_mut().push(args[0].render());
            Ok(Value::Null)
        });
        let mut s = p.session("Record");
        let wire = b"\x00\x03abc\x00\x02xy";
        for b in wire {
            p.feed(&mut s, &[*b]).unwrap();
        }
        assert_eq!(records.borrow().len(), 2, "{:?}", records.borrow());
        assert!(records.borrow()[0].contains("abc"));
        assert!(records.borrow()[1].contains("xy"));
        assert!(!s.done());
        p.finish(&mut s).unwrap();
        assert!(s.done());
    }

    #[test]
    fn stream_abandons_on_garbage() {
        let mut g = ssh_banner_grammar();
        g.units[0].done_hook = Some("on_banner".into());
        let mut p = BinpacParser::compile(&g, &["Banner"], OptLevel::Full).unwrap();
        let count = Rc::new(RefCell::new(0u32));
        let c = count.clone();
        p.register_hook("on_banner", move |_| {
            *c.borrow_mut() += 1;
            Ok(Value::Null)
        });
        let mut s = p.session("Banner");
        p.feed(&mut s, b"NOT-SSH garbage here\r\n").unwrap();
        p.finish(&mut s).unwrap();
        assert!(s.done());
        assert_eq!(*count.borrow(), 0);
    }

    #[test]
    fn counted_list() {
        let g = Grammar::new("L")
            .unit(Unit::new("Item").field(Field::named("v", FieldKind::UInt(1))))
            .unit(
                Unit::new("Packet")
                    .field(Field::named("n", FieldKind::UInt(1)))
                    .field(Field::named(
                        "items",
                        FieldKind::List("Item".into(), Repeat::CountVar("n".into())),
                    )),
            );
        let mut p = BinpacParser::compile(&g, &[], OptLevel::Full).unwrap();
        let v = p.parse_datagram("Packet", &[3, 10, 20, 30]).unwrap();
        let items = p.field(&v, "items").unwrap();
        if let Value::Vector(vec) = items {
            assert_eq!(vec.borrow().len(), 3);
        } else {
            panic!("expected vector, got {items:?}");
        }
    }

    #[test]
    fn truncated_datagram_errors() {
        let mut p = BinpacParser::compile(&length_value_grammar(), &[], OptLevel::Full).unwrap();
        // Claims 5 bytes, provides 2 — frozen input, so a hard error
        // rather than a suspension.
        assert!(p.parse_datagram("Record", b"\x00\x05he").is_err());
    }

    #[test]
    fn switch_on_kind() {
        let g = Grammar::new("S").unit(
            Unit::new("Msg")
                .field(Field::named("kind", FieldKind::UInt(1)))
                .field(Field::named(
                    "body",
                    FieldKind::SwitchInt {
                        on: "kind".into(),
                        cases: vec![
                            (1, Box::new(Field::named("body", FieldKind::UInt(2)))),
                            (2, Box::new(Field::named("body", FieldKind::BytesConst(3)))),
                        ],
                        default: Some(Box::new(Field::named("body", FieldKind::Eod))),
                    },
                )),
        );
        let mut p = BinpacParser::compile(&g, &[], OptLevel::Full).unwrap();
        let v = p.parse_datagram("Msg", &[1, 0x12, 0x34]).unwrap();
        assert_eq!(p.field(&v, "body").unwrap().render(), "4660");
        let v = p.parse_datagram("Msg", b"\x02abcrest").unwrap();
        assert_eq!(p.field(&v, "body").unwrap().render(), "abc");
        let v = p.parse_datagram("Msg", b"\x09tail").unwrap();
        assert_eq!(p.field(&v, "body").unwrap().render(), "tail");
    }

    #[test]
    fn many_interleaved_sessions() {
        let mut g = length_value_grammar();
        g.units[0].done_hook = Some("on_rec".into());
        let mut p = BinpacParser::compile(&g, &["Record"], OptLevel::Full).unwrap();
        let total = Rc::new(RefCell::new(0u32));
        let t = total.clone();
        p.register_hook("on_rec", move |_| {
            *t.borrow_mut() += 1;
            Ok(Value::Null)
        });
        let n = 20;
        let mut sessions: Vec<Session> = (0..n).map(|_| p.session("Record")).collect();
        // Interleave feeding: each session gets its bytes one at a time,
        // round-robin.
        let wire = b"\x00\x04wxyz";
        for &b in wire.iter() {
            for s in sessions.iter_mut() {
                p.feed(s, &[b]).unwrap();
            }
        }
        assert_eq!(*total.borrow(), n);
        for mut s in sessions {
            p.finish(&mut s).unwrap();
            assert!(s.done());
        }
    }
}

#[cfg(test)]
mod field_hook_tests {
    use super::*;
    use crate::grammar::{Field, FieldKind, Grammar, Unit};
    use hilti::passes::OptLevel;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn field_hooks_fire_as_fields_finish() {
        // §4: "When the parser finishes with a field, it executes any
        // callbacks (hooks) that the host application specifies for that
        // field." Hook order must follow parse order.
        let g = Grammar::new("T").unit(
            Unit::new("Line")
                .field(Field::token("method", "[A-Z]+").with_hook("on_method"))
                .field(Field::anon(FieldKind::Token(vec![" ".into()])))
                .field(Field::token("uri", "[^ \\r\\n]+").with_hook("on_uri"))
                .field(Field::anon(FieldKind::Token(vec!["\\r?\\n".into()]))),
        );
        let mut p = BinpacParser::compile(&g, &[], OptLevel::Full).unwrap();
        let seen: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        for hook in ["on_method", "on_uri"] {
            let s = seen.clone();
            let name = hook.to_owned();
            p.register_hook(hook, move |args| {
                // args = (unit struct, field value).
                s.borrow_mut().push(format!("{name}={}", args[1].render()));
                Ok(Value::Null)
            });
        }
        p.parse_datagram("Line", b"GET /index.html\r\n").unwrap();
        assert_eq!(*seen.borrow(), vec!["on_method=GET", "on_uri=/index.html"]);
    }

    #[test]
    fn field_hook_sees_partial_unit_state() {
        // At field-hook time, earlier fields are already set on the unit
        // struct; later ones are not.
        let g = Grammar::new("T").unit(
            Unit::new("Pair")
                .field(Field::named("a", FieldKind::UInt(1)))
                .field(Field::named("b", FieldKind::UInt(1)).with_hook("on_b")),
        );
        let mut p = BinpacParser::compile(&g, &[], OptLevel::Full).unwrap();
        let captured: Rc<RefCell<Vec<(String, String)>>> = Rc::new(RefCell::new(Vec::new()));
        let c = captured.clone();
        p.register_hook("on_b", move |args| {
            let a = field_text_from(&args[0], 0)?;
            let bval = args[1].render();
            c.borrow_mut().push((a, bval));
            Ok(Value::Null)
        });
        p.parse_datagram("Pair", &[7, 9]).unwrap();
        assert_eq!(*captured.borrow(), vec![("7".to_string(), "9".to_string())]);
    }

    #[test]
    fn field_hooks_in_stream_sessions_fire_incrementally() {
        let g = Grammar::new("T").unit(
            Unit::new("Rec")
                .field(Field::named("len", FieldKind::UInt(1)).with_hook("on_len"))
                .field(
                    Field::named("body", FieldKind::BytesVar("len".into())).with_hook("on_body"),
                ),
        );
        let mut p = BinpacParser::compile(&g, &["Rec"], OptLevel::Full).unwrap();
        let order: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        for hook in ["on_len", "on_body"] {
            let o = order.clone();
            let n = hook.to_owned();
            p.register_hook(hook, move |_| {
                o.borrow_mut().push(n.clone());
                Ok(Value::Null)
            });
        }
        let mut s = p.session("Rec");
        p.feed(&mut s, &[3]).unwrap();
        // Length hook already fired, before the body even exists.
        assert_eq!(*order.borrow(), vec!["on_len"]);
        p.feed(&mut s, b"ab").unwrap();
        assert_eq!(*order.borrow(), vec!["on_len"]);
        p.feed(&mut s, b"c").unwrap();
        assert_eq!(*order.borrow(), vec!["on_len", "on_body"]);
    }
}

#[cfg(test)]
mod memory_bound_tests {
    use super::*;
    use crate::grammar::{Field, FieldKind, Grammar, Unit};
    use hilti::passes::OptLevel;

    #[test]
    fn stream_sessions_trim_consumed_input() {
        // The drive loop trims parsed data, bounding memory on long-lived
        // connections (§3.2's incremental model is only useful if state
        // stays proportional to the *unparsed* remainder).
        let g = Grammar::new("T").unit(
            Unit::new("Rec")
                .field(Field::named("len", FieldKind::UInt(1)))
                .field(Field::named("body", FieldKind::BytesVar("len".into()))),
        );
        let mut p = BinpacParser::compile(&g, &["Rec"], OptLevel::Full).unwrap();
        let mut s = p.session("Rec");
        // Feed 500 records of 21 bytes each (~10.5 KB total).
        for i in 0..500u32 {
            let mut rec = vec![20u8];
            rec.extend_from_slice(&[(i % 251) as u8; 20]);
            p.feed(&mut s, &rec).unwrap();
        }
        // Retained buffer must be tiny — only the unparsed tail.
        assert!(
            s.data().len() < 64,
            "retained {} bytes; trim is not working",
            s.data().len()
        );
        // Logical offsets keep growing even though memory is released.
        assert_eq!(s.data().end_offset(), 500 * 21);
        p.finish(&mut s).unwrap();
        assert!(s.done());
    }
}
