//! The BinPAC++ grammar model — the in-memory form of a `.pac2` file.
//!
//! A grammar is a set of *units* (Figure 6a / 7a of the paper): sequences
//! of fields parsed in order. Field kinds cover the paper's constructs —
//! regexp tokens, fixed-width integers, length-delimited byte runs,
//! sub-units, repetitions terminated by a token or counted by an earlier
//! field — plus the "semantic constructs for annotating, controlling, and
//! interfacing to the parsing process" that BinPAC++ added over classic
//! BinPAC (§4): unit variables, embedded HILTI statements, conditional
//! fields, and switches. Hand-written helper functions in HILTI can be
//! attached to the grammar (`raw_hilti`), the analog of helpers a `.pac2`
//! author writes.

use hilti_rt::error::{RtError, RtResult};

/// How repeated fields terminate.
#[derive(Clone, Debug, PartialEq)]
pub enum Repeat {
    /// Parse items until the terminator token matches (the terminator is
    /// consumed).
    UntilToken(Vec<String>),
    /// Exactly the value of a previously parsed field / unit variable.
    CountVar(String),
    /// Fixed count.
    Count(u64),
}

/// What a field parses.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldKind {
    /// A regular-expression token; the value is the matched bytes.
    /// A failed match raises a parse error.
    Token(Vec<String>),
    /// Big-endian unsigned integer of 1–8 bytes.
    UInt(u8),
    /// Little-endian unsigned integer of 1–8 bytes.
    UIntLE(u8),
    /// Raw byte run whose length is the value of a variable/earlier field.
    BytesVar(String),
    /// Raw byte run of fixed length.
    BytesConst(u64),
    /// Everything until the end of (frozen) input — HTTP's read-to-close
    /// bodies. Suspends until the input freezes.
    Eod,
    /// A nested unit; the value is the sub-unit's struct.
    SubUnit(String),
    /// Repeated sub-units; the value is a vector of structs.
    List(String, Repeat),
    /// Embedded HILTI statements (run, not parsed; no value). The code can
    /// reference `self` (the unit struct), `data`, `it` (current input
    /// iterator), unit variables, and earlier fields via `struct.get`.
    Embedded(Vec<String>),
    /// Parse the inner field only when the named bool variable is true;
    /// otherwise the field stays unset.
    IfVar(String, Box<Field>),
    /// Switch on an int variable: the first matching case's field parses
    /// into this field's slot; `default` (optional) otherwise.
    SwitchInt {
        on: String,
        cases: Vec<(i64, Box<Field>)>,
        default: Option<Box<Field>>,
    },
}

/// One field of a unit.
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    /// Field name; anonymous fields (the paper's `: WhiteSpace;`) use ""
    /// and do not get a struct slot.
    pub name: String,
    pub kind: FieldKind,
    /// Host hook to call when this field finishes parsing: the name of a
    /// registered host function receiving (unit struct, field value).
    pub hook: Option<String>,
}

impl Field {
    pub fn named(name: &str, kind: FieldKind) -> Field {
        Field {
            name: name.to_owned(),
            kind,
            hook: None,
        }
    }

    pub fn anon(kind: FieldKind) -> Field {
        Field::named("", kind)
    }

    pub fn with_hook(mut self, hook: &str) -> Field {
        self.hook = Some(hook.to_owned());
        self
    }

    /// Token-field helper.
    pub fn token(name: &str, pattern: &str) -> Field {
        Field::named(name, FieldKind::Token(vec![pattern.to_owned()]))
    }
}

/// One unit ("type X = unit { ... }").
#[derive(Clone, Debug, PartialEq)]
pub struct Unit {
    pub name: String,
    /// Extra parse-function parameters: (name, HILTI type text).
    pub params: Vec<(String, String)>,
    /// Unit variables: (name, HILTI type text) — locals of the parse
    /// function, usable from embedded code and `BytesVar`/`IfVar` fields.
    pub vars: Vec<(String, String)>,
    pub fields: Vec<Field>,
    /// Additional struct slots populated by embedded code rather than by a
    /// parse field (`&let`-style computed members).
    pub extra_slots: Vec<String>,
    /// Host hook called when the unit finishes parsing (the `.evt` layer's
    /// `on SSH::Banner -> event ...`, Figure 7b): receives the struct.
    pub done_hook: Option<String>,
}

impl Unit {
    pub fn new(name: &str) -> Unit {
        Unit {
            name: name.to_owned(),
            params: Vec::new(),
            vars: Vec::new(),
            fields: Vec::new(),
            extra_slots: Vec::new(),
            done_hook: None,
        }
    }

    /// Declares a computed struct slot (filled from embedded code).
    pub fn slot(mut self, name: &str) -> Unit {
        self.extra_slots.push(name.to_owned());
        self
    }

    pub fn param(mut self, name: &str, ty: &str) -> Unit {
        self.params.push((name.to_owned(), ty.to_owned()));
        self
    }

    pub fn var(mut self, name: &str, ty: &str) -> Unit {
        self.vars.push((name.to_owned(), ty.to_owned()));
        self
    }

    pub fn field(mut self, f: Field) -> Unit {
        self.fields.push(f);
        self
    }

    pub fn on_done(mut self, hook: &str) -> Unit {
        self.done_hook = Some(hook.to_owned());
        self
    }

    /// Names of the named fields, in order (the struct layout).
    pub fn named_fields(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| !f.name.is_empty())
            .map(|f| f.name.as_str())
            .collect()
    }
}

/// A whole grammar: units plus optional hand-written HILTI helpers.
#[derive(Clone, Debug, Default)]
pub struct Grammar {
    pub module: String,
    pub units: Vec<Unit>,
    /// Raw HILTI source fragments (function definitions) appended to the
    /// generated module.
    pub raw_hilti: Vec<String>,
}

impl Grammar {
    pub fn new(module: &str) -> Grammar {
        Grammar {
            module: module.to_owned(),
            ..Default::default()
        }
    }

    pub fn unit(mut self, u: Unit) -> Grammar {
        self.units.push(u);
        self
    }

    pub fn raw(mut self, code: &str) -> Grammar {
        self.raw_hilti.push(code.to_owned());
        self
    }

    pub fn get_unit(&self, name: &str) -> Option<&Unit> {
        self.units.iter().find(|u| u.name == name)
    }

    /// Structural validation: referenced units exist, field names are
    /// unique, variable references resolve, integer widths are sane.
    pub fn validate(&self) -> RtResult<()> {
        for u in &self.units {
            let mut seen = std::collections::HashSet::new();
            for f in &u.fields {
                if !f.name.is_empty() && !seen.insert(f.name.as_str()) {
                    return Err(RtError::value(format!(
                        "unit {}: duplicate field {}",
                        u.name, f.name
                    )));
                }
                self.validate_kind(u, &f.kind)?;
            }
        }
        Ok(())
    }

    fn validate_kind(&self, u: &Unit, kind: &FieldKind) -> RtResult<()> {
        match kind {
            FieldKind::UInt(w) | FieldKind::UIntLE(w) if !(1..=8).contains(w) => {
                return Err(RtError::value(format!(
                    "unit {}: uint width {w} out of range",
                    u.name
                )));
            }
            FieldKind::Token(pats) if pats.is_empty() => {
                return Err(RtError::value(format!("unit {}: empty token set", u.name)));
            }
            FieldKind::SubUnit(name) if self.get_unit(name).is_none() => {
                return Err(RtError::value(format!(
                    "unit {}: unknown sub-unit {name}",
                    u.name
                )));
            }
            FieldKind::List(name, repeat) => {
                if self.get_unit(name).is_none() {
                    return Err(RtError::value(format!(
                        "unit {}: unknown sub-unit {name}",
                        u.name
                    )));
                }
                if let Repeat::CountVar(var) = repeat {
                    if !self.var_or_field_exists(u, var) {
                        return Err(RtError::value(format!(
                            "unit {}: unknown count variable {var}",
                            u.name
                        )));
                    }
                }
            }
            FieldKind::BytesVar(var) if !self.var_or_field_exists(u, var) => {
                return Err(RtError::value(format!(
                    "unit {}: unknown length variable {var}",
                    u.name
                )));
            }
            FieldKind::IfVar(var, inner) => {
                if !self.var_or_field_exists(u, var) {
                    return Err(RtError::value(format!(
                        "unit {}: unknown condition variable {var}",
                        u.name
                    )));
                }
                self.validate_kind(u, &inner.kind)?;
            }
            FieldKind::SwitchInt { on, cases, default } => {
                if !self.var_or_field_exists(u, on) {
                    return Err(RtError::value(format!(
                        "unit {}: unknown switch variable {on}",
                        u.name
                    )));
                }
                for (_, c) in cases {
                    self.validate_kind(u, &c.kind)?;
                }
                if let Some(d) = default {
                    self.validate_kind(u, &d.kind)?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn var_or_field_exists(&self, u: &Unit, name: &str) -> bool {
        u.vars.iter().any(|(n, _)| n == name)
            || u.params.iter().any(|(n, _)| n == name)
            || u.fields.iter().any(|f| f.name == name)
    }
}

/// The SSH banner grammar from Figure 7(a) of the paper.
pub fn ssh_banner_grammar() -> Grammar {
    Grammar::new("SSH").unit(
        Unit::new("Banner")
            .field(Field::anon(FieldKind::Token(vec!["SSH-".into()])))
            .field(Field::token("version", "[^-]*"))
            .field(Field::anon(FieldKind::Token(vec!["-".into()])))
            .field(Field::token("software", "[^\\r\\n]*")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssh_grammar_validates() {
        let g = ssh_banner_grammar();
        g.validate().unwrap();
        let u = g.get_unit("Banner").unwrap();
        assert_eq!(u.named_fields(), vec!["version", "software"]);
    }

    #[test]
    fn duplicate_fields_rejected() {
        let g = Grammar::new("X").unit(
            Unit::new("U")
                .field(Field::token("a", "x"))
                .field(Field::token("a", "y")),
        );
        assert!(g.validate().is_err());
    }

    #[test]
    fn unknown_subunit_rejected() {
        let g = Grammar::new("X")
            .unit(Unit::new("U").field(Field::named("s", FieldKind::SubUnit("Nope".into()))));
        assert!(g.validate().is_err());
    }

    #[test]
    fn unknown_length_var_rejected() {
        let g = Grammar::new("X")
            .unit(Unit::new("U").field(Field::named("b", FieldKind::BytesVar("len".into()))));
        assert!(g.validate().is_err());
    }

    #[test]
    fn length_from_earlier_field_ok() {
        let g = Grammar::new("X").unit(
            Unit::new("U")
                .field(Field::named("len", FieldKind::UInt(2)))
                .field(Field::named("body", FieldKind::BytesVar("len".into()))),
        );
        g.validate().unwrap();
    }

    #[test]
    fn bad_uint_width_rejected() {
        let g = Grammar::new("X").unit(Unit::new("U").field(Field::named("x", FieldKind::UInt(0))));
        assert!(g.validate().is_err());
        let g = Grammar::new("X").unit(Unit::new("U").field(Field::named("x", FieldKind::UInt(9))));
        assert!(g.validate().is_err());
    }

    #[test]
    fn unknown_count_var_rejected() {
        let g = Grammar::new("X")
            .unit(Unit::new("Item").field(Field::token("t", "x")))
            .unit(Unit::new("U").field(Field::named(
                "items",
                FieldKind::List("Item".into(), Repeat::CountVar("n".into())),
            )));
        assert!(g.validate().is_err());
    }
}
