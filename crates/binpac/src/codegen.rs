//! Lowering BinPAC++ grammars to HILTI source.
//!
//! Every unit `U` becomes a struct type plus a parse function
//!
//! ```text
//! tuple<any, any> parse_U(ref<bytes> data, iterator<bytes> it, ...params)
//! ```
//!
//! returning the populated struct and the advanced input iterator. The
//! generated code is *fully incremental by construction* (§4): every input
//! access — token matches, integer bytes, length-delimited runs — raises
//! `Hilti::WouldBlock` when input is exhausted, which suspends the
//! enclosing fiber; resuming retries the blocked instruction, so "parsers
//! ... postpone parsing whenever they run out of input and transparently
//! resume once more becomes available" with no hand-written state machine.
//!
//! A `drive_U` loop function is generated for stream-oriented top-level
//! units: it parses units back to back, trims consumed input (bounding
//! memory on long connections), stops at the frozen end of input, and
//! abandons the stream on a parse error (real traffic contains "crud", §2).

use hilti_rt::error::RtResult;

use crate::grammar::{Field, FieldKind, Grammar, Repeat, Unit};

/// Generates the complete HILTI module for a grammar.
pub fn generate(grammar: &Grammar) -> RtResult<String> {
    grammar.validate()?;
    let mut out = String::new();
    out.push_str(&format!("module {}\n\n", grammar.module));
    for unit in &grammar.units {
        emit_struct(unit, &mut out);
    }
    out.push('\n');
    for unit in &grammar.units {
        let mut g = UnitGen::new(unit);
        g.emit(&mut out);
    }
    for raw in &grammar.raw_hilti {
        out.push_str(raw);
        out.push('\n');
    }
    Ok(out)
}

/// All struct slots of a unit: named fields, recursively through
/// conditionals and switches.
pub fn struct_slots(unit: &Unit) -> Vec<String> {
    fn collect(f: &Field, out: &mut Vec<String>) {
        if !f.name.is_empty() && !out.contains(&f.name) {
            out.push(f.name.clone());
        }
        match &f.kind {
            FieldKind::IfVar(_, inner) => collect(inner, out),
            FieldKind::SwitchInt { cases, default, .. } => {
                for (_, c) in cases {
                    collect(c, out);
                }
                if let Some(d) = default {
                    collect(d, out);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    for f in &unit.fields {
        collect(f, &mut out);
    }
    for s in &unit.extra_slots {
        if !out.contains(s) {
            out.push(s.clone());
        }
    }
    out
}

fn emit_struct(unit: &Unit, out: &mut String) {
    let slots = struct_slots(unit);
    out.push_str(&format!("type {} = struct {{", unit.name));
    for (i, s) in slots.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(" any {s}"));
    }
    out.push_str(" }\n");
}

struct UnitGen<'a> {
    unit: &'a Unit,
    lines: Vec<String>,
    label_counter: u32,
}

impl<'a> UnitGen<'a> {
    fn new(unit: &'a Unit) -> Self {
        UnitGen {
            unit,
            lines: Vec::new(),
            label_counter: 0,
        }
    }

    fn fresh(&mut self, stem: &str) -> String {
        self.label_counter += 1;
        format!("{stem}_{}", self.label_counter)
    }

    fn line(&mut self, s: String) {
        self.lines.push(s);
    }

    /// Resolves a variable reference: unit vars/params directly, earlier
    /// fields through the struct. Returns the expression variable name,
    /// emitting a struct.get when needed.
    fn resolve(&mut self, name: &str) -> String {
        let is_var = self
            .unit
            .vars
            .iter()
            .chain(self.unit.params.iter())
            .any(|(n, _)| n == name);
        if is_var {
            name.to_owned()
        } else {
            let tmp = self.fresh("rv");
            self.line(format!("local any {tmp}"));
            self.line(format!("{tmp} = struct.get self {name}"));
            tmp
        }
    }

    fn emit(&mut self, out: &mut String) {
        let u = self.unit;
        // Signature.
        let mut sig = format!(
            "tuple<any, any> parse_{}(ref<bytes> data, iterator<bytes> it",
            u.name
        );
        for (p, t) in &u.params {
            sig.push_str(&format!(", {t} {p}"));
        }
        sig.push_str(") {");
        self.line("local any self".into());
        self.line(format!("self = new {}", u.name));
        for (v, t) in &u.vars.clone() {
            self.line(format!("local {t} {v}"));
        }
        let fields = u.fields.clone();
        for (i, f) in fields.iter().enumerate() {
            self.emit_field(i, f);
        }
        if let Some(hook) = &u.done_hook.clone() {
            self.line(format!("call.c {hook} (self)"));
        }
        self.line("local tuple<any, any> __ret".into());
        self.line("__ret = tuple.pack self it".into());
        self.line("return __ret".into());

        out.push_str(&sig);
        out.push('\n');
        for l in &self.lines {
            // Labels are flush-left; statements indented.
            if l.ends_with(':') {
                out.push_str(l);
            } else {
                out.push_str("    ");
                out.push_str(l);
            }
            out.push('\n');
        }
        out.push_str("}\n\n");
    }

    fn store(&mut self, field: &Field, value_var: &str) {
        if !field.name.is_empty() {
            self.line(format!("struct.set self {} {value_var}", field.name));
        }
        if let Some(hook) = &field.hook {
            self.line(format!("call.c {hook} (self, {value_var})"));
        }
    }

    fn emit_field(&mut self, idx: usize, f: &Field) {
        match &f.kind {
            FieldKind::Token(pats) => {
                let re = self.fresh("re");
                let tr = self.fresh("tr");
                let tid = self.fresh("tid");
                let ok = self.fresh("ok");
                let nit = self.fresh("nit");
                let lbl_ok = self.fresh("tok_ok");
                let lbl_fail = self.fresh("tok_fail");
                self.line(format!("local regexp {re}"));
                let pat_list = pats
                    .iter()
                    .map(|p| format!("/{p}/"))
                    .collect::<Vec<_>>()
                    .join(" ");
                self.line(format!("{re} = regexp.new {pat_list}"));
                self.line(format!("local any {tr}"));
                self.line(format!("{tr} = regexp.match_token {re} it"));
                self.line(format!("local int<64> {tid}"));
                self.line(format!("{tid} = tuple.get {tr} 0"));
                self.line(format!("local bool {ok}"));
                self.line(format!("{ok} = int.geq {tid} 0"));
                self.line(format!("if.else {ok} {lbl_ok} {lbl_fail}"));
                self.line(format!("{lbl_fail}:"));
                self.line(format!(
                    "exception.throw Hilti::ValueError \"{}: token mismatch at field {}\"",
                    self.unit.name,
                    if f.name.is_empty() { "<anon>" } else { &f.name }
                ));
                self.line(format!("{lbl_ok}:"));
                self.line(format!("local any {nit}"));
                self.line(format!("{nit} = tuple.get {tr} 1"));
                if !f.name.is_empty() || f.hook.is_some() {
                    let fv = self.fresh("fv");
                    self.line(format!("local any {fv}"));
                    self.line(format!("{fv} = bytes.sub it {nit}"));
                    self.store(f, &fv);
                }
                self.line(format!("it = assign {nit}"));
                let _ = idx;
            }
            FieldKind::UInt(w) => {
                let acc = self.fresh("acc");
                self.line(format!("local int<64> {acc}"));
                self.line(format!("{acc} = assign 0"));
                let b = self.fresh("b");
                self.line(format!("local int<64> {b}"));
                for _ in 0..*w {
                    self.line(format!("{b} = iterator.deref it"));
                    self.line("it = iterator.incr it 1".into());
                    self.line(format!("{acc} = int.shl {acc} 8"));
                    self.line(format!("{acc} = int.or {acc} {b}"));
                }
                self.store(f, &acc);
            }
            FieldKind::UIntLE(w) => {
                let acc = self.fresh("acc");
                self.line(format!("local int<64> {acc}"));
                self.line(format!("{acc} = assign 0"));
                let b = self.fresh("b");
                let sh = self.fresh("sh");
                self.line(format!("local int<64> {b}"));
                self.line(format!("local int<64> {sh}"));
                for k in 0..*w {
                    self.line(format!("{b} = iterator.deref it"));
                    self.line("it = iterator.incr it 1".into());
                    self.line(format!("{sh} = int.shl {b} {}", 8 * k));
                    self.line(format!("{acc} = int.or {acc} {sh}"));
                }
                self.store(f, &acc);
            }
            FieldKind::BytesVar(var) => {
                let lenv = self.resolve(var);
                let end = self.fresh("end");
                let fv = self.fresh("fv");
                self.line(format!("local any {end}"));
                self.line(format!("{end} = iterator.incr it {lenv}"));
                self.line(format!("local any {fv}"));
                self.line(format!("{fv} = bytes.sub it {end}"));
                self.store(f, &fv);
                self.line(format!("it = assign {end}"));
            }
            FieldKind::BytesConst(n) => {
                let end = self.fresh("end");
                let fv = self.fresh("fv");
                self.line(format!("local any {end}"));
                self.line(format!("{end} = iterator.incr it {n}"));
                self.line(format!("local any {fv}"));
                self.line(format!("{fv} = bytes.sub it {end}"));
                self.store(f, &fv);
                self.line(format!("it = assign {end}"));
            }
            FieldKind::Eod => {
                let er = self.fresh("er");
                let fv = self.fresh("fv");
                self.line(format!("local any {er}"));
                self.line(format!("{er} = bytes.eod it"));
                self.line(format!("local any {fv}"));
                self.line(format!("{fv} = tuple.get {er} 0"));
                self.store(f, &fv);
                self.line(format!("it = tuple.get {er} 1"));
            }
            FieldKind::SubUnit(name) => {
                let sr = self.fresh("sr");
                let sv = self.fresh("sv");
                self.line(format!("local any {sr}"));
                self.line(format!("{sr} = call parse_{name} (data, it)"));
                self.line(format!("local any {sv}"));
                self.line(format!("{sv} = tuple.get {sr} 0"));
                self.line(format!("it = tuple.get {sr} 1"));
                self.store(f, &sv);
            }
            FieldKind::List(name, repeat) => {
                let vec = self.fresh("vec");
                self.line(format!("local any {vec}"));
                self.line(format!("{vec} = new vector<any>"));
                match repeat {
                    Repeat::UntilToken(pats) => {
                        let re = self.fresh("re");
                        let tr = self.fresh("tr");
                        let tid = self.fresh("tid");
                        let matched = self.fresh("m");
                        let l_loop = self.fresh("list_loop");
                        let l_item = self.fresh("list_item");
                        let l_done = self.fresh("list_done");
                        self.line(format!("local regexp {re}"));
                        let pat_list = pats
                            .iter()
                            .map(|p| format!("/{p}/"))
                            .collect::<Vec<_>>()
                            .join(" ");
                        self.line(format!("{re} = regexp.new {pat_list}"));
                        self.line(format!("local any {tr}"));
                        self.line(format!("local int<64> {tid}"));
                        self.line(format!("local bool {matched}"));
                        self.line(format!("{l_loop}:"));
                        self.line(format!("{tr} = regexp.match_token {re} it"));
                        self.line(format!("{tid} = tuple.get {tr} 0"));
                        self.line(format!("{matched} = int.geq {tid} 0"));
                        self.line(format!("if.else {matched} {l_done} {l_item}"));
                        self.line(format!("{l_item}:"));
                        let sr = self.fresh("sr");
                        let sv = self.fresh("sv");
                        self.line(format!("local any {sr}"));
                        self.line(format!("{sr} = call parse_{name} (data, it)"));
                        self.line(format!("local any {sv}"));
                        self.line(format!("{sv} = tuple.get {sr} 0"));
                        self.line(format!("it = tuple.get {sr} 1"));
                        self.line(format!("vector.push_back {vec} {sv}"));
                        self.line(format!("jump {l_loop}"));
                        self.line(format!("{l_done}:"));
                        self.line(format!("it = tuple.get {tr} 1"));
                    }
                    Repeat::CountVar(_) | Repeat::Count(_) => {
                        let cnt = match repeat {
                            Repeat::CountVar(v) => self.resolve(v),
                            Repeat::Count(n) => {
                                let c = self.fresh("cnt");
                                self.line(format!("local int<64> {c}"));
                                self.line(format!("{c} = assign {n}"));
                                c
                            }
                            _ => unreachable!(),
                        };
                        let i = self.fresh("i");
                        let more = self.fresh("more");
                        let l_loop = self.fresh("cl_loop");
                        let l_item = self.fresh("cl_item");
                        let l_done = self.fresh("cl_done");
                        self.line(format!("local int<64> {i}"));
                        self.line(format!("{i} = assign 0"));
                        self.line(format!("local bool {more}"));
                        self.line(format!("{l_loop}:"));
                        self.line(format!("{more} = int.lt {i} {cnt}"));
                        self.line(format!("if.else {more} {l_item} {l_done}"));
                        self.line(format!("{l_item}:"));
                        let sr = self.fresh("sr");
                        let sv = self.fresh("sv");
                        self.line(format!("local any {sr}"));
                        self.line(format!("{sr} = call parse_{name} (data, it)"));
                        self.line(format!("local any {sv}"));
                        self.line(format!("{sv} = tuple.get {sr} 0"));
                        self.line(format!("it = tuple.get {sr} 1"));
                        self.line(format!("vector.push_back {vec} {sv}"));
                        self.line(format!("{i} = int.add {i} 1"));
                        self.line(format!("jump {l_loop}"));
                        self.line(format!("{l_done}:"));
                    }
                }
                self.store(f, &vec);
            }
            FieldKind::Embedded(code) => {
                for l in code {
                    self.line(l.clone());
                }
            }
            FieldKind::IfVar(var, inner) => {
                let cond = self.resolve(var);
                let l_then = self.fresh("if_then");
                let l_end = self.fresh("if_end");
                let l_skip = self.fresh("if_skip");
                self.line(format!("if.else {cond} {l_then} {l_skip}"));
                self.line(format!("{l_then}:"));
                self.emit_field(idx, inner);
                self.line(format!("jump {l_end}"));
                self.line(format!("{l_skip}:"));
                self.line(format!("{l_end}:"));
            }
            FieldKind::SwitchInt { on, cases, default } => {
                let onv = self.resolve(on);
                let l_end = self.fresh("sw_end");
                let mut next_check = self.fresh("sw_chk");
                for (k, case) in cases {
                    let l_case = self.fresh("sw_case");
                    let cv = self.fresh("cv");
                    self.line(format!("local bool {cv}"));
                    self.line(format!("{cv} = int.eq {onv} {k}"));
                    self.line(format!("if.else {cv} {l_case} {next_check}"));
                    self.line(format!("{l_case}:"));
                    self.emit_field(idx, case);
                    self.line(format!("jump {l_end}"));
                    self.line(format!("{next_check}:"));
                    next_check = self.fresh("sw_chk");
                }
                if let Some(d) = default {
                    self.emit_field(idx, d);
                }
                self.line(format!("{l_end}:"));
            }
        }
    }
}

/// Generates a stream driver for a top-level unit: parses units back to
/// back until the frozen end of input, abandoning the stream on errors.
pub fn generate_driver(unit_name: &str) -> String {
    format!(
        r#"
void drive_{unit_name}(ref<bytes> data) {{
    local iterator<bytes> it
    local bool fin
    local int<64> off0
    local int<64> off1
    local bool progressed
    local any r
    it = bytes.begin data
loop:
    fin = iterator.at_frozen_end it
    if.else fin done step
step:
    off0 = iterator.offset it
    try {{
        try {{
            try {{
                r = call parse_{unit_name} (data, it)
                it = tuple.get r 1
            }} catch ( ref<Hilti::ValueError> pe ) {{
                return
            }}
        }} catch ( ref<Hilti::WouldBlock> we ) {{
            return
        }}
    }} catch ( ref<Hilti::IndexError> ie ) {{
        return
    }}
    off1 = iterator.offset it
    progressed = int.gt off1 off0
    bytes.trim data it
    if.else progressed loop done
done:
    return
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::ssh_banner_grammar;

    #[test]
    fn ssh_grammar_generates_compilable_module() {
        let src = generate(&ssh_banner_grammar()).unwrap();
        assert!(src.contains("type Banner = struct { any version, any software }"));
        assert!(src.contains("parse_Banner"));
        let prog = hilti::Program::from_source(&src);
        assert!(prog.is_ok(), "{:?}\n{src}", prog.err());
    }

    #[test]
    fn driver_compiles_with_unit() {
        let mut src = generate(&ssh_banner_grammar()).unwrap();
        src.push_str(&generate_driver("Banner"));
        hilti::Program::from_source(&src).unwrap();
    }

    #[test]
    fn struct_slots_recurse_into_switch() {
        use crate::grammar::{Field, FieldKind, Unit};
        let u = Unit::new("U")
            .var("kind", "int<64>")
            .field(Field::named("kind", FieldKind::UInt(1)))
            .field(Field::named(
                "body",
                FieldKind::SwitchInt {
                    on: "kind".into(),
                    cases: vec![(1, Box::new(Field::named("a", FieldKind::UInt(2))))],
                    default: Some(Box::new(Field::named("b", FieldKind::Eod))),
                },
            ));
        assert_eq!(struct_slots(&u), vec!["kind", "body", "a", "b"]);
    }
}
