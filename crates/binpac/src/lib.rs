//! # binpac — BinPAC++, a "yacc for network protocols" on HILTI (§4)
//!
//! The paper's third host application, and the most substantial: a
//! reimplementation of the BinPAC parser generator targeting HILTI instead
//! of C++. Given a protocol grammar — units of fields, where fields are
//! regexp tokens, fixed-width integers, length-delimited byte runs,
//! sub-units, repetitions — the compiler emits HILTI functions that parse
//! wire input into struct values, **fully incrementally**: generated
//! parsers suspend whenever they run out of input (through the VM's
//! `Hilti::WouldBlock` fiber mechanism) and transparently resume once the
//! host appends more (§4: "fully incremental LL(1)-parsers that postpone
//! parsing whenever they run out of input").
//!
//! * [`grammar`] — the grammar model (the `.pac2` AST).
//! * [`codegen`] — lowering grammars to HILTI IR text.
//! * [`parser`] — the host-side driver: sessions, fibers, field hooks, and
//!   the event configuration layer (Figure 7's `.evt` files).
//! * [`http`] / [`dns`] — the built-in HTTP and DNS grammars plus the
//!   event adapters that make them drop-in replacements for the standard
//!   handwritten parsers (Table 2 / Figure 9).

pub mod codegen;
pub mod dns;
pub mod grammar;
pub mod http;
pub mod parser;

pub use grammar::{Field, FieldKind, Grammar, Unit};
pub use parser::{BinpacParser, Session};
