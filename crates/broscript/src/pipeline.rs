//! End-to-end analysis pipelines: trace → parser stack → script engine →
//! logs.
//!
//! This is the experiment driver behind Tables 2/3 and Figures 9/10: it
//! replays a packet trace through either the *standard* handwritten parsers
//! or the *BinPAC++* generated ones, feeds the resulting events into either
//! script engine, and collects logs plus a per-component time breakdown
//! ([`Profiler`]): protocol parsing, script execution, HILTI-to-Bro glue,
//! and other (decode/flow bookkeeping).

use std::collections::HashMap;

use binpac::dns::BinpacDns;
use binpac::http::BinpacHttp;
use hilti::passes::OptLevel;
use hilti_rt::error::RtResult;
use hilti_rt::profile::{Component, Profiler};
use hilti_rt::time::Time;

use netpkt::decode::decode_ethernet;
use netpkt::events::{ConnId, DnsAnswer, Event};
use netpkt::flow::FlowTable;
use netpkt::http::HttpConnParser;
use netpkt::pcap::RawPacket;

use crate::host::{Engine, ScriptHost};
use crate::scripts;

/// Which protocol parsers produce the events.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParserStack {
    /// Handwritten parsers (Bro's standard analyzers).
    Standard,
    /// BinPAC++-generated parsers on the HILTI VM.
    Binpac,
}

/// Result of one analysis run.
pub struct AnalysisResult {
    pub http_log: Vec<String>,
    pub files_log: Vec<String>,
    pub dns_log: Vec<String>,
    pub profiler: Profiler,
    pub events: u64,
    pub packets: u64,
    pub output: Vec<String>,
}

/// Replays an HTTP trace through the chosen parser stack and script engine.
pub fn run_http_analysis(
    packets: &[RawPacket],
    stack: ParserStack,
    engine: Engine,
) -> RtResult<AnalysisResult> {
    let profiler = Profiler::new();
    let mut host = ScriptHost::new(&[scripts::HTTP_BRO], engine, Some(profiler.clone()))?;

    let mut flows = FlowTable::new();
    let mut std_parsers: HashMap<String, HttpConnParser> = HashMap::new();
    let mut bp = match stack {
        ParserStack::Binpac => Some(BinpacHttp::new(OptLevel::Full, Some(profiler.clone()))?),
        ParserStack::Standard => None,
    };
    let mut n_events = 0u64;
    let mut n_packets = 0u64;
    let mut last_ts = Time::ZERO;

    for pkt in packets {
        n_packets += 1;
        last_ts = pkt.ts;
        let mut events: Vec<Event> = Vec::new();
        {
            let _o = profiler.enter(Component::Other);
            let Ok(d) = decode_ethernet(pkt) else { continue };
            let delivery = flows.process(&d);
            let uid = delivery.flow.uid.clone();
            let id = delivery.flow.id;
            let is_orig = delivery.is_orig;
            let finished = delivery.finished_now;
            let payload = delivery.payload;

            match stack {
                ParserStack::Standard => {
                    let _pp = profiler.enter(Component::ProtocolParsing);
                    let parser = std_parsers
                        .entry(uid.clone())
                        .or_insert_with(|| HttpConnParser::new(uid.clone(), id));
                    if !payload.is_empty() {
                        parser.feed(is_orig, &payload, pkt.ts, &mut events);
                    }
                    if finished {
                        parser.finish(pkt.ts, &mut events);
                    }
                }
                ParserStack::Binpac => {
                    let bp = bp.as_mut().expect("binpac stack");
                    if !payload.is_empty() {
                        bp.feed(&uid, id, is_orig, pkt.ts, &payload)?;
                    }
                    if finished {
                        bp.finish_conn(&uid, id, pkt.ts)?;
                    }
                    events.extend(bp.take_events());
                }
            }
        }
        for ev in &events {
            n_events += 1;
            host.dispatch_event(ev)?;
        }
    }

    // End of trace: flush all still-open connections.
    let mut tail_events: Vec<Event> = Vec::new();
    match stack {
        ParserStack::Standard => {
            let _pp = profiler.enter(Component::ProtocolParsing);
            for parser in std_parsers.values_mut() {
                parser.finish(last_ts, &mut tail_events);
            }
        }
        ParserStack::Binpac => {
            let bp = bp.as_mut().expect("binpac stack");
            bp.finish_all(last_ts)?;
            tail_events.extend(bp.take_events());
        }
    }
    for ev in &tail_events {
        n_events += 1;
        host.dispatch_event(ev)?;
    }
    host.done()?;

    Ok(AnalysisResult {
        http_log: host.log_lines("http.log"),
        files_log: host.log_lines("files.log"),
        dns_log: host.log_lines("dns.log"),
        output: host.take_output(),
        profiler,
        events: n_events,
        packets: n_packets,
    })
}

/// Builds standard-parser DNS events for one datagram (the handwritten
/// counterpart of the BinPAC++ adapter).
pub fn standard_dns_events(
    uid: &str,
    id: ConnId,
    ts: Time,
    payload: &[u8],
    sink: &mut Vec<Event>,
) -> bool {
    let Ok(msg) = netpkt::dns::parse_message(payload) else {
        return false;
    };
    if msg.is_response {
        let answers: Vec<DnsAnswer> = msg.answers.clone();
        sink.push(Event::DnsReply {
            ts,
            uid: uid.to_owned(),
            id,
            trans_id: msg.id,
            rcode: msg.rcode,
            answers,
        });
    } else if let Some(q) = msg.questions.first() {
        sink.push(Event::DnsRequest {
            ts,
            uid: uid.to_owned(),
            id,
            trans_id: msg.id,
            query: q.name.clone(),
            qtype: q.qtype,
        });
    }
    true
}

/// Replays a DNS trace through the chosen parser stack and script engine.
pub fn run_dns_analysis(
    packets: &[RawPacket],
    stack: ParserStack,
    engine: Engine,
) -> RtResult<AnalysisResult> {
    let profiler = Profiler::new();
    let mut host = ScriptHost::new(&[scripts::DNS_BRO], engine, Some(profiler.clone()))?;

    let mut flows = FlowTable::new();
    let mut bp = match stack {
        ParserStack::Binpac => Some(BinpacDns::new(OptLevel::Full, Some(profiler.clone()))?),
        ParserStack::Standard => None,
    };
    let mut n_events = 0u64;
    let mut n_packets = 0u64;

    for pkt in packets {
        n_packets += 1;
        let mut events: Vec<Event> = Vec::new();
        {
            let _o = profiler.enter(Component::Other);
            let Ok(d) = decode_ethernet(pkt) else { continue };
            let delivery = flows.process(&d);
            let uid = delivery.flow.uid.clone();
            let id = delivery.flow.id;
            let payload = delivery.payload;
            if payload.is_empty() {
                continue;
            }
            match stack {
                ParserStack::Standard => {
                    let _pp = profiler.enter(Component::ProtocolParsing);
                    standard_dns_events(&uid, id, pkt.ts, &payload, &mut events);
                }
                ParserStack::Binpac => {
                    let bp = bp.as_mut().expect("binpac stack");
                    bp.datagram(&uid, id, pkt.ts, &payload)?;
                    events.extend(bp.take_events());
                }
            }
        }
        for ev in &events {
            n_events += 1;
            host.dispatch_event(ev)?;
        }
    }
    host.done()?;

    Ok(AnalysisResult {
        http_log: host.log_lines("http.log"),
        files_log: host.log_lines("files.log"),
        dns_log: host.log_lines("dns.log"),
        output: host.take_output(),
        profiler,
        events: n_events,
        packets: n_packets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::logs::agreement;
    use netpkt::synth::{dns_trace, http_trace, SynthConfig};

    #[test]
    fn http_standard_stack_produces_logs() {
        let trace = http_trace(&SynthConfig::new(42, 15));
        let r = run_http_analysis(&trace, ParserStack::Standard, Engine::Interpreted).unwrap();
        assert!(r.http_log.len() >= 10, "http.log: {}", r.http_log.len());
        assert!(!r.files_log.is_empty());
        assert!(r.events > 50);
        // Every line has the full column count.
        for l in &r.http_log {
            assert_eq!(l.matches('\t').count(), 12, "{l}");
        }
    }

    #[test]
    fn http_engines_agree_table3_shape() {
        // Table 3, HTTP rows: same parser stack, interpreter vs compiled.
        let trace = http_trace(&SynthConfig::new(7, 12));
        let a = run_http_analysis(&trace, ParserStack::Standard, Engine::Interpreted).unwrap();
        let b = run_http_analysis(&trace, ParserStack::Standard, Engine::Compiled).unwrap();
        let ag = agreement(&a.http_log, &b.http_log);
        assert_eq!(ag.percent(), 100.0, "http.log {ag:?}");
        let ag = agreement(&a.files_log, &b.files_log);
        assert_eq!(ag.percent(), 100.0, "files.log {ag:?}");
    }

    #[test]
    fn http_parser_stacks_agree_table2_shape() {
        // Table 2, HTTP rows: standard vs BinPAC++ parsers, same engine.
        let trace = http_trace(&SynthConfig::new(11, 12));
        let a = run_http_analysis(&trace, ParserStack::Standard, Engine::Interpreted).unwrap();
        let b = run_http_analysis(&trace, ParserStack::Binpac, Engine::Interpreted).unwrap();
        let ag = agreement(&a.http_log, &b.http_log);
        assert!(ag.percent() > 90.0, "http.log agreement {ag:?}");
        assert!(a.http_log.len() > 5);
        assert!(b.http_log.len() > 5);
    }

    #[test]
    fn dns_engines_agree() {
        let trace = dns_trace(&SynthConfig::new(3, 80));
        let a = run_dns_analysis(&trace, ParserStack::Standard, Engine::Interpreted).unwrap();
        let b = run_dns_analysis(&trace, ParserStack::Standard, Engine::Compiled).unwrap();
        assert!(a.dns_log.len() > 40);
        let ag = agreement(&a.dns_log, &b.dns_log);
        assert_eq!(ag.percent(), 100.0, "dns.log {ag:?}");
    }

    #[test]
    fn dns_parser_stacks_agree_except_txt() {
        let trace = dns_trace(&SynthConfig::new(13, 100));
        let a = run_dns_analysis(&trace, ParserStack::Standard, Engine::Interpreted).unwrap();
        let b = run_dns_analysis(&trace, ParserStack::Binpac, Engine::Interpreted).unwrap();
        assert_eq!(a.dns_log.len(), b.dns_log.len());
        let ag = agreement(&a.dns_log, &b.dns_log);
        // High but not perfect: multi-string TXT answers differ by design.
        assert!(ag.percent() > 80.0, "{ag:?}");
    }

    #[test]
    fn profiler_attributes_components() {
        let trace = http_trace(&SynthConfig::new(21, 6));
        let r = run_http_analysis(&trace, ParserStack::Binpac, Engine::Compiled).unwrap();
        assert!(r.profiler.total(Component::ProtocolParsing) > 0);
        assert!(r.profiler.total(Component::ScriptExecution) > 0);
        assert!(r.profiler.total(Component::Glue) > 0);
        assert!(r.profiler.total(Component::Other) > 0);
    }
}
