//! End-to-end analysis pipelines: trace → parser stack → script engine →
//! logs.
//!
//! This is the experiment driver behind Tables 2/3 and Figures 9/10: it
//! replays a packet trace through either the *standard* handwritten parsers
//! or the *BinPAC++* generated ones, feeds the resulting events into either
//! script engine, and collects logs plus a per-component time breakdown
//! ([`Profiler`]): protocol parsing, script execution, HILTI-to-Bro glue,
//! and other (decode/flow bookkeeping).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use binpac::dns::BinpacDns;
use binpac::http::BinpacHttp;
use hilti::passes::OptLevel;
use hilti_rt::error::{RtError, RtResult};
use hilti_rt::limits::ResourceLimits;
use hilti_rt::profile::{Component, Profiler};
use hilti_rt::telemetry::{Counter, Histogram, Telemetry, TelemetrySnapshot};
use hilti_rt::time::{Interval, Time};
use hilti_rt::timer::TimerMgr;
use hilti_rt::trace::{monotonic_ns, FlightRecorder, Stage, TraceReport};

use hilti_rt::bytestring::FeedChunk;
use netpkt::decode::decode_frame;
use netpkt::events::{ConnId, DnsAnswer, Event};
use netpkt::flow::FlowTable;
use netpkt::http::HttpConnParser;
use netpkt::pcap::RawPacket;
use netpkt::{PayloadRef, TraceBuffer};

use crate::slab::Pool;

use crate::host::{Engine, ScriptHost};
use crate::scripts;

/// Which protocol parsers produce the events.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParserStack {
    /// Handwritten parsers (Bro's standard analyzers).
    Standard,
    /// BinPAC++-generated parsers on the HILTI VM.
    Binpac,
}

/// Result of one analysis run.
pub struct AnalysisResult {
    pub http_log: Vec<String>,
    pub files_log: Vec<String>,
    pub dns_log: Vec<String>,
    pub profiler: Profiler,
    pub events: u64,
    pub packets: u64,
    pub output: Vec<String>,
    /// Flows torn down by the fault quarantine, with the error that
    /// killed each one (empty unless [`Governance::quarantine`] is set).
    pub flow_errors: Vec<FlowError>,
    /// Flows evicted by the idle-timeout policy.
    pub flows_expired: u64,
    /// High-water mark of budgeted per-flow parser state (BinPAC++
    /// stack with [`Governance::per_flow_heap`] set; 0 otherwise).
    pub peak_flow_bytes: u64,
    /// Datagrams that failed protocol parsing (DNS runs).
    pub parse_failures: u64,
    /// Frozen per-run metrics and structured events, populated when
    /// [`Governance::telemetry`] is set (empty otherwise). The metric and
    /// event names are a stable interface — see DESIGN.md
    /// ("Observability"). Contains no wall-time fields: equal traces
    /// yield byte-identical snapshots.
    pub telemetry: TelemetrySnapshot,
    /// Dispatch-plane metrics from the parallel pipeline (batch counts,
    /// batch-fill histogram, per-shard queue depths). Kept separate from
    /// [`telemetry`](Self::telemetry) because batch boundaries depend on
    /// the worker count: the merged snapshot stays byte-identical for any
    /// `N`, while this one is deterministic only for a fixed `(trace, N,
    /// batch)` configuration. Empty for sequential runs or when
    /// [`Governance::telemetry`] is off.
    pub dispatch_telemetry: TelemetrySnapshot,
    /// Shard workers that panicked or failed to join during a parallel
    /// run. The supervisor contains each fault to its shard: the shard's
    /// live flows are quarantined as `ShardPanic` in
    /// [`flow_errors`](Self::flow_errors) and the run completes. Always
    /// empty for sequential runs.
    pub shard_faults: Vec<ShardFault>,
    /// Delivery packets dropped at the dispatcher under
    /// `OverloadPolicy::Shed` (saturated shard ring). Always 0 under
    /// `Block` and for sequential runs.
    pub shed_packets: u64,
    /// Flight-recorder side-channel, populated when
    /// [`Governance::tracing`] is set: per-stage latency attribution,
    /// retained spans, and fault-triggered postmortem dumps. Carries
    /// wall-clock data, so — like
    /// [`dispatch_telemetry`](Self::dispatch_telemetry) — it lives next
    /// to the deterministic outputs, never inside them.
    pub trace: Option<TraceReport>,
}

/// Resource-governance policy for an analysis run. The default is the
/// legacy ungoverned behavior: no limits, no expiration, and any error
/// aborts the whole run.
#[derive(Clone, Copy, Default)]
pub struct Governance {
    /// Evict flows — and their parser state — idle for longer than this
    /// many milliseconds of trace time, driven by a [`TimerMgr`].
    pub idle_timeout_ms: Option<u64>,
    /// Byte budget for each connection's buffered parser state
    /// (BinPAC++ stream sessions). Exceeding it raises
    /// `Hilti::ResourceExhausted` on that flow.
    pub per_flow_heap: Option<u64>,
    /// Execution-fuel budget applied to the script engine before every
    /// event dispatch.
    pub script_fuel: Option<u64>,
    /// Per-flow fault isolation: a parser or script error tears down only
    /// the offending flow (recorded in [`AnalysisResult::flow_errors`])
    /// and the run continues. Without it, errors abort the run.
    pub quarantine: bool,
    /// Chaos hook: arm the BinPAC++ parser VM to fail after this many
    /// charged execution steps (deterministic for a fixed trace).
    pub inject_fault_after: Option<u64>,
    /// Collect per-flow and per-stage metrics plus structured events into
    /// [`AnalysisResult::telemetry`]. Off by default; the cost when on is
    /// a handful of relaxed atomic increments per packet.
    pub telemetry: bool,
    /// Profile-guided adaptive tiering for the compiled script engine
    /// (`None` keeps the default static specialization pass). Tier state
    /// is per-host, so each parallel shard tiers independently; outputs
    /// stay byte-identical in every mode.
    pub tiering: Option<hilti::tier::TieringMode>,
    /// Wall-clock watchdog per delivery: every parser feed and script
    /// event dispatch must finish within this many milliseconds or it
    /// trips `Hilti::ResourceExhausted` on that flow (quarantined like
    /// any other flow fault). Bounds *time* where fuel bounds *work* —
    /// a wedged parser trips the deadline instead of stalling its shard
    /// ring. `None` (default) adds no checks at all. Deadline trips
    /// depend on wall-clock speed, so runs armed with this are not
    /// bit-deterministic under adversarial timing — use fuel where
    /// reproducibility matters.
    pub delivery_deadline_ms: Option<u64>,
    /// Flight-recorder tracing: record per-stage spans (dispatch, queue
    /// wait, decode, parse, script, merge) into bounded per-shard rings
    /// and surface them as [`AnalysisResult::trace`]. Off by default; the
    /// off path is a single branch per would-be span, and the on path
    /// never touches deterministic outputs.
    pub tracing: bool,
    /// Degrade zero-copy deliveries to copies: every in-order payload is
    /// memcpy'd into the parser's buffer instead of borrowed from the
    /// trace arena. Outputs must be byte-identical either way — this
    /// exists so differential tests can compare the chunked-borrowed
    /// byte-string representation against the flat one. (Telemetry-wise,
    /// only `pipeline.bytes_copied`/`bytes_borrowed` may differ.)
    pub force_copy: bool,
}

/// One flow the quarantine tore down.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowError {
    pub uid: String,
    /// Exception type name, e.g. `Hilti::ResourceExhausted`.
    pub kind: String,
    pub detail: String,
    pub ts: Time,
}

impl FlowError {
    pub(crate) fn new(uid: &str, e: &RtError, ts: Time) -> Self {
        FlowError {
            uid: uid.to_owned(),
            kind: e.kind.name().to_owned(),
            detail: e.to_string(),
            ts,
        }
    }

    /// The error kind recorded for flows lost to a shard fault. Not a
    /// HILTI exception: the failure domain is the worker thread, not the
    /// flow's own execution.
    pub const SHARD_PANIC: &'static str = "ShardPanic";

    pub(crate) fn shard_panic(uid: &str, ts: Time) -> Self {
        FlowError {
            uid: uid.to_owned(),
            kind: FlowError::SHARD_PANIC.to_owned(),
            detail: "owning shard worker panicked".to_owned(),
            ts,
        }
    }
}

/// One shard-worker failure a parallel run survived: a panic caught at
/// the supervision boundary, or a worker thread that could not be joined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFault {
    /// Index of the faulted shard (0-based).
    pub shard: usize,
    /// Panic payload or join-failure description.
    pub detail: String,
}

/// Pre-interned handles for the pipeline's metric schema, plus the
/// first-seen set backing `flow_open` detection. Everything the per-packet
/// path touches is a relaxed atomic; the only allocation is one
/// `HashSet` insert per *new* flow.
struct PipelineTelemetry {
    telemetry: Telemetry,
    packets: Counter,
    bytes_parsed: Counter,
    bytes_copied: Counter,
    bytes_borrowed: Counter,
    events_dispatched: Counter,
    flows_opened: Counter,
    flows_closed: Counter,
    flows_expired: Counter,
    flows_quarantined: Counter,
    parse_failures: Counter,
    payload_bytes: Histogram,
    seen: HashSet<Arc<str>>,
}

impl PipelineTelemetry {
    fn new() -> PipelineTelemetry {
        let telemetry = Telemetry::new();
        PipelineTelemetry {
            packets: telemetry.counter("pipeline.packets"),
            bytes_parsed: telemetry.counter("pipeline.bytes_parsed"),
            bytes_copied: telemetry.counter("pipeline.bytes_copied"),
            bytes_borrowed: telemetry.counter("pipeline.bytes_borrowed"),
            events_dispatched: telemetry.counter("pipeline.events_dispatched"),
            flows_opened: telemetry.counter("pipeline.flows_opened"),
            flows_closed: telemetry.counter("pipeline.flows_closed"),
            flows_expired: telemetry.counter("pipeline.flows_expired"),
            flows_quarantined: telemetry.counter("pipeline.flows_quarantined"),
            parse_failures: telemetry.counter("pipeline.parse_failures"),
            payload_bytes: telemetry.histogram("pipeline.payload_bytes"),
            seen: HashSet::new(),
            telemetry,
        }
    }

    /// One decoded delivery: first sighting of a uid opens the flow. The
    /// uid is the flow table's interned `Arc<str>`, so recording a new
    /// flow bumps a refcount instead of copying the string.
    fn delivery(&mut self, uid: &Arc<str>, ts: Time, finished: bool) {
        if !self.seen.contains(&**uid) {
            self.seen.insert(uid.clone());
            self.flows_opened.inc();
            self.telemetry.emit(
                "flow_open",
                vec![("uid", (&**uid).into()), ("ts_ns", ts.nanos().into())],
            );
        }
        if finished {
            self.flows_closed.inc();
            self.telemetry.emit(
                "flow_close",
                vec![("uid", (&**uid).into()), ("ts_ns", ts.nanos().into())],
            );
        }
    }

    /// Payload bytes handed to a parser stack.
    fn parsed(&self, bytes: usize) {
        self.bytes_parsed.add(bytes as u64);
        self.payload_bytes.observe(bytes as u64);
    }

    /// How the delivery payload reached the parser: borrowed from the
    /// trace arena (zero-copy) or materialized into parser-owned memory
    /// (out-of-order reassembly output, or [`Governance::force_copy`]).
    fn routed(&self, payload: &PayloadRef, forced_copy: bool) {
        match payload {
            PayloadRef::Shared { len, .. } if !forced_copy => {
                self.bytes_borrowed.add(*len as u64);
            }
            p => self.bytes_copied.add(p.len() as u64),
        }
    }

    fn parse_failure(&self, uid: &str, ts: Time) {
        self.parse_failures.inc();
        self.telemetry.emit(
            "parser_error",
            vec![("uid", uid.into()), ("ts_ns", ts.nanos().into())],
        );
    }

    fn expired(&self, uid: &str, ts: Time) {
        self.flows_expired.inc();
        self.telemetry.emit(
            "timer_expiry",
            vec![("uid", uid.into()), ("ts_ns", ts.nanos().into())],
        );
    }

    /// Records the quarantine ledger, exports per-kind error counters and
    /// the peak per-flow heap gauge, and freezes the snapshot.
    fn finish(
        self,
        n_events: u64,
        peak_flow_bytes: u64,
        flow_errors: &[FlowError],
    ) -> TelemetrySnapshot {
        self.events_dispatched.add(n_events);
        self.telemetry
            .gauge("pipeline.peak_flow_heap_bytes")
            .set_max(peak_flow_bytes);
        for fe in flow_errors {
            self.flows_quarantined.inc();
            self.telemetry
                .registry
                .counter(&format!("pipeline.flow_errors.{}", fe.kind))
                .inc();
            self.telemetry.emit(
                "quarantine",
                vec![
                    ("uid", fe.uid.as_str().into()),
                    ("kind", fe.kind.as_str().into()),
                    ("ts_ns", fe.ts.nanos().into()),
                ],
            );
        }
        self.telemetry.snapshot()
    }
}

/// Loud `EventSink` overflow: a truncated event stream must not read as a
/// quiet run. One line on stderr, emitted by every pipeline flavor and by
/// `hiltic run`.
pub(crate) fn warn_event_drops(snapshot: &TelemetrySnapshot, context: &str) {
    if snapshot.events_dropped > 0 {
        eprintln!(
            "{context}: warning: telemetry event sink overflowed, {} event(s) dropped \
             (buffered stream is truncated)",
            snapshot.events_dropped
        );
    }
}

/// Builds the sequential pipelines' trace report: one recorder, plus a
/// watchdog postmortem if a delivery deadline was armed and tripped.
fn finish_sequential_trace(
    rec: hilti_rt::trace::SharedRecorder,
    gov: &Governance,
    flow_errors: &[FlowError],
) -> TraceReport {
    let part =
        std::mem::replace(&mut *rec.borrow_mut(), FlightRecorder::with_capacity(0, 1)).finish();
    let mut postmortems = Vec::new();
    if gov.delivery_deadline_ms.is_some()
        && flow_errors
            .iter()
            .any(|fe| fe.kind.contains("ResourceExhausted"))
    {
        postmortems.push(part.postmortem("ResourceExhausted (delivery watchdog)"));
    }
    TraceReport::from_parts(vec![part], postmortems)
}

/// Placeholder ConnId for flushing connections whose close was never seen.
pub(crate) fn placeholder_id() -> ConnId {
    ConnId {
        orig_h: hilti_rt::addr::Addr::v4(0, 0, 0, 0),
        orig_p: hilti_rt::addr::Port::tcp(0),
        resp_h: hilti_rt::addr::Addr::v4(0, 0, 0, 0),
        resp_p: hilti_rt::addr::Port::tcp(0),
    }
}

/// Replays an HTTP trace through the chosen parser stack and script engine.
pub fn run_http_analysis(
    packets: &[RawPacket],
    stack: ParserStack,
    engine: Engine,
) -> RtResult<AnalysisResult> {
    run_http_analysis_governed(packets, stack, engine, &Governance::default())
}

/// [`run_http_analysis`] under an explicit [`Governance`] policy.
pub fn run_http_analysis_governed(
    packets: &[RawPacket],
    stack: ParserStack,
    engine: Engine,
    gov: &Governance,
) -> RtResult<AnalysisResult> {
    let profiler = Profiler::new();
    let mut host = ScriptHost::new_tiered(
        &[scripts::HTTP_BRO],
        engine,
        Some(profiler.clone()),
        gov.tiering,
    )?;
    let mut tel = gov.telemetry.then(PipelineTelemetry::new);
    if let Some(t) = &tel {
        host.set_telemetry(&t.telemetry);
    }
    let rec = gov.tracing.then(|| FlightRecorder::new(0).shared());

    let mut flows = FlowTable::new();
    let mut std_parsers: HashMap<Arc<str>, HttpConnParser> = HashMap::new();
    // First-seen uid order, so the end-of-trace flush below is
    // deterministic (HashMap iteration order is not).
    let mut std_order: Vec<Arc<str>> = Vec::new();
    let mut bp = match stack {
        ParserStack::Binpac => {
            let mut b = BinpacHttp::new(OptLevel::Full, Some(profiler.clone()))?;
            if let Some(n) = gov.per_flow_heap {
                b.set_session_budget(n);
            }
            if let Some(steps) = gov.inject_fault_after {
                b.inject_fault_after(steps, RtError::runtime("injected chaos fault"));
            }
            if let Some(t) = &tel {
                b.set_telemetry(&t.telemetry);
            }
            if let Some(r) = &rec {
                b.set_recorder(r.clone());
            }
            b.set_delivery_deadline_ms(gov.delivery_deadline_ms);
            Some(b)
        }
        ParserStack::Standard => None,
    };
    let mut timers: TimerMgr<Arc<str>> = TimerMgr::new();
    let mut quarantined: HashSet<Arc<str>> = HashSet::new();
    let mut flow_errors: Vec<FlowError> = Vec::new();
    let mut flows_expired = 0u64;
    let mut n_events = 0u64;
    let mut n_packets = 0u64;
    let mut last_ts = Time::ZERO;
    // One shared arena for the whole trace; deliveries borrow from it.
    let trace = TraceBuffer::from_packets(packets);
    let mut event_bufs: Pool<Vec<Event>> = Pool::new(4);

    for frame_idx in 0..trace.len() {
        n_packets += 1;
        let slot = n_packets - 1;
        let (frame_data, ts) = trace.frame(frame_idx);
        last_ts = ts;
        let mut events: Vec<Event> = event_bufs.take();
        let deliv_begin = rec.as_ref().map(|_| monotonic_ns());
        let mut span_uid: Option<Arc<str>> = None;
        {
            let _o = profiler.enter(Component::Other);
            if let Some(t) = &tel {
                t.packets.inc();
            }
            let Ok(d) = decode_frame(frame_data, ts) else {
                continue;
            };
            let delivery = flows.process_shared(&d, frame_data, trace.frame_offset(frame_idx));
            let uid = delivery.flow.uid.clone();
            let id = delivery.flow.id;
            let is_orig = delivery.is_orig;
            let finished = delivery.finished_now;
            let payload = delivery.payload;
            if let Some(r) = &rec {
                r.borrow_mut()
                    .record(Stage::Decode, slot, Some(&uid), deliv_begin.unwrap());
                span_uid = Some(uid.clone());
            }
            if let Some(t) = &mut tel {
                t.delivery(&uid, ts, finished);
            }

            if !quarantined.contains(&*uid) {
                if let Some(t) = &tel {
                    if !payload.is_empty() {
                        t.parsed(payload.len());
                        t.routed(&payload, gov.force_copy);
                    }
                }
                match stack {
                    ParserStack::Standard => {
                        let _pp = profiler.enter(Component::ProtocolParsing);
                        let parse_begin = rec.as_ref().map(|r| r.borrow().begin());
                        if !std_parsers.contains_key(&*uid) {
                            std_order.push(uid.clone());
                        }
                        let parser = std_parsers
                            .entry(uid.clone())
                            .or_insert_with(|| HttpConnParser::new(uid.to_string(), id));
                        if !payload.is_empty() {
                            parser.feed(is_orig, payload.resolve(&trace), ts, &mut events);
                        }
                        if finished {
                            parser.finish(ts, &mut events);
                        }
                        if let Some(begin) = parse_begin {
                            rec.as_ref().unwrap().borrow_mut().record(
                                Stage::Parse,
                                slot,
                                Some(&uid),
                                begin,
                            );
                        }
                    }
                    // A missing parser stack degrades the flow (quarantine)
                    // rather than panicking the process.
                    ParserStack::Binpac => match bp.as_mut() {
                        Some(bp) => {
                            if rec.is_some() {
                                bp.set_span_slot(slot);
                            }
                            let mut fail: Option<RtError> = None;
                            if !payload.is_empty() {
                                let chunk = if gov.force_copy {
                                    FeedChunk::Copy(payload.resolve(&trace))
                                } else {
                                    payload.feed_chunk(&trace)
                                };
                                if let Err(e) = bp.feed_chunk(&uid, id, is_orig, ts, chunk) {
                                    fail = Some(e);
                                }
                            }
                            if fail.is_none() && finished {
                                if let Err(e) = bp.finish_conn(&uid, id, ts) {
                                    fail = Some(e);
                                }
                            }
                            // Events emitted before the fault still count.
                            bp.drain_events_into(&mut events);
                            if let Some(e) = fail {
                                if !gov.quarantine {
                                    return Err(e);
                                }
                                bp.drop_conn(&uid);
                                std_parsers.remove(&uid);
                                quarantined.insert(uid.clone());
                                flow_errors.push(FlowError::new(&uid, &e, ts));
                            }
                        }
                        None => {
                            let e = RtError::runtime("binpac parser stack unavailable");
                            if !gov.quarantine {
                                return Err(e);
                            }
                            quarantined.insert(uid.clone());
                            flow_errors.push(FlowError::new(&uid, &e, ts));
                        }
                    },
                }
            }

            // Idle-flow expiration on trace time: each packet re-arms its
            // flow's deadline; fired timers trigger a (lazily re-checked)
            // sweep that evicts the flow record and its parser state.
            if let Some(ms) = gov.idle_timeout_ms {
                timers.schedule(ts + Interval::from_millis(ms as i64), uid.clone());
                if !timers.advance(ts).is_empty() {
                    let cutoff =
                        Time::from_nanos(ts.nanos().saturating_sub(ms.saturating_mul(1_000_000)));
                    for dead in flows.expire_idle_uids(cutoff) {
                        std_parsers.remove(&dead);
                        if let Some(bp) = bp.as_mut() {
                            bp.drop_conn(&dead);
                        }
                        quarantined.remove(&dead);
                        if let Some(t) = &tel {
                            t.expired(&dead, ts);
                        }
                        flows_expired += 1;
                    }
                }
            }
        }
        let script_begin = rec.as_ref().map(|r| r.borrow().begin());
        dispatch_events(&mut host, &events, gov, &mut n_events, &mut flow_errors)?;
        if let Some(r) = &rec {
            let mut rb = r.borrow_mut();
            if !events.is_empty() {
                rb.record(
                    Stage::Script,
                    slot,
                    span_uid.as_ref(),
                    script_begin.unwrap(),
                );
            }
            rb.observe_delivery(monotonic_ns().saturating_sub(deliv_begin.unwrap()));
        }
        event_bufs.put(events);
    }

    // End of trace: flush all still-open connections.
    let mut tail_events: Vec<Event> = Vec::new();
    match stack {
        ParserStack::Standard => {
            let _pp = profiler.enter(Component::ProtocolParsing);
            let parse_begin = rec.as_ref().map(|r| r.borrow().begin());
            // `remove` guards against a uid recorded twice (a flow expired
            // and re-opened re-enters the order list).
            for uid in &std_order {
                if let Some(mut parser) = std_parsers.remove(uid) {
                    parser.finish(last_ts, &mut tail_events);
                }
            }
            if let (Some(r), Some(begin)) = (&rec, parse_begin) {
                r.borrow_mut().record(Stage::Parse, n_packets, None, begin);
            }
        }
        ParserStack::Binpac => {
            if let Some(bp) = bp.as_mut() {
                if rec.is_some() {
                    bp.set_span_slot(n_packets);
                }
                if gov.quarantine {
                    for uid in bp.live_uids() {
                        if let Err(e) = bp.finish_conn(&uid, placeholder_id(), last_ts) {
                            bp.drop_conn(&uid);
                            flow_errors.push(FlowError::new(&uid, &e, last_ts));
                        }
                    }
                } else {
                    bp.finish_all(last_ts)?;
                }
                bp.drain_events_into(&mut tail_events);
            } else if !gov.quarantine {
                return Err(RtError::runtime("binpac parser stack unavailable"));
            }
        }
    }
    let script_begin = rec.as_ref().map(|r| r.borrow().begin());
    dispatch_events(
        &mut host,
        &tail_events,
        gov,
        &mut n_events,
        &mut flow_errors,
    )?;
    if let Some(r) = &rec {
        if !tail_events.is_empty() {
            r.borrow_mut()
                .record(Stage::Script, n_packets, None, script_begin.unwrap());
        }
    }
    arm_script_limits(&mut host, gov);
    if let Err(e) = host.done() {
        if !gov.quarantine {
            return Err(e);
        }
        flow_errors.push(FlowError::new("-", &e, last_ts));
    }

    let peak_flow_bytes = bp.as_ref().map(|b| b.peak_session_bytes()).unwrap_or(0);
    let telemetry = match tel {
        Some(t) => t.finish(n_events, peak_flow_bytes, &flow_errors),
        None => TelemetrySnapshot::default(),
    };
    warn_event_drops(&telemetry, "pipeline");
    let trace = rec.map(|r| finish_sequential_trace(r, gov, &flow_errors));
    Ok(AnalysisResult {
        http_log: host.log_lines("http.log"),
        files_log: host.log_lines("files.log"),
        dns_log: host.log_lines("dns.log"),
        output: host.take_output(),
        profiler,
        events: n_events,
        packets: n_packets,
        flow_errors,
        flows_expired,
        peak_flow_bytes,
        parse_failures: 0,
        telemetry,
        dispatch_telemetry: TelemetrySnapshot::default(),
        shard_faults: Vec::new(),
        shed_packets: 0,
        trace,
    })
}

/// Re-arms the script engine's per-event limits — the fuel budget and the
/// delivery deadline — when either is configured. A no-op otherwise, so
/// ungoverned runs pay nothing.
pub(crate) fn arm_script_limits(host: &mut ScriptHost, gov: &Governance) {
    if gov.script_fuel.is_some() || gov.delivery_deadline_ms.is_some() {
        host.set_limits(ResourceLimits {
            fuel: gov.script_fuel,
            deadline_ms: gov.delivery_deadline_ms,
            ..ResourceLimits::default()
        });
    }
}

/// Dispatches a batch of events under the governance policy: the script
/// fuel budget is re-armed per event, and failures either abort the run
/// or are charged to the event's flow.
fn dispatch_events(
    host: &mut ScriptHost,
    events: &[Event],
    gov: &Governance,
    n_events: &mut u64,
    flow_errors: &mut Vec<FlowError>,
) -> RtResult<()> {
    for ev in events {
        *n_events += 1;
        arm_script_limits(host, gov);
        if let Err(e) = host.dispatch_event(ev) {
            if !gov.quarantine {
                return Err(e);
            }
            flow_errors.push(FlowError::new(ev.uid(), &e, ev.ts()));
        }
    }
    Ok(())
}

/// Builds standard-parser DNS events for one datagram (the handwritten
/// counterpart of the BinPAC++ adapter).
pub fn standard_dns_events(
    uid: &str,
    id: ConnId,
    ts: Time,
    payload: &[u8],
    sink: &mut Vec<Event>,
) -> bool {
    let Ok(msg) = netpkt::dns::parse_message(payload) else {
        return false;
    };
    if msg.is_response {
        let answers: Vec<DnsAnswer> = msg.answers.clone();
        sink.push(Event::DnsReply {
            ts,
            uid: uid.to_owned(),
            id,
            trans_id: msg.id,
            rcode: msg.rcode,
            answers,
        });
    } else if let Some(q) = msg.questions.first() {
        sink.push(Event::DnsRequest {
            ts,
            uid: uid.to_owned(),
            id,
            trans_id: msg.id,
            query: q.name.clone(),
            qtype: q.qtype,
        });
    }
    true
}

/// Replays a DNS trace through the chosen parser stack and script engine.
pub fn run_dns_analysis(
    packets: &[RawPacket],
    stack: ParserStack,
    engine: Engine,
) -> RtResult<AnalysisResult> {
    run_dns_analysis_governed(packets, stack, engine, &Governance::default())
}

/// [`run_dns_analysis`] under an explicit [`Governance`] policy.
pub fn run_dns_analysis_governed(
    packets: &[RawPacket],
    stack: ParserStack,
    engine: Engine,
    gov: &Governance,
) -> RtResult<AnalysisResult> {
    let profiler = Profiler::new();
    let mut host = ScriptHost::new_tiered(
        &[scripts::DNS_BRO],
        engine,
        Some(profiler.clone()),
        gov.tiering,
    )?;
    let mut tel = gov.telemetry.then(PipelineTelemetry::new);
    if let Some(t) = &tel {
        host.set_telemetry(&t.telemetry);
    }

    let rec = gov.tracing.then(|| FlightRecorder::new(0).shared());
    let mut flows = FlowTable::new();
    let mut bp = match stack {
        ParserStack::Binpac => {
            let mut b = BinpacDns::new(OptLevel::Full, Some(profiler.clone()))?;
            if let Some(t) = &tel {
                b.set_telemetry(&t.telemetry);
            }
            if let Some(r) = &rec {
                b.set_recorder(r.clone());
            }
            b.set_delivery_deadline_ms(gov.delivery_deadline_ms);
            Some(b)
        }
        ParserStack::Standard => None,
    };
    let mut timers: TimerMgr<Arc<str>> = TimerMgr::new();
    let mut flow_errors: Vec<FlowError> = Vec::new();
    let mut flows_expired = 0u64;
    let mut parse_failures = 0u64;
    let mut n_events = 0u64;
    let mut n_packets = 0u64;
    let mut last_ts = Time::ZERO;
    let trace = TraceBuffer::from_packets(packets);
    let mut event_bufs: Pool<Vec<Event>> = Pool::new(4);

    for frame_idx in 0..trace.len() {
        n_packets += 1;
        let slot = n_packets - 1;
        let (frame_data, ts) = trace.frame(frame_idx);
        last_ts = ts;
        let mut events: Vec<Event> = event_bufs.take();
        let deliv_begin = rec.as_ref().map(|_| monotonic_ns());
        let mut span_uid: Option<Arc<str>> = None;
        {
            let _o = profiler.enter(Component::Other);
            if let Some(t) = &tel {
                t.packets.inc();
            }
            let Ok(d) = decode_frame(frame_data, ts) else {
                continue;
            };
            let delivery = flows.process_shared(&d, frame_data, trace.frame_offset(frame_idx));
            let uid = delivery.flow.uid.clone();
            let id = delivery.flow.id;
            let finished = delivery.finished_now;
            let payload = delivery.payload;
            if let Some(r) = &rec {
                r.borrow_mut()
                    .record(Stage::Decode, slot, Some(&uid), deliv_begin.unwrap());
                span_uid = Some(uid.clone());
            }
            if let Some(t) = &mut tel {
                t.delivery(&uid, ts, finished);
            }
            if !payload.is_empty() {
                if let Some(t) = &tel {
                    t.parsed(payload.len());
                    t.routed(&payload, gov.force_copy);
                }
                match stack {
                    ParserStack::Standard => {
                        let _pp = profiler.enter(Component::ProtocolParsing);
                        let parse_begin = rec.as_ref().map(|r| r.borrow().begin());
                        if !standard_dns_events(&uid, id, ts, payload.resolve(&trace), &mut events)
                        {
                            parse_failures += 1;
                            if let Some(t) = &tel {
                                t.parse_failure(&uid, ts);
                            }
                        }
                        if let (Some(r), Some(begin)) = (&rec, parse_begin) {
                            r.borrow_mut().record(Stage::Parse, slot, Some(&uid), begin);
                        }
                    }
                    ParserStack::Binpac => match bp.as_mut() {
                        Some(bp) => {
                            if rec.is_some() {
                                bp.set_span_slot(slot);
                            }
                            let chunk = if gov.force_copy {
                                FeedChunk::Copy(payload.resolve(&trace))
                            } else {
                                payload.feed_chunk(&trace)
                            };
                            match bp.datagram_chunk(&uid, id, ts, chunk) {
                                Ok(true) => {}
                                Ok(false) => {
                                    parse_failures += 1;
                                    if let Some(t) = &tel {
                                        t.parse_failure(&uid, ts);
                                    }
                                }
                                Err(e) => {
                                    if !gov.quarantine {
                                        return Err(e);
                                    }
                                    flow_errors.push(FlowError::new(&uid, &e, ts));
                                }
                            }
                            bp.drain_events_into(&mut events);
                        }
                        None => {
                            let e = RtError::runtime("binpac parser stack unavailable");
                            if !gov.quarantine {
                                return Err(e);
                            }
                            flow_errors.push(FlowError::new(&uid, &e, ts));
                        }
                    },
                }
            }
            if let Some(ms) = gov.idle_timeout_ms {
                timers.schedule(ts + Interval::from_millis(ms as i64), uid.clone());
                if !timers.advance(ts).is_empty() {
                    let cutoff =
                        Time::from_nanos(ts.nanos().saturating_sub(ms.saturating_mul(1_000_000)));
                    for dead in flows.expire_idle_uids(cutoff) {
                        if let Some(t) = &tel {
                            t.expired(&dead, ts);
                        }
                        flows_expired += 1;
                    }
                }
            }
        }
        let script_begin = rec.as_ref().map(|r| r.borrow().begin());
        dispatch_events(&mut host, &events, gov, &mut n_events, &mut flow_errors)?;
        if let Some(r) = &rec {
            let mut rb = r.borrow_mut();
            if !events.is_empty() {
                rb.record(
                    Stage::Script,
                    slot,
                    span_uid.as_ref(),
                    script_begin.unwrap(),
                );
            }
            rb.observe_delivery(monotonic_ns().saturating_sub(deliv_begin.unwrap()));
        }
        event_bufs.put(events);
    }
    arm_script_limits(&mut host, gov);
    if let Err(e) = host.done() {
        if !gov.quarantine {
            return Err(e);
        }
        flow_errors.push(FlowError::new("-", &e, last_ts));
    }

    let telemetry = match tel {
        Some(t) => t.finish(n_events, 0, &flow_errors),
        None => TelemetrySnapshot::default(),
    };
    warn_event_drops(&telemetry, "pipeline");
    let trace = rec.map(|r| finish_sequential_trace(r, gov, &flow_errors));
    Ok(AnalysisResult {
        http_log: host.log_lines("http.log"),
        files_log: host.log_lines("files.log"),
        dns_log: host.log_lines("dns.log"),
        output: host.take_output(),
        profiler,
        events: n_events,
        packets: n_packets,
        flow_errors,
        flows_expired,
        peak_flow_bytes: 0,
        parse_failures,
        telemetry,
        dispatch_telemetry: TelemetrySnapshot::default(),
        shard_faults: Vec::new(),
        shed_packets: 0,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::logs::agreement;
    use netpkt::synth::{dns_trace, http_trace, SynthConfig};

    #[test]
    fn http_standard_stack_produces_logs() {
        let trace = http_trace(&SynthConfig::new(42, 15));
        let r = run_http_analysis(&trace, ParserStack::Standard, Engine::Interpreted).unwrap();
        assert!(r.http_log.len() >= 10, "http.log: {}", r.http_log.len());
        assert!(!r.files_log.is_empty());
        assert!(r.events > 50);
        // Every line has the full column count.
        for l in &r.http_log {
            assert_eq!(l.matches('\t').count(), 12, "{l}");
        }
    }

    #[test]
    fn http_engines_agree_table3_shape() {
        // Table 3, HTTP rows: same parser stack, interpreter vs compiled.
        let trace = http_trace(&SynthConfig::new(7, 12));
        let a = run_http_analysis(&trace, ParserStack::Standard, Engine::Interpreted).unwrap();
        let b = run_http_analysis(&trace, ParserStack::Standard, Engine::Compiled).unwrap();
        let ag = agreement(&a.http_log, &b.http_log);
        assert_eq!(ag.percent(), 100.0, "http.log {ag:?}");
        let ag = agreement(&a.files_log, &b.files_log);
        assert_eq!(ag.percent(), 100.0, "files.log {ag:?}");
    }

    #[test]
    fn http_parser_stacks_agree_table2_shape() {
        // Table 2, HTTP rows: standard vs BinPAC++ parsers, same engine.
        let trace = http_trace(&SynthConfig::new(11, 12));
        let a = run_http_analysis(&trace, ParserStack::Standard, Engine::Interpreted).unwrap();
        let b = run_http_analysis(&trace, ParserStack::Binpac, Engine::Interpreted).unwrap();
        let ag = agreement(&a.http_log, &b.http_log);
        assert!(ag.percent() > 90.0, "http.log agreement {ag:?}");
        assert!(a.http_log.len() > 5);
        assert!(b.http_log.len() > 5);
    }

    #[test]
    fn dns_engines_agree() {
        let trace = dns_trace(&SynthConfig::new(3, 80));
        let a = run_dns_analysis(&trace, ParserStack::Standard, Engine::Interpreted).unwrap();
        let b = run_dns_analysis(&trace, ParserStack::Standard, Engine::Compiled).unwrap();
        assert!(a.dns_log.len() > 40);
        let ag = agreement(&a.dns_log, &b.dns_log);
        assert_eq!(ag.percent(), 100.0, "dns.log {ag:?}");
    }

    #[test]
    fn dns_parser_stacks_agree_except_txt() {
        let trace = dns_trace(&SynthConfig::new(13, 100));
        let a = run_dns_analysis(&trace, ParserStack::Standard, Engine::Interpreted).unwrap();
        let b = run_dns_analysis(&trace, ParserStack::Binpac, Engine::Interpreted).unwrap();
        assert_eq!(a.dns_log.len(), b.dns_log.len());
        let ag = agreement(&a.dns_log, &b.dns_log);
        // High but not perfect: multi-string TXT answers differ by design.
        assert!(ag.percent() > 80.0, "{ag:?}");
    }

    #[test]
    fn profiler_attributes_components() {
        let trace = http_trace(&SynthConfig::new(21, 6));
        let r = run_http_analysis(&trace, ParserStack::Binpac, Engine::Compiled).unwrap();
        assert!(r.profiler.total(Component::ProtocolParsing) > 0);
        assert!(r.profiler.total(Component::ScriptExecution) > 0);
        assert!(r.profiler.total(Component::Glue) > 0);
        assert!(r.profiler.total(Component::Other) > 0);
    }
}
