//! Parser for the Bro-style script language.
//!
//! Hand-written recursive descent over a simple token stream. The grammar
//! covers the constructs the §6 analysis scripts use; see
//! [`crate::scripts`] for representative inputs.

use hilti_rt::error::{RtError, RtResult};
use hilti_rt::time::Interval;

use crate::ast::*;

/// Parses a script source file.
pub fn parse_script(src: &str) -> RtResult<Script> {
    let toks = lex(src)?;
    let mut p = P {
        toks,
        pos: 0,
        records: Vec::new(),
    };
    p.script()
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Count(u64),
    Double(f64),
    Str(String),
    Sym(&'static str),
}

fn lex(src: &str) -> RtResult<Vec<Tok>> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        s.push(match b[i + 1] {
                            b'n' => '\n',
                            b't' => '\t',
                            b'r' => '\r',
                            other => other as char,
                        });
                        i += 2;
                    } else {
                        s.push(b[i] as char);
                        i += 1;
                    }
                }
                if i >= b.len() {
                    return Err(RtError::value("unterminated string in script"));
                }
                i += 1;
                out.push(Tok::Str(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                let text = &src[start..i];
                if text.contains('.') {
                    out.push(Tok::Double(
                        text.parse()
                            .map_err(|_| RtError::value(format!("bad number {text}")))?,
                    ));
                } else {
                    out.push(Tok::Count(
                        text.parse()
                            .map_err(|_| RtError::value(format!("bad number {text}")))?,
                    ));
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Ident(src[start..i].to_owned()));
            }
            _ => {
                // Multi-char symbols first.
                let two = if i + 1 < b.len() { &src[i..i + 2] } else { "" };
                let sym2 = ["==", "!=", "<=", ">=", "&&", "||", "+=", "!i"];
                let _ = sym2;
                let known2 = ["==", "!=", "<=", ">=", "&&", "||", "+="];
                if known2.contains(&two) {
                    out.push(Tok::Sym(match two {
                        "==" => "==",
                        "!=" => "!=",
                        "<=" => "<=",
                        ">=" => ">=",
                        "&&" => "&&",
                        "||" => "||",
                        "+=" => "+=",
                        _ => unreachable!(),
                    }));
                    i += 2;
                } else {
                    let sym = match c {
                        b'{' => "{",
                        b'}' => "}",
                        b'(' => "(",
                        b')' => ")",
                        b'[' => "[",
                        b']' => "]",
                        b';' => ";",
                        b':' => ":",
                        b',' => ",",
                        b'=' => "=",
                        b'+' => "+",
                        b'-' => "-",
                        b'*' => "*",
                        b'/' => "/",
                        b'%' => "%",
                        b'<' => "<",
                        b'>' => ">",
                        b'!' => "!",
                        b'|' => "|",
                        b'&' => "&",
                        b'$' => "$",
                        _ => {
                            return Err(RtError::value(format!(
                                "unexpected character {:?} in script",
                                c as char
                            )))
                        }
                    };
                    out.push(Tok::Sym(sym));
                    i += 1;
                }
            }
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
    /// Record type names in scope (builtin + declared so far).
    records: Vec<String>,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: &str) -> RtError {
        RtError::value(format!(
            "script parse error near token {}: {msg} (found {:?})",
            self.pos,
            self.peek()
        ))
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> RtResult<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {s:?}")))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(x)) if x == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> RtResult<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(RtError::value(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }

    fn script(&mut self) -> RtResult<Script> {
        let mut s = Script::default().with_builtin_records();
        // Record declarations must be visible while parsing types, so keep
        // the parser's own view in sync.
        self.records = s.records.iter().map(|(n, _)| n.clone()).collect();
        while self.peek().is_some() {
            if self.eat_kw("global") {
                s.globals.push(self.global()?);
            } else if self.eat_kw("event") {
                s.handlers.push(self.handler()?);
            } else if self.eat_kw("function") {
                s.functions.push(self.function()?);
            } else if self.eat_kw("type") {
                let (name, fields) = self.record_decl()?;
                self.records.push(name.clone());
                s.records.push((name, fields));
            } else {
                return Err(self.err("expected 'global', 'event', 'function', or 'type'"));
            }
        }
        Ok(s)
    }

    /// `type <name>: record { f: T; ... };`
    fn record_decl(&mut self) -> RtResult<(String, Vec<(String, STy)>)> {
        let name = self.expect_ident()?;
        self.expect_sym(":")?;
        if !self.eat_kw("record") {
            return Err(self.err("only record type declarations are supported"));
        }
        self.expect_sym("{")?;
        let mut fields = Vec::new();
        loop {
            if self.eat_sym("}") {
                break;
            }
            let f = self.expect_ident()?;
            self.expect_sym(":")?;
            let t = self.ty()?;
            fields.push((f, t));
            self.eat_sym(";");
            self.eat_sym(",");
        }
        self.eat_sym(";");
        Ok((name, fields))
    }

    fn global(&mut self) -> RtResult<Global> {
        let name = self.expect_ident()?;
        self.expect_sym(":")?;
        let ty = self.ty()?;
        let mut expire = None;
        let mut init = None;
        // Attributes: &create_expire=300.0 / &read_expire=60.0
        while self.eat_sym("&") {
            let attr = self.expect_ident()?;
            self.expect_sym("=")?;
            let secs = match self.bump() {
                Some(Tok::Double(d)) => d,
                Some(Tok::Count(c)) => c as f64,
                other => return Err(RtError::value(format!("bad expire value {other:?}"))),
            };
            // Optional unit keyword.
            let secs = if self.eat_kw("secs") || self.eat_kw("sec") {
                secs
            } else if self.eat_kw("mins") || self.eat_kw("min") {
                secs * 60.0
            } else {
                secs
            };
            let iv = Interval::from_secs_f64(secs);
            expire = Some(match attr.as_str() {
                "create_expire" => ExpireAttr::Create(iv),
                "read_expire" => ExpireAttr::Read(iv),
                other => return Err(RtError::value(format!("unknown attribute &{other}"))),
            });
        }
        if self.eat_sym("=") {
            init = Some(self.expr()?);
        }
        self.expect_sym(";")?;
        Ok(Global {
            name,
            ty,
            expire,
            init,
        })
    }

    fn ty(&mut self) -> RtResult<STy> {
        let head = self.expect_ident()?;
        Ok(match head.as_str() {
            "bool" => STy::Bool,
            "count" => STy::Count,
            "int" => STy::Int,
            "double" => STy::Double,
            "string" => STy::Str,
            "addr" => STy::Addr,
            "port" => STy::Port,
            "time" => STy::Time,
            "interval" => STy::Interval,
            "set" => {
                self.expect_sym("[")?;
                let inner = self.ty()?;
                self.expect_sym("]")?;
                STy::Set(Box::new(inner))
            }
            "table" => {
                self.expect_sym("[")?;
                let k = self.ty()?;
                self.expect_sym("]")?;
                if !self.eat_kw("of") {
                    return Err(self.err("expected 'of' after table key type"));
                }
                let v = self.ty()?;
                STy::Table(Box::new(k), Box::new(v))
            }
            "vector" => {
                if !self.eat_kw("of") {
                    return Err(self.err("expected 'of' after vector"));
                }
                let inner = self.ty()?;
                STy::Vector(Box::new(inner))
            }
            other => {
                if self.records.iter().any(|r| r == other) {
                    STy::Record(other.to_owned())
                } else {
                    return Err(RtError::value(format!("unknown type {other}")));
                }
            }
        })
    }

    fn params(&mut self) -> RtResult<Vec<(String, STy)>> {
        self.expect_sym("(")?;
        let mut out = Vec::new();
        loop {
            if self.eat_sym(")") {
                break;
            }
            let name = self.expect_ident()?;
            self.expect_sym(":")?;
            let ty = self.ty()?;
            out.push((name, ty));
            self.eat_sym(",");
        }
        Ok(out)
    }

    fn handler(&mut self) -> RtResult<Handler> {
        let event = self.expect_ident()?;
        let params = self.params()?;
        let body = self.block()?;
        Ok(Handler {
            event,
            params,
            body,
        })
    }

    fn function(&mut self) -> RtResult<FuncDef> {
        let name = self.expect_ident()?;
        let params = self.params()?;
        let ret = if self.eat_sym(":") {
            self.ty()?
        } else {
            STy::Void
        };
        let body = self.block()?;
        Ok(FuncDef {
            name,
            params,
            ret,
            body,
        })
    }

    fn block(&mut self) -> RtResult<Vec<Stmt>> {
        self.expect_sym("{")?;
        let mut out = Vec::new();
        loop {
            if self.eat_sym("}") {
                break;
            }
            if self.peek().is_none() {
                return Err(self.err("unterminated block"));
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt_or_block(&mut self) -> RtResult<Vec<Stmt>> {
        if matches!(self.peek(), Some(Tok::Sym("{"))) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> RtResult<Stmt> {
        if self.eat_kw("local") {
            let name = self.expect_ident()?;
            let ty = if self.eat_sym(":") {
                Some(self.ty()?)
            } else {
                None
            };
            self.expect_sym("=")?;
            let e = self.expr()?;
            self.expect_sym(";")?;
            return Ok(Stmt::Local(name, ty, e));
        }
        if self.eat_kw("add") {
            let set = self.expect_ident()?;
            self.expect_sym("[")?;
            let k = self.expr()?;
            self.expect_sym("]")?;
            self.expect_sym(";")?;
            return Ok(Stmt::Add(set, k));
        }
        if self.eat_kw("delete") {
            let t = self.expect_ident()?;
            self.expect_sym("[")?;
            let k = self.expr()?;
            self.expect_sym("]")?;
            self.expect_sym(";")?;
            return Ok(Stmt::Delete(t, k));
        }
        if self.eat_kw("if") {
            self.expect_sym("(")?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            let then = self.stmt_or_block()?;
            let els = if self.eat_kw("else") {
                self.stmt_or_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat_kw("for") {
            self.expect_sym("(")?;
            let var = self.expect_ident()?;
            if !self.eat_kw("in") {
                return Err(self.err("expected 'in' in for loop"));
            }
            let container = self.expr()?;
            self.expect_sym(")")?;
            let body = self.stmt_or_block()?;
            return Ok(Stmt::For(var, container, body));
        }
        if self.eat_kw("while") {
            self.expect_sym("(")?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            let body = self.stmt_or_block()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.eat_kw("print") {
            let mut args = vec![self.expr()?];
            while self.eat_sym(",") {
                args.push(self.expr()?);
            }
            self.expect_sym(";")?;
            return Ok(Stmt::Print(args));
        }
        if self.eat_kw("return") {
            if self.eat_sym(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.expect_sym(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        // Assignment or expression statement.
        let lhs = self.expr()?;
        if self.eat_sym("=") {
            let rhs = self.expr()?;
            self.expect_sym(";")?;
            match &lhs {
                Expr::Var(_) | Expr::Index(_, _) | Expr::Field(_, _) => {
                    return Ok(Stmt::Assign(lhs, rhs))
                }
                _ => return Err(self.err("invalid assignment target")),
            }
        }
        if self.eat_sym("+=") {
            let rhs = self.expr()?;
            self.expect_sym(";")?;
            // x += e  →  x = x + e
            return Ok(Stmt::Assign(
                lhs.clone(),
                Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs)),
            ));
        }
        self.expect_sym(";")?;
        Ok(Stmt::ExprStmt(lhs))
    }

    // Precedence climbing: || < && < comparisons/in < add/sub < mul/div/mod
    // < unary < postfix.
    fn expr(&mut self) -> RtResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> RtResult<Expr> {
        let mut l = self.and_expr()?;
        while self.eat_sym("||") {
            let r = self.and_expr()?;
            l = Expr::Bin(BinOp::Or, Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn and_expr(&mut self) -> RtResult<Expr> {
        let mut l = self.cmp_expr()?;
        while self.eat_sym("&&") {
            let r = self.cmp_expr()?;
            l = Expr::Bin(BinOp::And, Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn cmp_expr(&mut self) -> RtResult<Expr> {
        let l = self.add_expr()?;
        // `in` / `!in`-style membership.
        if self.eat_kw("in") {
            let r = self.add_expr()?;
            return Ok(Expr::In(Box::new(l), Box::new(r)));
        }
        for (sym, op) in [
            ("==", BinOp::Eq),
            ("!=", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            if self.eat_sym(sym) {
                let r = self.add_expr()?;
                return Ok(Expr::Bin(op, Box::new(l), Box::new(r)));
            }
        }
        Ok(l)
    }

    fn add_expr(&mut self) -> RtResult<Expr> {
        let mut l = self.mul_expr()?;
        loop {
            if self.eat_sym("+") {
                let r = self.mul_expr()?;
                l = Expr::Bin(BinOp::Add, Box::new(l), Box::new(r));
            } else if self.eat_sym("-") {
                let r = self.mul_expr()?;
                l = Expr::Bin(BinOp::Sub, Box::new(l), Box::new(r));
            } else {
                break;
            }
        }
        Ok(l)
    }

    fn mul_expr(&mut self) -> RtResult<Expr> {
        let mut l = self.unary()?;
        loop {
            if self.eat_sym("*") {
                let r = self.unary()?;
                l = Expr::Bin(BinOp::Mul, Box::new(l), Box::new(r));
            } else if self.eat_sym("/") {
                let r = self.unary()?;
                l = Expr::Bin(BinOp::Div, Box::new(l), Box::new(r));
            } else if self.eat_sym("%") {
                let r = self.unary()?;
                l = Expr::Bin(BinOp::Mod, Box::new(l), Box::new(r));
            } else {
                break;
            }
        }
        Ok(l)
    }

    fn unary(&mut self) -> RtResult<Expr> {
        if self.eat_sym("!") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        if self.eat_sym("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.eat_sym("|") {
            let inner = self.expr()?;
            self.expect_sym("|")?;
            return Ok(Expr::Size(Box::new(inner)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> RtResult<Expr> {
        let mut e = self.atom()?;
        loop {
            if matches!(self.peek(), Some(Tok::Sym("["))) {
                self.bump();
                let idx = self.expr()?;
                self.expect_sym("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if matches!(self.peek(), Some(Tok::Sym("$"))) {
                self.bump();
                let field = self.expect_ident()?;
                e = Expr::Field(Box::new(e), field);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> RtResult<Expr> {
        match self.bump() {
            Some(Tok::Count(c)) => {
                // `5 secs` → interval literal.
                if self.eat_kw("secs") || self.eat_kw("sec") {
                    return Ok(Expr::IntervalLit(c as f64));
                }
                if self.eat_kw("mins") || self.eat_kw("min") {
                    return Ok(Expr::IntervalLit(c as f64 * 60.0));
                }
                Ok(Expr::Count(c))
            }
            Some(Tok::Double(d)) => {
                if self.eat_kw("secs") || self.eat_kw("sec") {
                    return Ok(Expr::IntervalLit(d));
                }
                Ok(Expr::Double(d))
            }
            Some(Tok::Str(s)) => Ok(Expr::Str(s)),
            Some(Tok::Sym("(")) => {
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => match name.as_str() {
                "T" | "true" => Ok(Expr::Bool(true)),
                "F" | "false" => Ok(Expr::Bool(false)),
                "vector" => {
                    self.expect_sym("(")?;
                    self.expect_sym(")")?;
                    Ok(Expr::VectorCtor)
                }
                _ => {
                    if matches!(self.peek(), Some(Tok::Sym("("))) {
                        self.bump();
                        // Record constructor: `conn_id($orig_h = e, ...)`.
                        if matches!(self.peek(), Some(Tok::Sym("$"))) {
                            let mut fields = Vec::new();
                            loop {
                                if self.eat_sym(")") {
                                    break;
                                }
                                self.expect_sym("$")?;
                                let f = self.expect_ident()?;
                                self.expect_sym("=")?;
                                fields.push((f, self.expr()?));
                                self.eat_sym(",");
                            }
                            return Ok(Expr::RecordCtor(name, fields));
                        }
                        let mut args = Vec::new();
                        loop {
                            if self.eat_sym(")") {
                                break;
                            }
                            args.push(self.expr()?);
                            self.eat_sym(",");
                        }
                        Ok(Expr::Call(name, args))
                    } else {
                        Ok(Expr::Var(name))
                    }
                }
            },
            other => Err(RtError::value(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_track_bro_parses() {
        let s = parse_script(
            r#"
global hosts: set[addr];

event connection_established(uid: string, orig_h: addr, orig_p: port, resp_h: addr, resp_p: port) {
    add hosts[resp_h];
}

event bro_done() {
    for ( i in hosts )
        print i;
}
"#,
        )
        .unwrap();
        assert_eq!(s.globals.len(), 1);
        assert_eq!(s.globals[0].ty, STy::Set(Box::new(STy::Addr)));
        assert_eq!(s.handlers.len(), 2);
        assert_eq!(s.handlers[0].params.len(), 5);
        assert!(matches!(s.handlers[0].body[0], Stmt::Add(_, _)));
        assert!(matches!(s.handlers[1].body[0], Stmt::For(_, _, _)));
    }

    #[test]
    fn fib_function_parses() {
        let s = parse_script(
            r#"
function fib(n: count): count {
    if ( n < 2 )
        return n;
    return fib(n - 1) + fib(n - 2);
}
"#,
        )
        .unwrap();
        assert_eq!(s.functions.len(), 1);
        assert_eq!(s.functions[0].ret, STy::Count);
    }

    #[test]
    fn table_with_expire_attr() {
        let s =
            parse_script("global seen: table[string] of count &create_expire=300.0;\n").unwrap();
        match s.globals[0].expire {
            Some(ExpireAttr::Create(iv)) => {
                assert_eq!(iv, hilti_rt::time::Interval::from_secs(300))
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = parse_script("global seen: table[string] of count &read_expire=5 mins;\n").unwrap();
        assert!(matches!(s.globals[0].expire, Some(ExpireAttr::Read(_))));
    }

    #[test]
    fn expressions_and_precedence() {
        let s = parse_script(
            r#"
function f(a: count, b: count): bool {
    return a + b * 2 == 10 && b != 0 || !(a < b);
}
"#,
        )
        .unwrap();
        // || at the top.
        match &s.functions[0].body[0] {
            Stmt::Return(Some(Expr::Bin(BinOp::Or, _, _))) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn containers_and_membership() {
        let s = parse_script(
            r#"
global t: table[string] of count;
event x(k: string) {
    if ( k in t )
        t[k] = t[k] + 1;
    else
        t[k] = 1;
    if ( |t| > 100 )
        delete t[k];
}
"#,
        )
        .unwrap();
        let body = &s.handlers[0].body;
        assert!(matches!(&body[0], Stmt::If(Expr::In(_, _), _, els) if !els.is_empty()));
        assert!(
            matches!(&body[1], Stmt::If(Expr::Bin(BinOp::Gt, l, _), _, _)
            if matches!(&**l, Expr::Size(_)))
        );
    }

    #[test]
    fn vector_ops() {
        let s = parse_script(
            r#"
event x() {
    local v = vector();
    v[|v|] = "first";
    print v[0], |v|;
}
"#,
        )
        .unwrap();
        let body = &s.handlers[0].body;
        assert!(matches!(&body[0], Stmt::Local(_, None, Expr::VectorCtor)));
        assert!(matches!(&body[1], Stmt::Assign(Expr::Index(_, _), _)));
    }

    #[test]
    fn plus_equals_desugars() {
        let s = parse_script("event x() { local n = 0; n += 5; }").unwrap();
        match &s.handlers[0].body[1] {
            Stmt::Assign(Expr::Var(v), Expr::Bin(BinOp::Add, _, _)) => assert_eq!(v, "n"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_reported() {
        assert!(parse_script("event x( {").is_err());
        assert!(parse_script("global x;").is_err());
        assert!(parse_script("event x() { local = 5; }").is_err());
        assert!(parse_script("bogus top level").is_err());
        assert!(parse_script("event x() { print \"unterminated; }").is_err());
    }

    #[test]
    fn while_loop() {
        let s = parse_script(
            "function f(): count { local i = 0; while ( i < 10 ) i = i + 1; return i; }",
        )
        .unwrap();
        assert!(matches!(&s.functions[0].body[1], Stmt::While(_, _)));
    }
}
