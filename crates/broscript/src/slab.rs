//! Small object pools for hot-path state.
//!
//! The per-packet loops in [`pipeline`](crate::pipeline) and
//! [`parallel`](crate::parallel) need short-lived working buffers — most
//! visibly the `Vec<Event>` each delivery fills and drains. Allocating a
//! fresh one per packet puts the global allocator on the hot path; a
//! [`Pool`] instead keeps a bounded free list of cleared-but-capacitated
//! objects, so after warm-up the per-delivery cost is a `Vec::pop` and a
//! `Vec::push`.
//!
//! The pool is deliberately dumb: objects come back [`Reusable::reset`]
//! (emptied, capacity kept) and the free list is bounded so a burst never
//! pins memory forever. Nothing about it is thread-safe — each sequential
//! run and each shard worker owns its own pool, matching the
//! shared-nothing design of the parallel pipeline.

/// An object that can be emptied in place while keeping its allocation.
pub trait Reusable: Default {
    /// Clears the logical contents, retaining backing capacity.
    fn reset(&mut self);
}

impl<T> Reusable for Vec<T> {
    fn reset(&mut self) {
        self.clear();
    }
}

impl<K, V, S> Reusable for std::collections::HashMap<K, V, S>
where
    S: Default + std::hash::BuildHasher,
{
    fn reset(&mut self) {
        self.clear();
    }
}

impl Reusable for String {
    fn reset(&mut self) {
        self.clear();
    }
}

/// A bounded free list of [`Reusable`] objects.
pub struct Pool<T: Reusable> {
    free: Vec<T>,
    cap: usize,
    /// `take` calls served from the free list (vs. fresh constructions).
    hits: u64,
    misses: u64,
}

impl<T: Reusable> Pool<T> {
    /// A pool retaining at most `cap` idle objects.
    pub fn new(cap: usize) -> Pool<T> {
        Pool {
            free: Vec::new(),
            cap,
            hits: 0,
            misses: 0,
        }
    }

    /// An empty object: recycled when the free list has one, freshly
    /// default-constructed otherwise.
    pub fn take(&mut self) -> T {
        match self.free.pop() {
            Some(t) => {
                self.hits += 1;
                t
            }
            None => {
                self.misses += 1;
                T::default()
            }
        }
    }

    /// Returns an object to the pool. It is [`reset`](Reusable::reset)
    /// here, so a pooled object never leaks stale contents; beyond the
    /// retention bound it is simply dropped.
    pub fn put(&mut self, mut t: T) {
        if self.free.len() < self.cap {
            t.reset();
            self.free.push(t);
        }
    }

    /// `(recycled, fresh)` counts of [`take`](Self::take) calls.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Idle objects currently retained.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_capacity_and_clears_contents() {
        let mut pool: Pool<Vec<u32>> = Pool::new(2);
        let mut v = pool.take();
        v.extend([1, 2, 3]);
        let cap = v.capacity();
        pool.put(v);
        let v2 = pool.take();
        assert!(v2.is_empty(), "recycled object must come back empty");
        assert_eq!(v2.capacity(), cap, "recycled object keeps its capacity");
        assert_eq!(pool.stats(), (1, 1));
    }

    #[test]
    fn retention_is_bounded() {
        let mut pool: Pool<Vec<u8>> = Pool::new(2);
        for _ in 0..5 {
            pool.put(Vec::with_capacity(64));
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn take_on_empty_pool_constructs() {
        let mut pool: Pool<String> = Pool::new(1);
        let s = pool.take();
        assert!(s.is_empty());
        assert_eq!(pool.stats(), (0, 1));
    }
}
