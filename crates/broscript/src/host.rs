//! The event-dispatch layer (Bro's event engine) and the builtin library.
//!
//! [`ScriptHost`] owns one script running on one engine — the tree-walking
//! interpreter or the HILTI compiled program — and feeds it
//! [`netpkt::events::Event`]s. For the compiled engine, the conversion of
//! host event values into HILTI values is the "HILTI-to-Bro glue" that §6
//! measures separately (charged to [`Component::Glue`] when a profiler is
//! attached); script handler execution itself is charged to
//! [`Component::ScriptExecution`].
//!
//! The builtin functions ([`call_builtin`]) are shared verbatim by both
//! engines — one implementation, invoked directly by the interpreter and
//! registered as host functions (`call.c`) for the compiled program — so
//! outputs are comparable byte for byte.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use hilti::value::Value;
use hilti_rt::error::{RtError, RtResult};
use hilti_rt::file::LogFile;
use hilti_rt::profile::{Component, Profiler};
use hilti_rt::sha1::sha1_hex;
use hilti_rt::time::Time;

use netpkt::events::{dns_rcodes, dns_types, Event};

use crate::ast::Script;
use crate::compile::compile_script;
use crate::interp::Interp;
use crate::parse::parse_script;

/// Shared script-runtime state: network time and log streams. One instance
/// backs both engines so behaviour is identical.
#[derive(Default)]
pub struct BroRt {
    pub net_time: Time,
    pub logs: HashMap<String, LogFile>,
}

impl BroRt {
    pub fn advance(&mut self, t: Time) {
        if t > self.net_time {
            self.net_time = t;
        }
    }

    pub fn log(&mut self, name: &str) -> LogFile {
        self.logs
            .entry(name.to_owned())
            .or_insert_with(|| LogFile::in_memory(name))
            .clone()
    }

    pub fn log_lines(&self, name: &str) -> Vec<String> {
        self.logs.get(name).map(|l| l.lines()).unwrap_or_default()
    }
}

/// Invokes a builtin; `None` if the name is not a builtin.
pub fn call_builtin(
    name: &str,
    args: &[Value],
    rt: &Rc<RefCell<BroRt>>,
) -> Option<RtResult<Value>> {
    let result = match name {
        "cat" => Ok(Value::str(
            &args.iter().map(Value::render).collect::<Vec<_>>().join(""),
        )),
        "sha1" => args
            .first()
            .ok_or_else(|| RtError::type_error("sha1 needs one argument"))
            .map(|v| Value::str(&sha1_hex(v.render().as_bytes()))),
        "mime_type" => {
            // (body_prefix, declared_content_type) — "-" means undeclared.
            let body = args.first().map(Value::render).unwrap_or_default();
            let declared = args.get(1).map(Value::render).unwrap_or_default();
            let declared_opt = if declared.is_empty() || declared == "-" {
                None
            } else {
                Some(declared.as_str())
            };
            Ok(Value::str(
                &netpkt::http::sniff_mime(body.as_bytes(), declared_opt)
                    .unwrap_or_else(|| "-".into()),
            ))
        }
        "qtype_name" => args
            .first()
            .ok_or_else(|| RtError::type_error("qtype_name needs one argument"))
            .and_then(Value::as_int)
            .map(|t| Value::str(&dns_types::name(t as u16))),
        "rcode_name" => args
            .first()
            .ok_or_else(|| RtError::type_error("rcode_name needs one argument"))
            .and_then(Value::as_int)
            .map(|r| Value::str(&dns_rcodes::name(r as u16))),
        "join" => {
            let sep = args.get(1).map(Value::render).unwrap_or_default();
            match args.first() {
                Some(Value::Vector(v)) => Ok(Value::str(
                    &v.borrow()
                        .iter()
                        .map(Value::render)
                        .collect::<Vec<_>>()
                        .join(&sep),
                )),
                other => Err(RtError::type_error(format!(
                    "join needs a vector, got {other:?}"
                ))),
            }
        }
        "to_lower" => args
            .first()
            .ok_or_else(|| RtError::type_error("to_lower needs one argument"))
            .map(|v| Value::str(&v.render().to_lowercase())),
        "starts_with" => {
            let s = args.first().map(Value::render).unwrap_or_default();
            let p = args.get(1).map(Value::render).unwrap_or_default();
            Ok(Value::Bool(s.starts_with(&p)))
        }
        "sub_str" => {
            let s = args.first().map(Value::render).unwrap_or_default();
            let start = args
                .get(1)
                .and_then(|v| v.as_int().ok())
                .unwrap_or(0)
                .max(0) as usize;
            let len = args
                .get(2)
                .and_then(|v| v.as_int().ok())
                .unwrap_or(0)
                .max(0) as usize;
            Ok(Value::str(
                &s.chars().skip(start).take(len).collect::<String>(),
            ))
        }
        "to_count" => {
            let s = args.first().map(Value::render).unwrap_or_default();
            Ok(Value::Int(s.trim().parse().unwrap_or(0)))
        }
        "network_time" => Ok(Value::Time(rt.borrow().net_time)),
        "log_write" => {
            let stream = args.first().map(Value::render).unwrap_or_default();
            let line = args.get(1).map(Value::render).unwrap_or_default();
            let log = rt.borrow_mut().log(&stream);
            log.write_line(&line).map(|_| Value::Null)
        }
        _ => return None,
    };
    Some(result)
}

/// Names of all builtins (used by the compiler's type table).
pub const BUILTINS: &[(&str, crate::ast::STy)] = &[
    ("cat", crate::ast::STy::Str),
    ("sha1", crate::ast::STy::Str),
    ("mime_type", crate::ast::STy::Str),
    ("qtype_name", crate::ast::STy::Str),
    ("rcode_name", crate::ast::STy::Str),
    ("join", crate::ast::STy::Str),
    ("to_lower", crate::ast::STy::Str),
    ("starts_with", crate::ast::STy::Bool),
    ("sub_str", crate::ast::STy::Str),
    ("to_count", crate::ast::STy::Count),
    ("network_time", crate::ast::STy::Time),
    ("log_write", crate::ast::STy::Void),
];

/// Which engine executes the script.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// Tree-walking AST interpreter (Bro's standard interpreter role).
    Interpreted,
    /// Compiled to HILTI, executed on the bytecode VM.
    Compiled,
}

/// The `Send` front-end half of a [`ScriptHost`] build: the merged script
/// AST plus (for the compiled engine) optimized HILTI IR. Produced once
/// by [`ScriptHost::blueprint`], consumed per worker thread by
/// [`ScriptHost::from_blueprint`].
#[derive(Clone)]
pub struct HostBlueprint {
    script: Script,
    engine: Engine,
    ir: Option<hilti::host::ProgramIr>,
}

/// One script running on one engine, fed by the event dispatcher.
pub struct ScriptHost {
    engine: Engine,
    script: Rc<Script>,
    interp: Option<Interp>,
    program: Option<hilti::Program>,
    rt: Rc<RefCell<BroRt>>,
    profiler: Option<Profiler>,
}

impl ScriptHost {
    /// Parses and loads `sources` (merged, like loading several .bro files)
    /// onto the chosen engine.
    pub fn new(sources: &[&str], engine: Engine, profiler: Option<Profiler>) -> RtResult<Self> {
        Self::new_tiered(sources, engine, profiler, None)
    }

    /// Like [`ScriptHost::new`], but selects profile-guided adaptive
    /// tiering for the compiled engine instead of the static
    /// specialization pass. `None` keeps the default static tier; the
    /// interpreter ignores the setting. Each host owns its own tier
    /// state, so parallel pipeline shards tier independently without
    /// sharing (or locking) anything.
    pub fn new_tiered(
        sources: &[&str],
        engine: Engine,
        profiler: Option<Profiler>,
        tiering: Option<hilti::tier::TieringMode>,
    ) -> RtResult<Self> {
        let mut script = Script::default();
        for s in sources {
            script = script.merge(parse_script(s)?);
        }
        Self::from_script_tiered(script, engine, profiler, tiering)
    }

    pub fn from_script(
        script: Script,
        engine: Engine,
        profiler: Option<Profiler>,
    ) -> RtResult<Self> {
        Self::from_script_tiered(script, engine, profiler, None)
    }

    pub fn from_script_tiered(
        script: Script,
        engine: Engine,
        profiler: Option<Profiler>,
        tiering: Option<hilti::tier::TieringMode>,
    ) -> RtResult<Self> {
        let script = Rc::new(script.with_builtin_records());
        let rt: Rc<RefCell<BroRt>> = Rc::new(RefCell::new(BroRt::default()));
        match engine {
            Engine::Interpreted => {
                let interp = Interp::new(script.clone(), rt.clone())?;
                Ok(ScriptHost {
                    engine,
                    script,
                    interp: Some(interp),
                    program: None,
                    rt,
                    profiler,
                })
            }
            Engine::Compiled => {
                let src = compile_script(&script)?;
                let mut program = hilti::Program::from_sources_opts(
                    &[&src],
                    hilti::passes::OptLevel::Full,
                    hilti::host::BuildOptions {
                        tiering,
                        ..Default::default()
                    },
                )?;
                // Register the builtin library as host functions.
                for (name, _) in BUILTINS {
                    let rt2 = rt.clone();
                    let name2 = name.to_string();
                    program.register_host_fn(name, move |args| {
                        call_builtin(&name2, args, &rt2)
                            .unwrap_or_else(|| Err(RtError::value("missing builtin")))
                    });
                }
                program.run_void("Bro::init_globals", &[])?;
                Ok(ScriptHost {
                    engine,
                    script,
                    interp: None,
                    program: Some(program),
                    rt,
                    profiler,
                })
            }
        }
    }

    /// Runs the shareable front end of a host build **once**: script
    /// parsing, builtin-record injection and — for the compiled engine —
    /// Bro-to-HILTI compilation plus the HILTI IR front end
    /// (link/check/optimize). The blueprint is `Clone + Send`, so a
    /// parallel dispatcher builds it on one thread and every shard
    /// materializes a private host from it with
    /// [`ScriptHost::from_blueprint`], paying only bytecode lowering and
    /// globals init instead of a full compile.
    pub fn blueprint(
        sources: &[&str],
        engine: Engine,
        tiering: Option<hilti::tier::TieringMode>,
    ) -> RtResult<HostBlueprint> {
        let mut script = Script::default();
        for s in sources {
            script = script.merge(parse_script(s)?);
        }
        let script = script.with_builtin_records();
        let ir = match engine {
            Engine::Interpreted => None,
            Engine::Compiled => {
                let src = compile_script(&script)?;
                Some(hilti::Program::front_end(
                    &[&src],
                    hilti::passes::OptLevel::Full,
                    hilti::host::BuildOptions {
                        tiering,
                        ..Default::default()
                    },
                )?)
            }
        };
        Ok(HostBlueprint { script, engine, ir })
    }

    /// Per-thread construction from a shared [`HostBlueprint`]: for the
    /// compiled engine this lowers the pre-optimized IR to bytecode,
    /// registers the builtin library and runs `Bro::init_globals`; the
    /// interpreter just instantiates over the cloned AST.
    pub fn from_blueprint(bp: &HostBlueprint, profiler: Option<Profiler>) -> RtResult<Self> {
        let script = Rc::new(bp.script.clone());
        let rt: Rc<RefCell<BroRt>> = Rc::new(RefCell::new(BroRt::default()));
        match bp.engine {
            Engine::Interpreted => {
                let interp = Interp::new(script.clone(), rt.clone())?;
                Ok(ScriptHost {
                    engine: bp.engine,
                    script,
                    interp: Some(interp),
                    program: None,
                    rt,
                    profiler,
                })
            }
            Engine::Compiled => {
                let ir = bp.ir.as_ref().expect("compiled blueprint carries IR");
                let mut program = hilti::Program::from_ir(ir.clone())?;
                for (name, _) in BUILTINS {
                    let rt2 = rt.clone();
                    let name2 = name.to_string();
                    program.register_host_fn(name, move |args| {
                        call_builtin(&name2, args, &rt2)
                            .unwrap_or_else(|| Err(RtError::value("missing builtin")))
                    });
                }
                program.run_void("Bro::init_globals", &[])?;
                Ok(ScriptHost {
                    engine: bp.engine,
                    script,
                    interp: None,
                    program: Some(program),
                    rt,
                    profiler,
                })
            }
        }
    }

    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Tier-up and inline-cache state of the compiled engine, if any.
    pub fn tier_report(&self) -> Option<hilti::tier::TierReport> {
        self.program.as_ref().map(|p| p.context().tier_report())
    }

    /// Applies resource limits (fuel, heap, call depth) to whichever
    /// engine runs the script. Re-applying resets the meters, so callers
    /// can use this as a per-dispatch budget.
    pub fn set_limits(&mut self, limits: hilti_rt::limits::ResourceLimits) {
        match self.engine {
            Engine::Interpreted => self.interp.as_mut().expect("engine").set_limits(limits),
            Engine::Compiled => self.program.as_mut().expect("engine").set_limits(limits),
        }
    }

    /// Attaches a telemetry bundle to the script engine. The compiled
    /// engine reports retired instructions per dispatch and emits
    /// resource-limit events to the sink; the reference interpreter has no
    /// instruction counter and only the pipeline-level metrics apply.
    pub fn set_telemetry(&mut self, telemetry: &hilti_rt::telemetry::Telemetry) {
        if self.engine == Engine::Compiled {
            self.program
                .as_mut()
                .expect("engine")
                .context_mut()
                .set_telemetry(telemetry);
        }
    }

    /// Advances script network time (drives container expiration).
    pub fn advance_time(&mut self, t: Time) -> RtResult<()> {
        match self.engine {
            Engine::Interpreted => {
                self.interp.as_mut().expect("engine").advance_time(t);
                Ok(())
            }
            Engine::Compiled => {
                self.rt.borrow_mut().advance(t);
                self.program
                    .as_mut()
                    .expect("engine")
                    .run_void("Bro::set_time", &[Value::Time(t)])
            }
        }
    }

    /// Dispatches one protocol event to the script's handlers.
    pub fn dispatch_event(&mut self, ev: &Event) -> RtResult<()> {
        self.advance_time(ev.ts())?;
        // Conversion of host event data into script values: free-standing
        // for the interpreter, but the measured *glue* for HILTI.
        let (name, args) = {
            let _g = (self.engine == Engine::Compiled)
                .then(|| self.profiler.as_ref().map(|p| p.enter(Component::Glue)))
                .flatten();
            // Figure 8 compatibility: if the script declares
            // `event connection_established(c: connection)`, hand it the
            // record form instead of the flat argument list.
            if let Event::ConnectionEstablished { uid, id, .. } = ev {
                let record_style = self
                    .script
                    .handlers_for("connection_established")
                    .first()
                    .map(|h| h.params.len() == 1)
                    .unwrap_or(false);
                if record_style {
                    ("connection_established", vec![connection_value(uid, id)])
                } else {
                    event_args(ev)
                }
            } else {
                event_args(ev)
            }
        };
        self.dispatch(name, &args)
    }

    /// Dispatches a raw event by name.
    pub fn dispatch(&mut self, event: &str, args: &[Value]) -> RtResult<()> {
        let _s = self
            .profiler
            .as_ref()
            .map(|p| p.enter(Component::ScriptExecution));
        match self.engine {
            Engine::Interpreted => self.interp.as_mut().expect("engine").dispatch(event, args),
            Engine::Compiled => self
                .program
                .as_mut()
                .expect("engine")
                .run_hook(&format!("Bro::event_{event}"), args),
        }
    }

    /// Signals end of input (`bro_done`).
    pub fn done(&mut self) -> RtResult<()> {
        self.dispatch("bro_done", &[])
    }

    /// Calls a script function (used by the Fibonacci benchmark).
    pub fn call(&mut self, func: &str, args: &[Value]) -> RtResult<Value> {
        let _s = self
            .profiler
            .as_ref()
            .map(|p| p.enter(Component::ScriptExecution));
        match self.engine {
            Engine::Interpreted => self.interp.as_mut().expect("engine").call(func, args),
            Engine::Compiled => self
                .program
                .as_mut()
                .expect("engine")
                .run(&format!("Bro::{func}"), args),
        }
    }

    /// Takes accumulated `print` output.
    pub fn take_output(&mut self) -> Vec<String> {
        match self.engine {
            Engine::Interpreted => std::mem::take(&mut self.interp.as_mut().expect("engine").out),
            Engine::Compiled => self.program.as_mut().expect("engine").take_output(),
        }
    }

    /// Lines of a named log stream.
    pub fn log_lines(&self, name: &str) -> Vec<String> {
        self.rt.borrow().log_lines(name)
    }

    /// Number of lines written to a named log stream so far.
    pub fn log_len(&self, name: &str) -> usize {
        self.rt.borrow().logs.get(name).map_or(0, |l| l.len())
    }

    /// Lines of a named log stream from index `start` on. Incremental
    /// readers (the sharded pipeline attributing lines to packets) pair
    /// this with [`ScriptHost::log_len`].
    pub fn log_lines_from(&self, name: &str, start: usize) -> Vec<String> {
        self.rt
            .borrow()
            .logs
            .get(name)
            .map(|l| l.lines_from(start))
            .unwrap_or_default()
    }
}

/// Builds the Bro `connection` record value (nested `conn_id`) for
/// record-style handlers — Figure 8's `c: connection` parameter.
pub fn connection_value(uid: &str, id: &netpkt::events::ConnId) -> Value {
    use hilti::value::StructVal;
    let conn_id = Value::Struct(Rc::new(RefCell::new(StructVal {
        type_name: Rc::from("conn_id"),
        fields: vec![
            Value::Addr(id.orig_h),
            Value::Port(id.orig_p),
            Value::Addr(id.resp_h),
            Value::Port(id.resp_p),
        ],
    })));
    Value::Struct(Rc::new(RefCell::new(StructVal {
        type_name: Rc::from("connection"),
        fields: vec![Value::str(uid), conn_id],
    })))
}

/// Converts a host event into (event name, script argument values) — the
/// canonical event signatures scripts are written against.
pub fn event_args(ev: &Event) -> (&'static str, Vec<Value>) {
    match ev {
        Event::ConnectionEstablished { uid, id, .. } => (
            "connection_established",
            vec![
                Value::str(uid),
                Value::Addr(id.orig_h),
                Value::Port(id.orig_p),
                Value::Addr(id.resp_h),
                Value::Port(id.resp_p),
            ],
        ),
        Event::ConnectionFinished { uid, .. } => ("connection_finished", vec![Value::str(uid)]),
        Event::HttpRequest {
            uid,
            id,
            method,
            uri,
            version,
            ..
        } => (
            "http_request",
            vec![
                Value::str(uid),
                Value::Addr(id.orig_h),
                Value::Addr(id.resp_h),
                Value::str(method),
                Value::str(uri),
                Value::str(version),
            ],
        ),
        Event::HttpReply {
            uid,
            id,
            status,
            reason,
            version,
            ..
        } => (
            "http_reply",
            vec![
                Value::str(uid),
                Value::Addr(id.orig_h),
                Value::Addr(id.resp_h),
                Value::Int(i64::from(*status)),
                Value::str(reason),
                Value::str(version),
            ],
        ),
        Event::HttpHeader {
            uid,
            is_orig,
            name,
            value,
            ..
        } => (
            "http_header",
            vec![
                Value::str(uid),
                Value::Bool(*is_orig),
                Value::str(name),
                Value::str(value),
            ],
        ),
        Event::HttpBodyData {
            uid, is_orig, data, ..
        } => (
            "http_body_data",
            vec![
                Value::str(uid),
                Value::Bool(*is_orig),
                // Byte-to-char (latin-1 style) mapping: bijective, so the
                // script-level body is independent of how the parser
                // chunked it (the standard stack delivers per-packet
                // chunks, BinPAC++ one blob; hashes must still agree).
                Value::str(&data.iter().map(|&b| b as char).collect::<String>()),
            ],
        ),
        Event::HttpMessageDone {
            uid,
            is_orig,
            body_len,
            ..
        } => (
            "http_message_done",
            vec![
                Value::str(uid),
                Value::Bool(*is_orig),
                Value::Int(*body_len as i64),
            ],
        ),
        Event::DnsRequest {
            uid,
            id,
            trans_id,
            query,
            qtype,
            ..
        } => (
            "dns_request",
            vec![
                Value::str(uid),
                Value::Addr(id.orig_h),
                Value::Addr(id.resp_h),
                Value::Int(i64::from(*trans_id)),
                Value::str(query),
                Value::Int(i64::from(*qtype)),
            ],
        ),
        Event::DnsReply {
            uid,
            id,
            trans_id,
            rcode,
            answers,
            ..
        } => {
            let rdata: Vec<Value> = answers.iter().map(|a| Value::str(&a.rdata)).collect();
            let ttls: Vec<Value> = answers
                .iter()
                .map(|a| Value::Int(i64::from(a.ttl)))
                .collect();
            (
                "dns_reply",
                vec![
                    Value::str(uid),
                    Value::Addr(id.orig_h),
                    Value::Addr(id.resp_h),
                    Value::Int(i64::from(*trans_id)),
                    Value::Int(i64::from(*rcode)),
                    Value::Vector(Rc::new(RefCell::new(rdata))),
                    Value::Vector(Rc::new(RefCell::new(ttls))),
                ],
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_shared_semantics() {
        let rt = Rc::new(RefCell::new(BroRt::default()));
        let v = call_builtin("cat", &[Value::str("a"), Value::Int(1)], &rt)
            .unwrap()
            .unwrap();
        assert_eq!(v.render(), "a1");
        let v = call_builtin("sha1", &[Value::str("abc")], &rt)
            .unwrap()
            .unwrap();
        assert_eq!(v.render(), "a9993e364706816aba3e25717850c26c9cd0d89d");
        let v = call_builtin("qtype_name", &[Value::Int(1)], &rt)
            .unwrap()
            .unwrap();
        assert_eq!(v.render(), "A");
        let v = call_builtin("to_count", &[Value::str("42")], &rt)
            .unwrap()
            .unwrap();
        assert!(v.equals(&Value::Int(42)));
        assert!(call_builtin("not_a_builtin", &[], &rt).is_none());
    }

    #[test]
    fn log_write_accumulates() {
        let rt = Rc::new(RefCell::new(BroRt::default()));
        call_builtin(
            "log_write",
            &[Value::str("x.log"), Value::str("line1")],
            &rt,
        )
        .unwrap()
        .unwrap();
        assert_eq!(rt.borrow().log_lines("x.log"), vec!["line1"]);
    }

    #[test]
    fn mime_builtin_magic_and_fallback() {
        let rt = Rc::new(RefCell::new(BroRt::default()));
        let v = call_builtin(
            "mime_type",
            &[Value::str("GIF89a..."), Value::str("-")],
            &rt,
        )
        .unwrap()
        .unwrap();
        assert_eq!(v.render(), "image/gif");
        let v = call_builtin(
            "mime_type",
            &[Value::str("opaque"), Value::str("text/css")],
            &rt,
        )
        .unwrap()
        .unwrap();
        assert_eq!(v.render(), "text/css");
        let v = call_builtin("mime_type", &[Value::str("opaque"), Value::str("-")], &rt)
            .unwrap()
            .unwrap();
        assert_eq!(v.render(), "-");
    }

    #[test]
    fn event_conversion_shapes() {
        use hilti_rt::addr::Port;
        let id = netpkt::events::ConnId {
            orig_h: "10.0.0.1".parse().unwrap(),
            orig_p: Port::tcp(40000),
            resp_h: "1.2.3.4".parse().unwrap(),
            resp_p: Port::tcp(80),
        };
        let (name, args) = event_args(&Event::HttpRequest {
            ts: Time::from_secs(1),
            uid: "C1".into(),
            id,
            method: "GET".into(),
            uri: "/".into(),
            version: "1.1".into(),
        });
        assert_eq!(name, "http_request");
        assert_eq!(args.len(), 6);
        assert_eq!(args[3].render(), "GET");
    }
}
