//! The tree-walking script interpreter — the role of Bro's standard script
//! interpreter in §6.5.
//!
//! Dynamically typed evaluation straight off the AST: variables in hash
//! maps, containers as runtime-discriminated values, every operator
//! re-dispatched per evaluation. Shares the value model
//! ([`hilti::value::Value`]) and the builtin library ([`crate::host`])
//! with the compiled engine, so outputs are comparable line for line
//! (Table 3).

use std::collections::HashMap;
use std::rc::Rc;

use hilti::value::{Key, MapVal, SetVal, Value};
use hilti_rt::containers::ExpireStrategy;
use hilti_rt::error::{RtError, RtResult};
use hilti_rt::limits::{FuelMeter, ResourceLimits};
use hilti_rt::time::{Interval, Time};

use crate::ast::*;
use crate::host::{call_builtin, BroRt};

/// Flow control outcome of a statement.
enum Flow {
    Normal,
    Return(Value),
}

/// Containers registered for expiration.
enum Expiring {
    Set(Rc<std::cell::RefCell<SetVal>>),
    Map(Rc<std::cell::RefCell<MapVal>>),
}

/// The interpreter engine.
pub struct Interp {
    script: Rc<Script>,
    globals: HashMap<String, Value>,
    expiring: Vec<Expiring>,
    rt: Rc<std::cell::RefCell<BroRt>>,
    /// `print` output.
    pub out: Vec<String>,
    depth: usize,
    /// Loop-iteration fuel, shared across the whole script run. Defaults
    /// to a generous fail-safe so runaway `while` loops still terminate.
    fuel: FuelMeter,
}

const MAX_DEPTH: usize = 60;

/// Default loop fuel when no explicit limit is configured.
const DEFAULT_FUEL: u64 = 10_000_000;

impl Interp {
    /// Initializes globals (containers instantiated, timeouts attached,
    /// scalar initializers evaluated).
    pub fn new(script: Rc<Script>, rt: Rc<std::cell::RefCell<BroRt>>) -> RtResult<Interp> {
        let mut interp = Interp {
            script: script.clone(),
            globals: HashMap::new(),
            expiring: Vec::new(),
            rt,
            out: Vec::new(),
            depth: 0,
            fuel: FuelMeter::new(Some(DEFAULT_FUEL)),
        };
        for g in &script.globals {
            let v = match &g.ty {
                STy::Set(_) => {
                    let mut s = SetVal::new();
                    if let Some(attr) = g.expire {
                        let (strat, iv) = expire(attr);
                        s.set_timeout(strat, iv);
                    }
                    let rc = Rc::new(std::cell::RefCell::new(s));
                    if g.expire.is_some() {
                        interp.expiring.push(Expiring::Set(rc.clone()));
                    }
                    Value::Set(rc)
                }
                STy::Table(_, _) => {
                    let mut m = MapVal::new();
                    if let Some(attr) = g.expire {
                        let (strat, iv) = expire(attr);
                        m.set_timeout(strat, iv);
                    }
                    let rc = Rc::new(std::cell::RefCell::new(m));
                    if g.expire.is_some() {
                        interp.expiring.push(Expiring::Map(rc.clone()));
                    }
                    Value::Map(rc)
                }
                STy::Vector(_) => Value::Vector(Rc::new(std::cell::RefCell::new(Vec::new()))),
                _ => match &g.init {
                    Some(e) => {
                        let mut locals = HashMap::new();
                        interp.eval(e, &mut locals)?
                    }
                    None => default_value(&g.ty),
                },
            };
            interp.globals.insert(g.name.clone(), v);
        }
        Ok(interp)
    }

    /// Installs resource limits: an explicit fuel limit replaces the
    /// default fail-safe loop budget (absent = unlimited).
    pub fn set_limits(&mut self, limits: ResourceLimits) {
        self.fuel = FuelMeter::new(limits.fuel);
    }

    /// Remaining loop fuel.
    pub fn fuel_remaining(&self) -> u64 {
        self.fuel.remaining()
    }

    /// Advances network time, expiring container state.
    pub fn advance_time(&mut self, t: Time) {
        self.rt.borrow_mut().advance(t);
        for e in &self.expiring {
            match e {
                Expiring::Set(s) => {
                    s.borrow_mut().advance(t);
                }
                Expiring::Map(m) => {
                    m.borrow_mut().advance(t);
                }
            }
        }
    }

    fn now(&self) -> Time {
        self.rt.borrow().net_time
    }

    /// Dispatches an event to all matching handlers.
    pub fn dispatch(&mut self, event: &str, args: &[Value]) -> RtResult<()> {
        let script = self.script.clone();
        for h in script.handlers_for(event) {
            if h.params.len() != args.len() {
                return Err(RtError::type_error(format!(
                    "event {event}: handler expects {} args, got {}",
                    h.params.len(),
                    args.len()
                )));
            }
            let mut locals: HashMap<String, Value> = h
                .params
                .iter()
                .zip(args)
                .map(|((n, _), v)| (n.clone(), v.clone()))
                .collect();
            self.run_block(&h.body, &mut locals)?;
        }
        Ok(())
    }

    /// Calls a script function.
    pub fn call(&mut self, name: &str, args: &[Value]) -> RtResult<Value> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(RtError::runtime("script recursion limit exceeded"));
        }
        let result = self.call_inner(name, args);
        self.depth -= 1;
        result
    }

    fn call_inner(&mut self, name: &str, args: &[Value]) -> RtResult<Value> {
        let script = self.script.clone();
        let Some(f) = script.functions.iter().find(|f| f.name == name) else {
            // Builtin?
            if let Some(r) = call_builtin(name, args, &self.rt) {
                return r;
            }
            return Err(RtError::value(format!("unknown function {name}")));
        };
        if f.params.len() != args.len() {
            return Err(RtError::type_error(format!(
                "function {name}: expected {} args, got {}",
                f.params.len(),
                args.len()
            )));
        }
        let mut locals: HashMap<String, Value> = f
            .params
            .iter()
            .zip(args)
            .map(|((n, _), v)| (n.clone(), v.clone()))
            .collect();
        match self.run_block(&f.body, &mut locals)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(Value::Null),
        }
    }

    fn run_block(&mut self, stmts: &[Stmt], locals: &mut HashMap<String, Value>) -> RtResult<Flow> {
        for s in stmts {
            match self.run_stmt(s, locals)? {
                Flow::Normal => {}
                ret => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn run_stmt(&mut self, stmt: &Stmt, locals: &mut HashMap<String, Value>) -> RtResult<Flow> {
        match stmt {
            Stmt::Local(name, _ty, init) => {
                let v = self.eval(init, locals)?;
                locals.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Assign(target, e) => {
                let v = self.eval(e, locals)?;
                match target {
                    Expr::Var(name) => {
                        if locals.contains_key(name) {
                            locals.insert(name.clone(), v);
                        } else if self.globals.contains_key(name) {
                            self.globals.insert(name.clone(), v);
                        } else {
                            locals.insert(name.clone(), v);
                        }
                    }
                    Expr::Index(container, idx) => {
                        let c = self.eval(container, locals)?;
                        let i = self.eval(idx, locals)?;
                        let now = self.now();
                        match &c {
                            Value::Map(m) => {
                                m.borrow_mut().insert(i.to_key()?, v, now);
                            }
                            Value::Vector(vec) => {
                                let idx = i.as_int()?.max(0) as usize;
                                let mut vec = vec.borrow_mut();
                                if idx == vec.len() {
                                    vec.push(v);
                                } else if idx < vec.len() {
                                    vec[idx] = v;
                                } else {
                                    return Err(RtError::index(format!(
                                        "vector index {idx} out of range"
                                    )));
                                }
                            }
                            other => {
                                return Err(RtError::type_error(format!(
                                    "cannot index-assign into {}",
                                    other.type_name()
                                )))
                            }
                        }
                    }
                    Expr::Field(base, field) => {
                        let rec = self.eval(base, locals)?;
                        self.record_set(&rec, field, v)?;
                    }
                    other => {
                        return Err(RtError::type_error(format!(
                            "bad assignment target {other:?}"
                        )))
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Add(set, k) => {
                let key = self.eval(k, locals)?.to_key()?;
                let now = self.now();
                match self.lookup(set, locals)? {
                    Value::Set(s) => {
                        s.borrow_mut().insert(key, now);
                        Ok(Flow::Normal)
                    }
                    other => Err(RtError::type_error(format!(
                        "add on {}, expected set",
                        other.type_name()
                    ))),
                }
            }
            Stmt::Delete(name, k) => {
                let key = self.eval(k, locals)?.to_key()?;
                match self.lookup(name, locals)? {
                    Value::Set(s) => {
                        s.borrow_mut().remove(&key);
                        Ok(Flow::Normal)
                    }
                    Value::Map(m) => {
                        m.borrow_mut().remove(&key);
                        Ok(Flow::Normal)
                    }
                    other => Err(RtError::type_error(format!(
                        "delete on {}",
                        other.type_name()
                    ))),
                }
            }
            Stmt::If(cond, then, els) => {
                if self.eval(cond, locals)?.as_bool()? {
                    self.run_block(then, locals)
                } else {
                    self.run_block(els, locals)
                }
            }
            Stmt::For(var, container, body) => {
                let c = self.eval(container, locals)?;
                // Deterministic (sorted) iteration order, matching the
                // compiled engine's sorted key lists.
                let items: Vec<Value> = match &c {
                    Value::Set(s) => {
                        let mut keys: Vec<Key> = s.borrow().iter().cloned().collect();
                        keys.sort();
                        keys.iter().map(Key::to_value).collect()
                    }
                    Value::Map(m) => {
                        let mut keys: Vec<Key> =
                            m.borrow().iter().map(|(k, _)| k.clone()).collect();
                        keys.sort();
                        keys.iter().map(Key::to_value).collect()
                    }
                    Value::Vector(v) => v.borrow().clone(),
                    other => {
                        return Err(RtError::type_error(format!(
                            "for over {}",
                            other.type_name()
                        )))
                    }
                };
                for item in items {
                    locals.insert(var.clone(), item);
                    match self.run_block(body, locals)? {
                        Flow::Normal => {}
                        ret => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::While(cond, body) => {
                while self.eval(cond, locals)?.as_bool()? {
                    self.fuel.charge(1)?;
                    match self.run_block(body, locals)? {
                        Flow::Normal => {}
                        ret => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Print(args) => {
                let line = args
                    .iter()
                    .map(|e| self.eval(e, locals).map(|v| v.render()))
                    .collect::<RtResult<Vec<_>>>()?
                    .join(", ");
                self.out.push(line);
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, locals)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::ExprStmt(e) => {
                self.eval(e, locals)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn lookup(&self, name: &str, locals: &HashMap<String, Value>) -> RtResult<Value> {
        locals
            .get(name)
            .or_else(|| self.globals.get(name))
            .cloned()
            .ok_or_else(|| RtError::value(format!("undefined variable {name}")))
    }

    fn eval(&mut self, e: &Expr, locals: &mut HashMap<String, Value>) -> RtResult<Value> {
        Ok(match e {
            Expr::Count(c) => Value::Int(*c as i64),
            Expr::Int(i) => Value::Int(*i),
            Expr::Double(d) => Value::Double(*d),
            Expr::Str(s) => Value::str(s),
            Expr::Bool(b) => Value::Bool(*b),
            Expr::IntervalLit(secs) => Value::Interval(Interval::from_secs_f64(*secs)),
            Expr::Var(name) => self.lookup(name, locals)?,
            Expr::VectorCtor => Value::Vector(Rc::new(std::cell::RefCell::new(Vec::new()))),
            Expr::Index(c, i) => {
                let c = self.eval(c, locals)?;
                let i = self.eval(i, locals)?;
                let now = self.now();
                match &c {
                    Value::Map(m) => m
                        .borrow_mut()
                        .get(&i.to_key()?, now)
                        .cloned()
                        .ok_or_else(|| RtError::index("no such table element"))?,
                    Value::Vector(v) => {
                        let idx = i.as_int()?;
                        v.borrow()
                            .get(idx.max(0) as usize)
                            .cloned()
                            .ok_or_else(|| {
                                RtError::index(format!("vector index {idx} out of range"))
                            })?
                    }
                    other => {
                        return Err(RtError::type_error(format!(
                            "cannot index {}",
                            other.type_name()
                        )))
                    }
                }
            }
            Expr::In(k, c) => {
                let key = self.eval(k, locals)?.to_key()?;
                let c = self.eval(c, locals)?;
                let now = self.now();
                match &c {
                    // `in` on a set counts as an access (refreshes
                    // read-expire deadlines), matching `set.exists`.
                    Value::Set(s) => Value::Bool(s.borrow_mut().exists(&key, now)),
                    Value::Map(m) => Value::Bool(m.borrow().contains(&key)),
                    other => {
                        return Err(RtError::type_error(format!(
                            "'in' on {}",
                            other.type_name()
                        )))
                    }
                }
            }
            Expr::Size(inner) => {
                let v = self.eval(inner, locals)?;
                Value::Int(match &v {
                    Value::Set(s) => s.borrow().len() as i64,
                    Value::Map(m) => m.borrow().len() as i64,
                    Value::Vector(x) => x.borrow().len() as i64,
                    Value::String(s) => s.chars().count() as i64,
                    Value::Bytes(b) => b.len() as i64,
                    other => {
                        return Err(RtError::type_error(format!(
                            "|...| on {}",
                            other.type_name()
                        )))
                    }
                })
            }
            Expr::Not(inner) => Value::Bool(!self.eval(inner, locals)?.as_bool()?),
            Expr::Neg(inner) => Value::Int(-self.eval(inner, locals)?.as_int()?),
            Expr::Bin(op, l, r) => {
                // Short-circuit booleans.
                if *op == BinOp::And {
                    return Ok(Value::Bool(
                        self.eval(l, locals)?.as_bool()? && self.eval(r, locals)?.as_bool()?,
                    ));
                }
                if *op == BinOp::Or {
                    return Ok(Value::Bool(
                        self.eval(l, locals)?.as_bool()? || self.eval(r, locals)?.as_bool()?,
                    ));
                }
                let lv = self.eval(l, locals)?;
                let rv = self.eval(r, locals)?;
                binop(*op, &lv, &rv)?
            }
            Expr::Call(name, args) => {
                let vals = args
                    .iter()
                    .map(|a| self.eval(a, locals))
                    .collect::<RtResult<Vec<_>>>()?;
                self.call(name, &vals)?
            }
            Expr::Field(base, field) => {
                let b = self.eval(base, locals)?;
                self.record_get(&b, field)?
            }
            Expr::RecordCtor(name, fields) => {
                let layout = self
                    .script
                    .record(name)
                    .ok_or_else(|| RtError::type_error(format!("unknown record type {name}")))?
                    .to_vec();
                let mut slots = vec![Value::Null; layout.len()];
                for (f, e) in fields {
                    let idx = layout
                        .iter()
                        .position(|(n, _)| n == f)
                        .ok_or_else(|| RtError::index(format!("record {name} has no field {f}")))?;
                    slots[idx] = self.eval(e, locals)?;
                }
                Value::Struct(Rc::new(std::cell::RefCell::new(hilti::value::StructVal {
                    type_name: Rc::from(name.as_str()),
                    fields: slots,
                })))
            }
        })
    }

    /// Record field read (`r$f`).
    fn record_get(&self, v: &Value, field: &str) -> RtResult<Value> {
        let Value::Struct(s) = v else {
            return Err(RtError::type_error(format!(
                "$ access on {}",
                v.type_name()
            )));
        };
        let s = s.borrow();
        let layout = self
            .script
            .record(&s.type_name)
            .ok_or_else(|| RtError::type_error(format!("unknown record {}", s.type_name)))?;
        let idx = layout.iter().position(|(n, _)| n == field).ok_or_else(|| {
            RtError::index(format!("record {} has no field {field}", s.type_name))
        })?;
        Ok(s.fields[idx].clone())
    }

    /// Record field write (`r$f = v`).
    fn record_set(&self, rec: &Value, field: &str, v: Value) -> RtResult<()> {
        let Value::Struct(s) = rec else {
            return Err(RtError::type_error(format!(
                "$ assignment on {}",
                rec.type_name()
            )));
        };
        let idx = {
            let s = s.borrow();
            self.script
                .record(&s.type_name)
                .and_then(|layout| layout.iter().position(|(n, _)| n == field))
                .ok_or_else(|| {
                    RtError::index(format!("record {} has no field {field}", s.type_name))
                })?
        };
        s.borrow_mut().fields[idx] = v;
        Ok(())
    }
}

/// Evaluates a non-boolean binary operator with script semantics.
pub fn binop(op: BinOp, l: &Value, r: &Value) -> RtResult<Value> {
    use BinOp::*;
    Ok(match op {
        Eq => Value::Bool(l.equals(r)),
        Ne => Value::Bool(!l.equals(r)),
        Add => match (l, r) {
            (Value::String(a), Value::String(b)) => Value::str(&format!("{a}{b}")),
            (Value::Double(_), _) | (_, Value::Double(_)) => {
                Value::Double(l.as_double()? + r.as_double()?)
            }
            (Value::Time(t), Value::Interval(i)) => Value::Time(*t + *i),
            (Value::Interval(a), Value::Interval(b)) => Value::Interval(*a + *b),
            _ => Value::Int(l.as_int()?.wrapping_add(r.as_int()?)),
        },
        Sub => match (l, r) {
            (Value::Double(_), _) | (_, Value::Double(_)) => {
                Value::Double(l.as_double()? - r.as_double()?)
            }
            (Value::Time(a), Value::Time(b)) => Value::Interval(*a - *b),
            (Value::Interval(a), Value::Interval(b)) => Value::Interval(*a - *b),
            _ => Value::Int(l.as_int()?.wrapping_sub(r.as_int()?)),
        },
        Mul => match (l, r) {
            (Value::Double(_), _) | (_, Value::Double(_)) => {
                Value::Double(l.as_double()? * r.as_double()?)
            }
            _ => Value::Int(l.as_int()?.wrapping_mul(r.as_int()?)),
        },
        Div => match (l, r) {
            (Value::Double(_), _) | (_, Value::Double(_)) => {
                let d = r.as_double()?;
                if d == 0.0 {
                    return Err(RtError::arithmetic("division by zero"));
                }
                Value::Double(l.as_double()? / d)
            }
            _ => {
                let d = r.as_int()?;
                if d == 0 {
                    return Err(RtError::arithmetic("division by zero"));
                }
                Value::Int(l.as_int()?.wrapping_div(d))
            }
        },
        Mod => {
            let d = r.as_int()?;
            if d == 0 {
                return Err(RtError::arithmetic("modulo by zero"));
            }
            Value::Int(l.as_int()?.wrapping_rem(d))
        }
        Lt | Gt | Le | Ge => {
            let c = compare(l, r)?;
            Value::Bool(match op {
                Lt => c < 0,
                Gt => c > 0,
                Le => c <= 0,
                _ => c >= 0,
            })
        }
        And | Or => unreachable!("short-circuited by caller"),
    })
}

fn compare(l: &Value, r: &Value) -> RtResult<i32> {
    Ok(match (l, r) {
        (Value::Int(a), Value::Int(b)) => (a.cmp(b)) as i32,
        (Value::Double(_), _) | (_, Value::Double(_)) => {
            let (a, b) = (l.as_double()?, r.as_double()?);
            if a < b {
                -1
            } else if a > b {
                1
            } else {
                0
            }
        }
        (Value::String(a), Value::String(b)) => a.cmp(b) as i32,
        (Value::Time(a), Value::Time(b)) => a.cmp(b) as i32,
        (Value::Interval(a), Value::Interval(b)) => a.cmp(b) as i32,
        _ => {
            return Err(RtError::type_error(format!(
                "cannot compare {} with {}",
                l.type_name(),
                r.type_name()
            )))
        }
    })
}

fn expire(attr: ExpireAttr) -> (ExpireStrategy, Interval) {
    match attr {
        ExpireAttr::Create(iv) => (ExpireStrategy::Create, iv),
        ExpireAttr::Read(iv) => (ExpireStrategy::Access, iv),
    }
}

fn default_value(ty: &STy) -> Value {
    match ty {
        STy::Bool => Value::Bool(false),
        STy::Count | STy::Int => Value::Int(0),
        STy::Double => Value::Double(0.0),
        STy::Str => Value::str(""),
        STy::Time => Value::Time(Time::ZERO),
        STy::Interval => Value::Interval(Interval::ZERO),
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_script;

    fn engine(src: &str) -> Interp {
        let script = Rc::new(parse_script(src).unwrap());
        let rt = Rc::new(std::cell::RefCell::new(BroRt::default()));
        Interp::new(script, rt).unwrap()
    }

    #[test]
    fn figure8_track_bro() {
        let mut i = engine(
            r#"
global hosts: set[addr];

event connection_established(uid: string, orig_h: addr, orig_p: port, resp_h: addr, resp_p: port) {
    add hosts[resp_h];
}

event bro_done() {
    for ( i in hosts )
        print i;
}
"#,
        );
        let mk = |resp: &str| {
            vec![
                Value::str("C1"),
                Value::Addr("10.0.0.1".parse().unwrap()),
                Value::Port(hilti_rt::addr::Port::tcp(40000)),
                Value::Addr(resp.parse().unwrap()),
                Value::Port(hilti_rt::addr::Port::tcp(80)),
            ]
        };
        // Three servers, one duplicated (Figure 8c has 3 unique).
        for resp in [
            "208.80.152.118",
            "208.80.152.2",
            "208.80.152.3",
            "208.80.152.2",
        ] {
            i.dispatch("connection_established", &mk(resp)).unwrap();
        }
        i.dispatch("bro_done", &[]).unwrap();
        // Deterministic sorted iteration: numeric address order.
        assert_eq!(
            i.out,
            vec!["208.80.152.2", "208.80.152.3", "208.80.152.118"]
        );
    }

    #[test]
    fn fibonacci() {
        let mut i = engine(
            r#"
function fib(n: count): count {
    if ( n < 2 )
        return n;
    return fib(n - 1) + fib(n - 2);
}
"#,
        );
        let v = i.call("fib", &[Value::Int(20)]).unwrap();
        assert!(v.equals(&Value::Int(6765)));
    }

    #[test]
    fn tables_count_and_expire() {
        let mut i = engine(
            r#"
global seen: table[string] of count &create_expire=10.0;

event tick(k: string) {
    if ( k in seen )
        seen[k] = seen[k] + 1;
    else
        seen[k] = 1;
}

event report() {
    for ( k in seen )
        print k, seen[k];
}
"#,
        );
        i.advance_time(Time::from_secs(1));
        i.dispatch("tick", &[Value::str("a")]).unwrap();
        i.dispatch("tick", &[Value::str("a")]).unwrap();
        i.dispatch("tick", &[Value::str("b")]).unwrap();
        i.dispatch("report", &[]).unwrap();
        assert_eq!(i.out, vec!["a, 2", "b, 1"]);
        i.out.clear();
        // Create-expire: entries die 10s after creation.
        i.advance_time(Time::from_secs(12));
        i.dispatch("report", &[]).unwrap();
        assert!(i.out.is_empty());
    }

    #[test]
    fn vectors_append_and_iterate() {
        let mut i = engine(
            r#"
event go() {
    local v: vector of string = vector();
    v[|v|] = "x";
    v[|v|] = "y";
    for ( s in v )
        print s;
    print |v|;
}
"#,
        );
        i.dispatch("go", &[]).unwrap();
        assert_eq!(i.out, vec!["x", "y", "2"]);
    }

    #[test]
    fn while_and_arith() {
        let mut i = engine(
            r#"
function sum_to(n: count): count {
    local s = 0;
    local i = 1;
    while ( i <= n ) {
        s = s + i;
        i = i + 1;
    }
    return s;
}
"#,
        );
        let v = i.call("sum_to", &[Value::Int(100)]).unwrap();
        assert!(v.equals(&Value::Int(5050)));
    }

    #[test]
    fn string_concat_and_builtins() {
        let mut i = engine(
            r#"
event go(name: string) {
    print "hello " + name;
    print cat("a=", 1, " b=", 2.5);
    print to_lower("ABC");
}
"#,
        );
        i.dispatch("go", &[Value::str("world")]).unwrap();
        assert_eq!(i.out, vec!["hello world", "a=1 b=2.5", "abc"]);
    }

    #[test]
    fn short_circuit_protects() {
        let mut i = engine(
            r#"
global t: table[string] of count;
event go(k: string) {
    if ( k in t && t[k] > 2 )
        print "big";
    else
        print "absent-or-small";
}
"#,
        );
        i.dispatch("go", &[Value::str("nope")]).unwrap();
        assert_eq!(i.out, vec!["absent-or-small"]);
    }

    #[test]
    fn missing_table_entry_errors() {
        let mut i =
            engine("global t: table[string] of count;\nevent go() { print t[\"missing\"]; }");
        assert!(i.dispatch("go", &[]).is_err());
    }

    #[test]
    fn multiple_handlers_run_in_order() {
        let mut i = engine(
            r#"
event e() { print "first"; }
event e() { print "second"; }
"#,
        );
        i.dispatch("e", &[]).unwrap();
        assert_eq!(i.out, vec!["first", "second"]);
    }

    #[test]
    fn recursion_limit() {
        let mut i = engine("function f(): count { return f(); }");
        assert!(i.call("f", &[]).is_err());
    }
}
