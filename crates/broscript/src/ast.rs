//! The script-language AST.
//!
//! A deliberately Bro-shaped surface: `global` declarations with container
//! attributes, `event` handlers, `function`s, and statement/expression
//! forms matching the paper's Figure 8 example (`add hosts[...]`, `for (i
//! in hosts) print i;`).

use hilti_rt::time::Interval;

/// Script-level types.
#[derive(Clone, Debug, PartialEq)]
pub enum STy {
    Bool,
    /// Unsigned counter (Bro's `count`); both map to int<64> in HILTI.
    Count,
    Int,
    Double,
    Str,
    Addr,
    Port,
    Time,
    Interval,
    Set(Box<STy>),
    Table(Box<STy>, Box<STy>),
    Vector(Box<STy>),
    /// Named record type (Bro's `record { ... }`).
    Record(String),
    /// No value (function return).
    Void,
}

impl STy {
    pub fn is_container(&self) -> bool {
        matches!(self, STy::Set(_) | STy::Table(_, _) | STy::Vector(_))
    }
}

/// Container expiration attribute (`&create_expire=300.0`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExpireAttr {
    Create(Interval),
    Read(Interval),
}

/// A global declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct Global {
    pub name: String,
    pub ty: STy,
    pub expire: Option<ExpireAttr>,
    pub init: Option<Expr>,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Count(u64),
    Int(i64),
    Double(f64),
    Str(String),
    Bool(bool),
    /// `5 secs` / `2.5 secs` interval literal.
    IntervalLit(f64),
    Var(String),
    /// `t[k]` — table lookup / vector index.
    Index(Box<Expr>, Box<Expr>),
    /// `k in t` — membership.
    In(Box<Expr>, Box<Expr>),
    /// `|x|` — size of container or string.
    Size(Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Neg(Box<Expr>),
    /// Function or builtin call.
    Call(String, Vec<Expr>),
    /// `vector()` — empty vector constructor.
    VectorCtor,
    /// `r$field` — record field access.
    Field(Box<Expr>, String),
    /// `conn_id($orig_h = e, ...)` — record constructor.
    RecordCtor(String, Vec<(String, Expr)>),
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `local x = e;` (type inferred) or `local x: T = e;`.
    Local(String, Option<STy>, Expr),
    /// `x = e;` or `t[k] = e;`.
    Assign(Expr, Expr),
    /// `add s[k];`
    Add(String, Expr),
    /// `delete t[k];`
    Delete(String, Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `for ( i in container ) body` — iterates set members / table keys.
    For(String, Expr, Vec<Stmt>),
    /// `while ( cond ) body`
    While(Expr, Vec<Stmt>),
    Print(Vec<Expr>),
    Return(Option<Expr>),
    /// Expression statement (function call for effect).
    ExprStmt(Expr),
}

/// An event handler.
#[derive(Clone, Debug, PartialEq)]
pub struct Handler {
    pub event: String,
    pub params: Vec<(String, STy)>,
    pub body: Vec<Stmt>,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncDef {
    pub name: String,
    pub params: Vec<(String, STy)>,
    pub ret: STy,
    pub body: Vec<Stmt>,
}

/// A parsed script.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Script {
    pub globals: Vec<Global>,
    pub handlers: Vec<Handler>,
    pub functions: Vec<FuncDef>,
    /// Record type declarations: name → fields in order.
    pub records: Vec<(String, Vec<(String, STy)>)>,
}

impl Script {
    /// Handlers for a given event, in declaration order.
    pub fn handlers_for(&self, event: &str) -> Vec<&Handler> {
        self.handlers.iter().filter(|h| h.event == event).collect()
    }

    /// Merges several scripts (like loading multiple .bro files).
    pub fn merge(mut self, other: Script) -> Script {
        self.globals.extend(other.globals);
        self.handlers.extend(other.handlers);
        self.functions.extend(other.functions);
        for r in other.records {
            if !self.records.iter().any(|(n, _)| *n == r.0) {
                self.records.push(r);
            }
        }
        self
    }

    /// Looks up a record layout.
    pub fn record(&self, name: &str) -> Option<&[(String, STy)]> {
        self.records
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f.as_slice())
    }

    /// The record types every script sees without declaring them: Bro's
    /// `conn_id` and `connection` (Figure 8 of the paper uses both).
    pub fn builtin_records() -> Vec<(String, Vec<(String, STy)>)> {
        vec![
            (
                "conn_id".to_owned(),
                vec![
                    ("orig_h".to_owned(), STy::Addr),
                    ("orig_p".to_owned(), STy::Port),
                    ("resp_h".to_owned(), STy::Addr),
                    ("resp_p".to_owned(), STy::Port),
                ],
            ),
            (
                "connection".to_owned(),
                vec![
                    ("uid".to_owned(), STy::Str),
                    ("id".to_owned(), STy::Record("conn_id".to_owned())),
                ],
            ),
        ]
    }

    /// Adds the builtin record types (idempotent).
    pub fn with_builtin_records(mut self) -> Script {
        for r in Script::builtin_records() {
            if !self.records.iter().any(|(n, _)| *n == r.0) {
                self.records.push(r);
            }
        }
        self
    }
}
