//! Compiling scripts to HILTI (§4 "Bro Script Compiler", Figure 8).
//!
//! "With HILTI's rich set of high-level data types we generally found
//! mapping Bro types to HILTI equivalents straightforward": sets/tables
//! become HILTI sets/maps (with `&create_expire`/`&read_expire` lowering to
//! `set.timeout`/`map.timeout`), event handlers become **hooks**, functions
//! become functions, and "the compiler can generally directly convert its
//! constructs to HILTI's simpler register-based language".
//!
//! A lightweight type inference (declared global/param types propagated
//! through expressions) selects the typed HILTI instruction for each
//! operator — `int.add` vs `double.add` vs `string.concat` — mirroring how
//! the paper's compiler resolves Bro's overloaded operators.

use std::collections::HashMap;

use hilti_rt::error::{RtError, RtResult};

use crate::ast::*;
use crate::host::BUILTINS;

/// Compiles a script into HILTI source (module `Bro`).
pub fn compile_script(script: &Script) -> RtResult<String> {
    let mut out = String::new();
    out.push_str("module Bro\n\n");

    // Record types become HILTI struct types.
    for (name, fields) in &script.records {
        out.push_str(&format!("type {name} = struct {{"));
        for (i, (f, _)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(" any {f}"));
        }
        out.push_str(" }\n");
    }
    out.push('\n');

    // Globals are thread-local HILTI globals of type any; containers are
    // instantiated in init_globals.
    for g in &script.globals {
        out.push_str(&format!("global any {}\n", g.name));
    }
    out.push('\n');

    // init_globals.
    {
        let mut gen = Gen::new(script);
        for g in &script.globals {
            match &g.ty {
                STy::Set(_) => {
                    gen.line(format!("{} = new set<any>", g.name));
                    if let Some(attr) = g.expire {
                        let (strat, secs) = expire_text(attr);
                        gen.line(format!("set.timeout {} {strat} interval({secs})", g.name));
                    }
                }
                STy::Table(_, _) => {
                    gen.line(format!("{} = new map<any, any>", g.name));
                    if let Some(attr) = g.expire {
                        let (strat, secs) = expire_text(attr);
                        gen.line(format!("map.timeout {} {strat} interval({secs})", g.name));
                    }
                }
                STy::Vector(_) => gen.line(format!("{} = new vector<any>", g.name)),
                ty => {
                    let init = match &g.init {
                        Some(e) => gen.expr(e)?.0,
                        None => default_literal(ty),
                    };
                    gen.line(format!("{} = assign {init}", g.name));
                }
            }
        }
        out.push_str("void init_globals() {\n");
        gen.flush(&mut out);
        out.push_str("}\n\n");
    }

    out.push_str("void set_time(time t) {\n    timer_mgr.advance_global t\n}\n\n");

    // Event handlers → hooks.
    for h in &script.handlers {
        let mut gen = Gen::new(script);
        for (p, t) in &h.params {
            gen.declare(p, t.clone());
        }
        gen.block(&h.body)?;
        let params = h
            .params
            .iter()
            .map(|(p, _)| format!("any {p}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("hook void event_{}({params}) {{\n", h.event));
        gen.flush(&mut out);
        out.push_str("}\n\n");
    }

    // Functions.
    for f in &script.functions {
        let mut gen = Gen::new(script);
        for (p, t) in &f.params {
            gen.declare(p, t.clone());
        }
        gen.block(&f.body)?;
        let params = f
            .params
            .iter()
            .map(|(p, _)| format!("any {p}"))
            .collect::<Vec<_>>()
            .join(", ");
        let ret = if f.ret == STy::Void { "void" } else { "any" };
        out.push_str(&format!("{ret} {}({params}) {{\n", f.name));
        gen.flush(&mut out);
        out.push_str("}\n\n");
    }

    Ok(out)
}

fn expire_text(attr: ExpireAttr) -> (&'static str, f64) {
    match attr {
        ExpireAttr::Create(iv) => ("0", iv.as_secs_f64()),
        ExpireAttr::Read(iv) => ("1", iv.as_secs_f64()),
    }
}

fn default_literal(ty: &STy) -> String {
    match ty {
        STy::Bool => "False".into(),
        STy::Double => "0.0".into(),
        STy::Str => "\"\"".into(),
        STy::Time => "time(0)".into(),
        STy::Interval => "interval(0)".into(),
        _ => "0".into(),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

struct Gen<'a> {
    script: &'a Script,
    lines: Vec<String>,
    vars: HashMap<String, STy>,
    tmp: u32,
    lbl: u32,
}

impl<'a> Gen<'a> {
    fn new(script: &'a Script) -> Gen<'a> {
        let mut vars = HashMap::new();
        for g in &script.globals {
            vars.insert(g.name.clone(), g.ty.clone());
        }
        Gen {
            script,
            lines: Vec::new(),
            vars,
            tmp: 0,
            lbl: 0,
        }
    }

    fn declare(&mut self, name: &str, ty: STy) {
        self.vars.insert(name.to_owned(), ty);
    }

    fn line(&mut self, s: String) {
        self.lines.push(s);
    }

    fn flush(self, out: &mut String) {
        for l in self.lines {
            if l.ends_with(':') {
                out.push_str(&l);
            } else {
                out.push_str("    ");
                out.push_str(&l);
            }
            out.push('\n');
        }
    }

    fn temp(&mut self) -> String {
        self.tmp += 1;
        let name = format!("__t{}", self.tmp);
        self.line(format!("local any {name}"));
        name
    }

    fn label(&mut self, stem: &str) -> String {
        self.lbl += 1;
        format!("__{stem}{}", self.lbl)
    }

    fn func_ret(&self, name: &str) -> Option<STy> {
        self.script
            .functions
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.ret.clone())
            .or_else(|| {
                BUILTINS
                    .iter()
                    .find(|(b, _)| *b == name)
                    .map(|(_, t)| t.clone())
            })
    }

    fn var_ty(&self, name: &str) -> STy {
        self.vars.get(name).cloned().unwrap_or(STy::Count)
    }

    // -- expressions --------------------------------------------------------

    /// Generates code computing `e`; returns (operand text, inferred type).
    fn expr(&mut self, e: &Expr) -> RtResult<(String, STy)> {
        Ok(match e {
            Expr::Count(c) => (c.to_string(), STy::Count),
            Expr::Int(i) => (i.to_string(), STy::Int),
            Expr::Double(d) => (format!("{d:?}"), STy::Double),
            Expr::Str(s) => (escape(s), STy::Str),
            Expr::Bool(b) => (if *b { "True" } else { "False" }.into(), STy::Bool),
            Expr::IntervalLit(secs) => (format!("interval({secs})"), STy::Interval),
            Expr::Var(name) => (name.clone(), self.var_ty(name)),
            Expr::VectorCtor => {
                let t = self.temp();
                self.line(format!("{t} = new vector<any>"));
                (t, STy::Vector(Box::new(STy::Str)))
            }
            Expr::Index(c, i) => {
                let (cv, cty) = self.expr(c)?;
                let (iv, _) = self.expr(i)?;
                let t = self.temp();
                match &cty {
                    STy::Table(_, v) => {
                        self.line(format!("{t} = map.get {cv} {iv}"));
                        (t, (**v).clone())
                    }
                    STy::Vector(inner) => {
                        self.line(format!("{t} = vector.get {cv} {iv}"));
                        (t, (**inner).clone())
                    }
                    other => return Err(RtError::type_error(format!("cannot index a {other:?}"))),
                }
            }
            Expr::In(k, c) => {
                let (kv, _) = self.expr(k)?;
                let (cv, cty) = self.expr(c)?;
                let t = self.temp();
                match &cty {
                    STy::Set(_) => self.line(format!("{t} = set.exists {cv} {kv}")),
                    STy::Table(_, _) => self.line(format!("{t} = map.exists {cv} {kv}")),
                    other => return Err(RtError::type_error(format!("'in' on {other:?}"))),
                }
                (t, STy::Bool)
            }
            Expr::Size(inner) => {
                let (v, ty) = self.expr(inner)?;
                let t = self.temp();
                match &ty {
                    STy::Set(_) => self.line(format!("{t} = set.size {v}")),
                    STy::Table(_, _) => self.line(format!("{t} = map.size {v}")),
                    STy::Vector(_) => self.line(format!("{t} = vector.length {v}")),
                    STy::Str => self.line(format!("{t} = string.length {v}")),
                    other => return Err(RtError::type_error(format!("|...| on {other:?}"))),
                }
                (t, STy::Count)
            }
            Expr::Not(inner) => {
                let (v, _) = self.expr(inner)?;
                let t = self.temp();
                self.line(format!("{t} = not {v}"));
                (t, STy::Bool)
            }
            Expr::Neg(inner) => {
                let (v, _) = self.expr(inner)?;
                let t = self.temp();
                self.line(format!("{t} = int.neg {v}"));
                (t, STy::Int)
            }
            Expr::Bin(BinOp::And, l, r) => self.short_circuit(l, r, true)?,
            Expr::Bin(BinOp::Or, l, r) => self.short_circuit(l, r, false)?,
            Expr::Bin(op, l, r) => {
                let (lv, lty) = self.expr(l)?;
                let (rv, rty) = self.expr(r)?;
                let t = self.temp();
                let ty = self.emit_binop(*op, &t, &lv, &lty, &rv, &rty)?;
                (t, ty)
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.expr(a)?.0);
                }
                let ret = self.func_ret(name).unwrap_or(STy::Count);
                let t = self.temp();
                self.line(format!("{t} = call {name} ({})", vals.join(", ")));
                (t, ret)
            }
            Expr::Field(base, field) => {
                let (bv, bty) = self.expr(base)?;
                let t = self.temp();
                self.line(format!("{t} = struct.get {bv} {field}"));
                let fty = match &bty {
                    STy::Record(rname) => self
                        .script
                        .record(rname)
                        .and_then(|layout| {
                            layout
                                .iter()
                                .find(|(n, _)| n == field)
                                .map(|(_, t)| t.clone())
                        })
                        .unwrap_or(STy::Count),
                    _ => STy::Count,
                };
                (t, fty)
            }
            Expr::RecordCtor(name, fields) => {
                let t = self.temp();
                self.line(format!("{t} = new {name}"));
                for (f, e) in fields {
                    let (v, _) = self.expr(e)?;
                    self.line(format!("struct.set {t} {f} {v}"));
                }
                (t, STy::Record(name.clone()))
            }
        })
    }

    /// Short-circuit `&&` / `||`.
    fn short_circuit(&mut self, l: &Expr, r: &Expr, is_and: bool) -> RtResult<(String, STy)> {
        let t = self.temp();
        let (lv, _) = self.expr(l)?;
        self.line(format!("{t} = assign {lv}"));
        let l_rhs = self.label("sc_rhs");
        let l_end = self.label("sc_end");
        if is_and {
            self.line(format!("if.else {t} {l_rhs} {l_end}"));
        } else {
            self.line(format!("if.else {t} {l_end} {l_rhs}"));
        }
        self.line(format!("{l_rhs}:"));
        let (rv, _) = self.expr(r)?;
        self.line(format!("{t} = assign {rv}"));
        self.line(format!("{l_end}:"));
        Ok((t, STy::Bool))
    }

    fn emit_binop(
        &mut self,
        op: BinOp,
        t: &str,
        lv: &str,
        lty: &STy,
        rv: &str,
        rty: &STy,
    ) -> RtResult<STy> {
        use BinOp::*;
        let double = *lty == STy::Double || *rty == STy::Double;
        Ok(match op {
            Eq => {
                self.line(format!("{t} = equal {lv} {rv}"));
                STy::Bool
            }
            Ne => {
                self.line(format!("{t} = unequal {lv} {rv}"));
                STy::Bool
            }
            Add => match (lty, rty) {
                (STy::Str, _) | (_, STy::Str) => {
                    self.line(format!("{t} = string.concat {lv} {rv}"));
                    STy::Str
                }
                (STy::Time, STy::Interval) => {
                    self.line(format!("{t} = time.add {lv} {rv}"));
                    STy::Time
                }
                (STy::Interval, STy::Interval) => {
                    self.line(format!("{t} = interval.add {lv} {rv}"));
                    STy::Interval
                }
                _ if double => {
                    self.line(format!("{t} = double.add {lv} {rv}"));
                    STy::Double
                }
                _ => {
                    self.line(format!("{t} = int.add {lv} {rv}"));
                    STy::Count
                }
            },
            Sub => match (lty, rty) {
                (STy::Time, STy::Time) => {
                    self.line(format!("{t} = time.sub_time {lv} {rv}"));
                    STy::Interval
                }
                (STy::Time, STy::Interval) => {
                    self.line(format!("{t} = time.sub_interval {lv} {rv}"));
                    STy::Time
                }
                (STy::Interval, STy::Interval) => {
                    self.line(format!("{t} = interval.sub {lv} {rv}"));
                    STy::Interval
                }
                _ if double => {
                    self.line(format!("{t} = double.sub {lv} {rv}"));
                    STy::Double
                }
                _ => {
                    self.line(format!("{t} = int.sub {lv} {rv}"));
                    STy::Count
                }
            },
            Mul | Div | Mod => {
                let (dop, iop) = match op {
                    Mul => ("double.mul", "int.mul"),
                    Div => ("double.div", "int.div"),
                    _ => ("int.mod", "int.mod"),
                };
                if double && op != Mod {
                    self.line(format!("{t} = {dop} {lv} {rv}"));
                    STy::Double
                } else {
                    self.line(format!("{t} = {iop} {lv} {rv}"));
                    STy::Count
                }
            }
            Lt | Gt | Le | Ge => {
                let suffix = match op {
                    Lt => "lt",
                    Gt => "gt",
                    Le => "leq",
                    _ => "geq",
                };
                if double {
                    self.line(format!("{t} = double.{suffix} {lv} {rv}"));
                } else if *lty == STy::Time {
                    // Only lt/gt exist for time; le/ge unused by scripts.
                    self.line(format!("{t} = time.{suffix} {lv} {rv}"));
                } else if *lty == STy::Interval {
                    self.line(format!("{t} = interval.{suffix} {lv} {rv}"));
                } else {
                    self.line(format!("{t} = int.{suffix} {lv} {rv}"));
                }
                STy::Bool
            }
            And | Or => unreachable!("handled by short_circuit"),
        })
    }

    // -- statements ---------------------------------------------------------

    fn block(&mut self, stmts: &[Stmt]) -> RtResult<()> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> RtResult<()> {
        match s {
            Stmt::Local(name, declared, init) => {
                let (v, inferred) = self.expr(init)?;
                self.line(format!("local any {name}"));
                self.line(format!("{name} = assign {v}"));
                self.declare(name, declared.clone().unwrap_or(inferred));
                Ok(())
            }
            Stmt::Assign(Expr::Var(name), e) => {
                let (v, inferred) = self.expr(e)?;
                if !self.vars.contains_key(name) {
                    self.line(format!("local any {name}"));
                    self.declare(name, inferred);
                }
                self.line(format!("{name} = assign {v}"));
                Ok(())
            }
            Stmt::Assign(Expr::Index(c, i), e) => {
                let (cv, cty) = self.expr(c)?;
                let (iv, _) = self.expr(i)?;
                let (ev, _) = self.expr(e)?;
                match &cty {
                    STy::Table(_, _) => {
                        self.line(format!("map.insert {cv} {iv} {ev}"));
                    }
                    STy::Vector(_) => {
                        // `v[|v|] = x` appends; in-range indices overwrite.
                        let len = self.temp();
                        self.line(format!("{len} = vector.length {cv}"));
                        let iseq = self.temp();
                        self.line(format!("{iseq} = int.eq {iv} {len}"));
                        let l_push = self.label("vpush");
                        let l_set = self.label("vset");
                        let l_end = self.label("vend");
                        self.line(format!("if.else {iseq} {l_push} {l_set}"));
                        self.line(format!("{l_push}:"));
                        self.line(format!("vector.push_back {cv} {ev}"));
                        self.line(format!("jump {l_end}"));
                        self.line(format!("{l_set}:"));
                        self.line(format!("vector.set {cv} {iv} {ev}"));
                        self.line(format!("{l_end}:"));
                    }
                    other => {
                        return Err(RtError::type_error(format!(
                            "cannot index-assign a {other:?}"
                        )))
                    }
                }
                Ok(())
            }
            Stmt::Assign(Expr::Field(base, field), e) => {
                let (bv, _) = self.expr(base)?;
                let (ev, _) = self.expr(e)?;
                self.line(format!("struct.set {bv} {field} {ev}"));
                Ok(())
            }
            Stmt::Assign(other, _) => Err(RtError::type_error(format!(
                "bad assignment target {other:?}"
            ))),
            Stmt::Add(set, k) => {
                let (kv, _) = self.expr(k)?;
                self.line(format!("set.insert {set} {kv}"));
                Ok(())
            }
            Stmt::Delete(name, k) => {
                let (kv, _) = self.expr(k)?;
                let t = self.temp();
                match self.var_ty(name) {
                    STy::Set(_) => self.line(format!("{t} = set.remove {name} {kv}")),
                    STy::Table(_, _) => self.line(format!("{t} = map.remove {name} {kv}")),
                    other => return Err(RtError::type_error(format!("delete on {other:?}"))),
                }
                Ok(())
            }
            Stmt::If(cond, then, els) => {
                let (cv, _) = self.expr(cond)?;
                let l_then = self.label("then");
                let l_else = self.label("else");
                let l_end = self.label("endif");
                self.line(format!("if.else {cv} {l_then} {l_else}"));
                self.line(format!("{l_then}:"));
                self.block(then)?;
                self.line(format!("jump {l_end}"));
                self.line(format!("{l_else}:"));
                self.block(els)?;
                self.line(format!("{l_end}:"));
                Ok(())
            }
            Stmt::For(var, container, body) => {
                let (cv, cty) = self.expr(container)?;
                match &cty {
                    STy::Set(inner) | STy::Table(inner, _) => {
                        // Sorted key list → drain with pop_front.
                        let keys = self.temp();
                        match &cty {
                            STy::Set(_) => self.line(format!("{keys} = set.members {cv}")),
                            _ => self.line(format!("{keys} = map.keys {cv}")),
                        }
                        self.line(format!("local any {var}"));
                        self.declare(var, (**inner).clone());
                        let n = self.temp();
                        let more = self.temp();
                        let l_loop = self.label("forl");
                        let l_body = self.label("forb");
                        let l_end = self.label("fore");
                        self.line(format!("{l_loop}:"));
                        self.line(format!("{n} = list.length {keys}"));
                        self.line(format!("{more} = int.gt {n} 0"));
                        self.line(format!("if.else {more} {l_body} {l_end}"));
                        self.line(format!("{l_body}:"));
                        self.line(format!("{var} = list.pop_front {keys}"));
                        self.block(body)?;
                        self.line(format!("jump {l_loop}"));
                        self.line(format!("{l_end}:"));
                    }
                    STy::Vector(inner) => {
                        let n = self.temp();
                        self.line(format!("{n} = vector.length {cv}"));
                        let i = self.temp();
                        self.line(format!("{i} = assign 0"));
                        self.line(format!("local any {var}"));
                        self.declare(var, (**inner).clone());
                        let more = self.temp();
                        let l_loop = self.label("forl");
                        let l_body = self.label("forb");
                        let l_end = self.label("fore");
                        self.line(format!("{l_loop}:"));
                        self.line(format!("{more} = int.lt {i} {n}"));
                        self.line(format!("if.else {more} {l_body} {l_end}"));
                        self.line(format!("{l_body}:"));
                        self.line(format!("{var} = vector.get {cv} {i}"));
                        self.block(body)?;
                        self.line(format!("{i} = int.add {i} 1"));
                        self.line(format!("jump {l_loop}"));
                        self.line(format!("{l_end}:"));
                    }
                    other => return Err(RtError::type_error(format!("for over {other:?}"))),
                }
                Ok(())
            }
            Stmt::While(cond, body) => {
                let l_loop = self.label("whl");
                let l_body = self.label("whb");
                let l_end = self.label("whe");
                self.line(format!("{l_loop}:"));
                let (cv, _) = self.expr(cond)?;
                self.line(format!("if.else {cv} {l_body} {l_end}"));
                self.line(format!("{l_body}:"));
                self.block(body)?;
                self.line(format!("jump {l_loop}"));
                self.line(format!("{l_end}:"));
                Ok(())
            }
            Stmt::Print(args) => {
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.expr(a)?.0);
                }
                self.line(format!("call Hilti::print ({})", vals.join(", ")));
                Ok(())
            }
            Stmt::Return(None) => {
                self.line("return".into());
                Ok(())
            }
            Stmt::Return(Some(e)) => {
                let (v, _) = self.expr(e)?;
                self.line(format!("return {v}"));
                Ok(())
            }
            Stmt::ExprStmt(e) => {
                self.expr(e)?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{BroRt, Engine, ScriptHost};
    use crate::interp::Interp;
    use crate::parse::parse_script;
    use hilti::value::Value;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Runs the same event sequence through both engines and asserts
    /// identical print output — the differential core of Table 3.
    fn differential(src: &str, events: &[(&str, Vec<Value>)]) {
        let script = parse_script(src).unwrap();
        let mut outs = Vec::new();
        for engine in [Engine::Interpreted, Engine::Compiled] {
            let mut host = ScriptHost::from_script(script.clone(), engine, None).unwrap();
            for (name, args) in events {
                host.dispatch(name, args).unwrap();
            }
            host.done().unwrap();
            outs.push(host.take_output());
        }
        assert_eq!(outs[0], outs[1], "engines disagree");
    }

    #[test]
    fn compiles_figure8_to_hooks() {
        let script = parse_script(
            r#"
global hosts: set[addr];
event connection_established(uid: string, orig_h: addr, orig_p: port, resp_h: addr, resp_p: port) {
    add hosts[resp_h];
}
event bro_done() {
    for ( i in hosts )
        print i;
}
"#,
        )
        .unwrap();
        let src = compile_script(&script).unwrap();
        assert!(src.contains("hook void event_connection_established"));
        assert!(src.contains("set.insert hosts resp_h"));
        assert!(src.contains("set.members hosts"));
        // And it builds.
        hilti::Program::from_source(&src).unwrap();
    }

    #[test]
    fn figure8_differential() {
        let mk = |resp: &str| {
            vec![
                Value::str("C1"),
                Value::Addr("10.0.0.1".parse().unwrap()),
                Value::Port(hilti_rt::addr::Port::tcp(40000)),
                Value::Addr(resp.parse().unwrap()),
                Value::Port(hilti_rt::addr::Port::tcp(80)),
            ]
        };
        differential(
            r#"
global hosts: set[addr];
event connection_established(uid: string, orig_h: addr, orig_p: port, resp_h: addr, resp_p: port) {
    add hosts[resp_h];
}
event bro_done() {
    for ( i in hosts )
        print i;
}
"#,
            &[
                ("connection_established", mk("208.80.152.118")),
                ("connection_established", mk("208.80.152.2")),
                ("connection_established", mk("208.80.152.3")),
                ("connection_established", mk("208.80.152.2")),
            ],
        );
    }

    #[test]
    fn fib_compiled_matches_interpreted() {
        let src = r#"
function fib(n: count): count {
    if ( n < 2 )
        return n;
    return fib(n - 1) + fib(n - 2);
}
"#;
        let script = parse_script(src).unwrap();
        let mut compiled = ScriptHost::from_script(script.clone(), Engine::Compiled, None).unwrap();
        let rt = Rc::new(RefCell::new(BroRt::default()));
        let mut interp = Interp::new(Rc::new(script), rt).unwrap();
        let c = compiled.call("fib", &[Value::Int(18)]).unwrap();
        let i = interp.call("fib", &[Value::Int(18)]).unwrap();
        assert!(c.equals(&i));
        assert!(c.equals(&Value::Int(2584)));
    }

    #[test]
    fn tables_strings_and_builtins_differential() {
        differential(
            r#"
global seen: table[string] of count;
event note(k: string) {
    if ( k in seen )
        seen[k] = seen[k] + 1;
    else
        seen[k] = 1;
}
event bro_done() {
    for ( k in seen )
        print cat(k, "=", seen[k]);
    print "total", |seen|;
}
"#,
            &[
                ("note", vec![Value::str("beta")]),
                ("note", vec![Value::str("alpha")]),
                ("note", vec![Value::str("beta")]),
            ],
        );
    }

    #[test]
    fn vectors_differential() {
        differential(
            r#"
global acc: vector of string;
event push(s: string) {
    acc[|acc|] = s;
}
event bro_done() {
    for ( s in acc )
        print s;
    print |acc|;
    print acc[0];
}
"#,
            &[
                ("push", vec![Value::str("one")]),
                ("push", vec![Value::str("two")]),
            ],
        );
    }

    #[test]
    fn arithmetic_and_short_circuit_differential() {
        differential(
            r#"
global t: table[string] of count;
event go(a: count, b: count) {
    print a + b, a * b, a - b, a / b, a % b;
    print a < b, a >= b, a == b, a != b;
    if ( "x" in t && t["x"] > 0 )
        print "has x";
    else
        print "no x";
    print 1.5 + 2.0, 3.0 * 2.0, 7.0 / 2.0;
}
"#,
            &[("go", vec![Value::Int(17), Value::Int(5)])],
        );
    }

    #[test]
    fn while_and_functions_differential() {
        differential(
            r#"
function sum_to(n: count): count {
    local s = 0;
    local i = 1;
    while ( i <= n ) {
        s = s + i;
        i = i + 1;
    }
    return s;
}
event go() {
    print sum_to(10), sum_to(100);
}
"#,
            &[("go", vec![])],
        );
    }

    #[test]
    fn delete_and_membership_differential() {
        differential(
            r#"
global s: set[string];
event go() {
    add s["a"];
    add s["b"];
    delete s["a"];
    print "a" in s, "b" in s, |s|;
}
"#,
            &[("go", vec![])],
        );
    }
}

#[cfg(test)]
mod record_tests {
    use crate::host::{connection_value, Engine, ScriptHost};
    use crate::scripts::TRACK_BRO_FIGURE8;
    use hilti_rt::addr::Port;
    use netpkt::events::ConnId;

    fn conn(resp: &str) -> ConnId {
        ConnId {
            orig_h: "10.0.0.1".parse().unwrap(),
            orig_p: Port::tcp(40000),
            resp_h: resp.parse().unwrap(),
            resp_p: Port::tcp(80),
        }
    }

    #[test]
    fn figure8_verbatim_on_both_engines() {
        // Figure 8(a): event connection_established(c: connection)
        // { add hosts[c$id$resp_h]; } — record form, nested $ access.
        for engine in [Engine::Interpreted, Engine::Compiled] {
            let mut host = ScriptHost::new(&[TRACK_BRO_FIGURE8], engine, None).unwrap();
            for resp in [
                "208.80.152.118",
                "208.80.152.2",
                "208.80.152.3",
                "208.80.152.2",
            ] {
                host.dispatch(
                    "connection_established",
                    &[connection_value("C1", &conn(resp))],
                )
                .unwrap();
            }
            host.done().unwrap();
            // Figure 8(c): the three unique responder IPs.
            assert_eq!(
                host.take_output(),
                vec!["208.80.152.2", "208.80.152.3", "208.80.152.118"],
                "{engine:?}"
            );
        }
    }

    #[test]
    fn record_ctor_access_and_assignment() {
        let src = r#"
type point: record { x: count; y: count; };

event go() {
    local p = point($x = 3, $y = 4);
    print p$x, p$y;
    p$y = p$y * 10;
    print p$y;
}
"#;
        for engine in [Engine::Interpreted, Engine::Compiled] {
            let mut host = ScriptHost::new(&[src], engine, None).unwrap();
            host.dispatch("go", &[]).unwrap();
            assert_eq!(host.take_output(), vec!["3, 4", "40"], "{engine:?}");
        }
    }

    #[test]
    fn record_style_event_dispatch_auto_detected() {
        use hilti_rt::time::Time;
        use netpkt::events::Event;
        let mut host = ScriptHost::new(&[TRACK_BRO_FIGURE8], Engine::Compiled, None).unwrap();
        host.dispatch_event(&Event::ConnectionEstablished {
            ts: Time::from_secs(1),
            uid: "C9".into(),
            id: conn("1.2.3.4"),
        })
        .unwrap();
        host.done().unwrap();
        assert_eq!(host.take_output(), vec!["1.2.3.4"]);
    }

    #[test]
    fn nested_record_field_types_infer() {
        // c$id$resp_h must infer as addr so set[addr] insertion works and
        // missing fields are errors.
        let bad = r#"
event connection_established(c: connection) {
    print c$id$no_such_field;
}
"#;
        let mut host = ScriptHost::new(&[bad], Engine::Interpreted, None).unwrap();
        let r = host.dispatch(
            "connection_established",
            &[connection_value("C1", &conn("1.1.1.1"))],
        );
        assert!(r.is_err());
    }
}
