//! The bundled analysis scripts used by the evaluation (§6).
//!
//! These play the role of Bro's default HTTP and DNS scripts: "extensive
//! logs of the corresponding protocol activity, correlating state across
//! request and reply pairs, plus (in the case of HTTP) extracting and
//! identifying message bodies". Log lines are tab-separated with timestamp
//! and uid first (the columns the Table 2/3 normalization strips).

/// HTTP analysis: correlates requests with replies, writes `http.log`, and
/// performs file analysis (MIME identification + SHA-1) into `files.log`.
pub const HTTP_BRO: &str = r#"
# Per-connection request queues (pipelining-aware).
global req_method: table[string] of vector of string;
global req_uri: table[string] of vector of string;
global req_version: table[string] of vector of string;
global req_host: table[string] of vector of string;
global req_len: table[string] of vector of count;
global req_next: table[string] of count;
global cur_addrs: table[string] of string;

# In-flight response state.
global resp_status: table[string] of count;
global resp_reason: table[string] of string;
global resp_ct: table[string] of string;
global resp_body: table[string] of string;

event http_request(uid: string, orig_h: addr, resp_h: addr, method: string, uri: string, version: string) {
    if ( uid in req_method ) {
        req_method[uid][|req_method[uid]|] = method;
        req_uri[uid][|req_uri[uid]|] = uri;
        req_version[uid][|req_version[uid]|] = version;
        req_host[uid][|req_host[uid]|] = "-";
    } else {
        local m: vector of string = vector();
        m[0] = method;
        req_method[uid] = m;
        local u: vector of string = vector();
        u[0] = uri;
        req_uri[uid] = u;
        local v: vector of string = vector();
        v[0] = version;
        req_version[uid] = v;
        local h: vector of string = vector();
        h[0] = "-";
        req_host[uid] = h;
        req_next[uid] = 0;
    }
    cur_addrs[uid] = cat(orig_h, "\t", resp_h);
}

event http_header(uid: string, is_orig: bool, name: string, value: string) {
    if ( is_orig ) {
        if ( to_lower(name) == "host" && uid in req_host ) {
            if ( |req_host[uid]| > 0 )
                req_host[uid][|req_host[uid]| - 1] = value;
        }
    } else {
        if ( to_lower(name) == "content-type" )
            resp_ct[uid] = value;
    }
}

event http_reply(uid: string, orig_h: addr, resp_h: addr, status: count, reason: string, version: string) {
    resp_status[uid] = status;
    resp_reason[uid] = reason;
    cur_addrs[uid] = cat(orig_h, "\t", resp_h);
}

event http_body_data(uid: string, is_orig: bool, data: string) {
    if ( !is_orig ) {
        if ( uid in resp_body )
            resp_body[uid] = resp_body[uid] + data;
        else
            resp_body[uid] = data;
    }
}

event http_message_done(uid: string, is_orig: bool, body_len: count) {
    if ( is_orig ) {
        # Record the request body length against its queue slot.
        if ( uid in req_len ) {
            req_len[uid][|req_len[uid]|] = body_len;
        } else {
            local l: vector of count = vector();
            l[0] = body_len;
            req_len[uid] = l;
        }
        return;
    }
    # Response complete: correlate with the oldest outstanding request.
    local idx = 0;
    if ( uid in req_next )
        idx = req_next[uid];
    local method = "-";
    local uri = "-";
    local version = "-";
    local host = "-";
    local rlen = 0;
    if ( uid in req_method && idx < |req_method[uid]| ) {
        method = req_method[uid][idx];
        uri = req_uri[uid][idx];
        version = req_version[uid][idx];
        host = req_host[uid][idx];
    }
    if ( uid in req_len && idx < |req_len[uid]| )
        rlen = req_len[uid][idx];
    local status = 0;
    if ( uid in resp_status )
        status = resp_status[uid];
    local reason = "-";
    if ( uid in resp_reason )
        reason = resp_reason[uid];
    local body = "";
    if ( uid in resp_body )
        body = resp_body[uid];
    local declared = "-";
    if ( uid in resp_ct )
        declared = resp_ct[uid];
    local mime = "-";
    if ( |body| > 0 )
        mime = mime_type(sub_str(body, 0, 256), declared);
    local addrs = "-\t-";
    if ( uid in cur_addrs )
        addrs = cur_addrs[uid];

    log_write("http.log", cat(network_time(), "\t", uid, "\t", addrs, "\t",
        method, "\t", host, "\t", uri, "\t", version, "\t", status, "\t",
        reason, "\t", rlen, "\t", body_len, "\t", mime));

    if ( body_len > 0 )
        log_write("files.log", cat(network_time(), "\t", uid, "\t", mime,
            "\t", body_len, "\t", sha1(body)));

    req_next[uid] = idx + 1;
    delete resp_body[uid];
    delete resp_ct[uid];
    delete resp_status[uid];
    delete resp_reason[uid];
}
"#;

/// DNS analysis: correlates queries with responses and writes `dns.log`.
pub const DNS_BRO: &str = r#"
global q_query: table[string] of string &create_expire=120.0;
global q_qtype: table[string] of count &create_expire=120.0;
global q_addrs: table[string] of string &create_expire=120.0;

event dns_request(uid: string, orig_h: addr, resp_h: addr, trans_id: count, query: string, qtype: count) {
    local k = cat(uid, "-", trans_id);
    q_query[k] = query;
    q_qtype[k] = qtype;
    q_addrs[k] = cat(orig_h, "\t", resp_h);
}

event dns_reply(uid: string, orig_h: addr, resp_h: addr, trans_id: count, rcode: count, answers: vector of string, ttls: vector of count) {
    local k = cat(uid, "-", trans_id);
    local query = "-";
    local qt = "-";
    if ( k in q_query ) {
        query = q_query[k];
        qt = qtype_name(q_qtype[k]);
    }
    local addrs = cat(resp_h, "\t", orig_h);
    if ( k in q_addrs )
        addrs = q_addrs[k];
    local ans = "-";
    if ( |answers| > 0 )
        ans = join(answers, ",");
    local tt = "-";
    if ( |ttls| > 0 )
        tt = join(ttls, ",");
    log_write("dns.log", cat(network_time(), "\t", uid, "\t", addrs, "\t",
        trans_id, "\t", query, "\t", qt, "\t", rcode_name(rcode), "\t",
        ans, "\t", tt));
    delete q_query[k];
    delete q_qtype[k];
    delete q_addrs[k];
}
"#;

/// Figure 8's `track.bro`: record responder addresses of established
/// connections, print them at shutdown.
pub const TRACK_BRO: &str = r#"
global hosts: set[addr];

event connection_established(uid: string, orig_h: addr, orig_p: port, resp_h: addr, resp_p: port) {
    add hosts[resp_h];
}

event bro_done() {
    for ( i in hosts )
        print i;
}
"#;

/// The §6.5 Fibonacci baseline benchmark script.
pub const FIB_BRO: &str = r#"
function fib(n: count): count {
    if ( n < 2 )
        return n;
    return fib(n - 1) + fib(n - 2);
}
"#;

/// Figure 8(a) of the paper, **verbatim** (record-style): tracks responder
/// addresses of established connections via `c$id$resp_h`.
pub const TRACK_BRO_FIGURE8: &str = r#"
global hosts: set[addr];

event connection_established(c: connection) {
    add hosts[c$id$resp_h];
}

event bro_done() {
    for ( i in hosts )
        print i;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_script;

    #[test]
    fn bundled_scripts_parse() {
        for (name, src) in [
            ("http", HTTP_BRO),
            ("dns", DNS_BRO),
            ("track", TRACK_BRO),
            ("fib", FIB_BRO),
        ] {
            parse_script(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn bundled_scripts_compile_to_hilti() {
        for (name, src) in [
            ("http", HTTP_BRO),
            ("dns", DNS_BRO),
            ("track", TRACK_BRO),
            ("fib", FIB_BRO),
        ] {
            let script = parse_script(src).unwrap();
            let hilti_src =
                crate::compile::compile_script(&script).unwrap_or_else(|e| panic!("{name}: {e}"));
            hilti::Program::from_source(&hilti_src)
                .unwrap_or_else(|e| panic!("{name}: {e}\n{hilti_src}"));
        }
    }
}
