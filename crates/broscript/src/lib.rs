//! # broscript — a Bro-style script language on HILTI (§4, §6.5)
//!
//! The paper's fourth host application: a compiler translating Bro scripts
//! into HILTI, demonstrating "that HILTI can indeed support such a complex,
//! highly stateful language". The language here is a Bro-flavored
//! event-handler language with the features the §6 case studies exercise:
//! typed globals, `set`/`table` containers with `&create_expire` /
//! `&read_expire` state management, vectors, event handlers, functions,
//! `for`-loops over containers, logging, and a library of built-in
//! functions (`cat`, `sha1`, `mime_type`, ...).
//!
//! Two execution engines share one AST:
//! * [`interp`] — a tree-walking interpreter, playing the role of Bro's
//!   standard script interpreter (the §6.5 baseline), and
//! * [`compile`] — the HILTI compiler: event handlers become HILTI hooks
//!   (Figure 8), globals become thread-local HILTI globals, and the
//!   program runs on the bytecode VM.
//!
//! [`host`] is the event-dispatch layer — Bro's event engine: it converts
//! [`netpkt::events::Event`]s into script values (the measured
//! "HILTI-to-Bro glue" for the compiled engine) and triggers handlers on
//! whichever engine is selected. [`scripts`] bundles the analysis scripts
//! used by the evaluation (`http.bro`, `dns.bro`, `track.bro`, `fib.bro`),
//! and [`pipeline`] wires traces → parsers → scripts → logs for the
//! experiments.

pub mod ast;
pub mod compile;
pub mod host;
pub mod interp;
pub mod parallel;
pub mod parse;
pub mod pipeline;
pub mod scripts;
pub mod slab;

pub use ast::Script;
pub use host::{Engine, ScriptHost};
pub use parse::parse_script;
