//! Flow-sharded parallel analysis pipeline with a deterministic merge.
//!
//! The paper's concurrency model (§3.2) hashes each flow to a virtual
//! thread so all computation for one flow is implicitly serialized; "HILTI
//! code is always safe to execute in parallel" (§7). This module applies
//! that placement to the whole analysis pipeline: a dispatcher thread
//! decodes packets and runs the shared flow table, then hashes each
//! connection 5-tuple ([`netpkt::flow::shard_hash`], symmetric and
//! worker-count-independent) to one of N shards. Each shard — a worker of
//! [`hilti::threads::WorkPool`] — owns a private engine context, parser
//! stack, script host, profiler, and telemetry registry, so the per-packet
//! hot path takes no locks.
//!
//! **Determinism.** The result of an N-worker run is byte-identical to the
//! 1-worker (and to the sequential [`crate::pipeline`]) run for every N.
//! Global decisions stay on the dispatcher: uid assignment, TCP
//! reassembly, and idle-flow expiry (the timer wheel sweeps the shared
//! flow table; shards receive `Evict` directives rather than sweeping
//! locally, since a shard-local sweep would fire at different packet
//! positions for different N). Every shard-side effect — log line, printed
//! line, flow error, telemetry event — is tagged with a merge key encoding
//! the packet slot (or end-of-trace rank) and the within-packet phase that
//! the sequential pipeline would have produced it in:
//!
//! * phase 0 — dispatcher `flow_open`/`flow_close` events,
//! * phase 1 — parse effects (parser events, `parser_error`, engine sink
//!   events raised while parsing),
//! * phase 2 — dispatcher `timer_expiry` events,
//! * phase 3 — dispatch effects (script logs/output, engine sink events
//!   raised while executing handlers).
//!
//! The merge sorts by `(key, shard, seq)` and strips the tags. Telemetry
//! snapshots combine by [`TelemetrySnapshot::merge`] — counters summed,
//! gauges max-merged (they track peaks), histograms bucket-wise — and the
//! merged event stream replaces the concatenation, with `quarantine`
//! events re-emitted at the end in merged-ledger order exactly as the
//! sequential pipeline does. See DESIGN.md ("Parallel pipeline").

use std::collections::{HashMap, HashSet};

use binpac::dns::BinpacDns;
use binpac::http::BinpacHttp;
use hilti::passes::OptLevel;
use hilti::threads::WorkPool;
use hilti_rt::error::{RtError, RtResult};
use hilti_rt::limits::ResourceLimits;
use hilti_rt::profile::{Component, Profiler};
use hilti_rt::telemetry::{
    Counter, Event as TelemetryEvent, Histogram, Telemetry, TelemetrySnapshot,
};
use hilti_rt::time::{Interval, Time};
use hilti_rt::timer::TimerMgr;

use netpkt::decode::decode_ethernet;
use netpkt::events::{ConnId, Event};
use netpkt::flow::{shard_hash, FlowTable};
use netpkt::http::HttpConnParser;
use netpkt::pcap::RawPacket;

use crate::host::{Engine, ScriptHost};
use crate::pipeline::{
    placeholder_id, standard_dns_events, AnalysisResult, FlowError, Governance, ParserStack,
};
use crate::scripts;

/// Default shard count: one per core, capped at 8 (the paper's evaluation
/// machine exposes 8 hardware threads).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Knobs for a parallel run.
#[derive(Clone, Copy)]
pub struct PipelineOptions {
    /// Number of shards (worker threads). The output is byte-identical
    /// for every value; only throughput changes.
    pub workers: usize,
    pub governance: Governance,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            workers: default_workers(),
            governance: Governance::default(),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Proto {
    Http,
    Dns,
}

/// Within-packet phases, mirroring the sequential emission order.
const PH_FLOW: u8 = 0;
const PH_PARSE: u8 = 1;
const PH_TIMER: u8 = 2;
const PH_DISPATCH: u8 = 3;

/// Merge key: the position in the sequential output this effect belongs
/// to. `major` is the packet slot for in-trace effects; end-of-trace
/// flushes use majors past the packet count (one per candidate flow for
/// the parse sweep, then one per candidate for the dispatch sweep, then
/// one for `bro_done`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Key {
    major: u64,
    phase: u8,
}

/// A shard-side effect tagged for the merge: `(key, seq, payload)`, where
/// `seq` is the shard-local emission counter (total order within a shard).
type Tagged<T> = (Key, u64, T);

const LOG_STREAMS: [&str; 3] = ["http.log", "files.log", "dns.log"];

/// Work items shipped from the dispatcher to a shard, in trace order.
enum ShardItem {
    /// One reassembled segment of a flow owned by this shard.
    Delivery {
        slot: u64,
        uid: String,
        id: ConnId,
        is_orig: bool,
        ts: Time,
        payload: Vec<u8>,
        finished: bool,
    },
    /// The dispatcher's timer wheel expired this flow: drop parser state.
    Evict { uid: String },
    /// End-of-trace flush of one still-open flow (HTTP only).
    FinishFlow {
        parse_major: u64,
        dispatch_major: u64,
        uid: String,
        ts: Time,
    },
    /// End of run: re-arm fuel and fire `bro_done`.
    Done { major: u64, ts: Time },
}

/// Shard-local pre-interned metric handles (the shard's own registry).
struct ShardTelemetry {
    telemetry: Telemetry,
    bytes_parsed: Counter,
    parse_failures: Counter,
    payload_bytes: Histogram,
    /// How much of the shard sink has been attributed to a merge key.
    sink_cursor: usize,
}

/// Everything one shard owns. Built by the pool factory *on* the worker
/// thread (`ScriptHost` and the parser VMs are `!Send`).
struct ShardState {
    proto: Proto,
    stack: ParserStack,
    gov: Governance,
    host: ScriptHost,
    profiler: Profiler,
    tel: Option<ShardTelemetry>,
    std_http: HashMap<String, HttpConnParser>,
    bp_http: Option<BinpacHttp>,
    bp_dns: Option<BinpacDns>,
    quarantined: HashSet<String>,
    n_events: u64,
    parse_failures: u64,
    log_cursors: [usize; 3],
    logs: [Vec<Tagged<String>>; 3],
    output: Vec<Tagged<String>>,
    flow_errors: Vec<Tagged<FlowError>>,
    /// Engine/pipeline telemetry events, rendered to JSONL at capture time.
    events: Vec<Tagged<String>>,
    /// First unrecoverable error (ungoverned mode): merge picks the
    /// globally-first one. Processing on this shard stops here.
    fatal: Option<(Key, RtError)>,
    seq: u64,
}

impl ShardState {
    fn new(
        proto: Proto,
        stack: ParserStack,
        engine: Engine,
        gov: Governance,
    ) -> RtResult<ShardState> {
        let profiler = Profiler::new();
        let script = match proto {
            Proto::Http => scripts::HTTP_BRO,
            Proto::Dns => scripts::DNS_BRO,
        };
        let mut host =
            ScriptHost::new_tiered(&[script], engine, Some(profiler.clone()), gov.tiering)?;
        let tel = gov.telemetry.then(|| {
            let telemetry = Telemetry::new();
            ShardTelemetry {
                bytes_parsed: telemetry.counter("pipeline.bytes_parsed"),
                parse_failures: telemetry.counter("pipeline.parse_failures"),
                payload_bytes: telemetry.histogram("pipeline.payload_bytes"),
                sink_cursor: 0,
                telemetry,
            }
        });
        if let Some(t) = &tel {
            host.set_telemetry(&t.telemetry);
        }
        let mut bp_http = None;
        let mut bp_dns = None;
        match (proto, stack) {
            (Proto::Http, ParserStack::Binpac) => {
                let mut b = BinpacHttp::new(OptLevel::Full, Some(profiler.clone()))?;
                if let Some(n) = gov.per_flow_heap {
                    b.set_session_budget(n);
                }
                if let Some(steps) = gov.inject_fault_after {
                    b.inject_fault_after(steps, RtError::runtime("injected chaos fault"));
                }
                if let Some(t) = &tel {
                    b.set_telemetry(&t.telemetry);
                }
                bp_http = Some(b);
            }
            (Proto::Dns, ParserStack::Binpac) => {
                let mut b = BinpacDns::new(OptLevel::Full, Some(profiler.clone()))?;
                if let Some(t) = &tel {
                    b.set_telemetry(&t.telemetry);
                }
                bp_dns = Some(b);
            }
            _ => {}
        }
        Ok(ShardState {
            proto,
            stack,
            gov,
            host,
            profiler,
            tel,
            std_http: HashMap::new(),
            bp_http,
            bp_dns,
            quarantined: HashSet::new(),
            n_events: 0,
            parse_failures: 0,
            log_cursors: [0; 3],
            logs: [Vec::new(), Vec::new(), Vec::new()],
            output: Vec::new(),
            flow_errors: Vec::new(),
            events: Vec::new(),
            fatal: None,
            seq: 0,
        })
    }

    fn process(&mut self, item: ShardItem) {
        if self.fatal.is_some() {
            return;
        }
        match item {
            ShardItem::Delivery {
                slot,
                uid,
                id,
                is_orig,
                ts,
                payload,
                finished,
            } => match self.proto {
                Proto::Http => http_delivery(self, slot, uid, id, is_orig, ts, payload, finished),
                Proto::Dns => dns_delivery(self, slot, uid, id, ts, payload),
            },
            ShardItem::Evict { uid } => {
                self.std_http.remove(&uid);
                if let Some(bp) = self.bp_http.as_mut() {
                    bp.drop_conn(&uid);
                }
                self.quarantined.remove(&uid);
            }
            ShardItem::FinishFlow {
                parse_major,
                dispatch_major,
                uid,
                ts,
            } => http_finish_flow(self, parse_major, dispatch_major, uid, ts),
            ShardItem::Done { major, ts } => done(self, major, ts),
        }
    }

    /// Attributes everything the shard sink collected since the last call
    /// to `key` (engine events raised while parsing or dispatching).
    fn collect_sink(&mut self, key: Key) {
        let Some(t) = self.tel.as_mut() else { return };
        let new = t.telemetry.sink.events_since(t.sink_cursor);
        t.sink_cursor += new.len();
        for ev in &new {
            let seq = self.seq;
            self.seq += 1;
            self.events.push((key, seq, ev.to_json()));
        }
    }

    /// Attributes new log lines and printed output to `key`.
    fn collect_host_effects(&mut self, key: Key) {
        for (i, name) in LOG_STREAMS.iter().enumerate() {
            let lines = self.host.log_lines_from(name, self.log_cursors[i]);
            self.log_cursors[i] += lines.len();
            for l in lines {
                let seq = self.seq;
                self.seq += 1;
                self.logs[i].push((key, seq, l));
            }
        }
        for l in self.host.take_output() {
            let seq = self.seq;
            self.seq += 1;
            self.output.push((key, seq, l));
        }
    }

    /// Dispatches a batch of events exactly as the sequential
    /// `dispatch_events` does (per-event fuel re-arm, quarantine vs
    /// abort), then attributes all resulting effects to `key`.
    fn dispatch(&mut self, events: &[Event], key: Key) {
        if self.fatal.is_none() {
            for ev in events {
                self.n_events += 1;
                if self.gov.script_fuel.is_some() {
                    self.host.set_limits(ResourceLimits {
                        fuel: self.gov.script_fuel,
                        ..ResourceLimits::default()
                    });
                }
                if let Err(e) = self.host.dispatch_event(ev) {
                    if !self.gov.quarantine {
                        self.fatal = Some((key, e));
                        break;
                    }
                    let seq = self.seq;
                    self.seq += 1;
                    self.flow_errors
                        .push((key, seq, FlowError::new(ev.uid(), &e, ev.ts())));
                }
            }
        }
        self.collect_sink(key);
        self.collect_host_effects(key);
    }
}

#[allow(clippy::too_many_arguments)]
fn http_delivery(
    st: &mut ShardState,
    slot: u64,
    uid: String,
    id: ConnId,
    is_orig: bool,
    ts: Time,
    payload: Vec<u8>,
    finished: bool,
) {
    let parse_key = Key {
        major: slot,
        phase: PH_PARSE,
    };
    let mut events: Vec<Event> = Vec::new();
    {
        let _o = st.profiler.enter(Component::Other);
        if !st.quarantined.contains(&uid) {
            if !payload.is_empty() {
                if let Some(t) = &st.tel {
                    t.bytes_parsed.add(payload.len() as u64);
                    t.payload_bytes.observe(payload.len() as u64);
                }
            }
            match st.stack {
                ParserStack::Standard => {
                    let _pp = st.profiler.enter(Component::ProtocolParsing);
                    let parser = st
                        .std_http
                        .entry(uid.clone())
                        .or_insert_with(|| HttpConnParser::new(uid.clone(), id));
                    if !payload.is_empty() {
                        parser.feed(is_orig, &payload, ts, &mut events);
                    }
                    if finished {
                        parser.finish(ts, &mut events);
                    }
                }
                ParserStack::Binpac => {
                    let bp = st.bp_http.as_mut().expect("binpac stack");
                    let mut fail: Option<RtError> = None;
                    if !payload.is_empty() {
                        if let Err(e) = bp.feed(&uid, id, is_orig, ts, &payload) {
                            fail = Some(e);
                        }
                    }
                    if fail.is_none() && finished {
                        if let Err(e) = bp.finish_conn(&uid, id, ts) {
                            fail = Some(e);
                        }
                    }
                    // Events emitted before the fault still count.
                    events.extend(bp.take_events());
                    if let Some(e) = fail {
                        if !st.gov.quarantine {
                            st.fatal = Some((parse_key, e));
                            return;
                        }
                        bp.drop_conn(&uid);
                        st.std_http.remove(&uid);
                        st.quarantined.insert(uid.clone());
                        let seq = st.seq;
                        st.seq += 1;
                        st.flow_errors
                            .push((parse_key, seq, FlowError::new(&uid, &e, ts)));
                    }
                }
            }
        }
    }
    st.collect_sink(parse_key);
    st.dispatch(
        &events,
        Key {
            major: slot,
            phase: PH_DISPATCH,
        },
    );
}

fn dns_delivery(
    st: &mut ShardState,
    slot: u64,
    uid: String,
    id: ConnId,
    ts: Time,
    payload: Vec<u8>,
) {
    let parse_key = Key {
        major: slot,
        phase: PH_PARSE,
    };
    let mut events: Vec<Event> = Vec::new();
    if !payload.is_empty() {
        let _o = st.profiler.enter(Component::Other);
        if let Some(t) = &st.tel {
            t.bytes_parsed.add(payload.len() as u64);
            t.payload_bytes.observe(payload.len() as u64);
        }
        match st.stack {
            ParserStack::Standard => {
                let _pp = st.profiler.enter(Component::ProtocolParsing);
                if !standard_dns_events(&uid, id, ts, &payload, &mut events) {
                    st.parse_failures += 1;
                    if let Some(t) = &st.tel {
                        t.parse_failures.inc();
                        t.telemetry.emit(
                            "parser_error",
                            vec![("uid", uid.as_str().into()), ("ts_ns", ts.nanos().into())],
                        );
                    }
                }
            }
            ParserStack::Binpac => {
                let bp = st.bp_dns.as_mut().expect("binpac stack");
                match bp.datagram(&uid, id, ts, &payload) {
                    Ok(true) => {}
                    Ok(false) => {
                        st.parse_failures += 1;
                        if let Some(t) = &st.tel {
                            t.parse_failures.inc();
                            t.telemetry.emit(
                                "parser_error",
                                vec![("uid", uid.as_str().into()), ("ts_ns", ts.nanos().into())],
                            );
                        }
                    }
                    Err(e) => {
                        if !st.gov.quarantine {
                            st.fatal = Some((parse_key, e));
                            return;
                        }
                        let seq = st.seq;
                        st.seq += 1;
                        st.flow_errors
                            .push((parse_key, seq, FlowError::new(&uid, &e, ts)));
                    }
                }
                let bp = st.bp_dns.as_mut().expect("binpac stack");
                events.extend(bp.take_events());
            }
        }
    }
    st.collect_sink(parse_key);
    st.dispatch(
        &events,
        Key {
            major: slot,
            phase: PH_DISPATCH,
        },
    );
}

/// End-of-trace flush of one flow, in the global order the dispatcher
/// assigned (first-seen order for the standard stack, sorted-uid order for
/// BinPAC++ — each matching its sequential counterpart). Flows whose
/// parser state is already gone (closed, quarantined, never fed) are
/// no-ops, exactly as in the sequential flush.
fn http_finish_flow(
    st: &mut ShardState,
    parse_major: u64,
    dispatch_major: u64,
    uid: String,
    ts: Time,
) {
    let parse_key = Key {
        major: parse_major,
        phase: PH_PARSE,
    };
    let mut events: Vec<Event> = Vec::new();
    match st.stack {
        ParserStack::Standard => {
            if let Some(mut parser) = st.std_http.remove(&uid) {
                let _pp = st.profiler.enter(Component::ProtocolParsing);
                parser.finish(ts, &mut events);
            }
        }
        ParserStack::Binpac => {
            let bp = st.bp_http.as_mut().expect("binpac stack");
            if bp.has_conn(&uid) {
                if let Err(e) = bp.finish_conn(&uid, placeholder_id(), ts) {
                    if !st.gov.quarantine {
                        st.fatal = Some((parse_key, e));
                        return;
                    }
                    bp.drop_conn(&uid);
                    let seq = st.seq;
                    st.seq += 1;
                    st.flow_errors
                        .push((parse_key, seq, FlowError::new(&uid, &e, ts)));
                }
                let bp = st.bp_http.as_mut().expect("binpac stack");
                events.extend(bp.take_events());
            }
        }
    }
    st.collect_sink(parse_key);
    st.dispatch(
        &events,
        Key {
            major: dispatch_major,
            phase: PH_DISPATCH,
        },
    );
}

fn done(st: &mut ShardState, major: u64, ts: Time) {
    let key = Key {
        major,
        phase: PH_DISPATCH,
    };
    if st.gov.script_fuel.is_some() {
        st.host.set_limits(ResourceLimits {
            fuel: st.gov.script_fuel,
            ..ResourceLimits::default()
        });
    }
    if let Err(e) = st.host.done() {
        if !st.gov.quarantine {
            st.fatal = Some((key, e));
        } else {
            let seq = st.seq;
            st.seq += 1;
            st.flow_errors.push((key, seq, FlowError::new("-", &e, ts)));
        }
    }
    st.collect_sink(key);
    st.collect_host_effects(key);
}

/// What a shard hands back at harvest. All fields are `Send`.
struct ShardReport {
    logs: [Vec<Tagged<String>>; 3],
    output: Vec<Tagged<String>>,
    flow_errors: Vec<Tagged<FlowError>>,
    events: Vec<Tagged<String>>,
    snapshot: TelemetrySnapshot,
    profiler: Profiler,
    n_events: u64,
    parse_failures: u64,
    peak_flow_bytes: u64,
    fatal: Option<(Key, RtError)>,
}

fn harvest(st: &mut ShardState) -> ShardReport {
    let peak_flow_bytes = st
        .bp_http
        .as_ref()
        .map(|b| b.peak_session_bytes())
        .unwrap_or(0);
    let snapshot = match st.tel.as_ref() {
        Some(t) => {
            // Mirror the sequential `PipelineTelemetry::finish` bookkeeping
            // that sums correctly across shards: dispatched-event count,
            // peak gauge, quarantine counters. The quarantine *events* are
            // re-emitted by the merge (they trail the whole stream in
            // merged-ledger order), so the shard snapshot carries no events.
            t.telemetry
                .counter("pipeline.events_dispatched")
                .add(st.n_events);
            t.telemetry
                .gauge("pipeline.peak_flow_heap_bytes")
                .set_max(peak_flow_bytes);
            let quarantined = t.telemetry.counter("pipeline.flows_quarantined");
            for (_, _, fe) in &st.flow_errors {
                quarantined.inc();
                t.telemetry
                    .registry
                    .counter(&format!("pipeline.flow_errors.{}", fe.kind))
                    .inc();
            }
            let mut snap = t.telemetry.snapshot();
            snap.events = Vec::new();
            snap
        }
        None => TelemetrySnapshot::default(),
    };
    ShardReport {
        logs: std::mem::take(&mut st.logs),
        output: std::mem::take(&mut st.output),
        flow_errors: std::mem::take(&mut st.flow_errors),
        events: std::mem::take(&mut st.events),
        snapshot,
        profiler: st.profiler.clone(),
        n_events: st.n_events,
        parse_failures: st.parse_failures,
        peak_flow_bytes,
        fatal: st.fatal.clone(),
    }
}

/// Dispatcher-side telemetry: the shared-decision counters plus tagged
/// `flow_open` / `flow_close` / `timer_expiry` events.
struct DispatcherTelemetry {
    telemetry: Telemetry,
    packets: Counter,
    flows_opened: Counter,
    flows_closed: Counter,
    flows_expired: Counter,
    events: Vec<Tagged<String>>,
    seq: u64,
}

impl DispatcherTelemetry {
    fn new() -> DispatcherTelemetry {
        let telemetry = Telemetry::new();
        DispatcherTelemetry {
            packets: telemetry.counter("pipeline.packets"),
            flows_opened: telemetry.counter("pipeline.flows_opened"),
            flows_closed: telemetry.counter("pipeline.flows_closed"),
            flows_expired: telemetry.counter("pipeline.flows_expired"),
            events: Vec::new(),
            seq: 0,
            telemetry,
        }
    }

    fn emit(&mut self, key: Key, kind: &'static str, uid: &str, ts: Time) {
        let ev = TelemetryEvent {
            kind,
            fields: vec![("uid", uid.into()), ("ts_ns", ts.nanos().into())],
        };
        let seq = self.seq;
        self.seq += 1;
        self.events.push((key, seq, ev.to_json()));
    }
}

/// Replays an HTTP trace through `opts.workers` flow-sharded pipelines.
/// The result is byte-identical to [`crate::pipeline::run_http_analysis_governed`]
/// with the same governance, for every worker count.
pub fn run_http_analysis_parallel(
    packets: &[RawPacket],
    stack: ParserStack,
    engine: Engine,
    opts: &PipelineOptions,
) -> RtResult<AnalysisResult> {
    run_parallel(packets, Proto::Http, stack, engine, opts)
}

/// Replays a DNS trace through `opts.workers` flow-sharded pipelines.
pub fn run_dns_analysis_parallel(
    packets: &[RawPacket],
    stack: ParserStack,
    engine: Engine,
    opts: &PipelineOptions,
) -> RtResult<AnalysisResult> {
    run_parallel(packets, Proto::Dns, stack, engine, opts)
}

/// Deliveries per cross-thread submission (amortizes channel overhead).
const BATCH: usize = 128;

fn run_parallel(
    packets: &[RawPacket],
    proto: Proto,
    stack: ParserStack,
    engine: Engine,
    opts: &PipelineOptions,
) -> RtResult<AnalysisResult> {
    let workers = opts.workers.max(1);
    let gov = opts.governance;
    // Pre-flight on this thread so construction errors surface as `Err`
    // (the pool factory can only panic).
    drop(ShardState::new(proto, stack, engine, gov)?);
    let pool: WorkPool<ShardState> = WorkPool::new(workers, move |_w, _handle| {
        ShardState::new(proto, stack, engine, gov).expect("shard construction passed pre-flight")
    });

    let profiler = Profiler::new();
    let mut dtel = gov.telemetry.then(DispatcherTelemetry::new);
    let mut flows = FlowTable::new();
    let mut timers: TimerMgr<String> = TimerMgr::new();
    let mut owner: HashMap<String, usize> = HashMap::new();
    let mut first_seen: Vec<String> = Vec::new();
    let mut buf: Vec<Vec<ShardItem>> = (0..workers).map(|_| Vec::new()).collect();
    let mut flows_expired = 0u64;
    let mut n_packets = 0u64;
    let mut last_ts = Time::ZERO;

    let flush =
        |pool: &WorkPool<ShardState>, buf: &mut Vec<ShardItem>, shard: usize| -> RtResult<()> {
            if buf.is_empty() {
                return Ok(());
            }
            let items = std::mem::take(buf);
            pool.submit(shard, move |st| {
                for item in items {
                    st.process(item);
                }
            })
        };

    for (slot, pkt) in packets.iter().enumerate() {
        let slot = slot as u64;
        n_packets += 1;
        last_ts = pkt.ts;
        let _o = profiler.enter(Component::Other);
        if let Some(t) = &dtel {
            t.packets.inc();
        }
        let Ok(d) = decode_ethernet(pkt) else {
            continue;
        };
        let shard = (shard_hash(&d) % workers as u64) as usize;
        let delivery = flows.process(&d);
        let uid = delivery.flow.uid.clone();
        let id = delivery.flow.id;
        let is_orig = delivery.is_orig;
        let finished = delivery.finished_now;
        let payload = delivery.payload;
        if !owner.contains_key(&uid) {
            owner.insert(uid.clone(), shard);
            first_seen.push(uid.clone());
            if let Some(t) = &mut dtel {
                t.flows_opened.inc();
                t.emit(
                    Key {
                        major: slot,
                        phase: PH_FLOW,
                    },
                    "flow_open",
                    &uid,
                    pkt.ts,
                );
            }
        }
        if finished {
            if let Some(t) = &mut dtel {
                t.flows_closed.inc();
                t.emit(
                    Key {
                        major: slot,
                        phase: PH_FLOW,
                    },
                    "flow_close",
                    &uid,
                    pkt.ts,
                );
            }
        }
        buf[shard].push(ShardItem::Delivery {
            slot,
            uid: uid.clone(),
            id,
            is_orig,
            ts: pkt.ts,
            payload,
            finished,
        });
        if buf[shard].len() >= BATCH {
            flush(&pool, &mut buf[shard], shard)?;
        }

        // Idle-flow expiry is a *global* decision: the dispatcher's timer
        // wheel sweeps the shared flow table and tells the owning shard to
        // drop its state. Shard-local sweeps would fire at different
        // packet positions for different worker counts.
        if let Some(ms) = gov.idle_timeout_ms {
            timers.schedule(pkt.ts + Interval::from_millis(ms as i64), uid.clone());
            if !timers.advance(pkt.ts).is_empty() {
                let cutoff =
                    Time::from_nanos(pkt.ts.nanos().saturating_sub(ms.saturating_mul(1_000_000)));
                for dead in flows.expire_idle_uids(cutoff) {
                    if let Some(&w) = owner.get(&dead) {
                        buf[w].push(ShardItem::Evict { uid: dead.clone() });
                        if buf[w].len() >= BATCH {
                            flush(&pool, &mut buf[w], w)?;
                        }
                    }
                    if let Some(t) = &mut dtel {
                        t.flows_expired.inc();
                        t.emit(
                            Key {
                                major: slot,
                                phase: PH_TIMER,
                            },
                            "timer_expiry",
                            &dead,
                            pkt.ts,
                        );
                    }
                    flows_expired += 1;
                }
            }
        }
    }

    // End of trace. For HTTP, flush still-open flows in the order the
    // sequential pipeline uses: first-seen for the standard stack,
    // sorted-uid for BinPAC++ (its `live_uids()` teardown order). The
    // dispatcher cannot know which flows still hold parser state (closed,
    // expired, and quarantined ones don't), so it over-sends every
    // first-seen uid and the owning shard presence-checks; dead candidates
    // leave harmless gaps in the major sequence. Each candidate gets a
    // parse major and a dispatch major so all parses precede all
    // dispatches, as in the sequential batch flush.
    let base = packets.len() as u64;
    let mut n_cand = 0u64;
    if proto == Proto::Http {
        let mut cands: Vec<&String> = first_seen.iter().collect();
        if stack == ParserStack::Binpac {
            cands.sort();
        }
        n_cand = cands.len() as u64;
        for (r, uid) in cands.into_iter().enumerate() {
            let w = owner[uid];
            buf[w].push(ShardItem::FinishFlow {
                parse_major: base + r as u64,
                dispatch_major: base + n_cand + r as u64,
                uid: uid.clone(),
                ts: last_ts,
            });
        }
    }
    let done_major = base + 2 * n_cand;
    for (w, b) in buf.iter_mut().enumerate() {
        b.push(ShardItem::Done {
            major: done_major,
            ts: last_ts,
        });
        flush(&pool, b, w)?;
    }

    // Harvest: one report job per shard, queued behind all its work.
    let (tx, rx) = std::sync::mpsc::channel::<(usize, ShardReport)>();
    for w in 0..workers {
        let tx = tx.clone();
        pool.submit(w, move |st| {
            let _ = tx.send((w, harvest(st)));
        })?;
    }
    drop(tx);
    let mut reports: Vec<(usize, ShardReport)> = Vec::with_capacity(workers);
    for _ in 0..workers {
        let r = rx
            .recv()
            .map_err(|_| RtError::runtime("pipeline shard terminated unexpectedly"))?;
        reports.push(r);
    }
    pool.shutdown();
    reports.sort_by_key(|(w, _)| *w);
    let reports: Vec<ShardReport> = reports.into_iter().map(|(_, r)| r).collect();

    // An ungoverned error aborts the run with the globally-first failure,
    // exactly as the sequential pipeline's early return would.
    if let Some((_, _, e)) = reports
        .iter()
        .enumerate()
        .filter_map(|(w, r)| r.fatal.as_ref().map(|(k, e)| (*k, w, e)))
        .min_by_key(|(k, w, _)| (*k, *w))
    {
        return Err(e.clone());
    }

    // Deterministic merge: sort every tagged stream by (key, shard, seq)
    // and strip the tags.
    fn merge_stream<T>(parts: Vec<Vec<(usize, Tagged<T>)>>) -> Vec<T> {
        let mut all: Vec<(Key, usize, u64, T)> = parts
            .into_iter()
            .flatten()
            .map(|(shard, (key, seq, v))| (key, shard, seq, v))
            .collect();
        all.sort_by_key(|a| (a.0, a.1, a.2));
        all.into_iter().map(|(_, _, _, v)| v).collect()
    }
    let tag = |w: usize, v: Vec<Tagged<String>>| -> Vec<(usize, Tagged<String>)> {
        v.into_iter().map(|t| (w, t)).collect()
    };

    let mut reports = reports;
    let mut log_streams: Vec<Vec<String>> = Vec::new();
    for i in 0..LOG_STREAMS.len() {
        let parts = reports
            .iter_mut()
            .enumerate()
            .map(|(w, r)| tag(w, std::mem::take(&mut r.logs[i])))
            .collect();
        log_streams.push(merge_stream(parts));
    }
    let output = merge_stream(
        reports
            .iter_mut()
            .enumerate()
            .map(|(w, r)| tag(w, std::mem::take(&mut r.output)))
            .collect(),
    );
    let flow_errors: Vec<FlowError> = merge_stream(
        reports
            .iter_mut()
            .enumerate()
            .map(|(w, r)| {
                std::mem::take(&mut r.flow_errors)
                    .into_iter()
                    .map(|t| (w, t))
                    .collect()
            })
            .collect(),
    );
    // The global event stream: dispatcher events (phases 0/2) interleaved
    // with shard events (phases 1/3), then the quarantine events re-emitted
    // from the merged ledger — the order `PipelineTelemetry::finish` uses.
    let mut event_parts: Vec<Vec<(usize, Tagged<String>)>> = reports
        .iter_mut()
        .enumerate()
        .map(|(w, r)| tag(w, std::mem::take(&mut r.events)))
        .collect();
    if let Some(t) = &mut dtel {
        event_parts.push(tag(usize::MAX, std::mem::take(&mut t.events)));
    }
    let mut merged_events = merge_stream(event_parts);
    if gov.telemetry {
        for fe in &flow_errors {
            let ev = TelemetryEvent {
                kind: "quarantine",
                fields: vec![
                    ("uid", fe.uid.as_str().into()),
                    ("kind", fe.kind.as_str().into()),
                    ("ts_ns", fe.ts.nanos().into()),
                ],
            };
            merged_events.push(ev.to_json());
        }
    }

    let telemetry = match &dtel {
        Some(t) => {
            let mut parts = vec![t.telemetry.snapshot()];
            parts.extend(reports.iter().map(|r| r.snapshot.clone()));
            let mut merged = TelemetrySnapshot::merge(&parts);
            merged.events = merged_events;
            merged
        }
        None => TelemetrySnapshot::default(),
    };
    for r in &reports {
        profiler.absorb(&r.profiler);
    }

    let mut log_iter = log_streams.into_iter();
    Ok(AnalysisResult {
        http_log: log_iter.next().unwrap_or_default(),
        files_log: log_iter.next().unwrap_or_default(),
        dns_log: log_iter.next().unwrap_or_default(),
        output,
        profiler,
        events: reports.iter().map(|r| r.n_events).sum(),
        packets: n_packets,
        flow_errors,
        flows_expired,
        peak_flow_bytes: reports.iter().map(|r| r.peak_flow_bytes).max().unwrap_or(0),
        parse_failures: reports.iter().map(|r| r.parse_failures).sum(),
        telemetry,
    })
}
