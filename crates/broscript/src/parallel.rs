//! Flow-sharded parallel analysis pipeline with a deterministic merge.
//!
//! The paper's concurrency model (§3.2) hashes each flow to a virtual
//! thread so all computation for one flow is implicitly serialized; "HILTI
//! code is always safe to execute in parallel" (§7). This module applies
//! that placement to the whole analysis pipeline: a dispatcher thread
//! decodes packets and runs the shared flow table, then hashes each
//! connection 5-tuple ([`netpkt::flow::shard_hash`], symmetric and
//! worker-count-independent) to one of N shards. Each shard — its own
//! `std::thread` fed by a bounded SPSC ring ([`hilti_rt::spsc`]) — owns a
//! private engine context, parser stack, script host, profiler, and
//! telemetry registry, so the per-packet hot path takes no locks.
//!
//! **Zero-copy dispatch.** The trace is loaded once into a shared
//! immutable [`TraceBuffer`] arena. Deliveries carry a [`PayloadRef`] —
//! an `(offset, len)` slice into the arena for in-order payload — and an
//! interned `Arc<str>` uid shared with the flow table, so the per-packet
//! item shipped across threads is a fixed-size struct with no heap copy
//! of payload or uid. Deliveries are staged per shard and pushed to the
//! ring in batches of [`PipelineOptions::batch`], amortizing the
//! cross-thread wakeup.
//!
//! **Determinism.** The result of an N-worker run is byte-identical to the
//! 1-worker (and to the sequential [`crate::pipeline`]) run for every N
//! and every batch size. Global decisions stay on the dispatcher: uid
//! assignment, TCP reassembly, and idle-flow expiry (the timer wheel
//! sweeps the shared flow table; shards receive `Evict` directives rather
//! than sweeping locally, since a shard-local sweep would fire at
//! different packet positions for different N). Shard-side effects — log
//! lines, printed lines, flow errors, telemetry events — are recorded in
//! flat per-shard vectors, and each processing step seals an
//! [`EffectBlock`]: the `(offset, len)` ranges it appended, keyed by the
//! position the sequential pipeline would have produced them in:
//!
//! * phase 0 — dispatcher `flow_open`/`flow_close` events,
//! * phase 1 — parse effects (parser events, `parser_error`, engine sink
//!   events raised while parsing),
//! * phase 2 — dispatcher `timer_expiry` events,
//! * phase 3 — dispatch effects (script logs/output, engine sink events
//!   raised while executing handlers).
//!
//! Because each shard processes its items in key order, its blocks form
//! (at most two) sorted streams, and every key has a unique producer
//! (only the end-of-run `bro_done` key ties across shards, broken by
//! shard index). The merge therefore orders the *block descriptors* by
//! `(key, shard)` and concatenates each category's ranges — no per-line
//! sort. Telemetry snapshots combine by [`TelemetrySnapshot::merge`] —
//! counters summed, gauges max-merged (they track peaks), histograms
//! bucket-wise — and the merged event stream replaces the concatenation,
//! with `quarantine` events re-emitted at the end in merged-ledger order
//! exactly as the sequential pipeline does. Dispatch-plane metrics (batch
//! counts, fill, queue depths) depend on N and batch, so they live in the
//! separate [`AnalysisResult::dispatch_telemetry`] snapshot. See
//! DESIGN.md ("Batched zero-copy dispatch").

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use binpac::dns::BinpacDns;
use binpac::http::BinpacHttp;
use binpac::parser::ParserIr;
use hilti::passes::OptLevel;
use hilti_rt::error::{RtError, RtResult};
use hilti_rt::profile::{Component, Profiler};
use hilti_rt::spsc::{self, Producer};
use hilti_rt::telemetry::{
    Counter, Event as TelemetryEvent, Gauge, Histogram, Telemetry, TelemetrySnapshot,
};
use hilti_rt::time::{Interval, Time};
use hilti_rt::timer::TimerMgr;
use hilti_rt::trace::{
    monotonic_ns, FlightRecorder, PostmortemDump, RecorderPart, SharedRecorder, Stage, TraceReport,
    DISPATCHER,
};

use hilti_rt::bytestring::FeedChunk;
use netpkt::decode::decode_frame;
use netpkt::events::{ConnId, Event};
use netpkt::flow::{shard_hash_frame, FlowTable};
use netpkt::http::HttpConnParser;
use netpkt::pcap::RawPacket;
use netpkt::{PayloadRef, TraceBuffer};

use crate::host::{Engine, HostBlueprint, ScriptHost};
use crate::pipeline::{
    arm_script_limits, placeholder_id, standard_dns_events, warn_event_drops, AnalysisResult,
    FlowError, Governance, ParserStack, ShardFault,
};
use crate::scripts;

/// Default shard count: one per core, capped at 8 (the paper's evaluation
/// machine exposes 8 hardware threads).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Deliveries staged per shard before a ring submission (amortizes the
/// cross-thread wakeup). See DESIGN.md for the tuning sweep behind the
/// default.
pub const DEFAULT_BATCH: usize = 128;

/// What the dispatcher does when a shard's ring stays saturated.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OverloadPolicy {
    /// Park until the shard drains (lossless backpressure — the default).
    /// Output stays byte-identical to sequential; a wedged shard stalls
    /// the dispatcher, which is what the per-delivery watchdog deadline
    /// ([`Governance::delivery_deadline_ms`]) exists to bound.
    #[default]
    Block,
    /// Bound the ring at `max_queue_depth` items and drop whole delivery
    /// batches that do not fit, counting them per shard as
    /// `pipeline.shed_packets.shard{w}` / `pipeline.shed_batches.shard{w}`
    /// in [`AnalysisResult::dispatch_telemetry`] and in total as
    /// [`AnalysisResult::shed_packets`]. Control items (evictions,
    /// end-of-trace flushes, done markers) are never shed — they block
    /// instead, so shutdown and state teardown stay reliable. Shedding
    /// depends on wall-clock scheduling, so output under `Shed` is *not*
    /// deterministic; it is the live-overload degradation mode.
    Shed { max_queue_depth: usize },
}

/// Knobs for a parallel run.
#[derive(Clone, Copy)]
pub struct PipelineOptions {
    /// Number of shards (worker threads). The output is byte-identical
    /// for every value; only throughput changes.
    pub workers: usize,
    /// Deliveries staged per shard before the dispatcher pushes them to
    /// the shard's ring. The output is byte-identical for every value;
    /// only dispatch overhead changes.
    pub batch: usize,
    pub governance: Governance,
    /// Backpressure policy when a shard's ring is full.
    pub overload: OverloadPolicy,
    /// Chaos hook: worker `.0` panics at the start of its `.1`-th
    /// delivery (1-based, one-shot). See
    /// [`PipelineOptions::inject_shard_panic_after`].
    pub panic_inject: Option<(usize, u64)>,
    /// Chaos hook: worker `.0` sleeps `.1` milliseconds before first
    /// draining its ring. See [`PipelineOptions::inject_shard_stall`].
    pub stall_inject: Option<(usize, u64)>,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            workers: default_workers(),
            batch: DEFAULT_BATCH,
            governance: Governance::default(),
            overload: OverloadPolicy::Block,
            panic_inject: None,
            stall_inject: None,
        }
    }
}

impl PipelineOptions {
    /// Chaos hook mirroring `Context::inject_fault_after`: shard `shard`
    /// panics at the start of the `n`-th delivery it receives (1-based,
    /// one-shot). Deterministic for a fixed `(trace, workers)` — the
    /// same flows always hash to the same shard, in the same order.
    pub fn inject_shard_panic_after(mut self, shard: usize, n: u64) -> Self {
        self.panic_inject = Some((shard, n));
        self
    }

    /// Chaos hook: shard `shard` sleeps `ms` milliseconds before first
    /// draining its ring, simulating a wedged or descheduled worker.
    /// Under [`OverloadPolicy::Block`] this only delays the run; under
    /// `Shed` it forces the dispatcher down the shedding path.
    pub fn inject_shard_stall(mut self, shard: usize, ms: u64) -> Self {
        self.stall_inject = Some((shard, ms));
        self
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Proto {
    Http,
    Dns,
}

/// Within-packet phases, mirroring the sequential emission order.
const PH_FLOW: u8 = 0;
const PH_PARSE: u8 = 1;
const PH_TIMER: u8 = 2;
const PH_DISPATCH: u8 = 3;

/// Merge key: the position in the sequential output this effect belongs
/// to. `major` is the packet slot for in-trace effects; end-of-trace
/// flushes use majors past the packet count (one per candidate flow for
/// the parse sweep, then one per candidate for the dispatch sweep, then
/// one for `bro_done`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Key {
    major: u64,
    phase: u8,
}

const LOG_STREAMS: [&str; 3] = ["http.log", "files.log", "dns.log"];

/// Flat per-shard effect storage. Effects are appended in processing
/// order; [`EffectBlock`]s record which ranges belong to which merge key.
#[derive(Default)]
struct Effects {
    logs: [Vec<String>; 3],
    output: Vec<String>,
    flow_errors: Vec<FlowError>,
    /// Engine/pipeline telemetry events, rendered to JSONL at capture time.
    events: Vec<String>,
}

/// One sealed epoch of effects: `(start, end)` ranges into the owner's
/// [`Effects`] vectors, tagged with the merge key. Blocks are emitted in
/// key order per stream, so the merge never sorts individual effects.
#[derive(Clone, Copy)]
struct EffectBlock {
    key: Key,
    logs: [(u32, u32); 3],
    output: (u32, u32),
    flow_errors: (u32, u32),
    events: (u32, u32),
}

/// Effect-vector lengths at the start of a block (see [`ShardState::mark`]).
#[derive(Clone, Copy, Default)]
struct Mark {
    logs: [u32; 3],
    output: u32,
    flow_errors: u32,
    events: u32,
}

/// Work items shipped from the dispatcher to a shard, in trace order.
/// Fixed-size: the uid is an interned `Arc<str>` shared with the flow
/// table and the payload an `(offset, len)` slice of the shared trace
/// arena (owned bytes only when reassembly had to stitch segments).
enum ShardItem {
    /// One reassembled segment of a flow owned by this shard.
    Delivery {
        slot: u64,
        uid: Arc<str>,
        id: ConnId,
        is_orig: bool,
        ts: Time,
        payload: PayloadRef,
        finished: bool,
        /// Dispatcher enqueue timestamp ([`monotonic_ns`]) when tracing is
        /// on, 0 otherwise. The shard's queue-wait span and end-to-end
        /// delivery latency start here.
        enq_ns: u64,
    },
    /// The dispatcher's timer wheel expired this flow: drop parser state.
    Evict { uid: Arc<str> },
    /// End-of-trace flush of one still-open flow (HTTP only).
    FinishFlow {
        parse_major: u64,
        dispatch_major: u64,
        uid: Arc<str>,
        ts: Time,
    },
    /// End of run: re-arm fuel and fire `bro_done`.
    Done { major: u64, ts: Time },
}

/// Shard-local pre-interned metric handles (the shard's own registry).
struct ShardTelemetry {
    telemetry: Telemetry,
    bytes_parsed: Counter,
    bytes_copied: Counter,
    bytes_borrowed: Counter,
    parse_failures: Counter,
    payload_bytes: Histogram,
    /// How much of the shard sink has been attributed to a block.
    sink_cursor: usize,
}

impl ShardTelemetry {
    /// Mirrors `PipelineTelemetry::routed`: attributes a delivery payload
    /// to the zero-copy (arena-borrowed) or memcpy'd counter.
    fn routed(&self, payload: &PayloadRef, forced_copy: bool) {
        match payload {
            PayloadRef::Shared { len, .. } if !forced_copy => {
                self.bytes_borrowed.add(*len as u64);
            }
            p => self.bytes_copied.add(p.len() as u64),
        }
    }
}

/// Everything one shard owns. Built *on* the worker thread (`ScriptHost`
/// and the parser VMs are `!Send`).
struct ShardState {
    proto: Proto,
    stack: ParserStack,
    gov: Governance,
    trace: Arc<TraceBuffer>,
    /// Shared build artifacts, kept so the supervisor can rebuild the
    /// engine pieces after a caught panic.
    blueprint: Arc<ShardBlueprint>,
    host: ScriptHost,
    profiler: Profiler,
    tel: Option<ShardTelemetry>,
    std_http: HashMap<Arc<str>, HttpConnParser>,
    bp_http: Option<BinpacHttp>,
    bp_dns: Option<BinpacDns>,
    quarantined: HashSet<Arc<str>>,
    n_events: u64,
    parse_failures: u64,
    log_cursors: [usize; 3],
    effects: Effects,
    /// In-trace blocks plus end-of-trace parse blocks: keys strictly
    /// increase in processing order.
    blocks_main: Vec<EffectBlock>,
    /// End-of-trace dispatch blocks and `bro_done`: their majors run past
    /// the parse sweep's, so they form a second sorted stream.
    blocks_tail: Vec<EffectBlock>,
    /// First unrecoverable error (ungoverned mode): merge picks the
    /// globally-first one. Processing on this shard stops here.
    fatal: Option<(Key, RtError)>,
    /// Merge key of the item currently being processed — the position a
    /// panic's quarantine block is sealed under.
    cur_key: Key,
    /// Timestamp of the item currently being processed.
    cur_ts: Time,
    /// Flow of the item currently being processed (None for `Done`).
    cur_uid: Option<Arc<str>>,
    /// Effect-vector lengths at the last seal: the panic salvage point.
    /// Everything past it was appended by the interrupted item and is
    /// discarded (the sequential run would also not have emitted a
    /// partial item's effects for a flow that dies mid-processing).
    sealed_high: Mark,
    /// Panics the supervisor caught and recovered from on this shard.
    faults: Vec<String>,
    /// Tombstone mode: a post-panic rebuild failed, so the shard has no
    /// engine. Every delivery for a not-yet-quarantined flow records a
    /// `ShardPanic` loss; control items are no-ops.
    dead: bool,
    /// Chaos: panic at the start of the n-th delivery (1-based, one-shot).
    panic_countdown: Option<u64>,
    /// Flight recorder ([`Governance::tracing`]): owned by this shard's
    /// thread, shared (same-thread `Rc`) with the binpac parsers so parse
    /// spans are recorded inside the generated-parser stack.
    rec: Option<SharedRecorder>,
    /// Enqueue timestamp of the delivery currently being processed (0
    /// when tracing is off or the item is not a delivery).
    cur_enq_ns: u64,
    /// Fault-triggered flight-recorder dumps captured on this shard
    /// (bounded; see [`ShardState::on_panic`]).
    postmortems: Vec<PostmortemDump>,
    /// Recycled per-delivery event buffers: deliveries `take` a cleared
    /// `Vec<Event>` and `put` it back after dispatch, so the per-packet
    /// path stops round-tripping the global allocator.
    event_bufs: crate::slab::Pool<Vec<Event>>,
}

/// Cap on per-shard postmortem dumps: a panic storm should not turn the
/// trace side-channel into an unbounded allocation.
const MAX_POSTMORTEMS_PER_SHARD: usize = 8;

/// Front-end build artifacts shared by every shard: the script host
/// blueprint plus (for the binpac stack) the generated parser's optimized
/// IR. `Send`, built once on the dispatcher thread — each shard pays only
/// bytecode lowering instead of a full compile.
struct ShardBlueprint {
    host: HostBlueprint,
    parser: Option<ParserIr>,
}

impl ShardBlueprint {
    fn build(
        proto: Proto,
        stack: ParserStack,
        engine: Engine,
        gov: &Governance,
    ) -> RtResult<ShardBlueprint> {
        let script = match proto {
            Proto::Http => scripts::HTTP_BRO,
            Proto::Dns => scripts::DNS_BRO,
        };
        let host = ScriptHost::blueprint(&[script], engine, gov.tiering)?;
        let parser = match (proto, stack) {
            (Proto::Http, ParserStack::Binpac) => Some(BinpacHttp::front_end(OptLevel::Full)?),
            (Proto::Dns, ParserStack::Binpac) => Some(BinpacDns::front_end(OptLevel::Full)?),
            _ => None,
        };
        Ok(ShardBlueprint { host, parser })
    }
}

/// Builds (or, after a caught panic, rebuilds) a shard's engine pieces —
/// script host plus parser stack — from the shared blueprint, wiring them
/// to the shard's existing profiler and telemetry registry.
fn build_engine(
    proto: Proto,
    stack: ParserStack,
    gov: &Governance,
    bp: &ShardBlueprint,
    profiler: &Profiler,
    tel: Option<&ShardTelemetry>,
    rec: Option<&SharedRecorder>,
) -> RtResult<(ScriptHost, Option<BinpacHttp>, Option<BinpacDns>)> {
    let mut host = ScriptHost::from_blueprint(&bp.host, Some(profiler.clone()))?;
    if let Some(t) = tel {
        host.set_telemetry(&t.telemetry);
    }
    let mut bp_http = None;
    let mut bp_dns = None;
    match (proto, stack) {
        (Proto::Http, ParserStack::Binpac) => {
            let ir = bp.parser.as_ref().expect("binpac blueprint carries IR");
            let mut b = BinpacHttp::from_ir(ir, Some(profiler.clone()))?;
            if let Some(n) = gov.per_flow_heap {
                b.set_session_budget(n);
            }
            if let Some(steps) = gov.inject_fault_after {
                b.inject_fault_after(steps, RtError::runtime("injected chaos fault"));
            }
            if let Some(t) = tel {
                b.set_telemetry(&t.telemetry);
            }
            if let Some(r) = rec {
                b.set_recorder(r.clone());
            }
            b.set_delivery_deadline_ms(gov.delivery_deadline_ms);
            bp_http = Some(b);
        }
        (Proto::Dns, ParserStack::Binpac) => {
            let ir = bp.parser.as_ref().expect("binpac blueprint carries IR");
            let mut b = BinpacDns::from_ir(ir, Some(profiler.clone()))?;
            if let Some(t) = tel {
                b.set_telemetry(&t.telemetry);
            }
            if let Some(r) = rec {
                b.set_recorder(r.clone());
            }
            b.set_delivery_deadline_ms(gov.delivery_deadline_ms);
            bp_dns = Some(b);
        }
        _ => {}
    }
    Ok((host, bp_http, bp_dns))
}

impl ShardState {
    fn new(
        shard: usize,
        proto: Proto,
        stack: ParserStack,
        gov: Governance,
        trace: Arc<TraceBuffer>,
        blueprint: Arc<ShardBlueprint>,
        panic_countdown: Option<u64>,
    ) -> RtResult<ShardState> {
        let profiler = Profiler::new();
        let rec = gov
            .tracing
            .then(|| FlightRecorder::new(shard as u32).shared());
        let tel = gov.telemetry.then(|| {
            let telemetry = Telemetry::new();
            ShardTelemetry {
                bytes_parsed: telemetry.counter("pipeline.bytes_parsed"),
                bytes_copied: telemetry.counter("pipeline.bytes_copied"),
                bytes_borrowed: telemetry.counter("pipeline.bytes_borrowed"),
                parse_failures: telemetry.counter("pipeline.parse_failures"),
                payload_bytes: telemetry.histogram("pipeline.payload_bytes"),
                sink_cursor: 0,
                telemetry,
            }
        });
        let (host, bp_http, bp_dns) = build_engine(
            proto,
            stack,
            &gov,
            &blueprint,
            &profiler,
            tel.as_ref(),
            rec.as_ref(),
        )?;
        Ok(ShardState {
            proto,
            stack,
            gov,
            trace,
            blueprint,
            host,
            profiler,
            tel,
            std_http: HashMap::new(),
            bp_http,
            bp_dns,
            quarantined: HashSet::new(),
            n_events: 0,
            parse_failures: 0,
            log_cursors: [0; 3],
            effects: Effects::default(),
            blocks_main: Vec::new(),
            blocks_tail: Vec::new(),
            fatal: None,
            cur_key: Key {
                major: 0,
                phase: PH_PARSE,
            },
            cur_ts: Time::ZERO,
            cur_uid: None,
            sealed_high: Mark::default(),
            faults: Vec::new(),
            dead: false,
            panic_countdown,
            rec,
            cur_enq_ns: 0,
            postmortems: Vec::new(),
            event_bufs: crate::slab::Pool::new(4),
        })
    }

    /// Records where the next item runs — the position and flow a panic
    /// would be charged to — and fires the injected chaos panic when its
    /// countdown hits. Runs *inside* the supervision boundary.
    fn begin(&mut self, item: &ShardItem) {
        match item {
            ShardItem::Delivery {
                slot,
                uid,
                ts,
                enq_ns,
                ..
            } => {
                self.cur_key = Key {
                    major: *slot,
                    phase: PH_PARSE,
                };
                self.cur_ts = *ts;
                self.cur_uid = Some(uid.clone());
                self.cur_enq_ns = *enq_ns;
                // Queue-wait span first, so a chaos panic below still
                // leaves the faulting delivery visible in the postmortem.
                if let Some(r) = &self.rec {
                    r.borrow_mut().record_span(
                        Stage::QueueWait,
                        *slot,
                        Some(uid),
                        *enq_ns,
                        monotonic_ns(),
                    );
                }
                if let Some(n) = self.panic_countdown {
                    if n <= 1 {
                        // One-shot: disarm before firing so the respawned
                        // engine does not re-trip on its next delivery.
                        self.panic_countdown = None;
                        panic!("injected shard panic");
                    }
                    self.panic_countdown = Some(n - 1);
                }
            }
            // Evictions carry no slot; a panic there is charged to the
            // previous item's position.
            ShardItem::Evict { uid } => self.cur_uid = Some(uid.clone()),
            ShardItem::FinishFlow {
                parse_major,
                uid,
                ts,
                ..
            } => {
                self.cur_key = Key {
                    major: *parse_major,
                    phase: PH_PARSE,
                };
                self.cur_ts = *ts;
                self.cur_uid = Some(uid.clone());
            }
            ShardItem::Done { major, ts } => {
                self.cur_key = Key {
                    major: *major,
                    phase: PH_DISPATCH,
                };
                self.cur_ts = *ts;
                self.cur_uid = None;
            }
        }
    }

    /// Supervision boundary: contains a panic the current item raised.
    ///
    /// Governed (quarantine) mode: discards the interrupted item's
    /// unsealed effects, quarantines every flow whose parser state lived
    /// on this shard as [`FlowError::SHARD_PANIC`] (sealed as a block at
    /// the interrupted position, so the loss ledger merges
    /// deterministically), and rebuilds the engine from the blueprint so
    /// subsequent deliveries process normally. If the rebuild itself
    /// fails the shard turns into a tombstone: every later delivery is
    /// recorded as a `ShardPanic` loss.
    ///
    /// Ungoverned mode keeps the all-or-nothing contract: the panic
    /// becomes the run's fatal error at the interrupted position.
    fn on_panic(&mut self, detail: String) {
        // Flight-recorder postmortem: drain the last spans *before* any
        // salvage, so the dump shows what the shard was doing when it
        // died (the faulting flow's queue-wait span included).
        if let Some(r) = &self.rec {
            if self.postmortems.len() < MAX_POSTMORTEMS_PER_SHARD {
                self.postmortems
                    .push(r.borrow().postmortem(&format!("ShardPanic: {detail}")));
            }
        }
        if !self.gov.quarantine {
            if self.fatal.is_none() {
                self.fatal = Some((
                    self.cur_key,
                    RtError::runtime(format!("shard panicked: {detail}")),
                ));
            }
            self.faults.push(detail);
            return;
        }

        // Salvage: drop effects the interrupted item appended but never
        // sealed, and skip whatever it pushed onto the engine sink.
        self.effects.logs[0].truncate(self.sealed_high.logs[0] as usize);
        self.effects.logs[1].truncate(self.sealed_high.logs[1] as usize);
        self.effects.logs[2].truncate(self.sealed_high.logs[2] as usize);
        self.effects
            .output
            .truncate(self.sealed_high.output as usize);
        self.effects
            .flow_errors
            .truncate(self.sealed_high.flow_errors as usize);
        self.effects
            .events
            .truncate(self.sealed_high.events as usize);
        if let Some(t) = self.tel.as_mut() {
            t.sink_cursor += t.telemetry.sink.events_since(t.sink_cursor).len();
        }

        // Loss ledger: every flow whose parser state this shard held dies
        // with it. Sorted union so the ledger is deterministic; the
        // current flow is included even if it never built parser state.
        let mut lost: Vec<Arc<str>> = self.std_http.keys().cloned().collect();
        if let Some(bp) = &self.bp_http {
            lost.extend(bp.live_uids());
        }
        if let Some(uid) = &self.cur_uid {
            lost.push(uid.clone());
        }
        lost.sort();
        lost.dedup();
        let m = self.mark();
        for uid in lost {
            if self.quarantined.insert(uid.clone()) {
                self.effects
                    .flow_errors
                    .push(FlowError::shard_panic(&uid, self.cur_ts));
            }
        }
        let key = self.cur_key;
        self.seal(m, key, false);

        // Respawn: fresh engine pieces from the blueprint, same profiler
        // and telemetry registry. The new host starts with empty logs.
        self.std_http.clear();
        self.log_cursors = [0; 3];
        let blueprint = Arc::clone(&self.blueprint);
        match build_engine(
            self.proto,
            self.stack,
            &self.gov,
            &blueprint,
            &self.profiler,
            self.tel.as_ref(),
            self.rec.as_ref(),
        ) {
            Ok((host, bp_http, bp_dns)) => {
                self.host = host;
                self.bp_http = bp_http;
                self.bp_dns = bp_dns;
            }
            Err(_) => {
                self.dead = true;
                self.bp_http = None;
                self.bp_dns = None;
            }
        }
        self.faults.push(detail);
    }

    /// Tombstone mode: no engine. Deliveries for flows not yet in the
    /// loss ledger are recorded as `ShardPanic`; everything else no-ops.
    fn tombstone(&mut self, item: ShardItem) {
        if let ShardItem::Delivery { slot, uid, ts, .. } = item {
            if self.quarantined.insert(uid.clone()) {
                let m = self.mark();
                self.effects
                    .flow_errors
                    .push(FlowError::shard_panic(&uid, ts));
                self.seal(
                    m,
                    Key {
                        major: slot,
                        phase: PH_PARSE,
                    },
                    false,
                );
            }
        }
    }

    fn process(&mut self, item: ShardItem) {
        if self.fatal.is_some() {
            return;
        }
        if self.dead {
            self.tombstone(item);
            return;
        }
        match item {
            ShardItem::Delivery {
                slot,
                uid,
                id,
                is_orig,
                ts,
                payload,
                finished,
                enq_ns,
            } => {
                match self.proto {
                    Proto::Http => {
                        http_delivery(self, slot, uid, id, is_orig, ts, payload, finished)
                    }
                    Proto::Dns => dns_delivery(self, slot, uid, id, ts, payload),
                }
                // End-to-end delivery latency: dispatcher enqueue through
                // script dispatch, the tail-latency signal the report's
                // p99 and top-K slowest table summarize.
                if let Some(r) = &self.rec {
                    r.borrow_mut()
                        .observe_delivery(monotonic_ns().saturating_sub(enq_ns));
                }
            }
            ShardItem::Evict { uid } => {
                self.std_http.remove(&uid);
                if let Some(bp) = self.bp_http.as_mut() {
                    bp.drop_conn(&uid);
                }
                self.quarantined.remove(&uid);
            }
            ShardItem::FinishFlow {
                parse_major,
                dispatch_major,
                uid,
                ts,
            } => http_finish_flow(self, parse_major, dispatch_major, uid, ts),
            ShardItem::Done { major, ts } => done(self, major, ts),
        }
    }

    /// Current effect-vector lengths: the start of a new block.
    fn mark(&self) -> Mark {
        Mark {
            logs: [
                self.effects.logs[0].len() as u32,
                self.effects.logs[1].len() as u32,
                self.effects.logs[2].len() as u32,
            ],
            output: self.effects.output.len() as u32,
            flow_errors: self.effects.flow_errors.len() as u32,
            events: self.effects.events.len() as u32,
        }
    }

    /// Seals everything appended since `m` as one block under `key`.
    /// Empty blocks are dropped; `tail` selects the second sorted stream
    /// (end-of-trace dispatch majors, which interleave with later parse
    /// majors in key order).
    fn seal(&mut self, m: Mark, key: Key, tail: bool) {
        // Everything up to here survives a later panic (the salvage
        // point), whether or not this particular block is empty.
        self.sealed_high = self.mark();
        let b = EffectBlock {
            key,
            logs: [
                (m.logs[0], self.effects.logs[0].len() as u32),
                (m.logs[1], self.effects.logs[1].len() as u32),
                (m.logs[2], self.effects.logs[2].len() as u32),
            ],
            output: (m.output, self.effects.output.len() as u32),
            flow_errors: (m.flow_errors, self.effects.flow_errors.len() as u32),
            events: (m.events, self.effects.events.len() as u32),
        };
        let empty = b.logs.iter().all(|(s, e)| s == e)
            && b.output.0 == b.output.1
            && b.flow_errors.0 == b.flow_errors.1
            && b.events.0 == b.events.1;
        if empty {
            return;
        }
        if tail {
            self.blocks_tail.push(b);
        } else {
            self.blocks_main.push(b);
        }
    }

    /// Appends everything the shard sink collected since the last call
    /// (engine events raised while parsing or dispatching).
    fn collect_sink(&mut self) {
        let Some(t) = self.tel.as_mut() else { return };
        let new = t.telemetry.sink.events_since(t.sink_cursor);
        t.sink_cursor += new.len();
        for ev in &new {
            self.effects.events.push(ev.to_json());
        }
    }

    /// Appends new log lines and printed output.
    fn collect_host_effects(&mut self) {
        for (i, name) in LOG_STREAMS.iter().enumerate() {
            let lines = self.host.log_lines_from(name, self.log_cursors[i]);
            self.log_cursors[i] += lines.len();
            self.effects.logs[i].extend(lines);
        }
        self.effects.output.extend(self.host.take_output());
    }

    /// Dispatches a batch of events exactly as the sequential
    /// `dispatch_events` does (per-event fuel re-arm, quarantine vs
    /// abort), then seals all resulting effects as one block under `key`.
    fn dispatch(&mut self, events: &[Event], key: Key, tail: bool) {
        let m = self.mark();
        let span_begin = (!events.is_empty() && self.rec.is_some()).then(monotonic_ns);
        if self.fatal.is_none() {
            for ev in events {
                self.n_events += 1;
                arm_script_limits(&mut self.host, &self.gov);
                if let Err(e) = self.host.dispatch_event(ev) {
                    if !self.gov.quarantine {
                        self.fatal = Some((key, e));
                        break;
                    }
                    self.effects
                        .flow_errors
                        .push(FlowError::new(ev.uid(), &e, ev.ts()));
                }
            }
        }
        if let Some(b) = span_begin {
            let uid = self.cur_uid.clone();
            if let Some(r) = &self.rec {
                r.borrow_mut()
                    .record(Stage::Script, key.major, uid.as_ref(), b);
            }
        }
        self.collect_sink();
        self.collect_host_effects();
        self.seal(m, key, tail);
    }
}

#[allow(clippy::too_many_arguments)]
fn http_delivery(
    st: &mut ShardState,
    slot: u64,
    uid: Arc<str>,
    id: ConnId,
    is_orig: bool,
    ts: Time,
    payload: PayloadRef,
    finished: bool,
) {
    let parse_key = Key {
        major: slot,
        phase: PH_PARSE,
    };
    let trace = Arc::clone(&st.trace);
    let m = st.mark();
    let mut events: Vec<Event> = st.event_bufs.take();
    {
        let _o = st.profiler.enter(Component::Other);
        if !st.quarantined.contains(&*uid) {
            if !payload.is_empty() {
                if let Some(t) = &st.tel {
                    t.bytes_parsed.add(payload.len() as u64);
                    t.payload_bytes.observe(payload.len() as u64);
                    t.routed(&payload, st.gov.force_copy);
                }
            }
            match st.stack {
                ParserStack::Standard => {
                    let span_begin = st.rec.is_some().then(monotonic_ns);
                    {
                        let _pp = st.profiler.enter(Component::ProtocolParsing);
                        let parser = st
                            .std_http
                            .entry(uid.clone())
                            .or_insert_with(|| HttpConnParser::new(uid.to_string(), id));
                        if !payload.is_empty() {
                            parser.feed(is_orig, payload.resolve(&trace), ts, &mut events);
                        }
                        if finished {
                            parser.finish(ts, &mut events);
                        }
                    }
                    if let Some(b) = span_begin {
                        if let Some(r) = &st.rec {
                            r.borrow_mut().record(Stage::Parse, slot, Some(&uid), b);
                        }
                    }
                }
                // A missing parser stack degrades the flow, not the shard.
                // (The binpac stack records its own parse spans via the
                // shared recorder — see `build_engine` — so only the span
                // slot is refreshed here.)
                ParserStack::Binpac => match st.bp_http.as_mut() {
                    Some(bp) => {
                        if st.rec.is_some() {
                            bp.set_span_slot(slot);
                        }
                        let mut fail: Option<RtError> = None;
                        if !payload.is_empty() {
                            let chunk = if st.gov.force_copy {
                                FeedChunk::Copy(payload.resolve(&trace))
                            } else {
                                payload.feed_chunk(&trace)
                            };
                            if let Err(e) = bp.feed_chunk(&uid, id, is_orig, ts, chunk) {
                                fail = Some(e);
                            }
                        }
                        if fail.is_none() && finished {
                            if let Err(e) = bp.finish_conn(&uid, id, ts) {
                                fail = Some(e);
                            }
                        }
                        // Events emitted before the fault still count.
                        bp.drain_events_into(&mut events);
                        if let Some(e) = fail {
                            if !st.gov.quarantine {
                                st.fatal = Some((parse_key, e));
                                return;
                            }
                            bp.drop_conn(&uid);
                            st.std_http.remove(&uid);
                            st.quarantined.insert(uid.clone());
                            st.effects.flow_errors.push(FlowError::new(&uid, &e, ts));
                        }
                    }
                    None => {
                        let e = RtError::runtime("binpac parser stack unavailable");
                        if !st.gov.quarantine {
                            st.fatal = Some((parse_key, e));
                            return;
                        }
                        st.quarantined.insert(uid.clone());
                        st.effects.flow_errors.push(FlowError::new(&uid, &e, ts));
                    }
                },
            }
        }
    }
    st.collect_sink();
    st.seal(m, parse_key, false);
    st.dispatch(
        &events,
        Key {
            major: slot,
            phase: PH_DISPATCH,
        },
        false,
    );
    st.event_bufs.put(events);
}

fn dns_delivery(
    st: &mut ShardState,
    slot: u64,
    uid: Arc<str>,
    id: ConnId,
    ts: Time,
    payload: PayloadRef,
) {
    let parse_key = Key {
        major: slot,
        phase: PH_PARSE,
    };
    let trace = Arc::clone(&st.trace);
    let m = st.mark();
    let mut events: Vec<Event> = st.event_bufs.take();
    if !payload.is_empty() {
        let _o = st.profiler.enter(Component::Other);
        if let Some(t) = &st.tel {
            t.bytes_parsed.add(payload.len() as u64);
            t.payload_bytes.observe(payload.len() as u64);
            t.routed(&payload, st.gov.force_copy);
        }
        match st.stack {
            ParserStack::Standard => {
                let span_begin = st.rec.is_some().then(monotonic_ns);
                {
                    let _pp = st.profiler.enter(Component::ProtocolParsing);
                    if !standard_dns_events(&uid, id, ts, payload.resolve(&trace), &mut events) {
                        st.parse_failures += 1;
                        if let Some(t) = &st.tel {
                            t.parse_failures.inc();
                            t.telemetry.emit(
                                "parser_error",
                                vec![("uid", (&*uid).into()), ("ts_ns", ts.nanos().into())],
                            );
                        }
                    }
                }
                if let Some(b) = span_begin {
                    if let Some(r) = &st.rec {
                        r.borrow_mut().record(Stage::Parse, slot, Some(&uid), b);
                    }
                }
            }
            ParserStack::Binpac => match st.bp_dns.as_mut() {
                Some(bp) => {
                    if st.rec.is_some() {
                        bp.set_span_slot(slot);
                    }
                    let chunk = if st.gov.force_copy {
                        FeedChunk::Copy(payload.resolve(&trace))
                    } else {
                        payload.feed_chunk(&trace)
                    };
                    match bp.datagram_chunk(&uid, id, ts, chunk) {
                        Ok(true) => {}
                        Ok(false) => {
                            st.parse_failures += 1;
                            if let Some(t) = &st.tel {
                                t.parse_failures.inc();
                                t.telemetry.emit(
                                    "parser_error",
                                    vec![("uid", (&*uid).into()), ("ts_ns", ts.nanos().into())],
                                );
                            }
                        }
                        Err(e) => {
                            if !st.gov.quarantine {
                                st.fatal = Some((parse_key, e));
                                return;
                            }
                            st.effects.flow_errors.push(FlowError::new(&uid, &e, ts));
                        }
                    }
                    bp.drain_events_into(&mut events);
                }
                None => {
                    let e = RtError::runtime("binpac parser stack unavailable");
                    if !st.gov.quarantine {
                        st.fatal = Some((parse_key, e));
                        return;
                    }
                    st.effects.flow_errors.push(FlowError::new(&uid, &e, ts));
                }
            },
        }
    }
    st.collect_sink();
    st.seal(m, parse_key, false);
    st.dispatch(
        &events,
        Key {
            major: slot,
            phase: PH_DISPATCH,
        },
        false,
    );
    st.event_bufs.put(events);
}

/// End-of-trace flush of one flow, in the global order the dispatcher
/// assigned (first-seen order for the standard stack, sorted-uid order for
/// BinPAC++ — each matching its sequential counterpart). Flows whose
/// parser state is already gone (closed, quarantined, never fed) are
/// no-ops, exactly as in the sequential flush.
fn http_finish_flow(
    st: &mut ShardState,
    parse_major: u64,
    dispatch_major: u64,
    uid: Arc<str>,
    ts: Time,
) {
    let parse_key = Key {
        major: parse_major,
        phase: PH_PARSE,
    };
    let m = st.mark();
    let mut events: Vec<Event> = Vec::new();
    match st.stack {
        ParserStack::Standard => {
            if let Some(mut parser) = st.std_http.remove(&uid) {
                let span_begin = st.rec.is_some().then(monotonic_ns);
                {
                    let _pp = st.profiler.enter(Component::ProtocolParsing);
                    parser.finish(ts, &mut events);
                }
                if let Some(b) = span_begin {
                    if let Some(r) = &st.rec {
                        r.borrow_mut()
                            .record(Stage::Parse, parse_major, Some(&uid), b);
                    }
                }
            }
        }
        // A vanished parser stack leaves nothing to flush: degrade to a
        // no-op, like a flow whose state is already gone.
        ParserStack::Binpac => {
            if let Some(bp) = st.bp_http.as_mut() {
                if bp.has_conn(&uid) {
                    if st.rec.is_some() {
                        bp.set_span_slot(parse_major);
                    }
                    if let Err(e) = bp.finish_conn(&uid, placeholder_id(), ts) {
                        if !st.gov.quarantine {
                            st.fatal = Some((parse_key, e));
                            return;
                        }
                        bp.drop_conn(&uid);
                        st.effects.flow_errors.push(FlowError::new(&uid, &e, ts));
                    }
                    bp.drain_events_into(&mut events);
                }
            }
        }
    }
    st.collect_sink();
    st.seal(m, parse_key, false);
    st.dispatch(
        &events,
        Key {
            major: dispatch_major,
            phase: PH_DISPATCH,
        },
        true,
    );
}

fn done(st: &mut ShardState, major: u64, ts: Time) {
    let key = Key {
        major,
        phase: PH_DISPATCH,
    };
    let m = st.mark();
    arm_script_limits(&mut st.host, &st.gov);
    if let Err(e) = st.host.done() {
        if !st.gov.quarantine {
            st.fatal = Some((key, e));
        } else {
            st.effects.flow_errors.push(FlowError::new("-", &e, ts));
        }
    }
    st.collect_sink();
    st.collect_host_effects();
    st.seal(m, key, true);
}

/// What a shard hands back when its ring drains. All fields are `Send`;
/// the `!Send` host/parser state is dropped on the shard thread.
struct ShardReport {
    effects: Effects,
    blocks_main: Vec<EffectBlock>,
    blocks_tail: Vec<EffectBlock>,
    snapshot: TelemetrySnapshot,
    profiler: Profiler,
    n_events: u64,
    parse_failures: u64,
    peak_flow_bytes: u64,
    fatal: Option<(Key, RtError)>,
    /// Panics the supervisor caught on this shard (panic payloads).
    faults: Vec<String>,
    /// Frozen flight recorder when [`Governance::tracing`] was on.
    trace: Option<RecorderPart>,
    /// Fault-triggered flight-recorder dumps captured on this shard.
    postmortems: Vec<PostmortemDump>,
}

fn harvest(st: &mut ShardState) -> ShardReport {
    let peak_flow_bytes = st
        .bp_http
        .as_ref()
        .map(|b| b.peak_session_bytes())
        .unwrap_or(0);
    let snapshot = match st.tel.as_ref() {
        Some(t) => {
            // Mirror the sequential `PipelineTelemetry::finish` bookkeeping
            // that sums correctly across shards: dispatched-event count,
            // peak gauge, quarantine counters. The quarantine *events* are
            // re-emitted by the merge (they trail the whole stream in
            // merged-ledger order), so the shard snapshot carries no events.
            t.telemetry
                .counter("pipeline.events_dispatched")
                .add(st.n_events);
            t.telemetry
                .gauge("pipeline.peak_flow_heap_bytes")
                .set_max(peak_flow_bytes);
            let quarantined = t.telemetry.counter("pipeline.flows_quarantined");
            for fe in &st.effects.flow_errors {
                quarantined.inc();
                t.telemetry
                    .registry
                    .counter(&format!("pipeline.flow_errors.{}", fe.kind))
                    .inc();
            }
            let mut snap = t.telemetry.snapshot();
            snap.events = Vec::new();
            snap
        }
        None => TelemetrySnapshot::default(),
    };
    // Freeze the flight recorder into its `Send` part. The binpac parsers
    // still hold `Rc` clones, so the recorder is swapped out rather than
    // unwrapped (their clones point at a dead 1-slot stub from here on).
    let trace_part = st.rec.take().map(|r| {
        std::mem::replace(&mut *r.borrow_mut(), FlightRecorder::with_capacity(0, 1)).finish()
    });
    let mut postmortems = std::mem::take(&mut st.postmortems);
    // Watchdog trips surface as `ResourceExhausted` flow errors while a
    // delivery deadline is armed: dump the recorder tail for them too.
    if let (Some(part), Some(_)) = (&trace_part, st.gov.delivery_deadline_ms) {
        if postmortems.len() < MAX_POSTMORTEMS_PER_SHARD
            && st
                .effects
                .flow_errors
                .iter()
                .any(|fe| fe.kind.contains("ResourceExhausted"))
        {
            postmortems.push(part.postmortem("ResourceExhausted (delivery watchdog)"));
        }
    }
    ShardReport {
        effects: std::mem::take(&mut st.effects),
        blocks_main: std::mem::take(&mut st.blocks_main),
        blocks_tail: std::mem::take(&mut st.blocks_tail),
        snapshot,
        profiler: st.profiler.clone(),
        n_events: st.n_events,
        parse_failures: st.parse_failures,
        peak_flow_bytes,
        fatal: st.fatal.clone(),
        faults: std::mem::take(&mut st.faults),
        trace: trace_part,
        postmortems,
    }
}

/// Renders a caught panic payload for the fault record.
fn panic_detail(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Dispatcher-side telemetry: the shared-decision counters plus
/// `flow_open` / `flow_close` / `timer_expiry` events, stored flat with
/// coalesced blocks (consecutive emits under one key share a block).
struct DispatcherTelemetry {
    telemetry: Telemetry,
    packets: Counter,
    flows_opened: Counter,
    flows_closed: Counter,
    flows_expired: Counter,
    events: Vec<String>,
    blocks: Vec<EffectBlock>,
}

impl DispatcherTelemetry {
    fn new() -> DispatcherTelemetry {
        let telemetry = Telemetry::new();
        DispatcherTelemetry {
            packets: telemetry.counter("pipeline.packets"),
            flows_opened: telemetry.counter("pipeline.flows_opened"),
            flows_closed: telemetry.counter("pipeline.flows_closed"),
            flows_expired: telemetry.counter("pipeline.flows_expired"),
            events: Vec::new(),
            blocks: Vec::new(),
            telemetry,
        }
    }

    fn emit(&mut self, key: Key, kind: &'static str, uid: &str, ts: Time) {
        let ev = TelemetryEvent {
            kind,
            fields: vec![("uid", uid.into()), ("ts_ns", ts.nanos().into())],
        };
        let i = self.events.len() as u32;
        self.events.push(ev.to_json());
        // The dispatcher emits in key order, so same-key emits coalesce
        // into the trailing block.
        if let Some(last) = self.blocks.last_mut() {
            if last.key == key {
                last.events.1 = i + 1;
                return;
            }
        }
        self.blocks.push(EffectBlock {
            key,
            logs: [(0, 0); 3],
            output: (0, 0),
            flow_errors: (0, 0),
            events: (i, i + 1),
        });
    }
}

/// Dispatch-plane metrics (dispatcher side): these describe the transport,
/// not the analysis, and depend on the worker count and batch size — so
/// they feed [`AnalysisResult::dispatch_telemetry`], never the merged
/// analysis snapshot.
struct DispatchMetrics {
    telemetry: Telemetry,
    /// `pipeline.dispatch_batches`: ring submissions across all shards.
    batches: Counter,
    /// `pipeline.batch_fill`: items per submission.
    fill: Histogram,
    /// `pipeline.shard_items.shard{w}`: total items sent to each shard.
    items: Vec<Counter>,
    /// `pipeline.queue_depth.shard{w}`: high-water of the staged batch at
    /// submission time (the dispatcher-side, deterministic view of queue
    /// pressure; true ring occupancy is a data race by construction).
    depth: Vec<Gauge>,
}

impl DispatchMetrics {
    fn new(workers: usize) -> DispatchMetrics {
        let telemetry = Telemetry::new();
        DispatchMetrics {
            batches: telemetry.counter("pipeline.dispatch_batches"),
            fill: telemetry.histogram("pipeline.batch_fill"),
            items: (0..workers)
                .map(|w| telemetry.counter(&format!("pipeline.shard_items.shard{w}")))
                .collect(),
            depth: (0..workers)
                .map(|w| telemetry.gauge(&format!("pipeline.queue_depth.shard{w}")))
                .collect(),
            telemetry,
        }
    }

    fn flushed(&self, w: usize, n: usize) {
        self.batches.inc();
        self.fill.observe(n as u64);
        self.items[w].add(n as u64);
        self.depth[w].set_max(n as u64);
    }
}

/// Replays an HTTP trace through `opts.workers` flow-sharded pipelines.
/// The result is byte-identical to [`crate::pipeline::run_http_analysis_governed`]
/// with the same governance, for every worker count and batch size.
pub fn run_http_analysis_parallel(
    packets: &[RawPacket],
    stack: ParserStack,
    engine: Engine,
    opts: &PipelineOptions,
) -> RtResult<AnalysisResult> {
    run_parallel(packets, Proto::Http, stack, engine, opts)
}

/// Replays a DNS trace through `opts.workers` flow-sharded pipelines.
pub fn run_dns_analysis_parallel(
    packets: &[RawPacket],
    stack: ParserStack,
    engine: Engine,
    opts: &PipelineOptions,
) -> RtResult<AnalysisResult> {
    run_parallel(packets, Proto::Dns, stack, engine, opts)
}

/// Per-shard shed accounting (kept outside the telemetry registry so the
/// `shed_packets` result field works with telemetry off).
#[derive(Clone, Copy, Default)]
struct ShedStat {
    packets: u64,
    batches: u64,
}

/// Pushes a staged batch onto the shard's ring.
///
/// Under [`OverloadPolicy::Block`] this parks while the ring is full —
/// that backpressure is what bounds dispatcher run-ahead. Under `Shed` a
/// saturated ring drops the batch's deliveries (counted in `shed`) and
/// blocking-pushes only the control items, which must always arrive. A
/// shard whose consumer is gone is marked dead and swallows all further
/// traffic; the join path reports the fault and quarantines its flows.
#[allow(clippy::too_many_arguments)]
fn flush_shard(
    tx: &mut Producer<ShardItem>,
    buf: &mut Vec<ShardItem>,
    metrics: Option<&DispatchMetrics>,
    w: usize,
    overload: OverloadPolicy,
    shed: &mut [ShedStat],
    dead: &mut [bool],
    rec: Option<&mut FlightRecorder>,
    slot: u64,
) {
    if buf.is_empty() {
        return;
    }
    // Dispatch span: ring submission (including any backpressure park),
    // attributed to the packet slot that triggered the flush.
    match rec {
        None => flush_shard_inner(tx, buf, metrics, w, overload, shed, dead),
        Some(r) => {
            let b = monotonic_ns();
            flush_shard_inner(tx, buf, metrics, w, overload, shed, dead);
            r.record(Stage::Dispatch, slot, None, b);
        }
    }
}

fn flush_shard_inner(
    tx: &mut Producer<ShardItem>,
    buf: &mut Vec<ShardItem>,
    metrics: Option<&DispatchMetrics>,
    w: usize,
    overload: OverloadPolicy,
    shed: &mut [ShedStat],
    dead: &mut [bool],
) {
    if buf.is_empty() {
        return;
    }
    if dead[w] {
        buf.clear();
        return;
    }
    if matches!(overload, OverloadPolicy::Shed { .. }) {
        let n = buf.len();
        if tx.try_push_all(buf) {
            if let Some(m) = metrics {
                m.flushed(w, n);
            }
            return;
        }
        // Saturated (or dead — push_all below detects which): drop the
        // deliveries, keep evictions / flushes / done markers.
        let before = buf.len();
        buf.retain(|it| !matches!(it, ShardItem::Delivery { .. }));
        let dropped = (before - buf.len()) as u64;
        if dropped > 0 {
            shed[w].packets += dropped;
            shed[w].batches += 1;
        }
        if buf.is_empty() {
            return;
        }
    }
    if let Some(m) = metrics {
        m.flushed(w, buf.len());
    }
    if !tx.push_all(buf) {
        dead[w] = true;
        buf.clear();
    }
}

/// Per-flow dispatcher bookkeeping: which shard owns the flow, and
/// whether the owning shard still holds parser state for it (the
/// end-of-trace flush only targets live flows).
struct FlowMeta {
    shard: usize,
    live: bool,
}

fn run_parallel(
    packets: &[RawPacket],
    proto: Proto,
    stack: ParserStack,
    engine: Engine,
    opts: &PipelineOptions,
) -> RtResult<AnalysisResult> {
    let workers = opts.workers.max(1);
    let gov = opts.governance;
    let overload = opts.overload;
    // Under `Shed` the ring itself is the overload bound; the staged
    // batch must fit it or no batch could ever be pushed.
    let ring_cap = match overload {
        OverloadPolicy::Block => opts.batch.max(1).saturating_mul(8).max(512),
        OverloadPolicy::Shed { max_queue_depth } => max_queue_depth.max(1),
    };
    let batch = opts.batch.max(1).min(ring_cap);
    let trace = TraceBuffer::from_packets(packets);
    // Run the expensive front end (script + grammar compilation down to
    // optimized IR) once; shards only lower bytecode from the shared
    // blueprint. Doing it here also surfaces construction errors as
    // `Err` before any thread spawns (a shard thread could only panic).
    let blueprint = Arc::new(ShardBlueprint::build(proto, stack, engine, &gov)?);
    drop(ShardState::new(
        0,
        proto,
        stack,
        gov,
        trace.clone(),
        Arc::clone(&blueprint),
        None,
    )?);

    // One SPSC ring per shard; each shard thread builds its own `!Send`
    // state, drains the ring in batches, and returns its report on join.
    // Every item runs under a `catch_unwind` supervision boundary: a
    // panic is contained to the shard (see `ShardState::on_panic`) and
    // the loop keeps draining, so the ring's producer side stays alive.
    let mut txs: Vec<Producer<ShardItem>> = Vec::with_capacity(workers);
    let mut handles = Vec::with_capacity(workers);
    for w in 0..workers {
        let (tx, mut rx) = spsc::ring::<ShardItem>(ring_cap);
        let trace = trace.clone();
        let blueprint = Arc::clone(&blueprint);
        let panic_countdown = opts.panic_inject.and_then(|(s, n)| (s == w).then_some(n));
        let stall_ms = opts.stall_inject.and_then(|(s, ms)| (s == w).then_some(ms));
        let handle = std::thread::spawn(move || {
            if let Some(ms) = stall_ms {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            let mut st = ShardState::new(w, proto, stack, gov, trace, blueprint, panic_countdown)
                .expect("shard construction passed pre-flight");
            let mut items = Vec::with_capacity(batch);
            while rx.pop_batch(&mut items, batch) > 0 {
                for item in items.drain(..) {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        st.begin(&item);
                        st.process(item);
                    }));
                    if let Err(p) = r {
                        st.on_panic(panic_detail(p));
                    }
                }
            }
            harvest(&mut st)
        });
        txs.push(tx);
        handles.push(handle);
    }

    let profiler = Profiler::new();
    let mut dtel = gov.telemetry.then(DispatcherTelemetry::new);
    let dmetrics = gov.telemetry.then(|| DispatchMetrics::new(workers));
    // Dispatcher-side flight recorder: decode, ring-submission, and merge
    // spans live here; shard recorders cover queue wait / parse / script.
    let mut drec = gov.tracing.then(|| FlightRecorder::new(DISPATCHER));
    let mut flows = FlowTable::new();
    let mut timers: TimerMgr<Arc<str>> = TimerMgr::new();
    let mut owner: HashMap<Arc<str>, FlowMeta> = HashMap::new();
    let mut first_seen: Vec<Arc<str>> = Vec::new();
    let mut buf: Vec<Vec<ShardItem>> = (0..workers).map(|_| Vec::new()).collect();
    let mut shed: Vec<ShedStat> = vec![ShedStat::default(); workers];
    let mut shard_dead: Vec<bool> = vec![false; workers];
    let mut flows_expired = 0u64;
    let mut n_packets = 0u64;
    let mut last_ts = Time::ZERO;

    for slot in 0..trace.len() {
        let slot_u64 = slot as u64;
        let (frame_data, ts) = trace.frame(slot);
        n_packets += 1;
        last_ts = ts;
        let _o = profiler.enter(Component::Other);
        if let Some(t) = &dtel {
            t.packets.inc();
        }
        let decode_begin = drec.as_ref().map(|_| monotonic_ns());
        let Ok(f) = decode_frame(frame_data, ts) else {
            continue;
        };
        let shard = (shard_hash_frame(&f) % workers as u64) as usize;
        let delivery = flows.process_shared(&f, frame_data, trace.frame_offset(slot));
        let uid = delivery.flow.uid.clone();
        if let Some(r) = &mut drec {
            r.record(
                Stage::Decode,
                slot_u64,
                Some(&uid),
                decode_begin.unwrap_or(0),
            );
        }
        let id = delivery.flow.id;
        let is_orig = delivery.is_orig;
        let finished = delivery.finished_now;
        let payload = delivery.payload;
        if !owner.contains_key(&*uid) {
            owner.insert(uid.clone(), FlowMeta { shard, live: false });
            first_seen.push(uid.clone());
            if let Some(t) = &mut dtel {
                t.flows_opened.inc();
                t.emit(
                    Key {
                        major: slot_u64,
                        phase: PH_FLOW,
                    },
                    "flow_open",
                    &uid,
                    ts,
                );
            }
        }
        // Track whether the owning shard will hold parser state after this
        // delivery, so the end-of-trace flush only targets live flows. The
        // standard HTTP parser is created on any delivery and kept until
        // eviction (its `finish` is idempotent); a BinPAC++ session exists
        // iff payload arrived since the last finish/teardown. Quarantined
        // flows stay "live" here — the owning shard's presence check makes
        // their flush a no-op, matching the sequential pipeline.
        if proto == Proto::Http {
            let m = owner.get_mut(&*uid).expect("flow just recorded");
            match stack {
                ParserStack::Standard => m.live = true,
                ParserStack::Binpac => {
                    if !payload.is_empty() {
                        m.live = true;
                    }
                    if finished {
                        m.live = false;
                    }
                }
            }
        }
        if finished {
            if let Some(t) = &mut dtel {
                t.flows_closed.inc();
                t.emit(
                    Key {
                        major: slot_u64,
                        phase: PH_FLOW,
                    },
                    "flow_close",
                    &uid,
                    ts,
                );
            }
        }
        buf[shard].push(ShardItem::Delivery {
            slot: slot_u64,
            uid: uid.clone(),
            id,
            is_orig,
            ts,
            payload,
            finished,
            enq_ns: if drec.is_some() { monotonic_ns() } else { 0 },
        });
        if buf[shard].len() >= batch {
            flush_shard(
                &mut txs[shard],
                &mut buf[shard],
                dmetrics.as_ref(),
                shard,
                overload,
                &mut shed,
                &mut shard_dead,
                drec.as_mut(),
                slot_u64,
            );
        }

        // Idle-flow expiry is a *global* decision: the dispatcher's timer
        // wheel sweeps the shared flow table and tells the owning shard to
        // drop its state. Shard-local sweeps would fire at different
        // packet positions for different worker counts.
        if let Some(ms) = gov.idle_timeout_ms {
            timers.schedule(ts + Interval::from_millis(ms as i64), uid.clone());
            if !timers.advance(ts).is_empty() {
                let cutoff =
                    Time::from_nanos(ts.nanos().saturating_sub(ms.saturating_mul(1_000_000)));
                for dead in flows.expire_idle_uids(cutoff) {
                    if let Some(m) = owner.get_mut(&*dead) {
                        m.live = false;
                        let w = m.shard;
                        buf[w].push(ShardItem::Evict { uid: dead.clone() });
                        if buf[w].len() >= batch {
                            flush_shard(
                                &mut txs[w],
                                &mut buf[w],
                                dmetrics.as_ref(),
                                w,
                                overload,
                                &mut shed,
                                &mut shard_dead,
                                drec.as_mut(),
                                slot_u64,
                            );
                        }
                    }
                    if let Some(t) = &mut dtel {
                        t.flows_expired.inc();
                        t.emit(
                            Key {
                                major: slot_u64,
                                phase: PH_TIMER,
                            },
                            "timer_expiry",
                            &dead,
                            ts,
                        );
                    }
                    flows_expired += 1;
                }
            }
        }
    }

    // End of trace. For HTTP, flush still-open flows in the order the
    // sequential pipeline uses: first-seen for the standard stack,
    // sorted-uid for BinPAC++ (its `live_uids()` teardown order). Only
    // flows the owner map still marks live are candidates — closed and
    // expired ones dropped their parser state already, so sending them
    // would be wasted traffic (the shard presence check still guards the
    // remaining over-approximation from quarantined flows). Each
    // candidate gets a parse major and a dispatch major so all parses
    // precede all dispatches, as in the sequential batch flush.
    let base = trace.len() as u64;
    let mut n_cand = 0u64;
    if proto == Proto::Http {
        let mut cands: Vec<&Arc<str>> = first_seen.iter().filter(|u| owner[&***u].live).collect();
        if stack == ParserStack::Binpac {
            cands.sort();
        }
        n_cand = cands.len() as u64;
        for (r, uid) in cands.into_iter().enumerate() {
            let w = owner[&**uid].shard;
            buf[w].push(ShardItem::FinishFlow {
                parse_major: base + r as u64,
                dispatch_major: base + n_cand + r as u64,
                uid: uid.clone(),
                ts: last_ts,
            });
            if buf[w].len() >= batch {
                flush_shard(
                    &mut txs[w],
                    &mut buf[w],
                    dmetrics.as_ref(),
                    w,
                    overload,
                    &mut shed,
                    &mut shard_dead,
                    drec.as_mut(),
                    base + r as u64,
                );
            }
        }
    }
    let done_major = base + 2 * n_cand;
    for (w, b) in buf.iter_mut().enumerate() {
        b.push(ShardItem::Done {
            major: done_major,
            ts: last_ts,
        });
        flush_shard(
            &mut txs[w],
            b,
            dmetrics.as_ref(),
            w,
            overload,
            &mut shed,
            &mut shard_dead,
            drec.as_mut(),
            done_major,
        );
    }

    // Closing the rings is the shutdown signal: each shard drains what's
    // buffered, harvests, and returns its report through `join`. A join
    // failure (a panic that escaped the supervision boundary, e.g. in
    // harvest itself) is contained as a structured `ShardFault` instead
    // of unwrapping: the run completes, minus that shard's effects.
    drop(txs);
    let mut reports: Vec<Option<ShardReport>> = Vec::with_capacity(workers);
    let mut shard_faults: Vec<ShardFault> = Vec::new();
    for (w, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(r) => {
                for detail in &r.faults {
                    shard_faults.push(ShardFault {
                        shard: w,
                        detail: detail.clone(),
                    });
                }
                reports.push(Some(r));
            }
            Err(p) => {
                shard_faults.push(ShardFault {
                    shard: w,
                    detail: panic_detail(p),
                });
                reports.push(None);
            }
        }
    }

    // An ungoverned error aborts the run with the globally-first failure,
    // exactly as the sequential pipeline's early return would. (Caught
    // panics set `fatal` in this mode, so they abort through here too.)
    if let Some((_, _, e)) = reports
        .iter()
        .enumerate()
        .filter_map(|(w, r)| {
            r.as_ref()
                .and_then(|r| r.fatal.as_ref())
                .map(|(k, e)| (*k, w, e))
        })
        .min_by_key(|(k, w, _)| (*k, *w))
    {
        return Err(e.clone());
    }
    if !gov.quarantine {
        if let Some(f) = shard_faults.first() {
            return Err(RtError::runtime(format!(
                "pipeline shard {} terminated unexpectedly: {}",
                f.shard, f.detail
            )));
        }
    }

    // Deterministic epoch merge: each shard contributes two key-sorted
    // block streams (in-trace + end-of-trace-parse, and end-of-trace
    // dispatch + done) and the dispatcher one; ordering the block
    // *descriptors* by `(key, rank)` and concatenating each category's
    // ranges reproduces the sequential emission order without touching
    // individual lines. Only the `bro_done` key repeats across shards;
    // the shard-index rank breaks that tie (dispatcher ranks last, after
    // all shards, though its phases never collide with shard phases).
    #[derive(Clone, Copy)]
    struct Desc {
        key: Key,
        rank: usize,
        tail: bool,
        idx: usize,
    }
    let mut descs: Vec<Desc> = Vec::new();
    for (w, r) in reports.iter().enumerate() {
        let Some(r) = r else { continue };
        for (i, b) in r.blocks_main.iter().enumerate() {
            descs.push(Desc {
                key: b.key,
                rank: w,
                tail: false,
                idx: i,
            });
        }
        for (i, b) in r.blocks_tail.iter().enumerate() {
            descs.push(Desc {
                key: b.key,
                rank: w,
                tail: true,
                idx: i,
            });
        }
    }
    if let Some(t) = &dtel {
        for (i, b) in t.blocks.iter().enumerate() {
            descs.push(Desc {
                key: b.key,
                rank: workers,
                tail: false,
                idx: i,
            });
        }
    }
    let merge_begin = drec.as_ref().map(|_| monotonic_ns());
    descs.sort_by_key(|d| (d.key, d.rank));

    let mut logs_out: [Vec<String>; 3] = Default::default();
    let mut output: Vec<String> = Vec::new();
    let mut flow_errors: Vec<FlowError> = Vec::new();
    let mut merged_events: Vec<String> = Vec::new();
    let mut devents = dtel
        .as_mut()
        .map(|t| std::mem::take(&mut t.events))
        .unwrap_or_default();
    for d in &descs {
        if d.rank == workers {
            let b = dtel.as_ref().expect("dispatcher block").blocks[d.idx];
            for s in &mut devents[b.events.0 as usize..b.events.1 as usize] {
                merged_events.push(std::mem::take(s));
            }
            continue;
        }
        let r = reports[d.rank].as_mut().expect("desc from a live shard");
        let b = if d.tail {
            r.blocks_tail[d.idx]
        } else {
            r.blocks_main[d.idx]
        };
        for (c, out) in logs_out.iter_mut().enumerate() {
            let (s, e) = b.logs[c];
            for v in &mut r.effects.logs[c][s as usize..e as usize] {
                out.push(std::mem::take(v));
            }
        }
        for v in &mut r.effects.output[b.output.0 as usize..b.output.1 as usize] {
            output.push(std::mem::take(v));
        }
        flow_errors.extend(
            r.effects.flow_errors[b.flow_errors.0 as usize..b.flow_errors.1 as usize]
                .iter()
                .cloned(),
        );
        for v in &mut r.effects.events[b.events.0 as usize..b.events.1 as usize] {
            merged_events.push(std::mem::take(v));
        }
    }
    // Flows owned by a shard that never reported (join failure): no shard
    // ledger exists for them, so the dispatcher quarantines them post-hoc
    // from its owner map, in first-seen order, with the sequential
    // pipeline's per-quarantine counter bookkeeping.
    let lost_shards: Vec<usize> = reports
        .iter()
        .enumerate()
        .filter_map(|(w, r)| r.is_none().then_some(w))
        .collect();
    if !lost_shards.is_empty() {
        for uid in &first_seen {
            if lost_shards.contains(&owner[&**uid].shard) {
                flow_errors.push(FlowError::shard_panic(uid, last_ts));
                if let Some(t) = &dtel {
                    t.telemetry.counter("pipeline.flows_quarantined").inc();
                    t.telemetry
                        .registry
                        .counter(&format!("pipeline.flow_errors.{}", FlowError::SHARD_PANIC))
                        .inc();
                }
            }
        }
    }
    // Quarantine events trail the merged stream in merged-ledger order —
    // the order `PipelineTelemetry::finish` uses.
    if gov.telemetry {
        for fe in &flow_errors {
            let ev = TelemetryEvent {
                kind: "quarantine",
                fields: vec![
                    ("uid", fe.uid.as_str().into()),
                    ("kind", fe.kind.as_str().into()),
                    ("ts_ns", fe.ts.nanos().into()),
                ],
            };
            merged_events.push(ev.to_json());
        }
    }
    if let Some(r) = &mut drec {
        r.record(Stage::Merge, n_packets, None, merge_begin.unwrap_or(0));
    }

    let telemetry = match &dtel {
        Some(t) => {
            // Registered only when a fault happened, so unfaulted parallel
            // snapshots stay byte-identical to sequential ones.
            if !shard_faults.is_empty() {
                t.telemetry
                    .counter("pipeline.shard_faults")
                    .add(shard_faults.len() as u64);
            }
            let mut parts = vec![t.telemetry.snapshot()];
            parts.extend(
                reports
                    .iter()
                    .filter_map(|r| r.as_ref())
                    .map(|r| r.snapshot.clone()),
            );
            let mut merged = TelemetrySnapshot::merge(&parts);
            merged.events = merged_events;
            merged
        }
        None => TelemetrySnapshot::default(),
    };
    // Shed accounting is dispatch-plane (it depends on wall-clock ring
    // pressure); counters appear only when shedding happened, so `Block`
    // runs keep their deterministic dispatch snapshot.
    if let Some(m) = &dmetrics {
        for (w, s) in shed.iter().enumerate() {
            if s.packets > 0 {
                m.telemetry
                    .counter(&format!("pipeline.shed_packets.shard{w}"))
                    .add(s.packets);
                m.telemetry
                    .counter(&format!("pipeline.shed_batches.shard{w}"))
                    .add(s.batches);
            }
        }
    }
    let dispatch_telemetry = dmetrics
        .as_ref()
        .map(|m| m.telemetry.snapshot())
        .unwrap_or_default();
    warn_event_drops(&telemetry, "pipeline");
    // Trace side-channel: shard recorder parts plus the dispatcher's own,
    // with dispatcher-known fault dumps (stall injection, shedding) taken
    // from the harvested parts — those faults only become visible here.
    let trace_report = drec.map(|dr| {
        let mut parts: Vec<RecorderPart> = Vec::new();
        let mut posts: Vec<PostmortemDump> = Vec::new();
        for (w, rep) in reports.iter_mut().enumerate() {
            let Some(rep) = rep.as_mut() else { continue };
            posts.append(&mut rep.postmortems);
            if let Some(part) = rep.trace.take() {
                if let Some((s, _)) = opts.stall_inject {
                    if s == w {
                        posts.push(part.postmortem("injected stall"));
                    }
                }
                if shed[w].packets > 0 {
                    posts.push(
                        part.postmortem(&format!("shed: {} packet(s) dropped", shed[w].packets)),
                    );
                }
                parts.push(part);
            }
        }
        parts.push(dr.finish());
        TraceReport::from_parts(parts, posts)
    });
    let live = || reports.iter().filter_map(|r| r.as_ref());
    for r in live() {
        profiler.absorb(&r.profiler);
    }

    let [http_log, files_log, dns_log] = logs_out;
    Ok(AnalysisResult {
        http_log,
        files_log,
        dns_log,
        output,
        profiler,
        events: live().map(|r| r.n_events).sum(),
        packets: n_packets,
        flow_errors,
        flows_expired,
        peak_flow_bytes: live().map(|r| r.peak_flow_bytes).max().unwrap_or(0),
        parse_failures: live().map(|r| r.parse_failures).sum(),
        telemetry,
        dispatch_telemetry,
        shard_faults,
        shed_packets: shed.iter().map(|s| s.packets).sum(),
        trace: trace_report,
    })
}
