//! Telemetry contract tests: determinism and non-interference.
//!
//! The telemetry layer promises two things (ISSUE: observability PR):
//!
//! 1. **Determinism** — two runs over the same trace produce snapshots
//!    that are equal as values and byte-identical once rendered, because
//!    no wall-time or randomized field ever enters a metric or event.
//! 2. **Non-interference** — enabling telemetry changes no analysis
//!    output: every log line, event count and governance statistic is
//!    identical with the layer on or off, for both script engines.

use broscript::host::Engine;
use broscript::pipeline::{
    run_dns_analysis_governed, run_http_analysis_governed, Governance, ParserStack,
};
use hilti_rt::telemetry::json;
use netpkt::synth::{dns_trace, http_trace, SynthConfig};

fn gov(telemetry: bool) -> Governance {
    Governance {
        telemetry,
        ..Governance::default()
    }
}

#[test]
fn two_runs_yield_byte_identical_snapshots() {
    let trace = http_trace(&SynthConfig::new(19, 10));
    let a = run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov(true))
        .unwrap();
    let b = run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov(true))
        .unwrap();
    assert_eq!(a.telemetry, b.telemetry);
    assert_eq!(a.telemetry.to_json(), b.telemetry.to_json());
    assert_eq!(a.telemetry.events_jsonl(), b.telemetry.events_jsonl());
}

#[test]
fn snapshot_json_is_well_formed() {
    let trace = http_trace(&SynthConfig::new(23, 8));
    let r = run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov(true))
        .unwrap();
    let doc = r.telemetry.to_json();
    json::validate(&doc).expect("snapshot JSON must parse");
    assert!(doc.contains("\"schema\":\"hilti.telemetry.v1\""), "{doc}");
    for line in r.telemetry.events_jsonl().lines() {
        json::validate(line).expect("every JSONL event must parse");
    }
}

#[test]
fn telemetry_does_not_change_analysis_output() {
    // The same trace, with the layer off and on, for both engines: every
    // externally visible output must match, and the "off" run must carry
    // an empty snapshot.
    let trace = http_trace(&SynthConfig::new(31, 10));
    for engine in [Engine::Interpreted, Engine::Compiled] {
        let off =
            run_http_analysis_governed(&trace, ParserStack::Binpac, engine, &gov(false)).unwrap();
        let on =
            run_http_analysis_governed(&trace, ParserStack::Binpac, engine, &gov(true)).unwrap();
        assert_eq!(off.http_log, on.http_log, "{engine:?}");
        assert_eq!(off.files_log, on.files_log, "{engine:?}");
        assert_eq!(off.dns_log, on.dns_log, "{engine:?}");
        assert_eq!(off.output, on.output, "{engine:?}");
        assert_eq!(off.events, on.events, "{engine:?}");
        assert_eq!(off.packets, on.packets, "{engine:?}");
        assert_eq!(off.telemetry, Default::default(), "{engine:?}");
        assert!(!on.telemetry.counters.is_empty(), "{engine:?}");
    }
}

#[test]
fn pipeline_counters_agree_across_engines() {
    // Pipeline-level metrics describe the trace, not the engine, so they
    // must be identical between the AST interpreter and the HILTI VM.
    // (Engine-level `engine.*` counters exist only for the VM, which is
    // the one with an instruction counter.)
    let trace = http_trace(&SynthConfig::new(37, 9));
    let i =
        run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Interpreted, &gov(true))
            .unwrap();
    let v = run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov(true))
        .unwrap();
    let pipeline_only = |r: &broscript::pipeline::AnalysisResult| -> Vec<(String, u64)> {
        r.telemetry
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("pipeline."))
            .cloned()
            .collect()
    };
    assert_eq!(pipeline_only(&i), pipeline_only(&v));
    assert_eq!(i.telemetry.events, v.telemetry.events);
    // The VM run also reports retired instructions.
    assert!(v.telemetry.counter("engine.instructions_retired") > 0);
    assert!(v.telemetry.counter("engine.runs") > 0);
}

#[test]
fn counters_mirror_result_fields() {
    let trace = http_trace(&SynthConfig::new(41, 12));
    let r = run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov(true))
        .unwrap();
    let t = &r.telemetry;
    assert_eq!(t.counter("pipeline.packets"), r.packets);
    assert_eq!(t.counter("pipeline.events_dispatched"), r.events);
    assert_eq!(t.counter("pipeline.flows_expired"), r.flows_expired);
    assert_eq!(
        t.counter("pipeline.flows_quarantined"),
        r.flow_errors.len() as u64
    );
    assert!(t.counter("pipeline.bytes_parsed") > 0);
    assert!(t.counter("pipeline.flows_opened") > 0);
    assert!(t.counter("pipeline.flows_opened") >= t.counter("pipeline.flows_closed"));
    assert_eq!(
        t.events_of_kind("flow_open") as u64,
        t.counter("pipeline.flows_opened")
    );
    // The payload histogram saw exactly the parsed bytes.
    let (_, h) = t
        .histograms
        .iter()
        .find(|(k, _)| k == "pipeline.payload_bytes")
        .expect("payload histogram");
    assert_eq!(h.sum, t.counter("pipeline.bytes_parsed"));
    assert!(h.count > 0);
}

#[test]
fn dispatch_telemetry_is_deterministic_and_separate() {
    // Dispatch-plane metrics (batch counts, fill histogram, per-shard
    // queue depths) depend on the worker count and batch size, so they
    // live in `dispatch_telemetry`, never in the merged analysis
    // snapshot — and for a fixed (trace, N, batch) they must be
    // byte-identical across reruns.
    use broscript::parallel::{run_http_analysis_parallel, PipelineOptions};

    let trace = http_trace(&SynthConfig::new(53, 10));
    let opts = PipelineOptions {
        workers: 4,
        batch: 16,
        governance: gov(true),
        ..Default::default()
    };
    let a =
        run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Compiled, &opts).unwrap();
    let b =
        run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Compiled, &opts).unwrap();
    assert_eq!(a.dispatch_telemetry, b.dispatch_telemetry);
    assert_eq!(
        a.dispatch_telemetry.to_json(),
        b.dispatch_telemetry.to_json()
    );

    let d = &a.dispatch_telemetry;
    assert!(d.counter("pipeline.dispatch_batches") > 0);
    let (_, fill) = d
        .histograms
        .iter()
        .find(|(k, _)| k == "pipeline.batch_fill")
        .expect("batch-fill histogram");
    assert_eq!(fill.count, d.counter("pipeline.dispatch_batches"));
    // Every shard that received items reports a depth gauge and an item
    // counter, and the item counters sum to the fill histogram's total.
    let items: u64 = d
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("pipeline.shard_items."))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(items, fill.sum);
    assert!(d
        .gauges
        .iter()
        .any(|(k, v)| k.starts_with("pipeline.queue_depth.") && *v > 0));

    // The analysis snapshot stays free of dispatch metrics (they would
    // break byte-identity across worker counts), and sequential runs
    // carry an empty dispatch snapshot.
    assert!(!a
        .telemetry
        .counters
        .iter()
        .any(|(k, _)| k.starts_with("pipeline.dispatch") || k.starts_with("pipeline.shard_items")));
    let seq = run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov(true))
        .unwrap();
    assert_eq!(seq.dispatch_telemetry, Default::default());
    assert_eq!(
        a.telemetry, seq.telemetry,
        "merged snapshot matches sequential"
    );
}

#[test]
fn dns_pipeline_reports_telemetry_too() {
    let trace = dns_trace(&SynthConfig::new(5, 40));
    for stack in [ParserStack::Standard, ParserStack::Binpac] {
        let a = run_dns_analysis_governed(&trace, stack, Engine::Interpreted, &gov(true)).unwrap();
        let b = run_dns_analysis_governed(&trace, stack, Engine::Interpreted, &gov(true)).unwrap();
        assert_eq!(a.telemetry, b.telemetry, "{stack:?}");
        assert_eq!(
            a.telemetry.counter("pipeline.packets"),
            a.packets,
            "{stack:?}"
        );
        assert_eq!(
            a.telemetry.counter("pipeline.parse_failures"),
            a.parse_failures,
            "{stack:?}"
        );
        assert!(
            a.telemetry.counter("pipeline.bytes_parsed") > 0,
            "{stack:?}"
        );
    }
}
