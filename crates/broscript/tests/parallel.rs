//! Differential determinism tests for the flow-sharded parallel pipeline:
//! for every worker count N, the N-worker run must be **byte-identical**
//! to the 1-worker run — and the 1-worker run identical to the sequential
//! pipeline — over adversarial chaos traces, with telemetry on. Sharding
//! may only change throughput, never output.

use broscript::host::Engine;
use broscript::parallel::{run_dns_analysis_parallel, run_http_analysis_parallel, PipelineOptions};
use broscript::pipeline::{
    run_dns_analysis_governed, run_http_analysis_governed, AnalysisResult, Governance, ParserStack,
};
use netpkt::synth::{chaos_dns_trace, chaos_http_trace, ChaosConfig};

fn chaos_gov() -> Governance {
    Governance {
        idle_timeout_ms: Some(10),
        per_flow_heap: Some(8 * 1024),
        script_fuel: Some(500_000),
        quarantine: true,
        inject_fault_after: None,
        telemetry: true,
        tiering: None,
        delivery_deadline_ms: None,
        tracing: false,
        force_copy: false,
    }
}

fn opts(workers: usize) -> PipelineOptions {
    PipelineOptions {
        workers,
        governance: chaos_gov(),
        ..Default::default()
    }
}

/// Asserts every externally observable field of two runs is identical,
/// including the byte-rendered telemetry snapshot.
fn assert_identical(a: &AnalysisResult, b: &AnalysisResult, what: &str) {
    assert_eq!(a.http_log, b.http_log, "{what}: http.log");
    assert_eq!(a.files_log, b.files_log, "{what}: files.log");
    assert_eq!(a.dns_log, b.dns_log, "{what}: dns.log");
    assert_eq!(a.output, b.output, "{what}: printed output");
    assert_eq!(a.flow_errors, b.flow_errors, "{what}: flow-error ledger");
    assert_eq!(a.events, b.events, "{what}: dispatched events");
    assert_eq!(a.packets, b.packets, "{what}: packets");
    assert_eq!(a.flows_expired, b.flows_expired, "{what}: flows_expired");
    assert_eq!(
        a.peak_flow_bytes, b.peak_flow_bytes,
        "{what}: peak_flow_bytes"
    );
    assert_eq!(a.parse_failures, b.parse_failures, "{what}: parse_failures");
    assert_eq!(a.shard_faults, b.shard_faults, "{what}: shard faults");
    assert_eq!(a.shed_packets, b.shed_packets, "{what}: shed packets");
    assert_eq!(a.telemetry, b.telemetry, "{what}: telemetry snapshot");
    assert_eq!(
        a.telemetry.to_json(),
        b.telemetry.to_json(),
        "{what}: telemetry JSON bytes"
    );
}

const WORKER_COUNTS: [usize; 3] = [2, 4, 7];

#[test]
fn http_chaos_output_independent_of_worker_count() {
    let trace = chaos_http_trace(&ChaosConfig::new(0xC0FFEE));
    for stack in [ParserStack::Standard, ParserStack::Binpac] {
        let base = run_http_analysis_parallel(&trace, stack, Engine::Interpreted, &opts(1))
            .unwrap_or_else(|e| panic!("{stack:?} x1: {e}"));
        assert!(base.packets > 0 && !base.http_log.is_empty());
        for n in WORKER_COUNTS {
            let r = run_http_analysis_parallel(&trace, stack, Engine::Interpreted, &opts(n))
                .unwrap_or_else(|e| panic!("{stack:?} x{n}: {e}"));
            assert_identical(&base, &r, &format!("http {stack:?} x{n} vs x1"));
        }
    }
}

#[test]
fn dns_chaos_output_independent_of_worker_count() {
    let trace = chaos_dns_trace(11, 20, 5);
    for stack in [ParserStack::Standard, ParserStack::Binpac] {
        let base = run_dns_analysis_parallel(&trace, stack, Engine::Interpreted, &opts(1))
            .unwrap_or_else(|e| panic!("{stack:?} x1: {e}"));
        assert!(base.packets > 0 && !base.dns_log.is_empty());
        for n in WORKER_COUNTS {
            let r = run_dns_analysis_parallel(&trace, stack, Engine::Interpreted, &opts(n))
                .unwrap_or_else(|e| panic!("{stack:?} x{n}: {e}"));
            assert_identical(&base, &r, &format!("dns {stack:?} x{n} vs x1"));
        }
    }
}

#[test]
fn http_parallel_one_worker_matches_sequential() {
    let trace = chaos_http_trace(&ChaosConfig::new(0xC0FFEE));
    let gov = chaos_gov();
    for stack in [ParserStack::Standard, ParserStack::Binpac] {
        let seq = run_http_analysis_governed(&trace, stack, Engine::Interpreted, &gov)
            .unwrap_or_else(|e| panic!("{stack:?} seq: {e}"));
        let par = run_http_analysis_parallel(&trace, stack, Engine::Interpreted, &opts(1))
            .unwrap_or_else(|e| panic!("{stack:?} par: {e}"));
        assert_identical(&seq, &par, &format!("http {stack:?} seq vs par(1)"));
    }
}

#[test]
fn dns_parallel_one_worker_matches_sequential() {
    let trace = chaos_dns_trace(11, 20, 5);
    let gov = chaos_gov();
    for stack in [ParserStack::Standard, ParserStack::Binpac] {
        let seq = run_dns_analysis_governed(&trace, stack, Engine::Interpreted, &gov)
            .unwrap_or_else(|e| panic!("{stack:?} seq: {e}"));
        let par = run_dns_analysis_parallel(&trace, stack, Engine::Interpreted, &opts(1))
            .unwrap_or_else(|e| panic!("{stack:?} par: {e}"));
        assert_identical(&seq, &par, &format!("dns {stack:?} seq vs par(1)"));
    }
}

#[test]
fn compiled_engine_parallel_matches_sequential() {
    // The HILTI-compiled script engine through the parallel path: each
    // shard owns a private program image and VM context (§3.2).
    let trace = chaos_http_trace(&ChaosConfig::new(7));
    let gov = chaos_gov();
    let seq = run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov)
        .expect("sequential compiled");
    for n in [1, 4] {
        let par =
            run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Compiled, &opts(n))
                .unwrap_or_else(|e| panic!("compiled x{n}: {e}"));
        assert_identical(&seq, &par, &format!("compiled x{n} vs sequential"));
    }
}

#[test]
fn ungoverned_fatal_error_matches_sequential() {
    // Without quarantine, an injected parser fault must abort the whole
    // run — and the parallel pipeline must surface the *same first* error
    // the sequential one does, regardless of worker count.
    let trace = chaos_http_trace(&ChaosConfig::new(0xC0FFEE));
    let gov = Governance {
        quarantine: false,
        per_flow_heap: Some(1024),
        telemetry: false,
        ..Governance::default()
    };
    let Err(seq) =
        run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Interpreted, &gov)
    else {
        panic!("budget of 1 KiB must blow up on the chaos trace")
    };
    for n in [1, 2, 4] {
        let Err(par) = run_http_analysis_parallel(
            &trace,
            ParserStack::Binpac,
            Engine::Interpreted,
            &PipelineOptions {
                workers: n,
                governance: gov,
                ..Default::default()
            },
        ) else {
            panic!("parallel run x{n} must abort too")
        };
        assert_eq!(seq, par, "fatal error x{n}");
    }
}

#[test]
fn batch_size_never_changes_output() {
    // The dispatch batch size is pure transport: from single-item
    // submissions to batches larger than the whole trace, every worker
    // count must produce byte-identical analysis output.
    let trace = chaos_http_trace(&ChaosConfig::new(0xBA7C4));
    for stack in [ParserStack::Standard, ParserStack::Binpac] {
        let base = run_http_analysis_parallel(&trace, stack, Engine::Interpreted, &opts(1))
            .unwrap_or_else(|e| panic!("{stack:?} base: {e}"));
        for n in [1, 2, 4, 7] {
            for batch in [1, 3, 64, 100_000] {
                let o = PipelineOptions {
                    workers: n,
                    batch,
                    governance: chaos_gov(),
                    ..Default::default()
                };
                let r = run_http_analysis_parallel(&trace, stack, Engine::Interpreted, &o)
                    .unwrap_or_else(|e| panic!("{stack:?} x{n} batch {batch}: {e}"));
                assert_identical(&base, &r, &format!("http {stack:?} x{n} batch {batch}"));
            }
        }
    }
}

/// All four tiering modes — or just the one named by `HILTI_TIERING`, so
/// the CI tier matrix splits the differential cost across jobs.
fn modes_under_test() -> Vec<hilti::tier::TieringMode> {
    use hilti::tier::TieringMode;
    match TieringMode::from_env() {
        Some(m) => vec![m],
        None => vec![
            TieringMode::Off,
            TieringMode::Lazy,
            TieringMode::Eager,
            TieringMode::Threaded,
        ],
    }
}

#[test]
fn tiering_modes_parallel_output_identical() {
    // Adaptive tiering may only change dispatch speed, never output: for
    // every tiering mode the sequential, 1-, 2- and 4-worker compiled
    // runs must match the static-specialization baseline byte for byte.
    // Each shard carries its own tier engine, so worker counts also vary
    // where (and whether) hot functions cross the threaded threshold.
    let trace = chaos_http_trace(&ChaosConfig::new(11));
    let quiet = Governance {
        telemetry: false,
        ..chaos_gov()
    };
    let base = run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &quiet)
        .expect("static baseline");
    assert!(base.packets > 0 && !base.http_log.is_empty());
    for mode in modes_under_test() {
        let gov = Governance {
            tiering: Some(mode),
            ..quiet
        };
        let seq = run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov)
            .unwrap_or_else(|e| panic!("{mode:?} sequential: {e}"));
        assert_identical(&base, &seq, &format!("{mode:?} seq vs static"));
        for n in [1, 2, 4] {
            let par = run_http_analysis_parallel(
                &trace,
                ParserStack::Binpac,
                Engine::Compiled,
                &PipelineOptions {
                    workers: n,
                    governance: gov,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{mode:?} x{n}: {e}"));
            assert_identical(&base, &par, &format!("{mode:?} x{n} vs static"));
        }
    }
}

#[test]
fn tiering_telemetry_merge_is_deterministic() {
    // With telemetry on, per-shard tier state (engine.tierup, ic.*) flows
    // into the merged snapshot; for a fixed worker count the merge must be
    // byte-identical across reruns.
    use hilti::tier::TieringMode;

    let trace = chaos_http_trace(&ChaosConfig::new(13));
    let gov = Governance {
        tiering: Some(TieringMode::Lazy),
        ..chaos_gov()
    };
    let opts = PipelineOptions {
        workers: 4,
        governance: gov,
        ..Default::default()
    };
    let a = run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Compiled, &opts)
        .expect("first run");
    let b = run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Compiled, &opts)
        .expect("second run");
    assert_identical(&a, &b, "lazy x4 rerun");
}
