//! Differential tests for the zero-copy delivery path: a run whose
//! deliveries are *borrowed* from the trace arena (chunked `Bytes`
//! representation) must be byte-identical to one whose deliveries are
//! force-copied into flat parser buffers ([`Governance::force_copy`]) —
//! logs, events, quarantine ledger, and telemetry, over adversarial chaos
//! traces, sequentially and for N∈{1,2,4} workers. The only permitted
//! difference is the `pipeline.bytes_copied`/`bytes_borrowed` counter
//! pair, which records the routing itself.

use broscript::host::Engine;
use broscript::parallel::{run_dns_analysis_parallel, run_http_analysis_parallel, PipelineOptions};
use broscript::pipeline::{
    run_dns_analysis_governed, run_http_analysis_governed, AnalysisResult, Governance, ParserStack,
};
use hilti_rt::telemetry::TelemetrySnapshot;
use netpkt::synth::{chaos_dns_trace, chaos_http_trace, http_trace, ChaosConfig, SynthConfig};

fn gov(force_copy: bool) -> Governance {
    Governance {
        idle_timeout_ms: Some(10),
        per_flow_heap: Some(8 * 1024),
        script_fuel: Some(500_000),
        quarantine: true,
        telemetry: true,
        force_copy,
        ..Governance::default()
    }
}

fn opts(workers: usize, force_copy: bool) -> PipelineOptions {
    PipelineOptions {
        workers,
        governance: gov(force_copy),
        ..Default::default()
    }
}

/// The routing counters are the one legitimate difference between a
/// borrowed and a force-copied run; everything else in the snapshot must
/// match exactly.
fn strip_routing(snap: &TelemetrySnapshot) -> TelemetrySnapshot {
    let mut s = snap.clone();
    s.counters
        .retain(|(name, _)| name != "pipeline.bytes_copied" && name != "pipeline.bytes_borrowed");
    s
}

fn counter(snap: &TelemetrySnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Everything observable except the routing counters must be identical.
fn assert_equivalent(borrowed: &AnalysisResult, copied: &AnalysisResult, what: &str) {
    assert_eq!(borrowed.http_log, copied.http_log, "{what}: http.log");
    assert_eq!(borrowed.files_log, copied.files_log, "{what}: files.log");
    assert_eq!(borrowed.dns_log, copied.dns_log, "{what}: dns.log");
    assert_eq!(borrowed.output, copied.output, "{what}: printed output");
    assert_eq!(
        borrowed.flow_errors, copied.flow_errors,
        "{what}: flow-error ledger"
    );
    assert_eq!(borrowed.events, copied.events, "{what}: dispatched events");
    assert_eq!(borrowed.packets, copied.packets, "{what}: packets");
    assert_eq!(
        borrowed.flows_expired, copied.flows_expired,
        "{what}: flows_expired"
    );
    assert_eq!(
        borrowed.peak_flow_bytes, copied.peak_flow_bytes,
        "{what}: peak_flow_bytes (budget accounting must be representation-independent)"
    );
    assert_eq!(
        borrowed.parse_failures, copied.parse_failures,
        "{what}: parse_failures"
    );
    assert_eq!(
        strip_routing(&borrowed.telemetry),
        strip_routing(&copied.telemetry),
        "{what}: telemetry snapshot (minus routing counters)"
    );
    // Both runs saw the same payload bytes; only the route differs.
    let total = |r: &AnalysisResult| {
        counter(&r.telemetry, "pipeline.bytes_copied")
            + counter(&r.telemetry, "pipeline.bytes_borrowed")
    };
    assert_eq!(total(borrowed), total(copied), "{what}: routed byte total");
}

#[test]
fn http_chaos_borrowed_matches_flat_sequential_and_parallel() {
    let trace = chaos_http_trace(&ChaosConfig::new(0xBEEF));
    for stack in [ParserStack::Standard, ParserStack::Binpac] {
        let borrowed = run_http_analysis_governed(&trace, stack, Engine::Interpreted, &gov(false))
            .unwrap_or_else(|e| panic!("{stack:?} borrowed seq: {e}"));
        let copied = run_http_analysis_governed(&trace, stack, Engine::Interpreted, &gov(true))
            .unwrap_or_else(|e| panic!("{stack:?} copied seq: {e}"));
        assert!(borrowed.packets > 0 && !borrowed.http_log.is_empty());
        assert_equivalent(&borrowed, &copied, &format!("http {stack:?} seq"));
        for n in [1, 2, 4] {
            let b = run_http_analysis_parallel(&trace, stack, Engine::Interpreted, &opts(n, false))
                .unwrap_or_else(|e| panic!("{stack:?} borrowed x{n}: {e}"));
            let c = run_http_analysis_parallel(&trace, stack, Engine::Interpreted, &opts(n, true))
                .unwrap_or_else(|e| panic!("{stack:?} copied x{n}: {e}"));
            assert_equivalent(&b, &c, &format!("http {stack:?} x{n}"));
            // The parallel borrowed run must also match the sequential one.
            assert_equivalent(&borrowed, &b, &format!("http {stack:?} seq vs x{n}"));
        }
    }
}

#[test]
fn dns_chaos_borrowed_matches_flat_sequential_and_parallel() {
    let trace = chaos_dns_trace(29, 20, 5);
    for stack in [ParserStack::Standard, ParserStack::Binpac] {
        let borrowed = run_dns_analysis_governed(&trace, stack, Engine::Interpreted, &gov(false))
            .unwrap_or_else(|e| panic!("{stack:?} borrowed seq: {e}"));
        let copied = run_dns_analysis_governed(&trace, stack, Engine::Interpreted, &gov(true))
            .unwrap_or_else(|e| panic!("{stack:?} copied seq: {e}"));
        assert!(borrowed.packets > 0 && !borrowed.dns_log.is_empty());
        assert_equivalent(&borrowed, &copied, &format!("dns {stack:?} seq"));
        for n in [1, 2, 4] {
            let b = run_dns_analysis_parallel(&trace, stack, Engine::Interpreted, &opts(n, false))
                .unwrap_or_else(|e| panic!("{stack:?} borrowed x{n}: {e}"));
            let c = run_dns_analysis_parallel(&trace, stack, Engine::Interpreted, &opts(n, true))
                .unwrap_or_else(|e| panic!("{stack:?} copied x{n}: {e}"));
            assert_equivalent(&b, &c, &format!("dns {stack:?} x{n}"));
            assert_equivalent(&borrowed, &b, &format!("dns {stack:?} seq vs x{n}"));
        }
    }
}

#[test]
fn in_order_trace_is_fully_borrowed() {
    // An in-order synthetic trace must reach the parser without a single
    // payload memcpy: everything routes through the arena.
    let trace = http_trace(&SynthConfig::new(42, 20));
    for stack in [ParserStack::Standard, ParserStack::Binpac] {
        let r = run_http_analysis_governed(&trace, stack, Engine::Interpreted, &gov(false))
            .unwrap_or_else(|e| panic!("{stack:?}: {e}"));
        assert_eq!(
            counter(&r.telemetry, "pipeline.bytes_copied"),
            0,
            "{stack:?}: in-order deliveries must not copy"
        );
        assert!(
            counter(&r.telemetry, "pipeline.bytes_borrowed") > 0,
            "{stack:?}: deliveries must be arena-borrowed"
        );
    }
}

#[test]
fn force_copy_routes_everything_through_copies() {
    let trace = http_trace(&SynthConfig::new(42, 10));
    let r =
        run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Interpreted, &gov(true))
            .unwrap();
    assert_eq!(counter(&r.telemetry, "pipeline.bytes_borrowed"), 0);
    assert!(counter(&r.telemetry, "pipeline.bytes_copied") > 0);
}
