//! Chaos harness: deterministic adversarial traces through the governed
//! analysis pipeline.
//!
//! Each trace mixes well-formed sessions with protocol malformations that
//! attack analyzer robustness — truncated handshakes, mid-body cuts,
//! header bombs, never-ending chunked bodies, DNS compression loops. The
//! governed pipeline must survive all of them: no panic, bounded per-flow
//! memory, idle state evicted, and faults quarantined to the flow that
//! raised them while every healthy session still produces its logs.

use broscript::host::Engine;
use broscript::pipeline::{
    run_dns_analysis_governed, run_http_analysis_governed, Governance, ParserStack,
};
use netpkt::synth::{chaos_dns_trace, chaos_http_trace, http_trace, ChaosConfig, SynthConfig};

const PER_FLOW_HEAP: u64 = 8 * 1024;

fn chaos_gov() -> Governance {
    Governance {
        idle_timeout_ms: Some(10),
        per_flow_heap: Some(PER_FLOW_HEAP),
        script_fuel: Some(500_000),
        quarantine: true,
        inject_fault_after: None,
        telemetry: true,
        tiering: None,
        delivery_deadline_ms: None,
        tracing: false,
        force_copy: false,
    }
}

#[test]
fn http_chaos_survives_with_bounded_memory() {
    let cfg = ChaosConfig::new(0xC0FFEE);
    let trace = chaos_http_trace(&cfg);
    let r = run_http_analysis_governed(
        &trace,
        ParserStack::Binpac,
        Engine::Interpreted,
        &chaos_gov(),
    )
    .expect("governed pipeline must survive the chaos trace");

    assert_eq!(r.packets, trace.len() as u64);
    // Every well-formed session still shows up in the log.
    assert!(
        r.http_log.len() >= cfg.normal,
        "http.log lost healthy sessions: {} < {}",
        r.http_log.len(),
        cfg.normal
    );
    // Buffered per-flow parser state never exceeded its budget.
    assert!(
        r.peak_flow_bytes <= PER_FLOW_HEAP,
        "peak {} exceeds budget",
        r.peak_flow_bytes
    );
    // Quarantined flows died of resource exhaustion, nothing else.
    for fe in &r.flow_errors {
        assert_eq!(fe.kind, "Hilti::ResourceExhausted", "{fe:?}");
    }
    // Golden counts: header bombs and never-ending chunk streams overrun
    // the per-flow budget (mid-body cuts stay bounded at their 2 KiB
    // prefix and go idle instead); truncated handshakes and gone-silent
    // flows are reclaimed by the idle timeout.
    assert_eq!(
        r.flow_errors.len(),
        cfg.header_bombs + cfg.infinite_chunks,
        "{:?}",
        r.flow_errors
    );
    assert!(
        r.flows_expired >= cfg.truncated_handshakes as u64,
        "expired only {} flows",
        r.flows_expired
    );
    // The telemetry snapshot mirrors the governance ledger exactly.
    let t = &r.telemetry;
    assert_eq!(t.counter("pipeline.packets"), r.packets);
    assert_eq!(t.counter("pipeline.flows_expired"), r.flows_expired);
    assert_eq!(
        t.counter("pipeline.flows_quarantined"),
        r.flow_errors.len() as u64
    );
    assert_eq!(
        t.counter("pipeline.flow_errors.Hilti::ResourceExhausted"),
        (cfg.header_bombs + cfg.infinite_chunks) as u64
    );
    assert_eq!(t.gauge("pipeline.peak_flow_heap_bytes"), r.peak_flow_bytes);
    assert_eq!(t.counter("pipeline.events_dispatched"), r.events);
    assert_eq!(
        t.events_of_kind("quarantine"),
        r.flow_errors.len(),
        "one quarantine event per torn-down flow"
    );
}

#[test]
fn http_chaos_is_deterministic() {
    let cfg = ChaosConfig::new(7);
    let trace = chaos_http_trace(&cfg);
    let gov = chaos_gov();
    let a =
        run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Interpreted, &gov).unwrap();
    let b =
        run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Interpreted, &gov).unwrap();
    assert_eq!(a.http_log, b.http_log);
    assert_eq!(a.flows_expired, b.flows_expired);
    assert_eq!(a.peak_flow_bytes, b.peak_flow_bytes);
    let key = |r: &broscript::pipeline::AnalysisResult| -> Vec<(String, String)> {
        r.flow_errors
            .iter()
            .map(|f| (f.uid.clone(), f.kind.clone()))
            .collect()
    };
    assert_eq!(key(&a), key(&b));
    // The full telemetry snapshot — counters, gauges, histograms and the
    // event stream — is deterministic down to the rendered bytes.
    assert_eq!(a.telemetry, b.telemetry);
    assert_eq!(a.telemetry.to_json(), b.telemetry.to_json());
}

#[test]
fn http_chaos_standard_stack_survives_too() {
    // The handwritten parsers don't raise, so the quarantine stays empty —
    // but idle expiration still reclaims the stale flows.
    let cfg = ChaosConfig::new(99);
    let trace = chaos_http_trace(&cfg);
    let r = run_http_analysis_governed(
        &trace,
        ParserStack::Standard,
        Engine::Interpreted,
        &chaos_gov(),
    )
    .unwrap();
    assert!(r.http_log.len() >= cfg.normal);
    assert!(r.flows_expired >= cfg.truncated_handshakes as u64);
}

#[test]
fn governance_with_generous_limits_changes_nothing() {
    // Sanity: on a clean trace, governed and ungoverned runs agree.
    let trace = http_trace(&SynthConfig::new(42, 10));
    let generous = Governance {
        idle_timeout_ms: Some(60_000),
        per_flow_heap: Some(64 * 1024 * 1024),
        script_fuel: Some(1_000_000_000),
        quarantine: true,
        inject_fault_after: None,
        telemetry: false,
        tiering: None,
        delivery_deadline_ms: None,
        tracing: false,
        force_copy: false,
    };
    let a = run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Interpreted, &generous)
        .unwrap();
    let b =
        broscript::pipeline::run_http_analysis(&trace, ParserStack::Binpac, Engine::Interpreted)
            .unwrap();
    assert_eq!(a.http_log, b.http_log);
    assert_eq!(a.files_log, b.files_log);
    assert!(a.flow_errors.is_empty(), "{:?}", a.flow_errors);
}

#[test]
fn injected_fault_quarantines_exactly_one_flow() {
    // Arm the parser VM to blow up mid-trace: exactly one flow dies, the
    // run completes, and reruns kill the same flow.
    let trace = http_trace(&SynthConfig::new(5, 8));
    let gov = Governance {
        quarantine: true,
        inject_fault_after: Some(1_000),
        ..Governance::default()
    };
    let a =
        run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Interpreted, &gov).unwrap();
    let b =
        run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Interpreted, &gov).unwrap();
    assert_eq!(a.flow_errors.len(), 1, "{:?}", a.flow_errors);
    assert_eq!(a.flow_errors[0].kind, "Hilti::RuntimeError");
    assert!(a.flow_errors[0].detail.contains("injected chaos fault"));
    assert_eq!(a.flow_errors[0].uid, b.flow_errors[0].uid);
    // The other flows' results survive the casualty.
    assert!(a.http_log.len() >= 5, "{:?}", a.http_log);
}

#[test]
fn script_fuel_quarantines_event_handlers() {
    // Starve the script engine: handlers die of ResourceExhausted, but the
    // pipeline itself finishes the trace.
    let trace = http_trace(&SynthConfig::new(3, 4));
    let gov = Governance {
        script_fuel: Some(25),
        quarantine: true,
        ..Governance::default()
    };
    let r =
        run_http_analysis_governed(&trace, ParserStack::Standard, Engine::Compiled, &gov).unwrap();
    assert!(!r.flow_errors.is_empty());
    // Starvation surfaces directly (fuel exhausted mid-handler) and as
    // follow-on failures in later handlers on the same flow whose state
    // never got written (map lookups miss); both are quarantined per event.
    assert!(
        r.flow_errors
            .iter()
            .any(|fe| fe.kind == "Hilti::ResourceExhausted"),
        "{:?}",
        r.flow_errors
    );
    for fe in &r.flow_errors {
        assert!(
            fe.kind == "Hilti::ResourceExhausted" || fe.kind == "Hilti::IndexError",
            "{fe:?}"
        );
    }
    assert_eq!(r.packets, trace.len() as u64);
}

#[test]
fn dns_chaos_compression_loops_are_counted_and_survived() {
    let (normal, loops) = (20, 5);
    let trace = chaos_dns_trace(11, normal, loops);
    for stack in [ParserStack::Standard, ParserStack::Binpac] {
        let r = run_dns_analysis_governed(&trace, stack, Engine::Interpreted, &chaos_gov())
            .unwrap_or_else(|e| panic!("{stack:?}: {e}"));
        // Golden count: each compression-loop message fails to parse; the
        // pointer-chase guard turns the classic loop attack into a clean
        // per-datagram failure.
        assert_eq!(r.parse_failures, loops as u64, "{stack:?}");
        assert_eq!(
            r.telemetry.counter("pipeline.parse_failures"),
            loops as u64,
            "{stack:?}"
        );
        assert_eq!(
            r.telemetry.events_of_kind("parser_error"),
            loops,
            "{stack:?}"
        );
        assert!(r.dns_log.len() >= normal, "{stack:?}: {}", r.dns_log.len());
        assert!(r.flow_errors.is_empty(), "{stack:?}: {:?}", r.flow_errors);
    }
}
