//! Shard supervision and overload-control tests: injected worker panics
//! must be contained to the owning shard with a deterministic loss
//! ledger, stalled shards must never change output under the `Block`
//! policy, the `Shed` policy must drop traffic only at the dispatcher
//! with full accounting, and the per-delivery watchdog deadline must
//! quarantine wedged flows without perturbing healthy runs.

use broscript::host::Engine;
use broscript::parallel::{run_http_analysis_parallel, OverloadPolicy, PipelineOptions};
use broscript::pipeline::{
    run_http_analysis_governed, AnalysisResult, FlowError, Governance, ParserStack,
};
use netpkt::synth::{chaos_http_trace, http_trace, ChaosConfig, SynthConfig};

fn gov() -> Governance {
    Governance {
        idle_timeout_ms: Some(10),
        per_flow_heap: Some(8 * 1024),
        script_fuel: Some(500_000),
        quarantine: true,
        inject_fault_after: None,
        telemetry: true,
        tiering: None,
        delivery_deadline_ms: None,
        tracing: false,
        force_copy: false,
    }
}

fn opts(workers: usize) -> PipelineOptions {
    PipelineOptions {
        workers,
        governance: gov(),
        ..Default::default()
    }
}

/// Byte-level equality across every externally observable field.
fn assert_identical(a: &AnalysisResult, b: &AnalysisResult, what: &str) {
    assert_eq!(a.http_log, b.http_log, "{what}: http.log");
    assert_eq!(a.files_log, b.files_log, "{what}: files.log");
    assert_eq!(a.output, b.output, "{what}: printed output");
    assert_eq!(a.flow_errors, b.flow_errors, "{what}: flow-error ledger");
    assert_eq!(a.events, b.events, "{what}: dispatched events");
    assert_eq!(a.packets, b.packets, "{what}: packets");
    assert_eq!(a.shard_faults, b.shard_faults, "{what}: shard faults");
    assert_eq!(a.shed_packets, b.shed_packets, "{what}: shed packets");
    assert_eq!(a.telemetry, b.telemetry, "{what}: telemetry snapshot");
    assert_eq!(
        a.telemetry.to_json(),
        b.telemetry.to_json(),
        "{what}: telemetry JSON bytes"
    );
}

/// Multiset subset: every line of `small` appears in `big` at least as
/// often.
fn is_sublog(small: &[String], big: &[String]) -> bool {
    use std::collections::HashMap;
    let mut counts: HashMap<&str, i64> = HashMap::new();
    for l in big {
        *counts.entry(l.as_str()).or_default() += 1;
    }
    small.iter().all(|l| {
        let c = counts.entry(l.as_str()).or_default();
        *c -= 1;
        *c >= 0
    })
}

#[test]
fn injected_shard_panic_is_contained_and_accounted() {
    let trace = chaos_http_trace(&ChaosConfig::new(0xC0FFEE));
    let clean =
        run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &opts(4))
            .expect("unfaulted run");
    assert!(clean.shard_faults.is_empty());
    assert_eq!(clean.telemetry.counter("pipeline.shard_faults"), 0);

    for workers in [1, 2, 4] {
        let o = opts(workers).inject_shard_panic_after(0, 3);
        let r = run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &o)
            .unwrap_or_else(|e| panic!("x{workers}: faulted run must still complete: {e}"));

        // Exactly one fault, charged to the shard we armed.
        assert_eq!(r.shard_faults.len(), 1, "x{workers}: {:?}", r.shard_faults);
        assert_eq!(r.shard_faults[0].shard, 0);
        assert!(
            r.shard_faults[0].detail.contains("injected shard panic"),
            "x{workers}: {:?}",
            r.shard_faults
        );
        assert_eq!(r.telemetry.counter("pipeline.shard_faults"), 1);

        // The panicked shard's live flows died as `ShardPanic`; the loss
        // ledger is mirrored into telemetry.
        let lost: Vec<&FlowError> = r
            .flow_errors
            .iter()
            .filter(|f| f.kind == FlowError::SHARD_PANIC)
            .collect();
        assert!(!lost.is_empty(), "x{workers}: no ShardPanic quarantines");
        assert_eq!(
            r.telemetry.counter("pipeline.flow_errors.ShardPanic"),
            lost.len() as u64,
            "x{workers}"
        );

        // Every packet was still decoded and accounted for, and nothing
        // the surviving shards produced diverges from the clean run:
        // the faulted log is a strict sub-multiset of the unfaulted one.
        assert_eq!(r.packets, trace.len() as u64, "x{workers}");
        assert!(
            is_sublog(&r.http_log, &clean.http_log),
            "x{workers}: faulted run logged lines the clean run never produced"
        );
    }
}

#[test]
fn shard_panic_losses_are_deterministic() {
    // Same trace, same injection point: the loss ledger, the surviving
    // logs, and the rendered telemetry must be byte-identical on rerun.
    let trace = chaos_http_trace(&ChaosConfig::new(7));
    let o = opts(4).inject_shard_panic_after(2, 10);
    let a = run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &o)
        .expect("first faulted run");
    let b = run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &o)
        .expect("second faulted run");
    assert_eq!(a.shard_faults.len(), 1);
    assert_identical(&a, &b, "faulted rerun");
}

#[test]
fn compiled_engine_survives_a_shard_panic_too() {
    // The respawn path rebuilds the compiled script engine from the
    // shared blueprint; the run still completes with one fault.
    let trace = chaos_http_trace(&ChaosConfig::new(11));
    let o = opts(2).inject_shard_panic_after(1, 2);
    let r = run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Compiled, &o)
        .expect("compiled faulted run");
    assert_eq!(r.shard_faults.len(), 1);
    assert_eq!(r.shard_faults[0].shard, 1);
    assert!(r
        .flow_errors
        .iter()
        .any(|f| f.kind == FlowError::SHARD_PANIC));
}

#[test]
fn ungoverned_shard_panic_aborts_the_run() {
    // Without quarantine the all-or-nothing contract holds: a worker
    // panic surfaces as the run's error instead of a loss ledger.
    let trace = http_trace(&SynthConfig::new(42, 10));
    let o = PipelineOptions {
        workers: 2,
        governance: Governance {
            quarantine: false,
            telemetry: false,
            ..Governance::default()
        },
        ..Default::default()
    }
    .inject_shard_panic_after(0, 1);
    let Err(err) = run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &o)
    else {
        panic!("ungoverned panic must abort")
    };
    assert!(
        err.to_string().contains("shard panicked"),
        "unexpected error: {err}"
    );
}

#[test]
fn stalled_shard_under_block_changes_nothing() {
    // `Block` is lossless by construction: a shard that sleeps before
    // draining its ring only slows the run down. Output, ledger and
    // telemetry stay byte-identical, and nothing is shed.
    let trace = chaos_http_trace(&ChaosConfig::new(0xBA7C4));
    let base =
        run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &opts(2))
            .expect("unstalled run");
    assert_eq!(base.shed_packets, 0);
    let o = opts(2).inject_shard_stall(1, 100);
    let r = run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &o)
        .expect("stalled run");
    assert_eq!(r.shed_packets, 0, "Block must never shed");
    assert_identical(&base, &r, "stalled Block run");
}

#[test]
fn shed_policy_drops_batches_at_the_dispatcher_with_accounting() {
    // A tiny ring plus a stalled consumer forces the dispatcher to shed:
    // the run completes, every decoded packet is still counted, and the
    // drops show up both in the result field and the dispatch-plane
    // telemetry.
    let trace = chaos_http_trace(&ChaosConfig::new(0xC0FFEE));
    let o = PipelineOptions {
        workers: 2,
        batch: 4,
        governance: gov(),
        overload: OverloadPolicy::Shed { max_queue_depth: 4 },
        ..Default::default()
    }
    .inject_shard_stall(0, 200);
    let r = run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &o)
        .expect("shedding run must complete");
    assert!(
        r.shed_packets > 0,
        "stalled shard with a 4-deep ring must shed"
    );
    assert_eq!(
        r.packets,
        trace.len() as u64,
        "decode-side count is loss-free"
    );
    // The stalled shard must shed; a 4-deep ring may back the other
    // shard up too, so the per-shard counters only need to *sum* to the
    // result field.
    let d = &r.dispatch_telemetry;
    assert!(d.counter("pipeline.shed_packets.shard0") > 0);
    assert!(d.counter("pipeline.shed_batches.shard0") > 0);
    assert_eq!(
        d.counter("pipeline.shed_packets.shard0") + d.counter("pipeline.shed_packets.shard1"),
        r.shed_packets
    );
    // Control traffic is never shed, so the run still tears down cleanly
    // and the surviving flows' lines match the lossless run's bytes.
    let base =
        run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &opts(2))
            .expect("lossless run");
    assert!(is_sublog(&r.http_log, &base.http_log));
}

#[test]
fn shed_without_pressure_is_lossless() {
    // A generous ring under `Shed` never triggers: the run is
    // byte-identical to `Block` (the counters stay unregistered, so even
    // the telemetry snapshot matches).
    let trace = chaos_http_trace(&ChaosConfig::new(99));
    let base =
        run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &opts(4))
            .expect("Block run");
    let o = PipelineOptions {
        workers: 4,
        governance: gov(),
        overload: OverloadPolicy::Shed {
            max_queue_depth: 1 << 16,
        },
        ..Default::default()
    };
    let r = run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &o)
        .expect("Shed run");
    assert_eq!(r.shed_packets, 0);
    assert_identical(&base, &r, "unpressured Shed vs Block");
}

#[test]
fn zero_delivery_deadline_quarantines_every_delivery() {
    // A 0 ms watchdog deadline trips on the first fuel charge of every
    // delivery: all parser work dies as ResourceExhausted, but the
    // pipeline itself completes the trace.
    let trace = http_trace(&SynthConfig::new(5, 6));
    let g = Governance {
        delivery_deadline_ms: Some(0),
        ..gov()
    };
    let r = run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Interpreted, &g)
        .expect("deadline-starved run must still complete");
    assert_eq!(r.packets, trace.len() as u64);
    assert!(!r.flow_errors.is_empty());
    for fe in &r.flow_errors {
        assert_eq!(fe.kind, "Hilti::ResourceExhausted", "{fe:?}");
        assert!(fe.detail.contains("deadline"), "{fe:?}");
    }
    assert!(r.http_log.is_empty(), "{:?}", r.http_log);
}

#[test]
fn generous_deadline_does_not_perturb_the_pipeline() {
    // With a deadline far beyond the run's wall time, governed output is
    // identical to the no-deadline run — sequentially and in parallel.
    let trace = chaos_http_trace(&ChaosConfig::new(0xC0FFEE));
    let relaxed = Governance {
        delivery_deadline_ms: Some(600_000),
        ..gov()
    };
    let a = run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Interpreted, &gov())
        .expect("no-deadline run");
    let b = run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Interpreted, &relaxed)
        .expect("deadline run");
    assert_identical(&a, &b, "sequential deadline vs none");
    let pa = run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &opts(4))
        .expect("parallel no-deadline");
    let po = PipelineOptions {
        workers: 4,
        governance: relaxed,
        ..Default::default()
    };
    let pb = run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &po)
        .expect("parallel deadline");
    assert_identical(&pa, &pb, "parallel deadline vs none");
}
