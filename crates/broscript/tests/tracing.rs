//! Flight-recorder tracing tests: recording must never perturb the
//! deterministic analysis output (on/off byte-identity for every worker
//! count), the trace side-channel must cover the full delivery path, and
//! supervision faults must produce structurally deterministic postmortem
//! dumps containing the faulting flow's spans.

use broscript::host::Engine;
use broscript::parallel::{run_http_analysis_parallel, PipelineOptions};
use broscript::pipeline::{
    run_dns_analysis_governed, run_http_analysis_governed, AnalysisResult, Governance, ParserStack,
};
use hilti_rt::telemetry::json;
use hilti_rt::trace::Stage;
use netpkt::synth::{chaos_http_trace, dns_trace, http_trace, ChaosConfig, SynthConfig};

fn gov(tracing: bool) -> Governance {
    Governance {
        idle_timeout_ms: Some(10),
        per_flow_heap: Some(8 * 1024),
        script_fuel: Some(500_000),
        quarantine: true,
        inject_fault_after: None,
        telemetry: true,
        tiering: None,
        delivery_deadline_ms: None,
        tracing,
        force_copy: false,
    }
}

fn opts(workers: usize, tracing: bool) -> PipelineOptions {
    PipelineOptions {
        workers,
        governance: gov(tracing),
        ..Default::default()
    }
}

/// Byte-level equality across every deterministic result field. The
/// `trace` side-channel is deliberately excluded: it carries wall-clock
/// data and may only differ in being present or absent.
fn assert_identical(a: &AnalysisResult, b: &AnalysisResult, what: &str) {
    assert_eq!(a.http_log, b.http_log, "{what}: http.log");
    assert_eq!(a.files_log, b.files_log, "{what}: files.log");
    assert_eq!(a.dns_log, b.dns_log, "{what}: dns.log");
    assert_eq!(a.output, b.output, "{what}: printed output");
    assert_eq!(a.flow_errors, b.flow_errors, "{what}: flow-error ledger");
    assert_eq!(a.events, b.events, "{what}: dispatched events");
    assert_eq!(a.packets, b.packets, "{what}: packets");
    assert_eq!(a.shard_faults, b.shard_faults, "{what}: shard faults");
    assert_eq!(a.telemetry, b.telemetry, "{what}: telemetry snapshot");
    assert_eq!(
        a.telemetry.to_json(),
        b.telemetry.to_json(),
        "{what}: telemetry JSON bytes"
    );
}

#[test]
fn recording_on_off_outputs_are_byte_identical_sequential() {
    let trace = http_trace(&SynthConfig::new(11, 8));
    let off =
        run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov(false))
            .unwrap();
    let on = run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov(true))
        .unwrap();
    assert_identical(&off, &on, "sequential http binpac");
    assert!(off.trace.is_none(), "tracing off must not build a report");
    let report = on.trace.expect("tracing on must yield a report");
    assert!(!report.spans.is_empty());
    // Sequential pipeline covers decode, parse, and script.
    for st in [Stage::Decode, Stage::Parse, Stage::Script] {
        assert!(
            report.latency.stages.iter().any(|s| s.stage == st),
            "missing sequential stage {}",
            st.name()
        );
    }
}

#[test]
fn recording_on_off_outputs_are_byte_identical_for_worker_counts() {
    let trace = http_trace(&SynthConfig::new(23, 12));
    let seq =
        run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov(false))
            .unwrap();
    for workers in [1, 2, 4] {
        let off = run_http_analysis_parallel(
            &trace,
            ParserStack::Binpac,
            Engine::Compiled,
            &opts(workers, false),
        )
        .unwrap();
        let on = run_http_analysis_parallel(
            &trace,
            ParserStack::Binpac,
            Engine::Compiled,
            &opts(workers, true),
        )
        .unwrap();
        assert_identical(&off, &on, &format!("parallel N={workers} off vs on"));
        assert_identical(&seq, &on, &format!("sequential vs parallel N={workers} on"));
        assert!(off.trace.is_none());
        assert!(on.trace.is_some());
    }
}

#[test]
fn parallel_trace_covers_all_six_stages_and_exports_valid_chrome_json() {
    let trace = http_trace(&SynthConfig::new(7, 10));
    let r = run_http_analysis_parallel(
        &trace,
        ParserStack::Binpac,
        Engine::Compiled,
        &opts(2, true),
    )
    .unwrap();
    let report = r.trace.expect("trace report");
    for st in Stage::ALL {
        assert!(
            report.latency.stages.iter().any(|s| s.stage == st),
            "stage {} missing from the parallel latency report",
            st.name()
        );
    }
    assert!(
        report.latency.delivery_count > 0,
        "delivery histogram empty"
    );
    assert!(
        !report.latency.slowest.is_empty(),
        "top-K slowest table empty"
    );
    let doc = report.to_chrome_json();
    json::validate(&doc).expect("chrome trace must be valid JSON");
    assert!(doc.contains("\"schema\":\"hilti.trace.v1\""));
    for st in Stage::ALL {
        assert!(
            doc.contains(&format!("\"name\":\"{}\"", st.name())),
            "chrome export missing stage {}",
            st.name()
        );
    }
    // The latency summary renders without panicking and names the stages.
    let rendered = report.latency.render();
    assert!(rendered.contains("queue_wait") && rendered.contains("script"));
}

#[test]
fn dns_trace_report_covers_parse_and_script() {
    let trace = dns_trace(&SynthConfig::new(5, 6));
    let r = run_dns_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov(true))
        .unwrap();
    let report = r.trace.expect("trace report");
    for st in [Stage::Decode, Stage::Parse, Stage::Script] {
        assert!(
            report.latency.stages.iter().any(|s| s.stage == st),
            "missing dns stage {}",
            st.name()
        );
    }
}

#[test]
fn injected_panic_produces_postmortem_with_faulting_flow() {
    let trace = http_trace(&SynthConfig::new(9, 10));
    let run = || {
        run_http_analysis_parallel(
            &trace,
            ParserStack::Binpac,
            Engine::Compiled,
            &opts(2, true).inject_shard_panic_after(0, 3),
        )
        .unwrap()
    };
    let a = run();
    let report = a.trace.expect("trace report");
    let dump = report
        .postmortems
        .iter()
        .find(|d| d.reason.starts_with("ShardPanic"))
        .expect("panic must trigger a postmortem dump");
    assert_eq!(dump.shard, 0, "dump comes from the faulting shard");
    assert!(!dump.records.is_empty(), "dump carries recorder spans");
    // The faulting delivery was the 3rd on shard 0; its queue-wait span
    // is recorded before the injected panic fires, so the dump must name
    // a quarantined flow.
    let lost: Vec<&str> = a.flow_errors.iter().map(|fe| fe.uid.as_str()).collect();
    assert!(
        dump.records
            .iter()
            .filter_map(|r| r.uid.as_deref())
            .any(|u| lost.contains(&u)),
        "postmortem must contain spans of a flow the panic quarantined"
    );
    // JSONL rendering: every line is valid JSON, header first.
    let jsonl = dump.to_jsonl();
    let mut lines = jsonl.lines();
    let header = lines.next().unwrap();
    json::validate(header).unwrap();
    assert!(header.contains("\"kind\":\"postmortem\""));
    for l in lines {
        json::validate(l).unwrap();
    }
    // Structure (stage, packet, uid) is deterministic modulo timestamps.
    let b = run();
    let dump_b = b
        .trace
        .expect("trace report")
        .postmortems
        .iter()
        .find(|d| d.reason.starts_with("ShardPanic"))
        .expect("second run dumps too")
        .clone();
    assert_eq!(
        dump.structure(),
        dump_b.structure(),
        "postmortem structure must be deterministic across runs"
    );
}

#[test]
fn injected_stall_produces_postmortem_dump() {
    let trace = chaos_http_trace(&ChaosConfig::new(0xABCD));
    let r = run_http_analysis_parallel(
        &trace,
        ParserStack::Binpac,
        Engine::Compiled,
        &opts(2, true).inject_shard_stall(1, 20),
    )
    .unwrap();
    let report = r.trace.expect("trace report");
    let dump = report
        .postmortems
        .iter()
        .find(|d| d.reason == "injected stall")
        .expect("stall injection must trigger a postmortem dump");
    assert_eq!(dump.shard, 1, "dump comes from the stalled shard");
    assert!(
        !dump.records.is_empty(),
        "stalled shard still processed its ring after waking"
    );
}

#[test]
fn recording_identity_holds_under_tiering_modes() {
    // The flight recorder sits outside the hilti dispatch loop, so tiered
    // (including direct-threaded) script execution keeps running while
    // recording — and recording must still never perturb the output, for
    // every tiering mode, sequentially and across worker counts. (Output
    // identity *across* modes is covered by the parallel suite; telemetry
    // legitimately differs between tiered and untiered runs via the
    // `engine.tierup` counter, so the comparison here is off-vs-on within
    // one mode and worker count.)
    use hilti::tier::TieringMode;
    let modes = match TieringMode::from_env() {
        Some(m) => vec![m],
        None => vec![
            TieringMode::Off,
            TieringMode::Lazy,
            TieringMode::Eager,
            TieringMode::Threaded,
        ],
    };

    let trace = http_trace(&SynthConfig::new(31, 10));
    for mode in modes {
        let g = |tracing| Governance {
            tiering: Some(mode),
            ..gov(tracing)
        };
        let off =
            run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &g(false))
                .unwrap();
        let on =
            run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &g(true))
                .unwrap();
        assert_identical(&off, &on, &format!("{mode:?} seq recorder off vs on"));
        assert!(on.trace.is_some() && off.trace.is_none());
        for workers in [2, 4] {
            let popts = |tracing| PipelineOptions {
                workers,
                governance: g(tracing),
                ..Default::default()
            };
            let par_off = run_http_analysis_parallel(
                &trace,
                ParserStack::Binpac,
                Engine::Compiled,
                &popts(false),
            )
            .unwrap();
            let par_on = run_http_analysis_parallel(
                &trace,
                ParserStack::Binpac,
                Engine::Compiled,
                &popts(true),
            )
            .unwrap();
            assert_identical(
                &par_off,
                &par_on,
                &format!("{mode:?} x{workers} recorder off vs on"),
            );
            assert!(par_on.trace.is_some() && par_off.trace.is_none());
        }
    }
}
