//! E8 — the §6.5 Fibonacci baseline: recursive script function on the
//! interpreter vs compiled to HILTI.

use criterion::{criterion_group, criterion_main, Criterion};

use broscript::host::{Engine, ScriptHost};
use broscript::scripts::FIB_BRO;
use hilti::value::Value;

fn bench_fib(c: &mut Criterion) {
    let mut group = c.benchmark_group("fib");
    group.bench_function("interpreted", |b| {
        let mut host = ScriptHost::new(&[FIB_BRO], Engine::Interpreted, None).expect("interpreter");
        b.iter(|| host.call("fib", &[Value::Int(16)]).expect("fib"))
    });
    group.bench_function("compiled", |b| {
        let mut host = ScriptHost::new(&[FIB_BRO], Engine::Compiled, None).expect("compiler");
        b.iter(|| host.call("fib", &[Value::Int(16)]).expect("fib"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fib
}
criterion_main!(benches);
