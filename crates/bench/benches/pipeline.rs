//! Pipeline scaling: the flow-sharded parallel pipeline vs worker count
//! (§3.2 hash-based placement applied to the Figure 9 HTTP workload).
//!
//! The deterministic-merge contract means every worker count produces
//! byte-identical output, so this group measures pure throughput: the
//! same trace through 1, 2, and 4 shards. On a multi-core machine the
//! 4-worker run should clear ≥1.5× the 1-worker throughput; on a
//! single-core box the curve is flat and the bench only proves the
//! parallel path carries no pathological overhead.

use criterion::{criterion_group, criterion_main, Criterion};

use broscript::host::Engine;
use broscript::parallel::{run_http_analysis_parallel, PipelineOptions};
use broscript::pipeline::ParserStack;
use netpkt::synth::{http_trace, SynthConfig};

fn bench_pipeline_scaling(c: &mut Criterion) {
    let trace = http_trace(&SynthConfig::new(0xB1FF, 60));

    let mut group = c.benchmark_group("pipeline_scaling");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        let opts = PipelineOptions {
            workers,
            ..Default::default()
        };
        group.bench_function(format!("http_binpac_x{workers}"), |b| {
            b.iter(|| {
                run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &opts)
                    .expect("analysis")
                    .events
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_scaling);
criterion_main!(benches);
