//! E5 — Figure 9: protocol-parsing cost, standard handwritten parsers vs
//! BinPAC++-generated parsers on the HILTI VM (script engine held fixed).

use criterion::{criterion_group, criterion_main, Criterion};

use broscript::host::Engine;
use broscript::pipeline::{run_dns_analysis, run_http_analysis, ParserStack};
use netpkt::synth::{dns_trace, http_trace, SynthConfig};

fn bench_parsing(c: &mut Criterion) {
    let http = http_trace(&SynthConfig::new(0xF19, 10));
    let dns = dns_trace(&SynthConfig::new(0xF19, 150));

    let mut group = c.benchmark_group("parsing");
    group.bench_function("http_standard", |b| {
        b.iter(|| {
            run_http_analysis(&http, ParserStack::Standard, Engine::Interpreted)
                .expect("analysis")
                .events
        })
    });
    group.bench_function("http_binpac", |b| {
        b.iter(|| {
            run_http_analysis(&http, ParserStack::Binpac, Engine::Interpreted)
                .expect("analysis")
                .events
        })
    });
    group.bench_function("dns_standard", |b| {
        b.iter(|| {
            run_dns_analysis(&dns, ParserStack::Standard, Engine::Interpreted)
                .expect("analysis")
                .events
        })
    });
    group.bench_function("dns_binpac", |b| {
        b.iter(|| {
            run_dns_analysis(&dns, ParserStack::Binpac, Engine::Interpreted)
                .expect("analysis")
                .events
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parsing
}
criterion_main!(benches);
