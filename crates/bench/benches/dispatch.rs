//! Dispatch-tier microbenchmarks: the bytecode specializer on vs. off.
//!
//! Two kernels bracket the VM's hot paths: a tight integer loop (pure
//! straight-line arithmetic plus a fused compare-and-branch back-edge —
//! the best case for the typed tier) and recursive `fib` (call-dominated,
//! so frame setup bounds how much specialization can buy). The same pair
//! is registered alongside the A1 optimizer ablation in `ablation.rs`.

use criterion::{criterion_group, criterion_main, Criterion};

use hilti::host::BuildOptions;
use hilti::passes::OptLevel;
use hilti::value::Value;
use hilti::Program;

const INT_LOOP: &str = r#"
module M
int<64> kernel(int<64> n) {
    local int<64> i
    local int<64> acc
    local bool more
    i = assign 0
    acc = assign 0
loop:
    acc = int.add acc i
    acc = int.and acc 1048575
    i = int.add i 1
    more = int.lt i n
    if.else more loop done
done:
    return acc
}
"#;

const FIB: &str = bench::experiments::FIB_HLT;

fn build(src: &str, specialize: bool) -> Program {
    Program::from_sources_opts(
        &[src],
        OptLevel::Full,
        BuildOptions {
            specialize,
            ..Default::default()
        },
    )
    .expect("kernel builds")
}

fn bench_int_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_int_loop");
    for (name, specialize) in [("spec_on", true), ("spec_off", false)] {
        group.bench_function(name, |b| {
            let mut p = build(INT_LOOP, specialize);
            b.iter(|| p.run("M::kernel", &[Value::Int(10_000)]).expect("run"))
        });
    }
    group.finish();
}

fn bench_fib(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_fib");
    for (name, specialize) in [("spec_on", true), ("spec_off", false)] {
        group.bench_function(name, |b| {
            let mut p = build(FIB, specialize);
            b.iter(|| p.run("Fib::fib", &[Value::Int(18)]).expect("run"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_int_loop, bench_fib
}
criterion_main!(benches);
