//! Dispatch-tier microbenchmarks: the bytecode specializer on vs. off,
//! plus the adaptive tier ladder up to direct-threaded execution.
//!
//! Two kernels bracket the VM's hot paths: a tight integer loop (pure
//! straight-line arithmetic plus a fused compare-and-branch back-edge —
//! the best case for the typed tier) and recursive `fib` (call-dominated,
//! so frame setup bounds how much specialization can buy). The same pair
//! is registered alongside the A1 optimizer ablation in `ablation.rs`.

use criterion::{criterion_group, criterion_main, Criterion};

use hilti::host::BuildOptions;
use hilti::passes::OptLevel;
use hilti::tier::TieringMode;
use hilti::value::Value;
use hilti::Program;

const INT_LOOP: &str = r#"
module M
int<64> kernel(int<64> n) {
    local int<64> i
    local int<64> acc
    local bool more
    i = assign 0
    acc = assign 0
loop:
    acc = int.add acc i
    acc = int.and acc 1048575
    i = int.add i 1
    more = int.lt i n
    if.else more loop done
done:
    return acc
}
"#;

const FIB: &str = bench::experiments::FIB_HLT;

fn build(src: &str, specialize: bool) -> Program {
    Program::from_sources_opts(
        &[src],
        OptLevel::Full,
        BuildOptions {
            specialize,
            ..Default::default()
        },
    )
    .expect("kernel builds")
}

fn bench_int_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_int_loop");
    for (name, specialize) in [("spec_on", true), ("spec_off", false)] {
        group.bench_function(name, |b| {
            let mut p = build(INT_LOOP, specialize);
            b.iter(|| p.run("M::kernel", &[Value::Int(10_000)]).expect("run"))
        });
    }
    group.finish();
}

fn bench_fib(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_fib");
    for (name, specialize) in [("spec_on", true), ("spec_off", false)] {
        group.bench_function(name, |b| {
            let mut p = build(FIB, specialize);
            b.iter(|| p.run("Fib::fib", &[Value::Int(18)]).expect("run"))
        });
    }
    group.finish();
}

/// Resource-governance overhead: the same kernels with fuel (and, for the
/// call-heavy one, depth) limits configured high enough never to trip.
/// The delta against the `unlimited` baselines above is the cost of the
/// amortized fuel accounting in the dispatch loop; target < 5%.
fn bench_governance_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("governance_overhead");
    // Limits are re-armed every iteration (fuel is consumed run to run),
    // so both variants pay the same set_limits call and the measured
    // delta isolates the per-instruction accounting.
    for (name, fuel) in [
        ("int_loop_unlimited", None),
        ("int_loop_governed", Some(100_000_000u64)),
    ] {
        let limits = hilti_rt::limits::ResourceLimits {
            fuel,
            ..Default::default()
        };
        group.bench_function(name, |b| {
            let mut p = build(INT_LOOP, true);
            b.iter(|| {
                p.set_limits(limits);
                p.run("M::kernel", &[Value::Int(10_000)]).expect("run")
            })
        });
    }
    for (name, limits) in [
        ("fib_unlimited", hilti_rt::limits::ResourceLimits::default()),
        (
            "fib_governed",
            hilti_rt::limits::ResourceLimits {
                fuel: Some(100_000_000),
                max_call_depth: Some(10_000),
                ..Default::default()
            },
        ),
    ] {
        group.bench_function(name, |b| {
            let mut p = build(FIB, true);
            b.iter(|| {
                p.set_limits(limits);
                p.run("Fib::fib", &[Value::Int(18)]).expect("run")
            })
        });
    }
    group.finish();
}

fn build_tiered(src: &str, mode: TieringMode) -> Program {
    Program::from_sources_opts(
        &[src],
        OptLevel::Full,
        BuildOptions {
            tiering: Some(mode),
            ..Default::default()
        },
    )
    .expect("kernel builds")
}

/// Profile-guided adaptive tiering on the call-dominated kernel. `off`
/// runs generic bytecode forever (the speedup baseline), `lazy` re-lowers
/// through the specializer once the invocation/retired counters cross the
/// hotness thresholds, `eager` tiers every function on first dispatch,
/// and `threaded` additionally flattens hot specialized code into the
/// direct-threaded top tier. The bench-regression gate (`gate.rs`)
/// asserts lazy >= 1.2x off and threaded >= 3x off on this workload and
/// records all medians in BENCH_dispatch.json.
fn bench_tiering(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_tiering");
    for (name, mode) in [
        ("fib25_tiering_off", TieringMode::Off),
        ("fib25_tiering_lazy", TieringMode::Lazy),
        ("fib25_tiering_eager", TieringMode::Eager),
        ("fib25_tiering_threaded", TieringMode::Threaded),
    ] {
        group.bench_function(name, |b| {
            let mut p = build_tiered(FIB, mode);
            b.iter(|| p.run("Fib::fib", &[Value::Int(25)]).expect("run"))
        });
    }
    group.finish();
}

/// The direct-threaded top tier on both kernel shapes, paired with the
/// generic (`spec_off`) entries above for the >= 3x acceptance target.
fn bench_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_threaded");
    group.bench_function("int_loop_threaded", |b| {
        let mut p = build_tiered(INT_LOOP, TieringMode::Threaded);
        b.iter(|| p.run("M::kernel", &[Value::Int(10_000)]).expect("run"))
    });
    group.bench_function("fib_threaded", |b| {
        let mut p = build_tiered(FIB, TieringMode::Threaded);
        b.iter(|| p.run("Fib::fib", &[Value::Int(18)]).expect("run"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_int_loop, bench_fib, bench_governance_overhead, bench_tiering, bench_threaded
}
criterion_main!(benches);
