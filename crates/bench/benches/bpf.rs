//! E2 — BPF filtering (§6.2): classic interpreted BPF vs the HILTI-compiled
//! filter, per packet.

use criterion::{criterion_group, criterion_main, Criterion};

use hilti::passes::OptLevel;
use netpkt::synth::{http_trace, SynthConfig};

fn bench_bpf(c: &mut Criterion) {
    let trace = http_trace(&SynthConfig::new(0xB1FF, 10));
    let filter = "host 10.1.0.1 or src net 93.184.3.0/24";
    let expr = hilti_bpf::parse_filter(filter).expect("filter");
    let classic = hilti_bpf::classic::compile_classic(&expr).expect("classic backend");
    let mut hf = hilti_bpf::HiltiFilter::compile(&expr, OptLevel::Full).expect("hilti backend");

    let mut group = c.benchmark_group("bpf");
    group.bench_function("classic_interpreter", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for p in &trace {
                n += u64::from(hilti_bpf::classic::bpf_filter(&classic, &p.data));
            }
            n
        })
    });
    group.bench_function("hilti_compiled", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for p in &trace {
                n += u64::from(hf.matches(&p.data).expect("filter run"));
            }
            n
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bpf
}
criterion_main!(benches);
