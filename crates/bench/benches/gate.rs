//! The bench-regression gate: sampled medians vs committed baselines.
//!
//! Runs a small, fixed set of benchmarks spanning the three performance
//! surfaces this repo guards — bytecode dispatch (static specialization
//! and adaptive tiering), the parallel pipeline, and telemetry overhead —
//! and writes one `hilti.bench.v1` JSON document per suite:
//!
//! * `BENCH_dispatch.json`  — fib/int-loop kernels, spec on/off and
//!   tiering off/lazy/eager/threaded (the tiering acceptance targets live
//!   here: `fib25_tiering_lazy` must run ≥ 1.2x faster than
//!   `fib25_tiering_off`, and the direct-threaded top tier must run ≥ 3x
//!   faster than generic dispatch on both kernels —
//!   `fib25_tiering_threaded` vs `fib25_tiering_off` and
//!   `int_loop_threaded` vs `int_loop_spec_off`).
//! * `BENCH_pipeline.json`  — governed HTTP analysis, sequential and
//!   4-worker sharded.
//! * `BENCH_telemetry.json` — the same pipeline with telemetry off/on
//!   and with the flight recorder off/on (`http_traced_off/_on`); the
//!   tracing acceptance target lives here: recording on must stay within
//!   2% of recording off.
//! * `BENCH_throughput.json` — standard-stack HTTP replay over a
//!   high-flow-count trace, sequential and at 1/2/4/8 workers; prints
//!   pkts/sec and Gbps, and on hosts with >= 4 cores enforces the
//!   parallel-scaling target (`throughput_http_std_x4` >= 2.5x faster
//!   than `throughput_http_std_seq`). `HILTI_THROUGHPUT_FLOWS` scales
//!   the trace (default 4000 flows; set 1000000 for the full run).
//!   Also records `throughput_allocs_per_pkt_milli` — heap allocations
//!   per packet (×1000) on the sequential hot path, counted by a
//!   wrapping global allocator and held to the same 15% regression
//!   budget — and enforces the zero-copy target on live counters:
//!   `pipeline.bytes_copied == 0` (with `bytes_borrowed > 0`) on an
//!   in-order trace.
//!
//! Measured documents go to `target/bench-gate/`; committed baselines
//! live at the repo root. The gate FAILS if any benchmark regresses more
//! than 15% against its baseline and WARNS above 5%. Modes:
//!
//! ```text
//! cargo bench -p bench --bench gate                # measure + compare
//! cargo bench -p bench --bench gate -- --update    # refresh baselines
//! cargo bench -p bench --bench gate -- --test      # tiny smoke run
//! ```
//!
//! `scripts/bench_gate.sh` wraps the same invocation so CI and local runs
//! are identical. Set `BENCH_GATE_INJECT_SLOWDOWN=<factor>` to multiply
//! every measured median — used once to demonstrate the gate actually
//! fails on a 2x slowdown.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use broscript::host::Engine;
use broscript::parallel::{run_http_analysis_parallel, PipelineOptions};
use broscript::pipeline::{run_http_analysis_governed, Governance, ParserStack};
use hilti::host::BuildOptions;
use hilti::passes::OptLevel;
use hilti::tier::TieringMode;
use hilti::value::Value;
use hilti::Program;
use hilti_rt::telemetry::json;
use netpkt::synth::{http_trace, throughput_trace, SynthConfig};

const SCHEMA: &str = "hilti.bench.v1";
const FAIL_PCT: f64 = 15.0;
const WARN_PCT: f64 = 5.0;
/// Acceptance target: lazy tiering over the generic-forever baseline on
/// the call-dominated fib(25) kernel.
const TIERING_MIN_SPEEDUP: f64 = 1.2;
/// Acceptance target: the direct-threaded top tier over generic dispatch,
/// on both the call-dominated and the straight-line kernel. Checked on
/// live minima, but only on hosts with >= 2 cores — on a single shared
/// core the generic/threaded pair can't be timed comparably.
const THREADED_MIN_SPEEDUP: f64 = 3.0;
/// Acceptance target: 4-worker throughput over sequential on the
/// high-flow-count trace — checked only on machines with >= 4 cores
/// (flow-sharded parallelism cannot beat sequential on fewer).
const SCALING_MIN_SPEEDUP: f64 = 2.5;
/// Acceptance target: arming the flight recorder on the governed HTTP
/// pipeline must cost no more than this over the recording-off run.
const TRACING_MAX_OVERHEAD_PCT: f64 = 2.0;

const INT_LOOP: &str = r#"
module M
int<64> kernel(int<64> n) {
    local int<64> i
    local int<64> acc
    local bool more
    i = assign 0
    acc = assign 0
loop:
    acc = int.add acc i
    acc = int.and acc 1048575
    i = int.add i 1
    more = int.lt i n
    if.else more loop done
done:
    return acc
}
"#;

const FIB: &str = bench::experiments::FIB_HLT;

/// Counting allocator: tallies every heap allocation so the throughput
/// suite can report — and the gate can guard — allocations per packet.
/// The counter is relaxed-atomic (shard workers allocate concurrently)
/// and the passthrough to [`System`] keeps timing impact to one
/// uncontended `fetch_add` per allocation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// One measured benchmark: median and minimum ns/iter across samples.
/// The median is the headline number; the gate compares *minima*, which
/// approximate the uncontended cost and are far less sensitive to load
/// spikes on shared CI runners than any averaged statistic.
#[derive(Clone, Copy)]
struct Stat {
    median_ns: u64,
    min_ns: u64,
}

/// Times `samples` windows of `iters` iterations each, after untimed
/// warmup. Windows are sized to span tens of milliseconds — shorter ones
/// are hopelessly noisy for a 15% regression gate.
fn measure(samples: usize, iters: usize, mut f: impl FnMut()) -> Stat {
    for _ in 0..iters.div_ceil(4).max(1) {
        f();
    }
    let mut v = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        v.push((t.elapsed().as_nanos() / iters as u128) as u64);
    }
    v.sort_unstable();
    Stat {
        median_ns: v[v.len() / 2],
        min_ns: v[0],
    }
}

fn build_kernel(src: &str, options: BuildOptions) -> Program {
    Program::from_sources_opts(&[src], OptLevel::Full, options).expect("kernel builds")
}

fn spec_opts(specialize: bool) -> BuildOptions {
    BuildOptions {
        specialize,
        ..Default::default()
    }
}

fn tier_opts(mode: TieringMode) -> BuildOptions {
    BuildOptions {
        tiering: Some(mode),
        ..Default::default()
    }
}

/// One suite: ordered benchmark id → measured statistics.
type Suite = BTreeMap<&'static str, Stat>;

fn dispatch_suite(smoke: bool) -> Suite {
    let (samples, iters, fib_n, loop_n) = if smoke {
        (3, 1, 12, 500)
    } else {
        (7, 25, 25, 20_000)
    };
    let mut out = Suite::new();
    for (id, specialize) in [("int_loop_spec_on", true), ("int_loop_spec_off", false)] {
        let mut p = build_kernel(INT_LOOP, spec_opts(specialize));
        out.insert(
            id,
            measure(samples, iters, || {
                p.run("M::kernel", &[Value::Int(loop_n)]).expect("run");
            }),
        );
    }
    for (id, specialize) in [("fib18_spec_on", true), ("fib18_spec_off", false)] {
        let mut p = build_kernel(FIB, spec_opts(specialize));
        let n = if smoke { fib_n } else { 18 };
        out.insert(
            id,
            measure(samples, iters, || {
                p.run("Fib::fib", &[Value::Int(n)]).expect("run");
            }),
        );
    }
    for (id, mode) in [
        ("fib25_tiering_off", TieringMode::Off),
        ("fib25_tiering_lazy", TieringMode::Lazy),
        ("fib25_tiering_eager", TieringMode::Eager),
        ("fib25_tiering_threaded", TieringMode::Threaded),
    ] {
        let mut p = build_kernel(FIB, tier_opts(mode));
        out.insert(
            id,
            measure(samples, 1, || {
                p.run("Fib::fib", &[Value::Int(fib_n)]).expect("run");
            }),
        );
    }
    // The straight-line kernel under the threaded top tier; paired with
    // `int_loop_spec_off` for the second ≥ 3x live check.
    {
        let mut p = build_kernel(INT_LOOP, tier_opts(TieringMode::Threaded));
        out.insert(
            "int_loop_threaded",
            measure(samples, iters, || {
                p.run("M::kernel", &[Value::Int(loop_n)]).expect("run");
            }),
        );
    }
    out
}

fn pipeline_suite(smoke: bool) -> Suite {
    let (samples, iters, flows) = if smoke { (2, 1, 4) } else { (5, 3, 40) };
    let trace = http_trace(&SynthConfig::new(0xB1FF, flows));
    let mut out = Suite::new();
    let gov = Governance::default();
    out.insert(
        "http_binpac_compiled_seq",
        measure(samples, iters, || {
            run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov)
                .expect("analysis");
        }),
    );
    let opts = PipelineOptions {
        workers: 4,
        governance: gov,
        ..Default::default()
    };
    out.insert(
        "http_binpac_compiled_x4",
        measure(samples, iters, || {
            run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Compiled, &opts)
                .expect("analysis");
        }),
    );
    out
}

/// Flow count for the throughput suite. The default keeps a full gate
/// run in seconds; set `HILTI_THROUGHPUT_FLOWS=1000000` for the
/// million-flow measurement (the trace generator is template-based and
/// stays cheap at that scale).
fn throughput_flows(smoke: bool) -> usize {
    if smoke {
        return 200;
    }
    std::env::var("HILTI_THROUGHPUT_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000)
}

/// End-to-end replay throughput: the standard HTTP stack over a
/// high-flow-count trace, sequential and at N ∈ {1, 2, 4, 8} workers.
/// Alongside the gate-comparable ns/iter stats, prints pkts/sec and
/// Gbps per configuration (the paper's Figure 9 axes).
fn throughput_suite(smoke: bool) -> Suite {
    let samples = if smoke { 1 } else { 3 };
    let flows = throughput_flows(smoke);
    let trace = throughput_trace(0x7487, flows);
    let pkts = trace.len() as f64;
    let bytes: usize = trace.iter().map(|p| p.data.len()).sum();
    let rate = |id: &str, st: Stat| {
        let secs = st.min_ns as f64 * 1e-9;
        println!(
            "gate: throughput/{id}: {flows} flows, {:.0} pkts ({:.1} MB): {:.2e} pkts/sec, {:.3} Gbps",
            pkts,
            bytes as f64 / 1e6,
            pkts / secs,
            bytes as f64 * 8.0 / secs / 1e9,
        );
    };
    let mut out = Suite::new();
    let gov = Governance::default();
    let st = measure(samples, 1, || {
        run_http_analysis_governed(&trace, ParserStack::Standard, Engine::Compiled, &gov)
            .expect("analysis");
    });
    rate("http_std_seq", st);
    out.insert("throughput_http_std_seq", st);
    // Allocations per packet on the sequential hot path, in thousandths
    // so the integer Stat keeps three digits of precision. Stored as a
    // suite entry so `compare` gates it with the same 15% budget as the
    // timing stats ("allocations-per-packet must not creep back up").
    let allocs = count_allocs(|| {
        run_http_analysis_governed(&trace, ParserStack::Standard, Engine::Compiled, &gov)
            .expect("analysis");
    });
    let per_pkt_milli = allocs.saturating_mul(1000) / (trace.len() as u64).max(1);
    println!(
        "gate: throughput/http_std_seq: {allocs} heap allocations ({:.2} per packet)",
        per_pkt_milli as f64 / 1000.0,
    );
    out.insert(
        "throughput_allocs_per_pkt_milli",
        Stat {
            median_ns: per_pkt_milli,
            min_ns: per_pkt_milli,
        },
    );
    for (id, workers) in [
        ("throughput_http_std_x1", 1usize),
        ("throughput_http_std_x2", 2),
        ("throughput_http_std_x4", 4),
        ("throughput_http_std_x8", 8),
    ] {
        let opts = PipelineOptions {
            workers,
            governance: gov,
            ..Default::default()
        };
        let st = measure(samples, 1, || {
            run_http_analysis_parallel(&trace, ParserStack::Standard, Engine::Compiled, &opts)
                .expect("analysis");
        });
        rate(&id["throughput_".len()..], st);
        out.insert(id, st);
    }
    out
}

fn telemetry_suite(smoke: bool) -> Suite {
    let (samples, iters, flows) = if smoke { (2, 1, 4) } else { (5, 3, 20) };
    let trace = http_trace(&SynthConfig::new(77, flows));
    let mut out = Suite::new();
    for (id, telemetry) in [
        ("http_governed_telemetry_off", false),
        ("http_governed_telemetry_on", true),
    ] {
        let gov = Governance {
            telemetry,
            ..Governance::default()
        };
        out.insert(
            id,
            measure(samples, iters, || {
                run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov)
                    .expect("analysis");
            }),
        );
    }
    out
}

/// Measures flight-recorder overhead as interleaved paired windows:
/// each round times the governed pipeline with recording off, then on,
/// and the acceptance check judges the *median of the per-round ratios*.
/// Measuring the two configurations seconds apart (as a plain pair of
/// `measure` calls would) lets slow machine drift — CPU frequency,
/// noisy neighbours — masquerade as overhead; pairing cancels it.
/// Returns the off/on stats (for the baseline documents) and the
/// median ratio.
fn traced_pair(smoke: bool) -> (Stat, Stat, f64) {
    let (rounds, iters, flows) = if smoke { (2, 1, 4) } else { (7, 2, 20) };
    let trace = http_trace(&SynthConfig::new(77, flows));
    let run = |tracing: bool| {
        let gov = Governance {
            tracing,
            ..Governance::default()
        };
        run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov)
            .expect("analysis");
    };
    run(false);
    run(true);
    let window = |tracing: bool| {
        let t = Instant::now();
        for _ in 0..iters {
            run(tracing);
        }
        (t.elapsed().as_nanos() / iters as u128) as u64
    };
    let mut offs = Vec::with_capacity(rounds);
    let mut ons = Vec::with_capacity(rounds);
    let mut ratios = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let off = window(false);
        let on = window(true);
        offs.push(off);
        ons.push(on);
        ratios.push(on as f64 / off.max(1) as f64);
    }
    offs.sort_unstable();
    ons.sort_unstable();
    ratios.sort_by(f64::total_cmp);
    let stat = |v: &[u64]| Stat {
        median_ns: v[v.len() / 2],
        min_ns: v[0],
    };
    (stat(&offs), stat(&ons), ratios[rounds / 2])
}

/// Sample count per suite — mirrors the `(samples, ...)` tuples inside
/// the suite functions, surfaced in the document's `env` block.
fn suite_samples(name: &str, smoke: bool) -> usize {
    match (name, smoke) {
        ("dispatch", false) => 7,
        ("dispatch", true) => 3,
        ("throughput", false) => 3,
        ("throughput", true) => 1,
        (_, false) => 5,
        (_, true) => 2,
    }
}

/// Renders one suite as a `hilti.bench.v1` document. Deterministic
/// field order (BTreeMap), no wall-time metadata. The `env` block
/// records the measurement conditions (host cores, throughput flow
/// count, samples per benchmark) so a baseline can be judged against
/// the machine that produced it; `parse_baseline` and the gate
/// comparison ignore it.
fn render(suite_name: &str, suite: &Suite, smoke: bool) -> String {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"schema\":{},\"suite\":{},\"unit\":\"ns_per_iter\",\
         \"env\":{{\"host_cores\":{host_cores},\"throughput_flows\":{},\"samples\":{}}},\
         \"benchmarks\":{{",
        json::quote(SCHEMA),
        json::quote(suite_name),
        throughput_flows(smoke),
        suite_samples(suite_name, smoke),
    );
    for (i, (id, st)) in suite.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{}:{{\"median_ns\":{},\"min_ns\":{}}}",
            json::quote(id),
            st.median_ns,
            st.min_ns
        );
    }
    s.push_str("}}\n");
    debug_assert!(json::validate(s.trim_end()).is_ok());
    s
}

/// Extracts `id -> (median_ns, min_ns)` from a committed baseline
/// document. The parser only needs to understand what `render` writes.
fn parse_baseline(doc: &str) -> Option<BTreeMap<String, Stat>> {
    let mut out = BTreeMap::new();
    let body = doc.split("\"benchmarks\":{").nth(1)?;
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let endq = after.find('"')?;
        let id = &after[..endq];
        let after_id = &after[endq + 1..];
        let med = after_id.strip_prefix(":{\"median_ns\":")?;
        let comma = med.find(',')?;
        let median_ns: u64 = med[..comma].parse().ok()?;
        let min = med[comma + 1..].strip_prefix("\"min_ns\":")?;
        let endn = min.find('}')?;
        let min_ns: u64 = min[..endn].parse().ok()?;
        out.insert(id.to_string(), Stat { median_ns, min_ns });
        rest = &min[endn + 1..];
        if !rest.starts_with(',') {
            break;
        }
    }
    Some(out)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Compares one measured suite against its committed baseline. Returns
/// (fail, warn) counts.
fn compare(name: &str, measured: &Suite, baseline_path: &Path) -> (u32, u32) {
    let Ok(doc) = std::fs::read_to_string(baseline_path) else {
        println!(
            "gate: {name}: no baseline at {} — run scripts/bench_gate.sh --update",
            baseline_path.display()
        );
        return (1, 0);
    };
    let Some(base) = parse_baseline(&doc) else {
        println!(
            "gate: {name}: unparseable baseline {}",
            baseline_path.display()
        );
        return (1, 0);
    };
    let mut fails = 0;
    let mut warns = 0;
    for (id, st) in measured {
        let Some(base_st) = base.get(*id) else {
            println!("gate: {name}/{id}: new benchmark (no baseline entry) — refresh baselines");
            fails += 1;
            continue;
        };
        let delta_pct = (st.min_ns as f64 / base_st.min_ns.max(1) as f64 - 1.0) * 100.0;
        let verdict = if delta_pct > FAIL_PCT {
            fails += 1;
            "FAIL"
        } else if delta_pct > WARN_PCT {
            warns += 1;
            "warn"
        } else {
            "ok"
        };
        println!(
            "gate: {name}/{id}: min {} ns/iter vs baseline {} ({delta_pct:+.1}%) {verdict}",
            st.min_ns, base_st.min_ns
        );
    }
    for id in base.keys() {
        if !measured.contains_key(id.as_str()) {
            println!("gate: {name}/{id}: baseline entry no longer measured — refresh baselines");
            fails += 1;
        }
    }
    (fails, warns)
}

/// Per-benchmark min-merge of two measurement passes.
fn merge_min(mut a: Suite, b: Suite) -> Suite {
    for (id, st) in b {
        let e = a.entry(id).or_insert(st);
        e.median_ns = e.median_ns.min(st.median_ns);
        e.min_ns = e.min_ns.min(st.min_ns);
    }
    a
}

/// True if some measured minimum exceeds its baseline by more than the
/// failure threshold — i.e. a comparison pass would fail right now.
fn candidate_failure(measured: &Suite, base: &BTreeMap<String, Stat>) -> bool {
    measured.iter().any(|(id, st)| {
        base.get(*id)
            .is_some_and(|b| st.min_ns as f64 > b.min_ns.max(1) as f64 * (1.0 + FAIL_PCT / 100.0))
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let update = args.iter().any(|a| a == "--update");
    // `cargo bench` passes `--bench`; a `--test` smoke run keeps tier-1
    // fast and skips the baseline comparison (medians are meaningless at
    // smoke sizes).
    let smoke = args.iter().any(|a| a == "--test");

    // Measure each suite; if a pass looks like a failure against the
    // committed baseline, re-measure and keep per-benchmark minima (up to
    // two retries). Genuine regressions reproduce on every pass; CI load
    // spikes do not — this keeps the 15% gate sharp without flaking.
    type SuiteFn = fn(bool) -> Suite;
    let suite_fns: [(&str, SuiteFn); 4] = [
        ("dispatch", dispatch_suite),
        ("pipeline", pipeline_suite),
        ("telemetry", telemetry_suite),
        ("throughput", throughput_suite),
    ];
    let mut suites: Vec<(&str, Suite)> = Vec::new();
    let mut tracing_ratio = 1.0f64;
    for (name, f) in suite_fns {
        let mut merged = f(smoke);
        if !update && !smoke {
            if let Some(base) =
                std::fs::read_to_string(repo_root().join(format!("BENCH_{name}.json")))
                    .ok()
                    .as_deref()
                    .and_then(parse_baseline)
            {
                for retry in 0..2 {
                    if !candidate_failure(&merged, &base) {
                        break;
                    }
                    println!(
                        "gate: {name}: candidate regression — re-measuring (retry {})",
                        retry + 1
                    );
                    merged = merge_min(merged, f(smoke));
                }
            }
        }
        // The tracing-overhead pair is measured by its own interleaved
        // harness; the ratio check retries like the baseline compare
        // does, keeping the best (lowest) median ratio.
        if name == "telemetry" {
            let (mut off, mut on, mut ratio) = traced_pair(smoke);
            if !smoke {
                for retry in 0..2 {
                    if ratio <= 1.0 + TRACING_MAX_OVERHEAD_PCT / 100.0 {
                        break;
                    }
                    println!(
                        "gate: telemetry: tracing overhead above budget — re-measuring (retry {})",
                        retry + 1
                    );
                    let (off2, on2, ratio2) = traced_pair(smoke);
                    off.median_ns = off.median_ns.min(off2.median_ns);
                    off.min_ns = off.min_ns.min(off2.min_ns);
                    on.median_ns = on.median_ns.min(on2.median_ns);
                    on.min_ns = on.min_ns.min(on2.min_ns);
                    ratio = ratio.min(ratio2);
                }
            }
            merged.insert("http_traced_off", off);
            merged.insert("http_traced_on", on);
            tracing_ratio = ratio;
        }
        suites.push((name, merged));
    }

    // Demonstration hook: inflate measured medians to prove the gate trips.
    let inject: f64 = std::env::var("BENCH_GATE_INJECT_SLOWDOWN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let suites: Vec<(&str, Suite)> = suites
        .into_iter()
        .map(|(name, s)| {
            let s = s
                .into_iter()
                .map(|(id, st)| {
                    (
                        id,
                        Stat {
                            median_ns: (st.median_ns as f64 * inject) as u64,
                            min_ns: (st.min_ns as f64 * inject) as u64,
                        },
                    )
                })
                .collect();
            (name, s)
        })
        .collect();
    if inject != 1.0 {
        println!("gate: BENCH_GATE_INJECT_SLOWDOWN={inject} — medians inflated for demonstration");
    }

    let out_dir = repo_root().join("target/bench-gate");
    std::fs::create_dir_all(&out_dir).expect("create target/bench-gate");
    let mut fails = 0;
    let mut warns = 0;
    for (name, suite) in &suites {
        let doc = render(name, suite, smoke);
        let measured_path = out_dir.join(format!("BENCH_{name}.json"));
        std::fs::write(&measured_path, &doc).expect("write measured document");
        let baseline_path = repo_root().join(format!("BENCH_{name}.json"));
        if update {
            std::fs::write(&baseline_path, &doc).expect("write baseline");
            println!(
                "gate: {name}: baseline updated at {}",
                baseline_path.display()
            );
        } else if !smoke {
            let (f, w) = compare(name, suite, &baseline_path);
            fails += f;
            warns += w;
        }
    }

    // The tiering acceptance target, checked on live medians (not the
    // baseline): lazy must beat generic-forever by the required factor.
    if !smoke {
        let dispatch = &suites[0].1;
        let off = dispatch["fib25_tiering_off"].min_ns as f64;
        let lazy = dispatch["fib25_tiering_lazy"].min_ns as f64;
        let speedup = off / lazy.max(1.0);
        let verdict = if speedup >= TIERING_MIN_SPEEDUP {
            "ok"
        } else {
            fails += 1;
            "FAIL"
        };
        println!(
            "gate: dispatch/fib25 tiering lazy speedup {speedup:.2}x (target >= {TIERING_MIN_SPEEDUP}x) {verdict}"
        );
    }

    // The direct-threaded acceptance target, checked on live minima for
    // both kernel shapes. Mirrors the throughput gate's constrained-host
    // pattern: on a single-core host the check reports SKIP.
    if !smoke {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let dispatch = &suites[0].1;
        for (what, base_id, threaded_id) in [
            ("fib25", "fib25_tiering_off", "fib25_tiering_threaded"),
            ("int_loop", "int_loop_spec_off", "int_loop_threaded"),
        ] {
            let generic = dispatch[base_id].min_ns as f64;
            let threaded = dispatch[threaded_id].min_ns as f64;
            let speedup = generic / threaded.max(1.0);
            if cores >= 2 {
                let verdict = if speedup >= THREADED_MIN_SPEEDUP {
                    "ok"
                } else {
                    fails += 1;
                    "FAIL"
                };
                println!(
                    "gate: dispatch/{what} threaded speedup {speedup:.2}x \
                     (target >= {THREADED_MIN_SPEEDUP}x vs generic) {verdict}"
                );
            } else {
                println!(
                    "gate: dispatch/{what} threaded speedup {speedup:.2}x — SKIP \
                     ({cores} core(s) available; target {THREADED_MIN_SPEEDUP}x needs >= 2)"
                );
            }
        }
    }

    // The flight-recorder acceptance target, judged on the median of
    // interleaved paired windows (see `traced_pair`): arming span
    // recording must not slow the governed HTTP pipeline by more than
    // the overhead budget.
    if !smoke {
        let pct = (tracing_ratio - 1.0) * 100.0;
        let verdict = if pct <= TRACING_MAX_OVERHEAD_PCT {
            "ok"
        } else {
            fails += 1;
            "FAIL"
        };
        println!(
            "gate: telemetry/tracing overhead {pct:+.2}% (budget <= {TRACING_MAX_OVERHEAD_PCT}%, paired-median) {verdict}"
        );
    }

    // The parallel-scaling acceptance target, checked on live minima:
    // 4 workers must beat sequential by the required factor. Flow-sharded
    // parallelism cannot speed anything up without cores to run on, so on
    // hosts with fewer than 4 the check reports SKIP instead of failing.
    if !smoke {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let tp = &suites[3].1;
        let seq = tp["throughput_http_std_seq"].min_ns as f64;
        let x4 = tp["throughput_http_std_x4"].min_ns as f64;
        let speedup = seq / x4.max(1.0);
        if cores >= 4 {
            let verdict = if speedup >= SCALING_MIN_SPEEDUP {
                "ok"
            } else {
                fails += 1;
                "FAIL"
            };
            println!(
                "gate: throughput x4 speedup {speedup:.2}x (target >= {SCALING_MIN_SPEEDUP}x) {verdict}"
            );
        } else {
            println!(
                "gate: throughput x4 speedup {speedup:.2}x — SKIP \
                 ({cores} core(s) available; target {SCALING_MIN_SPEEDUP}x needs >= 4)"
            );
        }
    }

    // The zero-copy acceptance target: with telemetry on, an in-order
    // throughput trace must route every delivered payload byte through
    // the arena-borrow path — not a single payload memcpy from decode to
    // parse (`pipeline.bytes_copied == 0`, `bytes_borrowed > 0`).
    if !smoke {
        let trace = throughput_trace(0x7487, 500);
        let gov = Governance {
            telemetry: true,
            ..Governance::default()
        };
        let r = run_http_analysis_governed(&trace, ParserStack::Standard, Engine::Compiled, &gov)
            .expect("zero-copy check analysis");
        let counter = |name: &str| {
            r.telemetry
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let copied = counter("pipeline.bytes_copied");
        let borrowed = counter("pipeline.bytes_borrowed");
        let verdict = if copied == 0 && borrowed > 0 {
            "ok"
        } else {
            fails += 1;
            "FAIL"
        };
        println!(
            "gate: throughput zero-copy: bytes_copied={copied} bytes_borrowed={borrowed} \
             (target: 0 copied, > 0 borrowed) {verdict}"
        );
    }

    if smoke {
        println!("gate: smoke run complete (no comparison)");
        return ExitCode::SUCCESS;
    }
    if fails > 0 {
        println!("gate: FAILED ({fails} failure(s), {warns} warning(s))");
        return ExitCode::FAILURE;
    }
    println!("gate: passed ({warns} warning(s))");
    ExitCode::SUCCESS
}
