//! E7 — Figure 10: script-execution cost, interpreter vs HILTI-compiled
//! scripts (parser stack held fixed at the standard parsers).

use criterion::{criterion_group, criterion_main, Criterion};

use broscript::host::Engine;
use broscript::pipeline::{run_dns_analysis, run_http_analysis, ParserStack};
use netpkt::synth::{dns_trace, http_trace, SynthConfig};

fn bench_scripts(c: &mut Criterion) {
    let http = http_trace(&SynthConfig::new(0xF20, 10));
    let dns = dns_trace(&SynthConfig::new(0xF20, 150));

    let mut group = c.benchmark_group("scripts");
    group.bench_function("http_interpreted", |b| {
        b.iter(|| {
            run_http_analysis(&http, ParserStack::Standard, Engine::Interpreted)
                .expect("analysis")
                .events
        })
    });
    group.bench_function("http_compiled", |b| {
        b.iter(|| {
            run_http_analysis(&http, ParserStack::Standard, Engine::Compiled)
                .expect("analysis")
                .events
        })
    });
    group.bench_function("dns_interpreted", |b| {
        b.iter(|| {
            run_dns_analysis(&dns, ParserStack::Standard, Engine::Interpreted)
                .expect("analysis")
                .events
        })
    });
    group.bench_function("dns_compiled", |b| {
        b.iter(|| {
            run_dns_analysis(&dns, ParserStack::Standard, Engine::Compiled)
                .expect("analysis")
                .events
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scripts
}
criterion_main!(benches);
