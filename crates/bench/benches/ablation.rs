//! A1–A3 — ablations on the design choices DESIGN.md calls out:
//! optimizer passes, classifier backend, and incremental regexp matching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hilti::passes::OptLevel;
use hilti::value::Value;
use hilti_rt::addr::Addr;
use hilti_rt::classifier::{Backend, Classifier, FieldMatcher, FieldValue};
use hilti_rt::regexp::Regex;

const KERNEL: &str = r#"
module M
int<64> kernel(int<64> n) {
    local int<64> i
    local int<64> acc
    local int<64> a
    local int<64> b
    local int<64> c
    local bool more
    i = assign 0
    acc = assign 0
loop:
    a = int.add 40 2
    b = int.mul a 10
    c = int.mul a 10
    c = int.add b c
    acc = int.add acc c
    acc = int.add acc i
    i = int.add i 1
    more = int.lt i n
    if.else more loop done
done:
    return acc
}
"#;

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_optimizer");
    for (name, level) in [("none", OptLevel::None), ("full", OptLevel::Full)] {
        group.bench_function(name, |b| {
            let mut p = hilti::Program::from_sources(&[KERNEL], level).expect("kernel");
            b.iter(|| p.run("M::kernel", &[Value::Int(2_000)]).expect("run"))
        });
    }
    // The bytecode-specialization tier on the same kernel (see
    // `dispatch.rs` for the dedicated microbenchmarks): full optimizer
    // with and without the typed fast path.
    for (name, specialize) in [("full_spec", true), ("full_nospec", false)] {
        group.bench_function(name, |b| {
            let mut p = hilti::Program::from_sources_opts(
                &[KERNEL],
                OptLevel::Full,
                hilti::host::BuildOptions {
                    specialize,
                    ..Default::default()
                },
            )
            .expect("kernel");
            b.iter(|| p.run("M::kernel", &[Value::Int(2_000)]).expect("run"))
        });
    }
    group.finish();
}

fn build_classifier(backend: Backend, n_rules: usize) -> Classifier<u32> {
    let mut c = Classifier::with_backend(backend);
    for i in 0..n_rules {
        let net: hilti_rt::addr::Network = format!("10.{}.{}.0/24", (i / 250) % 250, i % 250)
            .parse()
            .expect("net");
        c.add(
            vec![FieldMatcher::Net(net), FieldMatcher::Wildcard],
            i as u32,
        )
        .expect("rule");
    }
    c.compile();
    c
}

fn bench_classifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_classifier");
    for rules in [16usize, 256, 1024] {
        for (name, backend) in [
            ("linear", Backend::LinearScan),
            ("indexed", Backend::FieldIndexed),
        ] {
            let cls = build_classifier(backend, rules);
            group.bench_with_input(BenchmarkId::new(name, rules), &cls, |b, cls| {
                let probe = [
                    FieldValue::Addr(Addr::v4(10, 1, 77, 1)),
                    FieldValue::Addr(Addr::v4(192, 168, 0, 1)),
                ];
                b.iter(|| cls.matches(&probe))
            });
        }
    }
    group.finish();
}

fn bench_regexp(c: &mut Criterion) {
    let re = Regex::new("[A-Z]+ [^ ]+ HTTP\\/[0-9]\\.[0-9]\\r\\n").expect("pattern");
    let line = b"GET /index/with/a/moderately/long/path?x=123456 HTTP/1.1\r\n";
    let mut group = c.benchmark_group("a3_regexp");
    group.bench_function("whole_buffer", |b| b.iter(|| re.match_prefix(line)));
    group.bench_function("chunked_incremental", |b| {
        b.iter(|| {
            let mut m = re.matcher();
            for chunk in line.chunks(7) {
                m.feed(chunk);
            }
            m.finish()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_optimizer, bench_classifier, bench_regexp
}
criterion_main!(benches);
