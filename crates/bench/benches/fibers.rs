//! E1 — fiber micro-benchmark (§5): context-switch rate and full
//! create-run-delete cycles.

use criterion::{criterion_group, criterion_main, Criterion};

use hilti::fiber::{Fiber, Step};
use hilti::value::Value;

const SRC: &str = r#"
module M
void spin(int<64> n) {
    local int<64> i
    local bool more
    i = assign 0
loop:
    yield
    i = int.add i 1
    more = int.lt i n
    if.else more loop done
done:
    return
}
void nop() {
    return
}
"#;

fn bench_fibers(c: &mut Criterion) {
    let mut prog = hilti::Program::from_source(SRC).expect("fiber program");

    c.bench_function("fiber_switch", |b| {
        b.iter_custom(|iters| {
            let mut fiber = Fiber::new("M::spin", vec![Value::Int(iters as i64)]);
            let start = std::time::Instant::now();
            while let Step::Suspended = prog.resume(&mut fiber).expect("resume") {}
            start.elapsed()
        })
    });

    c.bench_function("fiber_create_run_delete", |b| {
        b.iter(|| {
            let mut f = Fiber::new("M::nop", vec![]);
            match prog.resume(&mut f).expect("resume") {
                Step::Finished(v) => v,
                Step::Suspended => unreachable!(),
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fibers
}
criterion_main!(benches);
