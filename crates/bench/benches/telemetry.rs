//! Telemetry overhead: the acceptance gate for the observability layer.
//!
//! Two pairs, each off vs. on:
//!
//! * `engine_*` — the recursive `fib` kernel with and without a
//!   [`Telemetry`] attached to the VM context. The delta is the cost of
//!   the retired-instruction accounting (one saturating add per run plus
//!   the pre-interned counter bumps).
//! * `pipeline_*` — the governed HTTP analysis with
//!   [`Governance::telemetry`] off and on. The delta is the per-packet
//!   metric/event cost across the whole pipeline.
//!
//! Target: the `on` variants within 5% of their `off` baselines, and the
//! `off` variants identical to pre-telemetry builds (the layer is
//! `Option`-gated on every hot path).

use criterion::{criterion_group, criterion_main, Criterion};

use broscript::host::Engine;
use broscript::pipeline::{run_http_analysis_governed, Governance, ParserStack};
use hilti::host::BuildOptions;
use hilti::passes::OptLevel;
use hilti::value::Value;
use hilti::Program;
use hilti_rt::telemetry::Telemetry;
use netpkt::synth::{http_trace, SynthConfig};

const FIB: &str = bench::experiments::FIB_HLT;

fn build_fib() -> Program {
    Program::from_sources_opts(&[FIB], OptLevel::Full, BuildOptions::default())
        .expect("kernel builds")
}

fn bench_engine_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.bench_function("engine_off", |b| {
        let mut p = build_fib();
        b.iter(|| p.run("Fib::fib", &[Value::Int(18)]).expect("run"))
    });
    group.bench_function("engine_on", |b| {
        let mut p = build_fib();
        let t = Telemetry::new();
        p.context_mut().set_telemetry(&t);
        b.iter(|| p.run("Fib::fib", &[Value::Int(18)]).expect("run"))
    });
    group.finish();
}

fn bench_pipeline_overhead(c: &mut Criterion) {
    let trace = http_trace(&SynthConfig::new(77, 20));
    let mut group = c.benchmark_group("telemetry_overhead");
    for (name, telemetry) in [("pipeline_off", false), ("pipeline_on", true)] {
        let gov = Governance {
            telemetry,
            ..Governance::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                run_http_analysis_governed(&trace, ParserStack::Binpac, Engine::Compiled, &gov)
                    .expect("analysis run")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_overhead, bench_pipeline_overhead
}
criterion_main!(benches);
