//! E3 — stateful firewall (§6.3): HILTI-compiled rule matching vs the
//! plain-Rust reference, per packet stream.

use criterion::{criterion_group, criterion_main, Criterion};

use hilti::passes::OptLevel;
use hilti_firewall::{HiltiFirewall, ReferenceFirewall, Rule};
use hilti_rt::addr::Addr;
use hilti_rt::time::Time;

fn rules() -> Vec<Rule> {
    vec![
        Rule::new("10.2.0.0/16", "8.8.8.0/24", true).expect("rule"),
        Rule::new("10.2.3.0/24", "8.8.8.0/24", false).expect("rule"),
        Rule::new("8.8.8.0/24", "10.2.0.0/16", false).expect("rule"),
    ]
}

fn stream(n: usize) -> Vec<(Time, Addr, Addr)> {
    (0..n)
        .map(|i| {
            (
                Time::from_secs(i as u64),
                Addr::v4(10, 2, (i % 5) as u8, (i % 9) as u8 + 1),
                Addr::v4(8, 8, 8, (i % 7) as u8 + 1),
            )
        })
        .collect()
}

fn bench_firewall(c: &mut Criterion) {
    let pkts = stream(500);
    let mut group = c.benchmark_group("firewall");

    group.bench_function("hilti_compiled", |b| {
        let mut fw = HiltiFirewall::compile(&rules(), OptLevel::Full).expect("firewall");
        b.iter(|| {
            let mut n = 0u64;
            for (t, s, d) in &pkts {
                n += u64::from(fw.match_packet(*t, *s, *d).expect("verdict"));
            }
            n
        })
    });

    group.bench_function("reference_rust", |b| {
        let mut fw = ReferenceFirewall::new(&rules());
        b.iter(|| {
            let mut n = 0u64;
            for (t, s, d) in &pkts {
                n += u64::from(fw.match_packet(*t, *s, *d));
            }
            n
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_firewall
}
criterion_main!(benches);
