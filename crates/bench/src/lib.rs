//! # bench — the evaluation harness (§6 of the paper)
//!
//! One function per experiment, each regenerating a table or figure of the
//! paper's evaluation on the synthetic workloads (see DESIGN.md for the
//! experiment index E1–E9 and ablations A1–A3). The `repro` binary prints
//! the paper-reported values next to the measured ones; the Criterion
//! benches under `benches/` measure the same code paths with statistical
//! rigor.

pub mod artifacts;
pub mod experiments;

pub use experiments::*;
