//! Machine-readable artifacts for the repro harness.
//!
//! The `repro` binary prints the paper-style comparison to stdout; this
//! module renders the same measurements as JSON documents — one per
//! figure/table — so CI and plotting scripts consume exactly the numbers
//! the console showed. The schema is hand-rolled on top of
//! [`hilti_rt::telemetry::json`] (the repo takes no serde dependency) and
//! every document is validated before it is returned.
//!
//! Artifact → evaluation mapping:
//!
//! | file          | reproduces | content                                    |
//! |---------------|------------|--------------------------------------------|
//! | `fig9.json`   | Figure 9   | parser CPU breakdown per component         |
//! | `fig10.json`  | Figure 10  | script-engine CPU breakdown per component  |
//! | `table2.json` | Table 2    | Std vs BinPAC++ log agreement              |
//! | `table3.json` | Table 3    | interpreter vs compiled log agreement      |
//!
//! Component keys are the snake_cased [`Component`] variants:
//! `protocol_parsing`, `script_execution`, `glue`, `other` — all four are
//! always present, so downstream scripts never need existence checks.

use std::fmt::Write as _;

use broscript::pipeline::AnalysisResult;
use hilti_rt::profile::Component;
use hilti_rt::telemetry::json;

use crate::experiments::{
    table_rows_dns, table_rows_http, total_ns, EngineComparison, ParserComparison, TableRow,
};

/// Stable JSON key for a profiler component.
pub fn component_key(c: Component) -> &'static str {
    match c {
        Component::ProtocolParsing => "protocol_parsing",
        Component::ScriptExecution => "script_execution",
        Component::Glue => "glue",
        Component::Other => "other",
    }
}

/// One side of a breakdown figure: total plus per-component ns and share.
fn breakdown_json(r: &AnalysisResult) -> String {
    let total = total_ns(r).max(1);
    let mut s = String::from("{");
    let _ = write!(s, "\"total_ns\":{total},\"components\":{{");
    for (i, c) in Component::ALL.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let ns = r.profiler.total(*c);
        let _ = write!(
            s,
            "{}:{{\"ns\":{ns},\"pct\":{:.2}}}",
            json::quote(component_key(*c)),
            ns as f64 / total as f64 * 100.0
        );
    }
    s.push_str("}}");
    s
}

fn ratio(num: u64, den: u64) -> f64 {
    num as f64 / den.max(1) as f64
}

/// Figure 9: parser CPU time by component, Standard vs BinPAC++ stacks.
pub fn fig9_json(http: &ParserComparison, dns: &ParserComparison) -> String {
    let mut s =
        String::from("{\"schema\":\"hilti.repro.fig9.v1\",\"figure\":\"9\",\"protocols\":{");
    for (i, (proto, c)) in [("http", http), ("dns", dns)].iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{}:{{\"standard\":{},\"binpac\":{},\"parsing_ratio_pac_over_std\":{:.4}}}",
            json::quote(proto),
            breakdown_json(&c.std_result),
            breakdown_json(&c.pac_result),
            ratio(
                c.pac_result.profiler.total(Component::ProtocolParsing),
                c.std_result.profiler.total(Component::ProtocolParsing)
            )
        );
    }
    s.push_str("}}");
    finish(s)
}

/// Figure 10: script-execution CPU time by component, interpreter vs
/// compiled scripts.
pub fn fig10_json(http: &EngineComparison, dns: &EngineComparison) -> String {
    let mut s =
        String::from("{\"schema\":\"hilti.repro.fig10.v1\",\"figure\":\"10\",\"protocols\":{");
    for (i, (proto, c)) in [("http", http), ("dns", dns)].iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{}:{{\"interpreted\":{},\"compiled\":{},\"script_ratio_hlt_over_std\":{:.4}}}",
            json::quote(proto),
            breakdown_json(&c.interp_result),
            breakdown_json(&c.compiled_result),
            ratio(
                c.compiled_result.profiler.total(Component::ScriptExecution),
                c.interp_result.profiler.total(Component::ScriptExecution)
            )
        );
    }
    s.push_str("}}");
    finish(s)
}

fn rows_json(rows: &[TableRow]) -> String {
    let mut s = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"log\":{},\"lines_a\":{},\"lines_b\":{},\"identical_pct\":{:.2}}}",
            json::quote(row.log),
            row.total_a,
            row.total_b,
            row.identical_pct
        );
    }
    s.push(']');
    s
}

/// Table 2: Std vs BinPAC++ parser log agreement.
pub fn table2_json(http: &ParserComparison, dns: &ParserComparison) -> String {
    let mut rows = table_rows_http(http);
    rows.extend(table_rows_dns(dns));
    let s = format!(
        "{{\"schema\":\"hilti.repro.table2.v1\",\"table\":\"2\",\"sides\":[\"standard\",\"binpac\"],\"rows\":{}}}",
        rows_json(&rows)
    );
    finish(s)
}

/// Table 3: interpreter vs compiled script log agreement.
pub fn table3_json(http: &EngineComparison, dns: &EngineComparison) -> String {
    let rows = [
        (
            "http.log",
            &http.interp_result.http_log,
            &http.compiled_result.http_log,
            &http.http_agreement,
        ),
        (
            "files.log",
            &http.interp_result.files_log,
            &http.compiled_result.files_log,
            &http.files_agreement,
        ),
        (
            "dns.log",
            &dns.interp_result.dns_log,
            &dns.compiled_result.dns_log,
            &dns.dns_agreement,
        ),
    ]
    .map(|(log, a, b, ag)| TableRow {
        log,
        total_a: a.len(),
        total_b: b.len(),
        identical_pct: ag.percent(),
    });
    let s = format!(
        "{{\"schema\":\"hilti.repro.table3.v1\",\"table\":\"3\",\"sides\":[\"interpreted\",\"compiled\"],\"rows\":{}}}",
        rows_json(&rows)
    );
    finish(s)
}

/// Validates a rendered document; a malformed artifact is a bug, not data.
fn finish(s: String) -> String {
    if let Err(e) = json::validate(&s) {
        panic!("internal error: artifact JSON failed validation: {e}\n{s}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{
        dns_workload, engine_comparison_dns, engine_comparison_http, http_workload,
        parser_comparison_dns, parser_comparison_http,
    };

    #[test]
    fn fig9_and_table2_render_and_validate() {
        let http = http_workload();
        let dns = dns_workload();
        let ch = parser_comparison_http(&http).unwrap();
        let cd = parser_comparison_dns(&dns).unwrap();
        let fig9 = fig9_json(&ch, &cd);
        json::validate(&fig9).unwrap();
        for key in ["protocol_parsing", "script_execution", "glue", "other"] {
            assert!(
                fig9.contains(&format!("\"{key}\"")),
                "{key} missing\n{fig9}"
            );
        }
        assert!(fig9.contains("\"http\"") && fig9.contains("\"dns\""));
        let t2 = table2_json(&ch, &cd);
        json::validate(&t2).unwrap();
        assert!(t2.contains("\"http.log\"") && t2.contains("\"dns.log\""));
    }

    #[test]
    fn fig10_and_table3_render_and_validate() {
        let http = http_workload();
        let dns = dns_workload();
        let eh = engine_comparison_http(&http).unwrap();
        let ed = engine_comparison_dns(&dns).unwrap();
        let fig10 = fig10_json(&eh, &ed);
        json::validate(&fig10).unwrap();
        assert!(fig10.contains("\"interpreted\"") && fig10.contains("\"compiled\""));
        let t3 = table3_json(&eh, &ed);
        json::validate(&t3).unwrap();
        assert!(t3.contains("\"files.log\""));
    }

    #[test]
    fn component_totals_in_fig9_match_the_profiler() {
        // The artifact must carry exactly the numbers the console printed:
        // per-component ns taken straight from the profiler snapshot.
        let http = http_workload();
        let c = parser_comparison_http(&http).unwrap();
        let doc = breakdown_json(&c.std_result);
        for comp in Component::ALL {
            let ns = c.std_result.profiler.total(comp);
            let needle = format!("\"{}\":{{\"ns\":{ns},", component_key(comp));
            assert!(doc.contains(&needle), "{needle} not in {doc}");
        }
    }
}
