//! The experiment implementations (E1–E9, A1–A3; see DESIGN.md).

use std::time::Instant;

use hilti::fiber::{Fiber, Step};
use hilti::passes::OptLevel;
use hilti::threads::ThreadPool;
use hilti::value::Value;
use hilti_rt::error::RtResult;
use hilti_rt::profile::Component;

use broscript::host::Engine;
use broscript::pipeline::{run_dns_analysis, run_http_analysis, AnalysisResult, ParserStack};
use netpkt::logs::{agreement, Agreement};
use netpkt::pcap::RawPacket;
use netpkt::synth::{dns_trace, http_trace, SynthConfig};

/// Default workload sizes (scale with the `REPRO_SCALE` env var).
pub fn scale() -> usize {
    std::env::var("REPRO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// The standard HTTP workload.
pub fn http_workload() -> Vec<RawPacket> {
    http_trace(&SynthConfig::new(0xB1FF, 60 * scale()))
}

/// The standard DNS workload.
pub fn dns_workload() -> Vec<RawPacket> {
    dns_trace(&SynthConfig::new(0xD0_5E, 1200 * scale()))
}

// ---------------------------------------------------------------------------
// E1: fiber micro-benchmark (§5)

pub struct FiberStats {
    /// Resume+suspend round trips per second on an existing fiber.
    pub switches_per_sec: f64,
    /// Full create → run → finish cycles per second.
    pub create_cycles_per_sec: f64,
}

/// Reproduces the §5 fiber micro-benchmark (paper: ~18 M switches/s and
/// ~5 M create cycles/s with setcontext on a Xeon 5570; our fibers are VM
/// frame stacks, so absolute numbers differ while the shape — switching
/// much cheaper than creation+teardown being in the same order — holds).
pub fn fiber_microbench(iterations: u64) -> RtResult<FiberStats> {
    let src = r#"
module M
void spin(int<64> n) {
    local int<64> i
    local bool more
    i = assign 0
loop:
    yield
    i = int.add i 1
    more = int.lt i n
    if.else more loop done
done:
    return
}
void nop() {
    return
}
"#;
    let mut prog = hilti::Program::from_source(src)?;

    // Switch benchmark: one fiber yielding `iterations` times.
    let mut fiber = Fiber::new("M::spin", vec![Value::Int(iterations as i64)]);
    let start = Instant::now();
    while let Step::Suspended = prog.resume(&mut fiber)? {}
    let switch_elapsed = start.elapsed().as_secs_f64();

    // Create/run/delete benchmark.
    let create_iters = iterations / 4;
    let start = Instant::now();
    for _ in 0..create_iters {
        let mut f = Fiber::new("M::nop", vec![]);
        match prog.resume(&mut f)? {
            Step::Finished(_) => {}
            Step::Suspended => unreachable!("nop never suspends"),
        }
    }
    let create_elapsed = start.elapsed().as_secs_f64();

    Ok(FiberStats {
        switches_per_sec: iterations as f64 / switch_elapsed,
        create_cycles_per_sec: create_iters as f64 / create_elapsed,
    })
}

// ---------------------------------------------------------------------------
// E2: BPF filter (§6.2)

pub struct BpfResult {
    pub packets: usize,
    pub matches_classic: u64,
    pub matches_hilti: u64,
    pub ns_classic: u64,
    pub ns_hilti: u64,
    /// HILTI cycles over classic-BPF cycles (paper: 1.70×).
    pub ratio: f64,
    pub match_fraction: f64,
}

/// §6.2: the same filter compiled to classic BPF (interpreted) and to
/// HILTI (compiled VM); verifies match parity and compares time.
pub fn bpf_experiment(trace: &[RawPacket]) -> RtResult<BpfResult> {
    // Like the paper, pick addresses from the trace so ≈2% of packets match.
    let filter = "host 10.1.0.1 or src net 93.184.0.0/29";
    let expr = hilti_bpf::parse_filter(filter)?;
    let classic = hilti_bpf::classic::compile_classic(&expr)?;
    let mut hilti_f = hilti_bpf::HiltiFilter::compile(&expr, OptLevel::Full)?;

    // Repeat passes so the (fast) classic interpreter accumulates
    // measurable time.
    let reps = (200_000 / trace.len().max(1)).max(1) as u64;
    let start = Instant::now();
    let mut matches_classic = 0u64;
    for _ in 0..reps {
        for p in trace {
            matches_classic += u64::from(hilti_bpf::classic::bpf_filter(&classic, &p.data));
        }
    }
    let ns_classic = start.elapsed().as_nanos() as u64;

    let start = Instant::now();
    let mut matches_hilti = 0u64;
    for _ in 0..reps {
        for p in trace {
            matches_hilti += u64::from(hilti_f.matches(&p.data)?);
        }
    }
    let ns_hilti = start.elapsed().as_nanos() as u64;

    let matches_classic = matches_classic / reps;
    let matches_hilti = matches_hilti / reps;

    Ok(BpfResult {
        packets: trace.len(),
        matches_classic,
        matches_hilti,
        ns_classic,
        ns_hilti,
        ratio: ns_hilti as f64 / ns_classic.max(1) as f64,
        match_fraction: matches_classic as f64 / trace.len().max(1) as f64,
    })
}

// ---------------------------------------------------------------------------
// E3: stateful firewall (§6.3)

pub struct FirewallResult {
    pub packets: usize,
    pub matches_hilti: u64,
    pub matches_reference: u64,
    pub disagreements: u64,
    pub ns_hilti: u64,
    pub ns_reference: u64,
}

/// §6.3: the HILTI firewall vs the independent reference implementation on
/// a (time, src, dst) stream derived from the DNS trace.
pub fn firewall_experiment(trace: &[RawPacket]) -> RtResult<FirewallResult> {
    use hilti_firewall::{HiltiFirewall, ReferenceFirewall, Rule};
    let rules = vec![
        Rule::new("10.2.0.0/16", "8.8.8.0/24", true)?,
        Rule::new("10.2.3.0/24", "8.8.8.0/24", false)?,
        Rule::new("8.8.8.0/24", "10.2.0.0/16", false)?,
    ];
    let mut fw = HiltiFirewall::compile(&rules, OptLevel::Full)?;
    let mut rf = ReferenceFirewall::new(&rules);

    // Extract (ts, src, dst) like the paper's ipsumdump step.
    let mut stream = Vec::new();
    for p in trace {
        if let Ok(d) = netpkt::decode::decode_ethernet(p) {
            stream.push((p.ts, d.src, d.dst));
        }
    }

    let start = Instant::now();
    let mut matches_hilti = 0u64;
    let mut verdicts = Vec::with_capacity(stream.len());
    for (ts, s, d) in &stream {
        let v = fw.match_packet(*ts, *s, *d)?;
        matches_hilti += u64::from(v);
        verdicts.push(v);
    }
    let ns_hilti = start.elapsed().as_nanos() as u64;

    let start = Instant::now();
    let mut matches_reference = 0u64;
    let mut disagreements = 0u64;
    for ((ts, s, d), hv) in stream.iter().zip(&verdicts) {
        let v = rf.match_packet(*ts, *s, *d);
        matches_reference += u64::from(v);
        disagreements += u64::from(v != *hv);
    }
    let ns_reference = start.elapsed().as_nanos() as u64;

    Ok(FirewallResult {
        packets: stream.len(),
        matches_hilti,
        matches_reference,
        disagreements,
        ns_hilti,
        ns_reference,
    })
}

// ---------------------------------------------------------------------------
// E4/E5: protocol parsing — Table 2 and Figure 9

pub struct ParserComparison {
    pub std_result: AnalysisResult,
    pub pac_result: AnalysisResult,
    pub http_agreement: Agreement,
    pub files_agreement: Agreement,
    pub dns_agreement: Agreement,
}

/// Runs both parser stacks (standard handwritten vs BinPAC++/HILTI) with
/// the interpreted script engine and compares logs (Table 2) and component
/// times (Figure 9).
pub fn parser_comparison_http(trace: &[RawPacket]) -> RtResult<ParserComparison> {
    let std_result = run_http_analysis(trace, ParserStack::Standard, Engine::Interpreted)?;
    let pac_result = run_http_analysis(trace, ParserStack::Binpac, Engine::Interpreted)?;
    Ok(ParserComparison {
        http_agreement: agreement(&std_result.http_log, &pac_result.http_log),
        files_agreement: agreement(&std_result.files_log, &pac_result.files_log),
        dns_agreement: agreement(&std_result.dns_log, &pac_result.dns_log),
        std_result,
        pac_result,
    })
}

pub fn parser_comparison_dns(trace: &[RawPacket]) -> RtResult<ParserComparison> {
    let std_result = run_dns_analysis(trace, ParserStack::Standard, Engine::Interpreted)?;
    let pac_result = run_dns_analysis(trace, ParserStack::Binpac, Engine::Interpreted)?;
    Ok(ParserComparison {
        http_agreement: agreement(&std_result.http_log, &pac_result.http_log),
        files_agreement: agreement(&std_result.files_log, &pac_result.files_log),
        dns_agreement: agreement(&std_result.dns_log, &pac_result.dns_log),
        std_result,
        pac_result,
    })
}

// ---------------------------------------------------------------------------
// E6/E7: script engines — Table 3 and Figure 10

pub struct EngineComparison {
    pub interp_result: AnalysisResult,
    pub compiled_result: AnalysisResult,
    pub http_agreement: Agreement,
    pub files_agreement: Agreement,
    pub dns_agreement: Agreement,
}

/// Runs the standard parser stack with both script engines and compares
/// logs (Table 3) and component times (Figure 10).
pub fn engine_comparison_http(trace: &[RawPacket]) -> RtResult<EngineComparison> {
    let interp_result = run_http_analysis(trace, ParserStack::Standard, Engine::Interpreted)?;
    let compiled_result = run_http_analysis(trace, ParserStack::Standard, Engine::Compiled)?;
    Ok(EngineComparison {
        http_agreement: agreement(&interp_result.http_log, &compiled_result.http_log),
        files_agreement: agreement(&interp_result.files_log, &compiled_result.files_log),
        dns_agreement: agreement(&interp_result.dns_log, &compiled_result.dns_log),
        interp_result,
        compiled_result,
    })
}

pub fn engine_comparison_dns(trace: &[RawPacket]) -> RtResult<EngineComparison> {
    let interp_result = run_dns_analysis(trace, ParserStack::Standard, Engine::Interpreted)?;
    let compiled_result = run_dns_analysis(trace, ParserStack::Standard, Engine::Compiled)?;
    Ok(EngineComparison {
        http_agreement: agreement(&interp_result.http_log, &compiled_result.http_log),
        files_agreement: agreement(&interp_result.files_log, &compiled_result.files_log),
        dns_agreement: agreement(&interp_result.dns_log, &compiled_result.dns_log),
        interp_result,
        compiled_result,
    })
}

/// Renders a Figure 9/10-style component breakdown row.
pub fn breakdown(r: &AnalysisResult) -> Vec<(Component, u64)> {
    r.profiler.snapshot()
}

// ---------------------------------------------------------------------------
// E8: Fibonacci baseline (§6.5)

pub struct FibResult {
    pub n: i64,
    pub value: i64,
    pub ns_interpreted: u64,
    pub ns_compiled: u64,
    pub speedup: f64,
    /// Compiled engine on the plain HILTI kernel, specializer on.
    pub ns_vm_spec: u64,
    /// Same kernel with the bytecode specialization tier disabled.
    pub ns_vm_nospec: u64,
    /// `ns_vm_nospec / ns_vm_spec` — what the typed fast tier buys.
    pub spec_speedup: f64,
}

/// The HILTI-level Fibonacci kernel, used to isolate VM dispatch cost for
/// the specializer ablation (no script-layer glue in the measurement).
pub const FIB_HLT: &str = r#"
module Fib
int<64> fib(int<64> n) {
    local bool base
    local int<64> a
    local int<64> b
    base = int.lt n 2
    if.else base ret rec
ret:
    return n
rec:
    a = int.sub n 1
    a = call fib (a)
    b = int.sub n 2
    b = call fib (b)
    a = int.add a b
    return a
}
"#;

fn hilti_fib(specialize: bool) -> RtResult<hilti::Program> {
    hilti::Program::from_sources_opts(
        &[FIB_HLT],
        hilti::passes::OptLevel::Full,
        hilti::host::BuildOptions {
            specialize,
            ..Default::default()
        },
    )
}

/// The §6.5 Fibonacci benchmark: "the compiled HILTI version solves this
/// task orders of magnitude faster than Bro's standard interpreter".
/// Also measures the bytecode-specialization ablation on the same kernel.
pub fn fib_experiment(n: i64) -> RtResult<FibResult> {
    use broscript::host::ScriptHost;
    use broscript::scripts::FIB_BRO;

    let mut interp = ScriptHost::new(&[FIB_BRO], Engine::Interpreted, None)?;
    let start = Instant::now();
    let vi = interp.call("fib", &[Value::Int(n)])?;
    let ns_interpreted = start.elapsed().as_nanos() as u64;

    let mut compiled = ScriptHost::new(&[FIB_BRO], Engine::Compiled, None)?;
    let start = Instant::now();
    let vc = compiled.call("fib", &[Value::Int(n)])?;
    let ns_compiled = start.elapsed().as_nanos() as u64;

    assert!(vi.equals(&vc), "engines disagree on fib({n})");

    // Dispatch-tier ablation: the same HILTI kernel with the typed
    // fast tier on and off (one warm-up run each, then the measurement).
    let mut spec_on = hilti_fib(true)?;
    let mut spec_off = hilti_fib(false)?;
    spec_on.run("Fib::fib", &[Value::Int(n.min(15))])?;
    spec_off.run("Fib::fib", &[Value::Int(n.min(15))])?;
    let start = Instant::now();
    let vs_on = spec_on.run("Fib::fib", &[Value::Int(n)])?;
    let ns_vm_spec = start.elapsed().as_nanos() as u64;
    let start = Instant::now();
    let vs_off = spec_off.run("Fib::fib", &[Value::Int(n)])?;
    let ns_vm_nospec = start.elapsed().as_nanos() as u64;
    assert!(
        vs_on.equals(&vs_off) && vs_on.equals(&vc),
        "specializer changed fib({n})"
    );

    Ok(FibResult {
        n,
        value: vc.as_int()?,
        ns_interpreted,
        ns_compiled,
        speedup: ns_interpreted as f64 / ns_compiled.max(1) as f64,
        ns_vm_spec,
        ns_vm_nospec,
        spec_speedup: ns_vm_nospec as f64 / ns_vm_spec.max(1) as f64,
    })
}

// ---------------------------------------------------------------------------
// E9: threaded DNS load-balancing (§6.6)

pub struct ThreadsResult {
    pub workers: usize,
    pub datagrams_sent: u64,
    /// Datagrams handled (parsed OK or rejected as non-DNS crud).
    pub datagrams_parsed: u64,
    /// Crud datagrams the parser rejected.
    pub datagrams_failed: u64,
    pub per_worker: Vec<u64>,
    pub ns_elapsed: u64,
}

/// §6.6: "the same HILTI parsing code ... supports both the threaded and
/// non-threaded setups": the BinPAC++ DNS parser runs on N hardware
/// workers, datagrams placed by flow hash, and every datagram is parsed
/// exactly once.
pub fn threads_experiment(trace: &[RawPacket], workers: usize) -> RtResult<ThreadsResult> {
    // The DNS grammar, minus host hooks (workers have no event sinks),
    // plus a per-thread counter and driver.
    let mut grammar = binpac::dns::dns_grammar();
    for u in &mut grammar.units {
        u.done_hook = None;
    }
    let grammar = grammar.raw(
        r#"
global int<64> parsed = 0
global int<64> failed = 0

void parse_datagram(ref<bytes> data) {
    local iterator<bytes> it
    local any r
    it = bytes.begin data
    try {
        r = call parse_Message (data, it)
        parsed = int.add parsed 1
    } catch ( exception e ) {
        failed = int.add failed 1
        return
    }
}

void report() {
    local string line
    line = string.fmt "{} {}" parsed failed
    call Hilti::print line
}
"#,
    );
    let src = binpac::codegen::generate(&grammar)?;
    let factory = move || {
        let p = hilti::Program::from_sources(&[&src], OptLevel::Full)
            .expect("grammar compiles identically on every worker");
        p.compiled().clone()
    };

    let pool = ThreadPool::new(factory, workers);
    // Exclude worker startup (each compiles its program image) from the
    // measured window.
    pool.sync();
    let mut sent = 0u64;
    let start = Instant::now();
    for p in trace {
        let Ok(d) = netpkt::decode::decode_ethernet(p) else {
            continue;
        };
        if d.payload.is_empty() {
            continue;
        }
        // Hash-based placement: both directions of a flow to one vthread.
        let vthread = hilti_rt::hashutil::flow_hash(d.src, d.src_port(), d.dst, d.dst_port());
        sent += 1;
        pool.schedule(
            vthread,
            "Dns::parse_datagram",
            &[Value::Bytes(hilti_rt::Bytes::frozen_from_slice(&d.payload))],
        )?;
    }
    // Ask each worker to report its thread-local total.
    for w in 0..workers as u64 {
        pool.schedule(w, "Dns::report", &[])?;
    }
    let reports = pool.shutdown();
    let ns_elapsed = start.elapsed().as_nanos() as u64;
    let mut per_worker: Vec<u64> = Vec::new();
    let mut failed = 0u64;
    for line in reports.iter().flat_map(|r| r.output.iter()) {
        let mut parts = line.split_whitespace();
        per_worker.push(parts.next().and_then(|x| x.parse().ok()).unwrap_or(0));
        failed += parts.next().and_then(|x| x.parse().ok()).unwrap_or(0);
    }
    Ok(ThreadsResult {
        workers,
        datagrams_sent: sent,
        datagrams_parsed: per_worker.iter().sum::<u64>() + failed,
        datagrams_failed: failed,
        per_worker,
        ns_elapsed,
    })
}

// ---------------------------------------------------------------------------
// A1: optimizer ablation

pub struct OptAblation {
    pub stats_full: hilti::passes::PassStats,
    pub ns_none: u64,
    pub ns_full: u64,
    pub speedup: f64,
}

/// Measures the §6.6 "missing optimizations" (constant folding, CSE, DCE,
/// jump threading) by running the same program with passes off and on.
pub fn optimizer_ablation() -> RtResult<OptAblation> {
    // A folding-friendly arithmetic kernel.
    let src = r#"
module M
int<64> kernel(int<64> n) {
    local int<64> i
    local int<64> acc
    local int<64> a
    local int<64> b
    local int<64> c
    local bool more
    i = assign 0
    acc = assign 0
loop:
    a = int.add 40 2
    b = int.mul a 10
    c = int.mul a 10
    c = int.add b c
    acc = int.add acc c
    acc = int.add acc i
    i = int.add i 1
    more = int.lt i n
    if.else more loop done
done:
    return acc
}
"#;
    let n = Value::Int(300_000);
    let mut p_none = hilti::Program::from_sources(&[src], OptLevel::None)?;
    let mut p_full = hilti::Program::from_sources(&[src], OptLevel::Full)?;
    // Warm both paths before timing (allocator/cache effects dominate at
    // millisecond scales otherwise).
    p_none.run("M::kernel", &[Value::Int(1_000)])?;
    p_full.run("M::kernel", &[Value::Int(1_000)])?;

    let start = Instant::now();
    let r0 = p_none.run("M::kernel", std::slice::from_ref(&n))?;
    let ns_none = start.elapsed().as_nanos() as u64;

    let start = Instant::now();
    let r1 = p_full.run("M::kernel", &[n])?;
    let ns_full = start.elapsed().as_nanos() as u64;
    assert!(r0.equals(&r1), "optimization changed semantics");

    Ok(OptAblation {
        stats_full: p_full.pass_stats(),
        ns_none,
        ns_full,
        speedup: ns_none as f64 / ns_full.max(1) as f64,
    })
}

// ---------------------------------------------------------------------------
// A2: classifier backends

pub struct ClassifierAblation {
    pub rules: usize,
    pub lookups: usize,
    pub ns_linear: u64,
    pub ns_indexed: u64,
    pub speedup: f64,
}

/// §5's "linked list ... does not scale with larger numbers of rules":
/// linear scan vs field-indexed backend on growing rule sets.
pub fn classifier_ablation(n_rules: usize, n_lookups: usize) -> RtResult<ClassifierAblation> {
    use hilti_rt::addr::Addr;
    use hilti_rt::classifier::{Backend, Classifier, FieldMatcher, FieldValue};

    let build = |backend: Backend| -> RtResult<Classifier<u32>> {
        let mut c = Classifier::with_backend(backend);
        for i in 0..n_rules {
            let net: hilti_rt::addr::Network =
                format!("10.{}.{}.0/24", (i / 250) % 250, i % 250).parse()?;
            c.add(
                vec![FieldMatcher::Net(net), FieldMatcher::Wildcard],
                i as u32,
            )?;
        }
        c.compile();
        Ok(c)
    };
    let linear = build(Backend::LinearScan)?;
    let indexed = build(Backend::FieldIndexed)?;

    let probes: Vec<[FieldValue; 2]> = (0..n_lookups)
        .map(|i| {
            [
                FieldValue::Addr(Addr::v4(
                    10,
                    ((i * 7) / 250 % 250) as u8,
                    ((i * 7) % 250) as u8,
                    1,
                )),
                FieldValue::Addr(Addr::v4(192, 168, 0, 1)),
            ]
        })
        .collect();

    let start = Instant::now();
    let mut acc_l = 0u64;
    for p in &probes {
        acc_l += linear.matches(p.as_slice()).map(u64::from).unwrap_or(0);
    }
    let ns_linear = start.elapsed().as_nanos() as u64;

    let start = Instant::now();
    let mut acc_i = 0u64;
    for p in &probes {
        acc_i += indexed.matches(p.as_slice()).map(u64::from).unwrap_or(0);
    }
    let ns_indexed = start.elapsed().as_nanos() as u64;
    assert_eq!(acc_l, acc_i, "backends disagree");

    Ok(ClassifierAblation {
        rules: n_rules,
        lookups: n_lookups,
        ns_linear,
        ns_indexed,
        speedup: ns_linear as f64 / ns_indexed.max(1) as f64,
    })
}

// ---------------------------------------------------------------------------
// A3: regexp incremental matching

pub struct RegexpAblation {
    pub bytes_matched: usize,
    pub ns_whole: u64,
    pub ns_chunked: u64,
    /// Chunked (incremental) cost over whole-buffer cost.
    pub incremental_overhead: f64,
}

/// Incremental (chunk-at-a-time) matching vs whole-buffer matching — the
/// cost of suspendability that §6.4 notes BinPAC++ always pays on UDP.
pub fn regexp_ablation(repeats: usize) -> RtResult<RegexpAblation> {
    use hilti_rt::regexp::Regex;
    let re = Regex::new("[A-Z]+ [^ ]+ HTTP\\/[0-9]\\.[0-9]\\r\\n")?;
    let line = b"GET /index/with/a/moderately/long/path?x=123456 HTTP/1.1\r\n";

    let start = Instant::now();
    let mut total = 0usize;
    for _ in 0..repeats {
        if let hilti_rt::regexp::MatchVerdict::Match { len, .. } = re.match_prefix(line) {
            total += len as usize;
        }
    }
    let ns_whole = start.elapsed().as_nanos() as u64;

    let start = Instant::now();
    let mut total_c = 0usize;
    for _ in 0..repeats {
        let mut m = re.matcher();
        for chunk in line.chunks(7) {
            m.feed(chunk);
        }
        if let hilti_rt::regexp::MatchVerdict::Match { len, .. } = m.finish() {
            total_c += len as usize;
        }
    }
    let ns_chunked = start.elapsed().as_nanos() as u64;
    assert_eq!(total, total_c);

    Ok(RegexpAblation {
        bytes_matched: total,
        ns_whole,
        ns_chunked,
        incremental_overhead: ns_chunked as f64 / ns_whole.max(1) as f64,
    })
}

// ---------------------------------------------------------------------------
// Helpers for Table 2 / Table 3 style reporting

pub struct TableRow {
    pub log: &'static str,
    pub total_a: usize,
    pub total_b: usize,
    pub identical_pct: f64,
}

pub fn table_rows_http(c: &ParserComparison) -> Vec<TableRow> {
    vec![
        TableRow {
            log: "http.log",
            total_a: c.std_result.http_log.len(),
            total_b: c.pac_result.http_log.len(),
            identical_pct: c.http_agreement.percent(),
        },
        TableRow {
            log: "files.log",
            total_a: c.std_result.files_log.len(),
            total_b: c.pac_result.files_log.len(),
            identical_pct: c.files_agreement.percent(),
        },
    ]
}

pub fn table_rows_dns(c: &ParserComparison) -> Vec<TableRow> {
    vec![TableRow {
        log: "dns.log",
        total_a: c.std_result.dns_log.len(),
        total_b: c.pac_result.dns_log.len(),
        identical_pct: c.dns_agreement.percent(),
    }]
}

/// Formats nanoseconds as milliseconds with 1 decimal.
pub fn ms(ns: u64) -> String {
    format!("{:.1}ms", ns as f64 / 1e6)
}

/// Sum of all components in a breakdown.
pub fn total_ns(r: &AnalysisResult) -> u64 {
    r.profiler.snapshot().iter().map(|(_, ns)| ns).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_http() -> Vec<RawPacket> {
        http_trace(&SynthConfig::new(31, 8))
    }

    fn small_dns() -> Vec<RawPacket> {
        dns_trace(&SynthConfig::new(32, 60))
    }

    #[test]
    fn e1_fibers_run() {
        let s = fiber_microbench(2_000).unwrap();
        assert!(s.switches_per_sec > 1_000.0);
        assert!(s.create_cycles_per_sec > 1_000.0);
    }

    #[test]
    fn e2_bpf_match_parity() {
        let r = bpf_experiment(&small_http()).unwrap();
        assert_eq!(r.matches_classic, r.matches_hilti);
        assert!(r.matches_classic > 0, "filter should match something");
        assert!(r.match_fraction < 0.6, "filter should be selective");
    }

    #[test]
    fn e3_firewall_agreement() {
        let r = firewall_experiment(&small_dns()).unwrap();
        assert_eq!(r.disagreements, 0);
        assert_eq!(r.matches_hilti, r.matches_reference);
        assert!(r.packets > 50);
    }

    #[test]
    fn e4_table2_http_rows() {
        let c = parser_comparison_http(&small_http()).unwrap();
        let rows = table_rows_http(&c);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].identical_pct > 90.0, "{}", rows[0].identical_pct);
        assert!(rows[0].total_a > 0);
    }

    #[test]
    fn e4_table2_dns_rows() {
        let c = parser_comparison_dns(&small_dns()).unwrap();
        let rows = table_rows_dns(&c);
        assert!(rows[0].identical_pct > 80.0, "{}", rows[0].identical_pct);
        assert!(rows[0].total_a > 20);
    }

    #[test]
    fn e6_table3_http() {
        let c = engine_comparison_http(&small_http()).unwrap();
        assert_eq!(c.http_agreement.percent(), 100.0);
        assert_eq!(c.files_agreement.percent(), 100.0);
    }

    #[test]
    fn e8_fib_compiled_faster() {
        let r = fib_experiment(17).unwrap();
        assert_eq!(r.value, 1597);
        assert!(
            r.speedup > 1.0,
            "compiled should beat the interpreter: {:.2}x",
            r.speedup
        );
    }

    #[test]
    fn e9_threads_parse_everything_once() {
        let trace = small_dns();
        for workers in [1, 4] {
            let r = threads_experiment(&trace, workers).unwrap();
            assert_eq!(
                r.datagrams_parsed, r.datagrams_sent,
                "workers={workers}: every datagram parsed exactly once"
            );
            assert_eq!(r.per_worker.len(), workers);
        }
    }

    #[test]
    fn a1_optimizer_preserves_semantics() {
        let a = optimizer_ablation().unwrap();
        assert!(a.stats_full.total() > 0);
    }

    #[test]
    fn a2_classifier_backends_agree() {
        let a = classifier_ablation(200, 500).unwrap();
        assert_eq!(a.rules, 200);
    }

    #[test]
    fn a3_regexp_incremental_correct() {
        let a = regexp_ablation(200).unwrap();
        assert!(a.bytes_matched > 0);
    }
}
