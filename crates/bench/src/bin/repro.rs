//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage: `repro [--out DIR] [all|fibers|bpf|firewall|table2|fig9|table3|fig10|fib|threads|ablations ...]`
//!
//! Each section prints the paper-reported value next to the measured one.
//! Absolute numbers differ (the paper ran on real traces with an
//! LLVM-native backend; we run synthetic workloads on a bytecode VM — see
//! DESIGN.md), so the claims under reproduction are the *shapes*: parity
//! checks, who is faster, and rough factors. Set `REPRO_SCALE=N` to scale
//! workload sizes.
//!
//! With `--out DIR` (or `REPRO_OUT=DIR`), the figure/table sections also
//! write machine-readable JSON artifacts — `fig9.json`, `fig10.json`,
//! `table2.json`, `table3.json` — carrying exactly the numbers printed to
//! stdout (see [`bench::artifacts`] for the schema). Every document is
//! validated before it is written; a malformed artifact aborts the run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bench::*;
use hilti_rt::profile::Component;

/// Counting allocator: reproduces the §6.4 memory-allocation comparison
/// ("Bro performs about 47% more memory allocations [with the BinPAC++
/// DNS parser]; 19% more for HTTP").
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir: Option<PathBuf> = std::env::var_os("REPRO_OUT").map(PathBuf::from);
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(d) => out_dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("repro: --out needs a directory");
                    std::process::exit(2);
                }
            },
            section => selected.push(section.to_owned()),
        }
    }
    if selected.is_empty() {
        selected.push("all".to_owned());
    }
    let run = |name: &str| selected.iter().any(|s| s == "all" || s == name);

    println!("HILTI reproduction — evaluation (scale={})", scale());
    println!("==========================================================");

    if run("fibers") {
        fibers();
    }
    if run("bpf") {
        bpf();
    }
    if run("firewall") {
        firewall();
    }
    if run("table2") || run("fig9") {
        parsers(run("table2"), run("fig9"), out_dir.as_deref());
    }
    if run("table3") || run("fig10") {
        engines(run("table3"), run("fig10"), out_dir.as_deref());
    }
    if run("fib") {
        fib();
    }
    if run("threads") {
        threads();
    }
    if run("allocs") {
        allocs();
    }
    if run("ablations") {
        ablations();
    }
}

/// Writes one validated artifact, creating the directory on first use.
fn write_artifact(dir: &Path, name: &str, doc: &str) {
    let path = dir.join(name);
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, doc)) {
        eprintln!("repro: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("  wrote {}", path.display());
}

fn fibers() {
    println!("\n[E1] Fiber micro-benchmark (§5)");
    println!("  paper: ~18M switches/s, ~5M create-run-delete cycles/s (setcontext, Xeon 5570)");
    let s = fiber_microbench(200_000).expect("fiber benchmark");
    println!(
        "  measured: {:.2}M switches/s, {:.2}M create cycles/s (VM frame stacks)",
        s.switches_per_sec / 1e6,
        s.create_cycles_per_sec / 1e6
    );
    println!(
        "  shape: switching {} than create-run-delete (paper: 3.6x) -> {:.1}x",
        if s.switches_per_sec > s.create_cycles_per_sec {
            "cheaper"
        } else {
            "NOT cheaper (unexpected)"
        },
        s.switches_per_sec / s.create_cycles_per_sec
    );
}

fn bpf() {
    println!("\n[E2] Berkeley Packet Filter (§6.2)");
    println!("  paper: identical match counts; HILTI spends 1.70x the cycles of BPF");
    println!("         (1.35x excluding the C-stub overhead)");
    let trace = http_workload();
    let r = bpf_experiment(&trace).expect("bpf experiment");
    println!(
        "  measured: {} packets, matches classic={} hilti={} ({})",
        r.packets,
        r.matches_classic,
        r.matches_hilti,
        if r.matches_classic == r.matches_hilti {
            "IDENTICAL ✓"
        } else {
            "MISMATCH ✗"
        }
    );
    println!(
        "  measured: classic BPF {} | HILTI VM {} | ratio {:.2}x (match fraction {:.1}%)",
        ms(r.ns_classic),
        ms(r.ns_hilti),
        r.ratio,
        r.match_fraction * 100.0
    );
}

fn firewall() {
    println!("\n[E3] Stateful firewall (§6.3)");
    println!("  paper: same matches/non-matches as an independent reference implementation");
    let trace = dns_workload();
    let r = firewall_experiment(&trace).expect("firewall experiment");
    println!(
        "  measured: {} packets, hilti={} reference={} disagreements={} ({})",
        r.packets,
        r.matches_hilti,
        r.matches_reference,
        r.disagreements,
        if r.disagreements == 0 {
            "AGREE ✓"
        } else {
            "DISAGREE ✗"
        }
    );
    println!(
        "  measured: HILTI {} | reference {}",
        ms(r.ns_hilti),
        ms(r.ns_reference)
    );
}

fn parsers(table2: bool, fig9: bool, out: Option<&Path>) {
    let http = http_workload();
    let dns = dns_workload();
    let ch = parser_comparison_http(&http).expect("http parser comparison");
    let cd = parser_comparison_dns(&dns).expect("dns parser comparison");

    if table2 {
        println!("\n[E4] Table 2: BinPAC++ (Pac) vs standard (Std) parser agreement");
        println!("  paper: http.log 98.91% | files.log 98.36% | dns.log >99.9%");
        println!("  measured:");
        println!(
            "    {:<11} {:>8} {:>8} {:>10}",
            "#Lines", "Std", "Pac", "Identical"
        );
        for row in table_rows_http(&ch)
            .iter()
            .chain(table_rows_dns(&cd).iter())
        {
            println!(
                "    {:<11} {:>8} {:>8} {:>9.2}%",
                row.log, row.total_a, row.total_b, row.identical_pct
            );
        }
    }

    if fig9 {
        println!("\n[E5] Figure 9: parser CPU time by component");
        println!("  paper: parsing cycles Pac/Std = 1.28x (HTTP), 3.03x (DNS); glue 1.3%/6.9%");
        for (proto, c) in [("HTTP", &ch), ("DNS", &cd)] {
            print_breakdown(&format!("{proto} Standard"), &c.std_result);
            print_breakdown(&format!("{proto} BinPAC++"), &c.pac_result);
            let sp = c.std_result.profiler.total(Component::ProtocolParsing);
            let pp = c.pac_result.profiler.total(Component::ProtocolParsing);
            println!(
                "    -> {proto} parsing ratio Pac/Std = {:.2}x",
                pp as f64 / sp.max(1) as f64
            );
        }
    }

    if let Some(dir) = out {
        if table2 {
            write_artifact(dir, "table2.json", &artifacts::table2_json(&ch, &cd));
        }
        if fig9 {
            write_artifact(dir, "fig9.json", &artifacts::fig9_json(&ch, &cd));
        }
    }
}

fn engines(table3: bool, fig10: bool, out: Option<&Path>) {
    let http = http_workload();
    let dns = dns_workload();
    let eh = engine_comparison_http(&http).expect("http engine comparison");
    let ed = engine_comparison_dns(&dns).expect("dns engine comparison");

    if table3 {
        println!("\n[E6] Table 3: compiled scripts (Hlt) vs standard interpreter (Std)");
        println!("  paper: http.log >99.99% | files.log 99.98% | dns.log >99.99%");
        println!("  measured:");
        for (log, a, b, ag) in [
            (
                "http.log",
                eh.interp_result.http_log.len(),
                eh.compiled_result.http_log.len(),
                &eh.http_agreement,
            ),
            (
                "files.log",
                eh.interp_result.files_log.len(),
                eh.compiled_result.files_log.len(),
                &eh.files_agreement,
            ),
            (
                "dns.log",
                ed.interp_result.dns_log.len(),
                ed.compiled_result.dns_log.len(),
                &ed.dns_agreement,
            ),
        ] {
            println!(
                "    {:<11} Std={:>7} Hlt={:>7} identical={:.2}%",
                log,
                a,
                b,
                ag.percent()
            );
        }
    }

    if fig10 {
        println!("\n[E7] Figure 10: script-execution CPU time by component");
        println!("  paper: script cycles Hlt/Std = 1.30x (HTTP), 0.93x (DNS); glue 4.2%/20%");
        for (proto, c) in [("HTTP", &eh), ("DNS", &ed)] {
            print_breakdown(&format!("{proto} Interpreted"), &c.interp_result);
            print_breakdown(&format!("{proto} Compiled"), &c.compiled_result);
            let si = c.interp_result.profiler.total(Component::ScriptExecution);
            let sc = c.compiled_result.profiler.total(Component::ScriptExecution);
            println!(
                "    -> {proto} script ratio Hlt/Std = {:.2}x",
                sc as f64 / si.max(1) as f64
            );
        }
    }

    if let Some(dir) = out {
        if table3 {
            write_artifact(dir, "table3.json", &artifacts::table3_json(&eh, &ed));
        }
        if fig10 {
            write_artifact(dir, "fig10.json", &artifacts::fig10_json(&eh, &ed));
        }
    }
}

fn print_breakdown(label: &str, r: &broscript::pipeline::AnalysisResult) {
    let total = total_ns(r).max(1);
    print!("    {label:<18} total {:>9} |", ms(total));
    for (c, ns) in r.profiler.snapshot() {
        print!(" {}: {:>5.1}%", short(c), ns as f64 / total as f64 * 100.0);
    }
    println!();
}

fn short(c: Component) -> &'static str {
    match c {
        Component::ProtocolParsing => "parse",
        Component::ScriptExecution => "script",
        Component::Glue => "glue",
        Component::Other => "other",
    }
}

fn fib() {
    println!("\n[E8] Fibonacci baseline (§6.5)");
    println!("  paper: compiled solves it 'orders of magnitude faster' than the interpreter");
    let r = fib_experiment(24).expect("fib experiment");
    println!(
        "  measured: fib({}) = {} | interpreted {} | compiled {} | speedup {:.1}x",
        r.n,
        r.value,
        ms(r.ns_interpreted),
        ms(r.ns_compiled),
        r.speedup
    );
    println!(
        "  dispatch tier: specializer on {} | off {} | specializer speedup {:.2}x",
        ms(r.ns_vm_spec),
        ms(r.ns_vm_nospec),
        r.spec_speedup
    );
}

fn threads() {
    println!("\n[E9] Threaded DNS load-balancing (§6.6)");
    println!("  paper: the same parser code supports threaded and non-threaded setups;");
    println!("         hash-based placement serializes per-flow processing");
    let trace = dns_workload();
    for workers in [1, 2, 4, 8] {
        let r = threads_experiment(&trace, workers).expect("threads experiment");
        println!(
            "  workers={:<2} sent={} handled={} (crud rejected: {}) ({}) in {} | per-worker: {:?}",
            r.workers,
            r.datagrams_sent,
            r.datagrams_parsed,
            r.datagrams_failed,
            if r.datagrams_sent == r.datagrams_parsed {
                "ALL HANDLED ✓"
            } else {
                "LOST ✗"
            },
            ms(r.ns_elapsed),
            r.per_worker
        );
    }
}

fn allocs() {
    use broscript::host::Engine;
    use broscript::pipeline::{run_dns_analysis, run_http_analysis, ParserStack};
    println!("\n[E5b] Memory allocations per parser stack (§6.4)");
    println!("  paper: BinPAC++ causes ~19% more allocations for HTTP, ~47% more for DNS");
    let http = http_workload();
    let dns = dns_workload();
    for (proto, std_n, pac_n) in [
        (
            "HTTP",
            count_allocs(|| {
                run_http_analysis(&http, ParserStack::Standard, Engine::Interpreted).unwrap();
            }),
            count_allocs(|| {
                run_http_analysis(&http, ParserStack::Binpac, Engine::Interpreted).unwrap();
            }),
        ),
        (
            "DNS",
            count_allocs(|| {
                run_dns_analysis(&dns, ParserStack::Standard, Engine::Interpreted).unwrap();
            }),
            count_allocs(|| {
                run_dns_analysis(&dns, ParserStack::Binpac, Engine::Interpreted).unwrap();
            }),
        ),
    ] {
        println!(
            "  {proto}: standard {std_n} allocs | BinPAC++ {pac_n} allocs | +{:.0}%",
            (pac_n as f64 / std_n.max(1) as f64 - 1.0) * 100.0
        );
    }
}

fn ablations() {
    println!("\n[A1] Optimizer passes (const-fold / copy-prop / CSE / DCE / jump-threading)");
    let a = optimizer_ablation().expect("optimizer ablation");
    println!(
        "  kernel: OptLevel::None {} | OptLevel::Full {} | speedup {:.2}x",
        ms(a.ns_none),
        ms(a.ns_full),
        a.speedup
    );
    println!(
        "  passes applied: {} folded, {} propagated, {} CSE, {} dead, {} threaded",
        a.stats_full.constants_folded,
        a.stats_full.copies_propagated,
        a.stats_full.cse_hits,
        a.stats_full.dead_removed,
        a.stats_full.blocks_threaded
    );

    println!("\n[A2] Classifier backend (paper §5: linked list 'does not scale')");
    for rules in [16, 128, 1024] {
        let a = classifier_ablation(rules, 20_000).expect("classifier ablation");
        println!(
            "  rules={:<5} linear {} | indexed {} | speedup {:.1}x",
            a.rules,
            ms(a.ns_linear),
            ms(a.ns_indexed),
            a.speedup
        );
    }

    println!("\n[A3] Regexp incremental matching overhead");
    let a = regexp_ablation(50_000).expect("regexp ablation");
    println!(
        "  whole-buffer {} | chunked {} | incremental overhead {:.2}x",
        ms(a.ns_whole),
        ms(a.ns_chunked),
        a.incremental_overhead
    );
}
