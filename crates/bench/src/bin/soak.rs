//! `soak` — long-haul robustness harness for the parallel pipeline.
//!
//! Sustains synthetic HTTP/DNS traffic through the flow-sharded pipeline
//! in waves of fresh flows until a flow target or a wall-clock box is
//! hit, asserting on every wave that the run is loss-free and the heap
//! stays bounded:
//!
//! * zero flow errors, zero shard faults, zero shed packets (under the
//!   default `Block` overload policy);
//! * every flow of the wave produced its log line (no silent effect
//!   loss);
//! * the per-flow parser heap peak (telemetry gauge
//!   `pipeline.peak_flow_heap_bytes`) stays under its budget;
//! * live heap bytes — tracked by a counting allocator — return to the
//!   post-first-wave baseline after every wave, i.e. the pipeline does
//!   not leak across waves.
//!
//! Usage:
//!   soak [--smoke] [--flows N] [--wave N] [--seconds S] [--workers N]
//!        [--proto http|dns|mix] [--seed N] [--shed DEPTH]
//!        [--deadline-ms MS] [--out FILE] [--live-stats SECS]
//!        [--trace-out FILE]
//!
//! `--smoke` is the CI profile: a reduced flow count inside a tight time
//! box. The full profile targets ~1M flows. Exit status is non-zero on
//! any invariant violation, so CI can gate on it directly.
//!
//! `--live-stats S` arms the flight recorder and prints a status line
//! (pkts/s, p99 delivery latency, shed count, peak per-shard queue
//! depth) every ~S seconds. `--trace-out FILE` writes the last wave's
//! trace as Chrome trace-event JSON (`hilti.trace.v1`) plus a
//! `FILE.postmortem.jsonl` sibling when fault dumps were captured; with
//! either flag the `--out` summary gains delivery-latency quantiles.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use broscript::host::Engine;
use broscript::parallel::{
    run_dns_analysis_parallel, run_http_analysis_parallel, OverloadPolicy, PipelineOptions,
};
use broscript::pipeline::{AnalysisResult, Governance, ParserStack};
use hilti_rt::trace::{PostmortemDump, TraceReport};
use netpkt::synth::{throughput_dns_trace, throughput_trace};

/// Exact live-byte accounting at the allocator layer (not RSS, so
/// allocator caching and kernel page laziness can't hide a leak).
struct TrackingAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let live = LIVE.fetch_add(layout.size() as u64, Ordering::Relaxed) + layout.size() as u64;
        PEAK.fetch_max(live, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

#[derive(Clone, Copy, PartialEq)]
enum Proto {
    Http,
    Dns,
}

struct Config {
    total_flows: usize,
    wave_flows: usize,
    seconds: u64,
    workers: usize,
    protos: Vec<Proto>,
    seed: u64,
    shed_depth: Option<usize>,
    deadline_ms: Option<u64>,
    out: Option<String>,
    live_stats: Option<u64>,
    trace_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: soak [--smoke] [--flows N] [--wave N] [--seconds S] [--workers N] \
         [--proto http|dns|mix] [--seed N] [--shed DEPTH] [--deadline-ms MS] [--out FILE] \
         [--live-stats SECS] [--trace-out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut cfg = Config {
        total_flows: 1_000_000,
        wave_flows: 50_000,
        seconds: 600,
        workers: 4,
        protos: vec![Proto::Http, Proto::Dns],
        seed: 0x50AC,
        shed_depth: None,
        deadline_ms: None,
        out: None,
        live_stats: None,
        trace_out: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("soak: {name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--smoke" => {
                cfg.total_flows = 60_000;
                cfg.wave_flows = 10_000;
                cfg.seconds = 60;
            }
            "--flows" => cfg.total_flows = val("--flows").parse().unwrap_or_else(|_| usage()),
            "--wave" => cfg.wave_flows = val("--wave").parse().unwrap_or_else(|_| usage()),
            "--seconds" => cfg.seconds = val("--seconds").parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = val("--workers").parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--shed" => cfg.shed_depth = Some(val("--shed").parse().unwrap_or_else(|_| usage())),
            "--deadline-ms" => {
                cfg.deadline_ms = Some(val("--deadline-ms").parse().unwrap_or_else(|_| usage()))
            }
            "--out" => cfg.out = Some(val("--out")),
            "--live-stats" => {
                cfg.live_stats = Some(val("--live-stats").parse().unwrap_or_else(|_| usage()))
            }
            "--trace-out" => cfg.trace_out = Some(val("--trace-out")),
            "--proto" => {
                cfg.protos = match val("--proto").as_str() {
                    "http" => vec![Proto::Http],
                    "dns" => vec![Proto::Dns],
                    "mix" => vec![Proto::Http, Proto::Dns],
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }
    cfg.wave_flows = cfg.wave_flows.clamp(1, cfg.total_flows.max(1));
    cfg
}

/// Per-flow parser-heap ceiling. Throughput flows buffer at most a few
/// KiB each; anything past this is runaway buffering, not workload.
const PER_FLOW_HEAP: u64 = 64 * 1024;

/// Live-heap growth tolerated across waves, on top of the post-first-wave
/// baseline: covers allocator-level jitter (hash-map capacity steps,
/// thread-local caches), not leaks, which grow per wave.
const LEAK_SLACK: u64 = 16 * 1024 * 1024;

fn main() {
    let cfg = parse_args();
    let gov = Governance {
        idle_timeout_ms: Some(10_000),
        per_flow_heap: Some(PER_FLOW_HEAP),
        script_fuel: Some(100_000_000),
        quarantine: true,
        inject_fault_after: None,
        telemetry: true,
        tiering: None,
        delivery_deadline_ms: cfg.deadline_ms,
        tracing: cfg.live_stats.is_some() || cfg.trace_out.is_some(),
        force_copy: false,
    };
    let opts = PipelineOptions {
        workers: cfg.workers,
        governance: gov,
        overload: match cfg.shed_depth {
            Some(d) => OverloadPolicy::Shed { max_queue_depth: d },
            None => OverloadPolicy::Block,
        },
        ..Default::default()
    };
    // Under `Block` with no deadline the run must be perfectly lossless;
    // `Shed` / tight deadlines intentionally trade loss for liveness, so
    // there the harness only checks containment and accounting.
    let lossless = cfg.shed_depth.is_none() && cfg.deadline_ms.is_none();

    println!(
        "soak: target {} flows in waves of {}, {}s box, {} workers, {}",
        cfg.total_flows,
        cfg.wave_flows,
        cfg.seconds,
        cfg.workers,
        if lossless {
            "lossless"
        } else {
            "lossy-tolerant"
        },
    );

    let start = Instant::now();
    let mut violations = 0usize;
    let mut flows_done = 0usize;
    let mut packets_done = 0u64;
    let mut log_lines = 0usize;
    let mut shed_total = 0u64;
    let mut peak_flow_heap = 0u64;
    let mut baseline_live: Option<u64> = None;
    let mut wave = 0usize;
    // Flight-recorder accumulation (only populated when tracing is on):
    // the last wave's full report for `--trace-out`, postmortems from all
    // waves, max delivery quantiles for the summary, and a live-stats
    // window for periodic reporting.
    let mut last_report: Option<TraceReport> = None;
    let mut postmortems: Vec<PostmortemDump> = Vec::new();
    let (mut p50_max, mut p95_max, mut p99_max) = (0u64, 0u64, 0u64);
    let mut live_last = Instant::now();
    let (mut live_pkts, mut live_shed, mut live_p99, mut live_depth) = (0u64, 0u64, 0u64, 0u64);

    while flows_done < cfg.total_flows && start.elapsed().as_secs() < cfg.seconds {
        let proto = cfg.protos[wave % cfg.protos.len()];
        let n = cfg.wave_flows.min(cfg.total_flows - flows_done);
        let seed = cfg.seed.wrapping_add(wave as u64);
        let trace = match proto {
            Proto::Http => throughput_trace(seed, n),
            Proto::Dns => throughput_dns_trace(seed, n),
        };
        let mut r: AnalysisResult = match proto {
            Proto::Http => {
                run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Compiled, &opts)
            }
            Proto::Dns => {
                run_dns_analysis_parallel(&trace, ParserStack::Binpac, Engine::Compiled, &opts)
            }
        }
        .unwrap_or_else(|e| {
            eprintln!("soak: wave {wave} aborted: {e}");
            std::process::exit(1);
        });
        drop(trace);

        let mut fail = |msg: String| {
            eprintln!("soak: VIOLATION wave {wave}: {msg}");
            violations += 1;
        };
        let logged = match proto {
            Proto::Http => r.http_log.len(),
            Proto::Dns => r.dns_log.len(),
        };
        if !r.shard_faults.is_empty() {
            fail(format!("shard faults: {:?}", r.shard_faults));
        }
        if lossless {
            if !r.flow_errors.is_empty() {
                fail(format!(
                    "{} flow errors (first: {:?})",
                    r.flow_errors.len(),
                    r.flow_errors.first()
                ));
            }
            if r.shed_packets != 0 {
                fail(format!("{} packets shed under Block", r.shed_packets));
            }
            if logged != n {
                fail(format!("effect loss: {logged} log lines for {n} flows"));
            }
        }
        let peak = r.telemetry.gauge("pipeline.peak_flow_heap_bytes");
        if peak > PER_FLOW_HEAP {
            fail(format!(
                "per-flow heap peak {peak} over budget {PER_FLOW_HEAP}"
            ));
        }

        flows_done += n;
        packets_done += r.packets;
        log_lines += logged;
        shed_total += r.shed_packets;
        peak_flow_heap = peak_flow_heap.max(peak);
        if let Some(t) = r.trace.take() {
            p50_max = p50_max.max(t.latency.delivery_p50_ns);
            p95_max = p95_max.max(t.latency.delivery_p95_ns);
            p99_max = p99_max.max(t.latency.delivery_p99_ns);
            live_p99 = live_p99.max(t.latency.delivery_p99_ns);
            postmortems.extend(t.postmortems.iter().cloned());
            last_report = Some(t);
        }
        live_pkts += r.packets;
        live_shed += r.shed_packets;
        live_depth = live_depth.max(
            r.dispatch_telemetry
                .gauges
                .iter()
                .filter(|(g, _)| g.starts_with("pipeline.queue_depth."))
                .map(|(_, v)| *v)
                .max()
                .unwrap_or(0),
        );
        drop(r);
        if let Some(secs) = cfg.live_stats {
            let el = live_last.elapsed();
            if el.as_secs() >= secs.max(1) {
                println!(
                    "  live: {:>10.0} pkts/s | p99 delivery {:>9} ns | shed {:>6} | peak queue depth {:>5}",
                    live_pkts as f64 / el.as_secs_f64(),
                    live_p99,
                    live_shed,
                    live_depth,
                );
                live_last = Instant::now();
                (live_pkts, live_shed, live_p99, live_depth) = (0, 0, 0, 0);
            }
        }

        // Leak check: once warm, live bytes must return to baseline.
        let live = LIVE.load(Ordering::Relaxed);
        match baseline_live {
            None => baseline_live = Some(live),
            Some(base) if live > base + LEAK_SLACK => {
                fail(format!(
                    "live heap grew {} bytes past the post-wave baseline {}",
                    live - base,
                    base
                ));
            }
            Some(_) => {}
        }
        wave += 1;
        println!(
            "  wave {:>3} [{}]: {:>7} flows, {:>8} pkts total, peak flow heap {:>6} B, live {:>9} B",
            wave,
            match proto {
                Proto::Http => "http",
                Proto::Dns => "dns ",
            },
            n,
            packets_done,
            peak,
            live,
        );
    }

    let elapsed = start.elapsed().as_secs_f64();
    let peak_live = PEAK.load(Ordering::Relaxed);
    println!(
        "soak: {} waves, {} flows, {} packets in {:.1}s ({:.0} flows/s); peak live heap {:.1} MiB; {} violations",
        wave,
        flows_done,
        packets_done,
        elapsed,
        flows_done as f64 / elapsed.max(1e-9),
        peak_live as f64 / (1024.0 * 1024.0),
        violations,
    );

    if let Some(path) = &cfg.out {
        // Latency fields carry the worst wave observed; they are absent
        // (zero) when tracing was off for the whole run.
        let json = format!(
            "{{\"waves\":{wave},\"flows\":{flows_done},\"packets\":{packets_done},\
             \"log_lines\":{log_lines},\"shed_packets\":{shed_total},\
             \"peak_flow_heap_bytes\":{peak_flow_heap},\"peak_live_heap_bytes\":{peak_live},\
             \"delivery_p50_ns\":{p50_max},\"delivery_p95_ns\":{p95_max},\
             \"delivery_p99_ns\":{p99_max},\"postmortems\":{n_posts},\
             \"elapsed_s\":{elapsed:.3},\"violations\":{violations}}}\n",
            n_posts = postmortems.len(),
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("soak: cannot write {path}: {e}");
            violations += 1;
        }
    }

    if let Some(path) = &cfg.trace_out {
        match &last_report {
            Some(report) => {
                if let Err(e) = std::fs::write(path, report.to_chrome_json()) {
                    eprintln!("soak: cannot write {path}: {e}");
                    violations += 1;
                } else {
                    println!(
                        "soak: wrote {path}: {} span(s) from the final wave (hilti.trace.v1)",
                        report.spans.len()
                    );
                    println!("{}", report.latency.render());
                }
            }
            None => eprintln!("soak: --trace-out set but no wave produced a trace"),
        }
        if !postmortems.is_empty() {
            let pm_path = format!("{path}.postmortem.jsonl");
            let body: String = postmortems.iter().map(|d| d.to_jsonl()).collect();
            if let Err(e) = std::fs::write(&pm_path, body) {
                eprintln!("soak: cannot write {pm_path}: {e}");
                violations += 1;
            } else {
                println!(
                    "soak: wrote {pm_path}: {} postmortem dump(s) across all waves",
                    postmortems.len()
                );
            }
        }
    }

    if flows_done == 0 {
        eprintln!("soak: no wave completed inside the time box");
        std::process::exit(1);
    }
    std::process::exit(if violations == 0 { 0 } else { 1 });
}
