//! Property-based tests on the packet substrate.

use proptest::prelude::*;

use hilti_rt::time::Time;
use netpkt::decode::{build_udp_frame, decode_ethernet, internet_checksum};
use netpkt::pcap::{from_pcap_bytes, to_pcap_bytes, RawPacket};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// pcap roundtrip preserves packets exactly (µs-quantized timestamps).
    #[test]
    fn pcap_roundtrip(packets in proptest::collection::vec(
        (0u64..1_000_000, proptest::collection::vec(any::<u8>(), 0..200)), 0..10)) {
        let pkts: Vec<RawPacket> = packets
            .into_iter()
            .map(|(us, data)| RawPacket::new(Time::from_nanos(us * 1_000), data))
            .collect();
        let back = from_pcap_bytes(&to_pcap_bytes(&pkts)).unwrap();
        prop_assert_eq!(back, pkts);
    }

    /// Internet checksum self-verifies: data embedding its own checksum
    /// sums to zero.
    #[test]
    fn checksum_self_verifies(mut data in proptest::collection::vec(any::<u8>(), 2..64)) {
        data[0] = 0;
        data[1] = 0;
        let c = internet_checksum(&data);
        data[0..2].copy_from_slice(&c.to_be_bytes());
        prop_assert_eq!(internet_checksum(&data), 0);
    }

    /// UDP frames decode back to exactly what was built.
    #[test]
    fn udp_build_decode_roundtrip(
        sport in 1u16..65535,
        dport in 1u16..65535,
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        src in any::<u32>(),
        dst in any::<u32>(),
    ) {
        let s = hilti_rt::addr::Addr::from_v4_u32(src);
        let d = hilti_rt::addr::Addr::from_v4_u32(dst);
        let frame = build_udp_frame(s, d, sport, dport, &payload);
        let dec = decode_ethernet(&RawPacket::new(Time::ZERO, frame)).unwrap();
        prop_assert_eq!(dec.src, s);
        prop_assert_eq!(dec.dst, d);
        prop_assert_eq!(dec.sport, sport);
        prop_assert_eq!(dec.dport, dport);
        prop_assert_eq!(dec.payload, payload);
    }

    /// The decoder never panics on arbitrary bytes (fail-safe processing
    /// of untrusted input, §2 of the paper).
    #[test]
    fn decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..120)) {
        let _ = decode_ethernet(&RawPacket::new(Time::ZERO, data));
    }

    /// The DNS parser never panics on arbitrary bytes.
    #[test]
    fn dns_parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = netpkt::dns::parse_message(&data);
    }

    /// The HTTP parser never panics on arbitrary stream bytes.
    #[test]
    fn http_parser_never_panics(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..60), 0..6),
    ) {
        use hilti_rt::addr::Port;
        let id = netpkt::events::ConnId {
            orig_h: "10.0.0.1".parse().unwrap(),
            orig_p: Port::tcp(1),
            resp_h: "10.0.0.2".parse().unwrap(),
            resp_p: Port::tcp(80),
        };
        let mut p = netpkt::http::HttpConnParser::new("C".into(), id);
        let mut sink = Vec::new();
        for (i, c) in chunks.iter().enumerate() {
            p.feed(i % 2 == 0, c, Time::ZERO, &mut sink);
        }
        p.finish(Time::ZERO, &mut sink);
    }
}
