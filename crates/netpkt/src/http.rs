//! The *standard* HTTP/1.x parser: manually written, stateful, incremental.
//!
//! This plays the role of Bro's handwritten C++ HTTP analyzer in the
//! evaluation (§6.4): an independent, non-generated implementation that the
//! BinPAC++ parser is compared against for output agreement (Table 2) and
//! CPU cost (Figure 9). It is written in the conventional style such
//! parsers use — explicit per-connection state machines that manually track
//! where parsing stopped — precisely the structure HILTI's fibers make
//! unnecessary (§3.2 "Control Flow and Concurrency").
//!
//! Supported: request/status lines, headers, `Content-Length` bodies,
//! `chunked` transfer-coding (with trailers), `HEAD`/`204`/`304` empty-body
//! rules, pipelined requests, and a skip-to-recovery mode for non-HTTP
//! traffic on port 80.

use std::collections::VecDeque;

use hilti_rt::time::Time;

use crate::events::{ConnId, Event};

/// Maximum line length we accept before declaring the stream non-HTTP.
const MAX_LINE: usize = 16 * 1024;

/// Body framing of the message currently being received.
#[derive(Clone, Debug, PartialEq)]
enum BodyKind {
    /// Exactly `n` more bytes.
    Length(u64),
    /// Chunked transfer-coding.
    Chunked,
    /// Until connection close (HTTP/1.0 responses without length).
    UntilClose,
    /// No body at all.
    None,
}

#[derive(Clone, Debug, PartialEq)]
enum DirState {
    /// Waiting for a request line (client) / status line (server).
    FirstLine,
    Headers,
    Body(BodyKind),
    /// Inside a chunked body: `n` bytes remain in the current chunk.
    ChunkData(u64),
    /// Expecting the CRLF after a chunk.
    ChunkEnd,
    /// Expecting a chunk-size line.
    ChunkSize,
    /// Trailer headers after the last chunk.
    Trailers,
    /// Unparseable traffic: consume and ignore everything.
    Skip,
}

struct Direction {
    state: DirState,
    buf: Vec<u8>,
    /// Bytes of body delivered for the in-flight message.
    body_len: u64,
    /// Headers seen for the in-flight message (for framing decisions).
    content_length: Option<u64>,
    chunked: bool,
    is_orig: bool,
}

impl Direction {
    fn new(is_orig: bool) -> Self {
        Direction {
            state: DirState::FirstLine,
            buf: Vec::new(),
            body_len: 0,
            content_length: None,
            chunked: false,
            is_orig,
        }
    }
}

/// Incremental HTTP parser for one connection (both directions).
pub struct HttpConnParser {
    uid: String,
    id: ConnId,
    client: Direction,
    server: Direction,
    /// Methods of requests whose responses are still outstanding; HEAD
    /// responses carry no body even when Content-Length says otherwise.
    outstanding: VecDeque<String>,
    /// Status of the in-flight response (204/304 suppress the body).
    last_status: Option<u32>,
}

impl HttpConnParser {
    pub fn new(uid: String, id: ConnId) -> Self {
        HttpConnParser {
            uid,
            id,
            client: Direction::new(true),
            server: Direction::new(false),
            outstanding: VecDeque::new(),
            last_status: None,
        }
    }

    /// Feeds reassembled in-order payload for one direction; emits events
    /// into `sink`.
    pub fn feed(&mut self, is_orig: bool, data: &[u8], ts: Time, sink: &mut Vec<Event>) {
        // Split borrows: the direction being parsed plus connection fields.
        let dir = if is_orig {
            &mut self.client
        } else {
            &mut self.server
        };
        dir.buf.extend_from_slice(data);
        loop {
            match dir.state.clone() {
                DirState::Skip => {
                    dir.buf.clear();
                    return;
                }
                DirState::FirstLine => {
                    let Some(line) = take_line(&mut dir.buf) else {
                        if dir.buf.len() > MAX_LINE {
                            dir.state = DirState::Skip;
                        }
                        return;
                    };
                    if line.is_empty() {
                        continue; // tolerate stray CRLF between messages
                    }
                    let ok = if is_orig {
                        Self::parse_request_line(
                            &line,
                            ts,
                            &self.uid,
                            self.id,
                            &mut self.outstanding,
                            sink,
                        )
                    } else {
                        Self::parse_status_line(
                            &line,
                            ts,
                            &self.uid,
                            self.id,
                            &mut self.last_status,
                            sink,
                        )
                    };
                    if ok {
                        dir.content_length = None;
                        dir.chunked = false;
                        dir.body_len = 0;
                        dir.state = DirState::Headers;
                    } else {
                        dir.state = DirState::Skip;
                    }
                }
                DirState::Headers => {
                    let Some(line) = take_line(&mut dir.buf) else {
                        if dir.buf.len() > MAX_LINE {
                            dir.state = DirState::Skip;
                        }
                        return;
                    };
                    if line.is_empty() {
                        // Headers done; decide body framing.
                        let kind = Self::body_kind(dir, &mut self.outstanding, self.last_status);
                        match kind {
                            BodyKind::None => {
                                sink.push(Event::HttpMessageDone {
                                    ts,
                                    uid: self.uid.clone(),
                                    is_orig,
                                    body_len: 0,
                                });
                                dir.state = DirState::FirstLine;
                            }
                            BodyKind::Chunked => dir.state = DirState::ChunkSize,
                            other => dir.state = DirState::Body(other),
                        }
                        continue;
                    }
                    if let Some((name, value)) = split_header(&line) {
                        let lname = name.to_ascii_lowercase();
                        if lname == "content-length" {
                            dir.content_length = value.trim().parse().ok();
                        } else if lname == "transfer-encoding"
                            && value.trim().eq_ignore_ascii_case("chunked")
                        {
                            dir.chunked = true;
                        }
                        sink.push(Event::HttpHeader {
                            ts,
                            uid: self.uid.clone(),
                            is_orig,
                            name,
                            value,
                        });
                    }
                    // Malformed header lines are skipped silently, like
                    // Bro's parser tolerates real-world "crud".
                }
                DirState::Body(BodyKind::Length(remaining)) => {
                    if dir.buf.is_empty() {
                        return;
                    }
                    let take = (remaining.min(dir.buf.len() as u64)) as usize;
                    let chunk: Vec<u8> = dir.buf.drain(..take).collect();
                    dir.body_len += chunk.len() as u64;
                    sink.push(Event::HttpBodyData {
                        ts,
                        uid: self.uid.clone(),
                        is_orig,
                        data: chunk,
                    });
                    let left = remaining - take as u64;
                    if left == 0 {
                        sink.push(Event::HttpMessageDone {
                            ts,
                            uid: self.uid.clone(),
                            is_orig,
                            body_len: dir.body_len,
                        });
                        dir.state = DirState::FirstLine;
                    } else {
                        dir.state = DirState::Body(BodyKind::Length(left));
                        return;
                    }
                }
                DirState::Body(BodyKind::UntilClose) => {
                    if dir.buf.is_empty() {
                        return;
                    }
                    let chunk: Vec<u8> = dir.buf.drain(..).collect();
                    dir.body_len += chunk.len() as u64;
                    sink.push(Event::HttpBodyData {
                        ts,
                        uid: self.uid.clone(),
                        is_orig,
                        data: chunk,
                    });
                    return;
                }
                DirState::Body(_) => unreachable!("handled via dedicated states"),
                DirState::ChunkSize => {
                    let Some(line) = take_line(&mut dir.buf) else {
                        return;
                    };
                    // Chunk size may carry extensions after ';'.
                    let size_part = line.split(';').next().unwrap_or("").trim();
                    match u64::from_str_radix(size_part, 16) {
                        Ok(0) => dir.state = DirState::Trailers,
                        Ok(n) => dir.state = DirState::ChunkData(n),
                        Err(_) => dir.state = DirState::Skip,
                    }
                }
                DirState::ChunkData(remaining) => {
                    if dir.buf.is_empty() {
                        return;
                    }
                    let take = (remaining.min(dir.buf.len() as u64)) as usize;
                    let chunk: Vec<u8> = dir.buf.drain(..take).collect();
                    dir.body_len += chunk.len() as u64;
                    sink.push(Event::HttpBodyData {
                        ts,
                        uid: self.uid.clone(),
                        is_orig,
                        data: chunk,
                    });
                    let left = remaining - take as u64;
                    dir.state = if left == 0 {
                        DirState::ChunkEnd
                    } else {
                        DirState::ChunkData(left)
                    };
                }
                DirState::ChunkEnd => {
                    let Some(line) = take_line(&mut dir.buf) else {
                        return;
                    };
                    if !line.is_empty() {
                        dir.state = DirState::Skip;
                        continue;
                    }
                    dir.state = DirState::ChunkSize;
                }
                DirState::Trailers => {
                    let Some(line) = take_line(&mut dir.buf) else {
                        return;
                    };
                    if line.is_empty() {
                        sink.push(Event::HttpMessageDone {
                            ts,
                            uid: self.uid.clone(),
                            is_orig,
                            body_len: dir.body_len,
                        });
                        dir.state = DirState::FirstLine;
                    }
                    // Non-empty trailer lines are consumed silently.
                }
            }
        }
    }

    /// Signals connection close; finishes an UntilClose body.
    pub fn finish(&mut self, ts: Time, sink: &mut Vec<Event>) {
        for dir in [&mut self.server, &mut self.client] {
            if dir.state == DirState::Body(BodyKind::UntilClose) {
                sink.push(Event::HttpMessageDone {
                    ts,
                    uid: self.uid.clone(),
                    is_orig: dir.is_orig,
                    body_len: dir.body_len,
                });
                dir.state = DirState::FirstLine;
            }
        }
    }

    fn parse_request_line(
        line: &str,
        ts: Time,
        uid: &str,
        id: ConnId,
        outstanding: &mut VecDeque<String>,
        sink: &mut Vec<Event>,
    ) -> bool {
        let mut parts = line.split_whitespace();
        let (Some(method), Some(uri), version) = (parts.next(), parts.next(), parts.next()) else {
            return false;
        };
        if !method.bytes().all(|b| b.is_ascii_uppercase()) || method.is_empty() {
            return false;
        }
        let version = match version {
            Some(v) => match v.strip_prefix("HTTP/") {
                Some(n) => n.to_owned(),
                None => return false,
            },
            None => "0.9".to_owned(),
        };
        outstanding.push_back(method.to_owned());
        sink.push(Event::HttpRequest {
            ts,
            uid: uid.to_owned(),
            id,
            method: method.to_owned(),
            uri: uri.to_owned(),
            version,
        });
        true
    }

    fn parse_status_line(
        line: &str,
        ts: Time,
        uid: &str,
        id: ConnId,
        last_status: &mut Option<u32>,
        sink: &mut Vec<Event>,
    ) -> bool {
        let Some(rest) = line.strip_prefix("HTTP/") else {
            return false;
        };
        let mut parts = rest.splitn(3, ' ');
        let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
            return false;
        };
        let Ok(status) = code.parse::<u32>() else {
            return false;
        };
        let reason = parts.next().unwrap_or("").to_owned();
        *last_status = Some(status);
        sink.push(Event::HttpReply {
            ts,
            uid: uid.to_owned(),
            id,
            status,
            reason,
            version: version.to_owned(),
        });
        true
    }

    /// Decides the body framing after the header block, per RFC 7230 §3.3.
    fn body_kind(
        dir: &mut Direction,
        outstanding: &mut VecDeque<String>,
        status: Option<u32>,
    ) -> BodyKind {
        if dir.is_orig {
            // Requests have a body only with explicit framing.
            if dir.chunked {
                return BodyKind::Chunked;
            }
            return match dir.content_length {
                Some(0) | None => BodyKind::None,
                Some(n) => BodyKind::Length(n),
            };
        }
        // Responses: correlate with the request method; HEAD, 204 and 304
        // responses never carry a body regardless of framing headers.
        let for_head = outstanding.pop_front().as_deref() == Some("HEAD");
        if for_head || matches!(status, Some(204) | Some(304)) {
            return BodyKind::None;
        }
        if dir.chunked {
            return BodyKind::Chunked;
        }
        match dir.content_length {
            Some(0) => BodyKind::None,
            Some(n) => BodyKind::Length(n),
            None => BodyKind::UntilClose,
        }
    }
}

/// Removes one CRLF- (or bare-LF-) terminated line from the front of `buf`.
fn take_line(buf: &mut Vec<u8>) -> Option<String> {
    let pos = buf.iter().position(|&b| b == b'\n')?;
    let mut line: Vec<u8> = buf.drain(..=pos).collect();
    line.pop(); // '\n'
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    Some(String::from_utf8_lossy(&line).into_owned())
}

fn split_header(line: &str) -> Option<(String, String)> {
    let (name, value) = line.split_once(':')?;
    if name.is_empty() || name.contains(' ') {
        return None;
    }
    Some((name.trim().to_owned(), value.trim().to_owned()))
}

/// Best-effort MIME sniffing of body content, in the spirit of Bro's file
/// analysis (the source of the Table 2 "different or no MIME types"
/// mismatches). Checks magic bytes first, then falls back to the declared
/// Content-Type.
pub fn sniff_mime(body_prefix: &[u8], declared: Option<&str>) -> Option<String> {
    let magic: Option<&str> = if body_prefix.starts_with(b"GIF8") {
        Some("image/gif")
    } else if body_prefix.starts_with(&[0x89, b'P', b'N', b'G']) {
        Some("image/png")
    } else if body_prefix.starts_with(&[0xff, 0xd8, 0xff]) {
        Some("image/jpeg")
    } else if body_prefix.starts_with(b"%PDF") {
        Some("application/pdf")
    } else if body_prefix.starts_with(b"PK\x03\x04") {
        Some("application/zip")
    } else if body_prefix.starts_with(b"\x1f\x8b") {
        Some("application/gzip")
    } else {
        let head = &body_prefix[..body_prefix.len().min(256)];
        let lower: Vec<u8> = head.iter().map(|b| b.to_ascii_lowercase()).collect();
        if contains(&lower, b"<html") || contains(&lower, b"<!doctype html") {
            Some("text/html")
        } else if lower.starts_with(b"{") || lower.starts_with(b"[") {
            Some("application/json")
        } else {
            None
        }
    };
    magic
        .map(str::to_owned)
        .or_else(|| declared.map(|d| d.split(';').next().unwrap_or(d).trim().to_owned()))
}

fn contains(hay: &[u8], needle: &[u8]) -> bool {
    hay.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilti_rt::addr::Port;

    fn conn() -> HttpConnParser {
        HttpConnParser::new(
            "C1".into(),
            ConnId {
                orig_h: "10.0.0.1".parse().unwrap(),
                orig_p: Port::tcp(40000),
                resp_h: "1.2.3.4".parse().unwrap(),
                resp_p: Port::tcp(80),
            },
        )
    }

    fn names(events: &[Event]) -> Vec<&'static str> {
        events.iter().map(|e| e.name()).collect()
    }

    #[test]
    fn simple_get_exchange() {
        let mut p = conn();
        let mut ev = Vec::new();
        p.feed(
            true,
            b"GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n",
            Time::from_secs(1),
            &mut ev,
        );
        p.feed(
            false,
            b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\nContent-Type: text/html\r\n\r\nhello",
            Time::from_secs(1),
            &mut ev,
        );
        assert_eq!(
            names(&ev),
            vec![
                "http_request",
                "http_header",
                "http_message_done",
                "http_reply",
                "http_header",
                "http_header",
                "http_body_data",
                "http_message_done",
            ]
        );
        match &ev[0] {
            Event::HttpRequest {
                method,
                uri,
                version,
                ..
            } => {
                assert_eq!(method, "GET");
                assert_eq!(uri, "/index.html");
                assert_eq!(version, "1.1");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &ev[3] {
            Event::HttpReply { status, reason, .. } => {
                assert_eq!(*status, 200);
                assert_eq!(reason, "OK");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn byte_at_a_time_incremental() {
        // The whole point of incremental parsing: drip-feed one byte at a
        // time and get identical events.
        let req = b"POST /submit HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
        let mut whole = Vec::new();
        let mut p1 = conn();
        p1.feed(true, req, Time::ZERO, &mut whole);

        let mut dripped = Vec::new();
        let mut p2 = conn();
        for b in req {
            p2.feed(true, &[*b], Time::ZERO, &mut dripped);
        }
        // Body chunking granularity differs; compare structure.
        let squash = |evs: &[Event]| -> (Vec<&'static str>, Vec<u8>) {
            let mut body = Vec::new();
            let mut kinds = Vec::new();
            for e in evs {
                if let Event::HttpBodyData { data, .. } = e {
                    body.extend_from_slice(data);
                } else {
                    kinds.push(e.name());
                }
            }
            (kinds, body)
        };
        assert_eq!(squash(&whole), squash(&dripped));
    }

    #[test]
    fn chunked_response() {
        let mut p = conn();
        let mut ev = Vec::new();
        p.feed(true, b"GET /x HTTP/1.1\r\n\r\n", Time::ZERO, &mut ev);
        p.feed(
            false,
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
              5\r\nhello\r\n6;ext=1\r\n world\r\n0\r\nX-Trailer: v\r\n\r\n",
            Time::ZERO,
            &mut ev,
        );
        let body: Vec<u8> = ev
            .iter()
            .filter_map(|e| match e {
                Event::HttpBodyData { data, .. } => Some(data.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(body, b"hello world");
        let done = ev.iter().rev().find_map(|e| match e {
            Event::HttpMessageDone {
                body_len,
                is_orig: false,
                ..
            } => Some(*body_len),
            _ => None,
        });
        assert_eq!(done, Some(11));
    }

    #[test]
    fn head_response_has_no_body() {
        let mut p = conn();
        let mut ev = Vec::new();
        p.feed(true, b"HEAD /big HTTP/1.1\r\n\r\n", Time::ZERO, &mut ev);
        p.feed(
            false,
            b"HTTP/1.1 200 OK\r\nContent-Length: 10000\r\n\r\nGET /next HTTP",
            Time::ZERO,
            &mut ev,
        );
        // The body is absent; what follows is NOT eaten as body bytes.
        let done = ev.iter().find_map(|e| match e {
            Event::HttpMessageDone {
                body_len,
                is_orig: false,
                ..
            } => Some(*body_len),
            _ => None,
        });
        assert_eq!(done, Some(0));
    }

    #[test]
    fn pipelined_requests() {
        let mut p = conn();
        let mut ev = Vec::new();
        p.feed(
            true,
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n",
            Time::ZERO,
            &mut ev,
        );
        let uris: Vec<&String> = ev
            .iter()
            .filter_map(|e| match e {
                Event::HttpRequest { uri, .. } => Some(uri),
                _ => None,
            })
            .collect();
        assert_eq!(uris, ["/a", "/b"]);
    }

    #[test]
    fn until_close_body() {
        let mut p = conn();
        let mut ev = Vec::new();
        p.feed(true, b"GET / HTTP/1.0\r\n\r\n", Time::ZERO, &mut ev);
        p.feed(
            false,
            b"HTTP/1.0 200 OK\r\n\r\nunending body",
            Time::ZERO,
            &mut ev,
        );
        // Not done yet...
        assert!(
            !names(&ev).contains(&"http_message_done")
                || ev
                    .iter()
                    .all(|e| !matches!(e, Event::HttpMessageDone { is_orig: false, .. }))
        );
        p.finish(Time::from_secs(9), &mut ev);
        let done = ev.iter().find_map(|e| match e {
            Event::HttpMessageDone {
                body_len,
                is_orig: false,
                ..
            } => Some(*body_len),
            _ => None,
        });
        assert_eq!(done, Some(13));
    }

    #[test]
    fn garbage_enters_skip_mode() {
        let mut p = conn();
        let mut ev = Vec::new();
        p.feed(
            true,
            b"\x00\x01\x02 binary crud\r\nmore\r\n",
            Time::ZERO,
            &mut ev,
        );
        assert!(ev.is_empty());
        // Once skipping, later valid-looking data is ignored too (the
        // stream is already desynchronized).
        p.feed(true, b"GET / HTTP/1.1\r\n\r\n", Time::ZERO, &mut ev);
        assert!(ev.is_empty());
    }

    #[test]
    fn status_without_reason() {
        let mut p = conn();
        let mut ev = Vec::new();
        p.feed(false, b"HTTP/1.1 304\r\n\r\n", Time::ZERO, &mut ev);
        match &ev[0] {
            Event::HttpReply { status, reason, .. } => {
                assert_eq!(*status, 304);
                assert_eq!(reason, "");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lf_only_lines_tolerated() {
        let mut p = conn();
        let mut ev = Vec::new();
        p.feed(true, b"GET / HTTP/1.1\nHost: x\n\n", Time::ZERO, &mut ev);
        assert_eq!(
            names(&ev),
            vec!["http_request", "http_header", "http_message_done"]
        );
    }

    #[test]
    fn sniff_mime_magic_and_declared() {
        assert_eq!(sniff_mime(b"GIF89a...", None).as_deref(), Some("image/gif"));
        assert_eq!(
            sniff_mime(b"\x89PNG\r\n", Some("text/plain")).as_deref(),
            Some("image/png")
        );
        assert_eq!(
            sniff_mime(b"<HTML><body>", None).as_deref(),
            Some("text/html")
        );
        assert_eq!(
            sniff_mime(b"random bytes", Some("text/css; charset=utf-8")).as_deref(),
            Some("text/css")
        );
        assert_eq!(sniff_mime(b"random bytes", None), None);
        assert_eq!(
            sniff_mime(b"{\"k\":1}", None).as_deref(),
            Some("application/json")
        );
    }

    #[test]
    fn zero_length_body() {
        let mut p = conn();
        let mut ev = Vec::new();
        p.feed(
            false,
            b"HTTP/1.1 204 No Content\r\nContent-Length: 0\r\n\r\n",
            Time::ZERO,
            &mut ev,
        );
        let done = ev.iter().find_map(|e| match e {
            Event::HttpMessageDone { body_len, .. } => Some(*body_len),
            _ => None,
        });
        assert_eq!(done, Some(0));
    }
}
