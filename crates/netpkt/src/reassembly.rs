//! TCP stream reassembly: in-order delivery of payload to parsers.
//!
//! Each direction of a connection gets a [`StreamReassembler`] seeded with
//! the initial sequence number. Segments may arrive out of order, duplicated
//! or overlapping; the reassembler buffers what it must and emits maximal
//! in-order runs. Sequence arithmetic is performed modulo 2³² (wraparound is
//! a classic source of bugs in hand-rolled monitors — one of the "pitfalls
//! that others had to master before", §1).
//!
//! Overlap policy: first writer wins (data already delivered or buffered is
//! never rewritten), matching the conservative behaviour robust monitors
//! adopt against inconsistent retransmissions.

use std::collections::BTreeMap;

/// Reassembles one direction of a TCP stream.
#[derive(Debug)]
pub struct StreamReassembler {
    /// The absolute sequence number the next in-order byte must carry.
    next_seq: u32,
    /// Out-of-order segments keyed by *relative* offset from `base`.
    pending: BTreeMap<u64, Vec<u8>>,
    /// Relative position of `next_seq` (total bytes delivered).
    delivered: u64,
    /// Sequence number of stream start (for relative conversion).
    isn: u32,
    /// Bytes currently buffered out of order.
    buffered: usize,
    /// Hard cap on buffered out-of-order data; beyond it, oldest data is
    /// declared a gap (fail-safe against sequence-space attacks).
    max_buffer: usize,
    /// Total gap bytes skipped.
    gaps: u64,
}

/// Default out-of-order buffer budget per direction.
pub const DEFAULT_MAX_BUFFER: usize = 4 * 1024 * 1024;

/// Result of feeding one segment via [`StreamReassembler::segment_ref`]:
/// the common in-order case delivers a suffix of the caller's own slice,
/// so zero-copy consumers can reference their backing storage instead of
/// copying per packet.
#[derive(Debug, PartialEq, Eq)]
pub enum SegmentOut {
    /// Nothing newly contiguous (duplicate, pre-ISN, or buffered).
    Empty,
    /// The delivery is exactly `data[skip..]` of the slice just fed
    /// (`skip` covers an already-delivered prefix, usually 0).
    Passthrough { skip: usize },
    /// The delivery merges buffered out-of-order data and owns its bytes.
    Owned(Vec<u8>),
}

impl StreamReassembler {
    /// Creates a reassembler whose first expected byte carries `isn + 1`
    /// (the sequence number following SYN).
    pub fn new(isn: u32) -> Self {
        StreamReassembler {
            next_seq: isn.wrapping_add(1),
            pending: BTreeMap::new(),
            delivered: 0,
            isn: isn.wrapping_add(1),
            buffered: 0,
            max_buffer: DEFAULT_MAX_BUFFER,
            gaps: 0,
        }
    }

    /// Overrides the out-of-order buffer budget.
    pub fn with_max_buffer(mut self, max: usize) -> Self {
        self.max_buffer = max;
        self
    }

    /// Total in-order bytes delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total bytes skipped as gaps.
    pub fn gap_bytes(&self) -> u64 {
        self.gaps
    }

    /// Bytes currently buffered out of order.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Relative stream offset of an absolute sequence number, taking
    /// wraparound into account. Offsets are relative to the first payload
    /// byte (ISN+1 = offset 0) and grow monotonically. The result is
    /// *signed*: a segment from before the stream start (e.g. a
    /// retransmitted SYN, or a stale pre-ISN segment) maps to a negative
    /// offset rather than aliasing to a position ~4 GiB ahead.
    fn rel(&self, seq: u32) -> i128 {
        // Distance from isn in sequence space (0..2^32), then shifted by
        // the number of full wraps already delivered.
        let raw = seq.wrapping_sub(self.isn) as u64 as i128;
        let wraps = (self.delivered >> 32) as i128;
        let delivered = self.delivered as i128;
        // The candidate may be one wrap behind (segment from before a wrap
        // boundary, or from before the stream start entirely) or one
        // ahead; pick the representative closest to the delivery point.
        // Signed arithmetic keeps the "one wrap behind" alternative from
        // wrapping around u64 and landing astronomically far ahead.
        let mut best = raw + (wraps << 32);
        for cand in [best - (1i128 << 32), best + (1i128 << 32)] {
            if (cand - delivered).abs() < (best - delivered).abs() {
                best = cand;
            }
        }
        best
    }

    /// Feeds one segment; returns any newly contiguous payload.
    pub fn segment(&mut self, seq: u32, data: &[u8]) -> Vec<u8> {
        match self.segment_ref(seq, data) {
            SegmentOut::Empty => Vec::new(),
            SegmentOut::Passthrough { skip } => data[skip..].to_vec(),
            SegmentOut::Owned(v) => v,
        }
    }

    /// Feeds one segment without copying in the in-order case: when the
    /// newly contiguous payload is exactly a suffix of `data` (nothing
    /// buffered got unblocked), the result is [`SegmentOut::Passthrough`]
    /// and the caller may keep referencing its own storage.
    pub fn segment_ref(&mut self, seq: u32, data: &[u8]) -> SegmentOut {
        if data.is_empty() {
            return SegmentOut::Empty;
        }
        let start_signed = self.rel(seq);
        let end_signed = start_signed + data.len() as i128;
        if end_signed <= self.delivered as i128 {
            return SegmentOut::Empty; // pure retransmission (or entirely pre-ISN)
        }
        // Trim any prefix that was already delivered — including bytes
        // before the stream start (negative offsets).
        let (start, skip) = if start_signed < self.delivered as i128 {
            let skip = (self.delivered as i128 - start_signed) as usize;
            (self.delivered, skip)
        } else {
            (start_signed as u64, 0)
        };
        let data = &data[skip..];

        if start == self.delivered {
            // Fast path: in-order data; then drain whatever it unblocked.
            self.delivered += data.len() as u64;
            let mut extra = Vec::new();
            self.drain_pending(&mut extra);
            self.next_seq = self.isn.wrapping_add(self.delivered as u32);
            if extra.is_empty() {
                SegmentOut::Passthrough { skip }
            } else {
                let mut out = data.to_vec();
                out.extend_from_slice(&extra);
                SegmentOut::Owned(out)
            }
        } else {
            self.buffer_segment(start, data);
            // Fail-safe: if the out-of-order buffer exceeds its budget,
            // declare the missing range a gap and deliver what we have.
            if self.buffered > self.max_buffer {
                match self.force_gap() {
                    v if v.is_empty() => SegmentOut::Empty,
                    v => SegmentOut::Owned(v),
                }
            } else {
                SegmentOut::Empty
            }
        }
    }

    /// Declares everything up to the first buffered segment a gap and
    /// resumes delivery there. Returns the data that becomes deliverable.
    pub fn force_gap(&mut self) -> Vec<u8> {
        let Some((&first, _)) = self.pending.iter().next() else {
            return Vec::new();
        };
        if first > self.delivered {
            self.gaps += first - self.delivered;
            self.delivered = first;
        }
        let mut out = Vec::new();
        self.drain_pending(&mut out);
        self.next_seq = self.isn.wrapping_add(self.delivered as u32);
        out
    }

    fn buffer_segment(&mut self, start: u64, data: &[u8]) {
        // First-writer-wins: clip against existing buffered ranges.
        let mut start = start;
        let mut data = data.to_vec();
        // Clip against the predecessor range, if it overlaps.
        if let Some((&ps, pv)) = self.pending.range(..=start).next_back() {
            let pend = ps + pv.len() as u64;
            if pend > start {
                let skip = (pend - start).min(data.len() as u64) as usize;
                data.drain(..skip);
                start = pend;
            }
        }
        // Clip against successors.
        while !data.is_empty() {
            let end = start + data.len() as u64;
            let next = self
                .pending
                .range(start..end)
                .next()
                .map(|(&s, v)| (s, v.len() as u64));
            match next {
                None => {
                    self.buffered += data.len();
                    self.pending.insert(start, data);
                    break;
                }
                Some((ns, nlen)) => {
                    // Insert the part before the existing range.
                    let head_len = (ns - start) as usize;
                    if head_len > 0 {
                        let head: Vec<u8> = data.drain(..head_len).collect();
                        self.buffered += head.len();
                        self.pending.insert(start, head);
                    }
                    // Skip the part covered by the existing range.
                    let covered = (nlen as usize).min(data.len());
                    data.drain(..covered);
                    start = ns + nlen;
                }
            }
        }
    }

    fn drain_pending(&mut self, out: &mut Vec<u8>) {
        while let Some((&s, _)) = self.pending.iter().next() {
            if s > self.delivered {
                break;
            }
            let (s, v) = self.pending.pop_first().expect("peeked entry");
            self.buffered -= v.len();
            let vend = s + v.len() as u64;
            if vend <= self.delivered {
                continue; // fully duplicate
            }
            let skip = (self.delivered - s) as usize;
            out.extend_from_slice(&v[skip..]);
            self.delivered = vend;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_in_order(isn: u32, segments: &[(u32, &[u8])]) -> (Vec<u8>, u64) {
        let mut r = StreamReassembler::new(isn);
        let mut out = Vec::new();
        for (seq, data) in segments {
            out.extend(r.segment(*seq, data));
        }
        (out, r.gap_bytes())
    }

    #[test]
    fn in_order_stream() {
        let (out, gaps) = collect_in_order(1000, &[(1001, b"hello "), (1007, b"world")]);
        assert_eq!(out, b"hello world");
        assert_eq!(gaps, 0);
    }

    #[test]
    fn out_of_order_delivery() {
        let (out, _) = collect_in_order(0, &[(7, b"world"), (1, b"hello ")]);
        assert_eq!(out, b"hello world");
    }

    #[test]
    fn retransmission_ignored() {
        let (out, _) =
            collect_in_order(0, &[(1, b"abc"), (1, b"abc"), (4, b"def"), (1, b"abcdef")]);
        assert_eq!(out, b"abcdef");
    }

    #[test]
    fn overlapping_segment_trimmed() {
        // Second segment overlaps the tail of the first.
        let (out, _) = collect_in_order(0, &[(1, b"abcd"), (3, b"cdEF")]);
        assert_eq!(out, b"abcdEF");
    }

    #[test]
    fn inconsistent_retransmission_first_wins() {
        // Buffered out-of-order data keeps its first contents.
        let mut r = StreamReassembler::new(0);
        assert!(r.segment(5, b"XY").is_empty());
        assert!(r.segment(5, b"AB").is_empty()); // conflicting retransmit
        let out = r.segment(1, b"0123");
        assert_eq!(out, b"0123XY");
    }

    #[test]
    fn interleaved_holes_fill_in_any_order() {
        let mut r = StreamReassembler::new(100);
        let mut out = Vec::new();
        out.extend(r.segment(109, b"22")); // hole at 101..109
        out.extend(r.segment(105, b"11")); // two holes now
        out.extend(r.segment(101, b"00xx")); // fills first hole partially
        out.extend(r.segment(107, b"yy")); // bridges to 109
        assert_eq!(out, b"00xx11yy22");
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn sequence_wraparound() {
        let isn = u32::MAX - 2;
        let mut r = StreamReassembler::new(isn);
        // First byte carries seq isn+1 = u32::MAX - 1.
        let mut out = Vec::new();
        out.extend(r.segment(u32::MAX - 1, b"ab")); // crosses to 0
        out.extend(r.segment(0, b"cd")); // seq wrapped
        assert_eq!(out, b"abcd");
        assert_eq!(r.delivered(), 4);
    }

    #[test]
    fn wraparound_with_out_of_order() {
        let isn = u32::MAX - 10;
        let mut r = StreamReassembler::new(isn);
        let mut out = Vec::new();
        // Send the post-wrap segment first.
        out.extend(r.segment(5, b"tail")); // far ahead, buffered
        out.extend(r.segment(u32::MAX - 9, b"0123456789abcde")); // 15 bytes
        assert_eq!(out, b"0123456789abcdetail");
    }

    #[test]
    fn pre_isn_segment_is_not_aliased_four_gib_ahead() {
        // Regression: a segment from *before* the stream start (classic
        // case: the SYN itself retransmitted with one byte of data, or a
        // stale pre-ISN segment) used to compute a relative offset of
        // ~2^32 under unsigned wraparound disambiguation. It was then
        // buffered ~4 GiB ahead, bloating the out-of-order buffer and
        // corrupting delivery once the stream actually got there.
        let mut r = StreamReassembler::new(1000); // first payload byte: 1001
        assert!(r.segment(1000, b"X").is_empty(), "pre-ISN byte dropped");
        assert_eq!(r.buffered(), 0, "nothing may be buffered 4 GiB ahead");
        assert_eq!(r.segment(1001, b"hello"), b"hello");
        assert_eq!(r.delivered(), 5);
        assert_eq!(r.gap_bytes(), 0);
    }

    #[test]
    fn pre_isn_straddling_segment_is_trimmed_to_stream_start() {
        // A segment starting before the ISN but extending past it keeps
        // only the in-stream suffix.
        let mut r = StreamReassembler::new(1000);
        assert_eq!(r.segment(999, b"??ab"), b"ab"); // 2 pre-ISN bytes trimmed
        assert_eq!(r.delivered(), 2);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn pre_isn_retransmit_near_wrap_boundary() {
        // Same pre-ISN aliasing bug, with the ISN parked just below the
        // 2^32 boundary so both the bogus and the correct interpretation
        // exercise wrap arithmetic.
        let isn = 0xffff_fff0u32;
        let mut r = StreamReassembler::new(isn);
        // Retransmitted SYN (seq == isn) carrying a byte: before stream.
        assert!(r.segment(isn, b"S").is_empty());
        assert_eq!(r.buffered(), 0);
        // Stale segment further before the ISN.
        assert!(r.segment(isn.wrapping_sub(7), b"stale!").is_empty());
        assert_eq!(r.buffered(), 0);
        // Real data still flows, across the wrap.
        let mut out = Vec::new();
        out.extend(r.segment(isn.wrapping_add(1), b"0123456789abcdef")); // 16 bytes, crosses 0
        out.extend(r.segment(1, b"ghij")); // post-wrap continuation
        assert_eq!(out, b"0123456789abcdefghij");
        assert_eq!(r.gap_bytes(), 0);
    }

    #[test]
    fn multi_segment_body_across_wrap_out_of_order() {
        // ISN near u32::MAX with a multi-segment body whose chunks
        // straddle the 2^32 boundary, delivered out of order, including
        // an overlapping retransmission clipped against a predecessor
        // that itself wrapped.
        let isn = 0xffff_fff0u32;
        let mut r = StreamReassembler::new(isn);
        let body: &[u8] = b"AAAAAAAABBBBBBBBCCCCCCCCDDDDDDDD"; // 4 x 8 bytes
        let seqs: Vec<u32> = (0..4).map(|i| isn.wrapping_add(1 + 8 * i)).collect();
        let mut out = Vec::new();
        out.extend(r.segment(seqs[2], &body[16..24])); // pre-wrap tail chunk
        out.extend(r.segment(seqs[3], &body[24..32])); // post-wrap chunk
                                                       // Overlapping retransmit: spans chunks 2+3 with conflicting bytes;
                                                       // first writer wins, so nothing it carries may survive.
        out.extend(r.segment(seqs[2], b"xxxxxxxxyyyyyyyy"));
        assert!(out.is_empty(), "nothing contiguous yet");
        out.extend(r.segment(seqs[0], &body[0..8]));
        out.extend(r.segment(seqs[1], &body[8..16]));
        assert_eq!(out, body);
        assert_eq!(r.delivered(), 32);
        assert_eq!(r.buffered(), 0);
        assert_eq!(r.gap_bytes(), 0);
    }

    #[test]
    fn buffer_budget_forces_gap() {
        let mut r = StreamReassembler::new(0).with_max_buffer(8);
        assert!(r.segment(100, b"ABCDEFGHIJ").is_empty() || true);
        // Budget exceeded: delivery resumes at the buffered segment.
        let out = r.segment(200, b"KL");
        // After forcing, both buffered runs may deliver (with a gap between
        // them counted).
        assert!(r.gap_bytes() > 0);
        let mut all = out;
        all.extend(r.force_gap());
        assert!(all.ends_with(b"KL"));
    }

    #[test]
    fn force_gap_on_empty_is_noop() {
        let mut r = StreamReassembler::new(0);
        assert!(r.force_gap().is_empty());
        assert_eq!(r.gap_bytes(), 0);
    }

    #[test]
    fn empty_segments_ignored() {
        let mut r = StreamReassembler::new(0);
        assert!(r.segment(1, b"").is_empty());
        assert_eq!(r.delivered(), 0);
    }

    #[test]
    fn segment_ref_passthrough_on_in_order_data() {
        let mut r = StreamReassembler::new(0);
        assert_eq!(
            r.segment_ref(1, b"abc"),
            SegmentOut::Passthrough { skip: 0 }
        );
        assert_eq!(r.delivered(), 3);
        // Retransmitted prefix: the delivery is the new suffix of the slice.
        assert_eq!(
            r.segment_ref(2, b"bcDE"),
            SegmentOut::Passthrough { skip: 2 }
        );
        assert_eq!(r.delivered(), 5);
        // Pure duplicate.
        assert_eq!(r.segment_ref(1, b"abc"), SegmentOut::Empty);
    }

    #[test]
    fn segment_ref_owns_when_draining_buffered_data() {
        let mut r = StreamReassembler::new(0);
        assert_eq!(r.segment_ref(4, b"def"), SegmentOut::Empty); // buffered
        match r.segment_ref(1, b"abc") {
            SegmentOut::Owned(v) => assert_eq!(v, b"abcdef"),
            other => panic!("expected owned merge, got {other:?}"),
        }
    }

    #[test]
    fn segment_ref_agrees_with_segment_on_shuffled_stream() {
        // Differential: the zero-copy API resolved against the caller's
        // slice must equal the copying API byte for byte.
        let chunks: Vec<(u32, Vec<u8>)> = (0..50u32)
            .map(|i| (1 + i * 5, format!("<{i:02}>x").into_bytes()))
            .collect();
        let mut order: Vec<usize> = (0..chunks.len()).collect();
        for i in 0..order.len() {
            order.swap(i, (i * 31 + 7) % chunks.len());
        }
        let mut a = StreamReassembler::new(0);
        let mut b = StreamReassembler::new(0);
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        for &i in &order {
            let (seq, data) = &chunks[i];
            out_a.extend(a.segment(*seq, data));
            match b.segment_ref(*seq, data) {
                SegmentOut::Empty => {}
                SegmentOut::Passthrough { skip } => out_b.extend_from_slice(&data[skip..]),
                SegmentOut::Owned(v) => out_b.extend_from_slice(&v),
            }
        }
        assert_eq!(out_a, out_b);
        assert_eq!(a.delivered(), b.delivered());
    }

    #[test]
    fn large_shuffled_stream_reassembles() {
        // Property-style: a 100-segment stream delivered in a fixed shuffled
        // order must reconstruct exactly.
        let mut segments: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut expected = Vec::new();
        let mut seq = 1u32;
        for i in 0..100u32 {
            let chunk: Vec<u8> = format!("[{i:03}]").into_bytes();
            segments.push((seq, chunk.clone()));
            expected.extend_from_slice(&chunk);
            seq = seq.wrapping_add(chunk.len() as u32);
        }
        // Deterministic shuffle.
        let mut order: Vec<usize> = (0..segments.len()).collect();
        for i in 0..order.len() {
            let j = (i * 7919 + 13) % order.len();
            order.swap(i, j);
        }
        let mut r = StreamReassembler::new(0);
        let mut out = Vec::new();
        for &i in &order {
            let (s, d) = &segments[i];
            out.extend(r.segment(*s, d));
        }
        assert_eq!(out, expected);
        assert_eq!(r.gap_bytes(), 0);
        assert_eq!(r.buffered(), 0);
    }
}
