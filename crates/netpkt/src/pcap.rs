//! Classic libpcap trace format, implemented from the on-disk layout.
//!
//! The evaluation traces are "in libpcap format" captured with tcpdump
//! (§6.1). We support the classic (non-ng) format: a 24-byte global header
//! (magic `0xa1b2c3d4` for microsecond or `0xa1b23c4d` for nanosecond
//! timestamps, either endianness) followed by per-packet records. Only
//! link-type EN10MB (Ethernet, 1) is generated, but readers accept any
//! link type and surface it to the caller.

use std::io::{Read, Write};

use hilti_rt::error::{RtError, RtResult};
use hilti_rt::time::Time;

/// Magic for microsecond-resolution classic pcap.
pub const MAGIC_USEC: u32 = 0xa1b2_c3d4;
/// Magic for nanosecond-resolution classic pcap.
pub const MAGIC_NSEC: u32 = 0xa1b2_3c4d;
/// Link type: IEEE 802.3 Ethernet.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// One captured packet: timestamp plus raw link-layer bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawPacket {
    pub ts: Time,
    pub data: Vec<u8>,
    /// Original wire length (>= data.len() when the capture was truncated).
    pub orig_len: u32,
}

impl RawPacket {
    pub fn new(ts: Time, data: Vec<u8>) -> Self {
        let orig_len = data.len() as u32;
        RawPacket { ts, data, orig_len }
    }
}

/// Streaming reader for classic pcap data.
pub struct PcapReader<R> {
    input: R,
    swapped: bool,
    nanos: bool,
    link_type: u32,
    snaplen: u32,
    packets_read: u64,
}

impl<R: Read> PcapReader<R> {
    /// Parses the global header and prepares to stream packets.
    pub fn new(mut input: R) -> RtResult<Self> {
        let mut hdr = [0u8; 24];
        input
            .read_exact(&mut hdr)
            .map_err(|e| RtError::io(format!("pcap global header: {e}")))?;
        let magic_le = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let magic_be = u32::from_be_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let (swapped, nanos) = match (magic_le, magic_be) {
            (MAGIC_USEC, _) => (false, false),
            (MAGIC_NSEC, _) => (false, true),
            (_, MAGIC_USEC) => (true, false),
            (_, MAGIC_NSEC) => (true, true),
            _ => {
                return Err(RtError::io(format!(
                    "not a pcap file (magic {magic_le:#010x})"
                )))
            }
        };
        let u32_at = |b: &[u8], off: usize| -> u32 {
            let raw = [b[off], b[off + 1], b[off + 2], b[off + 3]];
            if swapped {
                u32::from_be_bytes(raw)
            } else {
                u32::from_le_bytes(raw)
            }
        };
        let snaplen = u32_at(&hdr, 16);
        let link_type = u32_at(&hdr, 20);
        Ok(PcapReader {
            input,
            swapped,
            nanos,
            link_type,
            snaplen,
            packets_read: 0,
        })
    }

    pub fn link_type(&self) -> u32 {
        self.link_type
    }

    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    pub fn packets_read(&self) -> u64 {
        self.packets_read
    }

    fn u32_field(&self, raw: [u8; 4]) -> u32 {
        if self.swapped {
            u32::from_be_bytes(raw)
        } else {
            u32::from_le_bytes(raw)
        }
    }

    /// Reads the next packet; `Ok(None)` at a clean end of file.
    pub fn next_packet(&mut self) -> RtResult<Option<RawPacket>> {
        // Distinguish a clean end of file (zero bytes) from a truncated
        // record header (some but not all 16 bytes).
        let mut rec = [0u8; 16];
        let mut got = 0usize;
        while got < rec.len() {
            match self.input.read(&mut rec[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                Ok(0) => {
                    return Err(RtError::io(format!(
                        "truncated pcap record header ({got} of 16 bytes)"
                    )))
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(RtError::io(format!("pcap record header: {e}"))),
            }
        }
        let sec = self.u32_field([rec[0], rec[1], rec[2], rec[3]]);
        let frac = self.u32_field([rec[4], rec[5], rec[6], rec[7]]);
        let incl_len = self.u32_field([rec[8], rec[9], rec[10], rec[11]]);
        let orig_len = self.u32_field([rec[12], rec[13], rec[14], rec[15]]);
        if incl_len > 256 * 1024 * 1024 {
            return Err(RtError::io(format!("implausible packet length {incl_len}")));
        }
        let mut data = vec![0u8; incl_len as usize];
        self.input
            .read_exact(&mut data)
            .map_err(|e| RtError::io(format!("pcap packet body: {e}")))?;
        // The fractional field must be a valid sub-second count for the
        // file's resolution; out-of-range values (classic symptom: a
        // usec-resolution tool rewriting a nanosecond trace, or vice
        // versa) would otherwise silently push the timestamp into later
        // seconds and reorder the trace.
        let limit = if self.nanos { 1_000_000_000 } else { 1_000_000 };
        if frac >= limit {
            return Err(RtError::io(format!(
                "pcap record {}: fractional timestamp {frac} out of range for {} resolution (must be < {limit})",
                self.packets_read,
                if self.nanos { "nanosecond" } else { "microsecond" },
            )));
        }
        let ns = if self.nanos {
            u64::from(frac)
        } else {
            u64::from(frac) * 1_000
        };
        self.packets_read += 1;
        Ok(Some(RawPacket {
            ts: Time::from_nanos(u64::from(sec) * 1_000_000_000 + ns),
            data,
            orig_len,
        }))
    }

    /// Drains the remaining packets into a vector.
    pub fn collect_packets(&mut self) -> RtResult<Vec<RawPacket>> {
        let mut out = Vec::new();
        while let Some(p) = self.next_packet()? {
            out.push(p);
        }
        Ok(out)
    }
}

/// Writer producing classic little-endian pcap, at microsecond (default)
/// or nanosecond timestamp resolution.
pub struct PcapWriter<W> {
    output: W,
    nanos: bool,
    packets_written: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header for the given link type (microsecond
    /// resolution, `MAGIC_USEC`).
    pub fn new(output: W, link_type: u32) -> RtResult<Self> {
        Self::with_resolution(output, link_type, false)
    }

    /// Like [`PcapWriter::new`] but emitting nanosecond-resolution records
    /// under `MAGIC_NSEC`, preserving full `Time` precision.
    pub fn new_nanos(output: W, link_type: u32) -> RtResult<Self> {
        Self::with_resolution(output, link_type, true)
    }

    fn with_resolution(mut output: W, link_type: u32, nanos: bool) -> RtResult<Self> {
        let magic = if nanos { MAGIC_NSEC } else { MAGIC_USEC };
        let mut hdr = Vec::with_capacity(24);
        hdr.extend_from_slice(&magic.to_le_bytes());
        hdr.extend_from_slice(&2u16.to_le_bytes()); // version major
        hdr.extend_from_slice(&4u16.to_le_bytes()); // version minor
        hdr.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        hdr.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        hdr.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
        hdr.extend_from_slice(&link_type.to_le_bytes());
        output
            .write_all(&hdr)
            .map_err(|e| RtError::io(format!("pcap header write: {e}")))?;
        Ok(PcapWriter {
            output,
            nanos,
            packets_written: 0,
        })
    }

    /// Appends one packet record.
    pub fn write_packet(&mut self, pkt: &RawPacket) -> RtResult<()> {
        let sec = (pkt.ts.nanos() / 1_000_000_000) as u32;
        let subsec_ns = pkt.ts.nanos() % 1_000_000_000;
        let frac = if self.nanos {
            subsec_ns as u32
        } else {
            (subsec_ns / 1_000) as u32
        };
        let mut rec = Vec::with_capacity(16 + pkt.data.len());
        rec.extend_from_slice(&sec.to_le_bytes());
        rec.extend_from_slice(&frac.to_le_bytes());
        rec.extend_from_slice(&(pkt.data.len() as u32).to_le_bytes());
        rec.extend_from_slice(&pkt.orig_len.to_le_bytes());
        rec.extend_from_slice(&pkt.data);
        self.output
            .write_all(&rec)
            .map_err(|e| RtError::io(format!("pcap record write: {e}")))?;
        self.packets_written += 1;
        Ok(())
    }

    pub fn packets_written(&self) -> u64 {
        self.packets_written
    }

    pub fn into_inner(self) -> W {
        self.output
    }
}

/// Serializes packets to an in-memory pcap image.
pub fn to_pcap_bytes(packets: &[RawPacket]) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new(), LINKTYPE_ETHERNET).expect("vec write cannot fail");
    for p in packets {
        w.write_packet(p).expect("vec write cannot fail");
    }
    w.into_inner()
}

/// Parses all packets from an in-memory pcap image.
pub fn from_pcap_bytes(bytes: &[u8]) -> RtResult<Vec<RawPacket>> {
    PcapReader::new(bytes)?.collect_packets()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<RawPacket> {
        vec![
            RawPacket::new(Time::from_nanos(1_000_001_000), vec![1, 2, 3, 4]),
            RawPacket::new(Time::from_nanos(2_500_000_000), vec![5; 60]),
            RawPacket::new(Time::from_nanos(2_500_000_000), vec![]),
        ]
    }

    #[test]
    fn roundtrip_via_memory() {
        let pkts = sample_packets();
        let img = to_pcap_bytes(&pkts);
        let back = from_pcap_bytes(&img).unwrap();
        assert_eq!(back, pkts);
    }

    #[test]
    fn header_fields_visible() {
        let img = to_pcap_bytes(&sample_packets());
        let r = PcapReader::new(&img[..]).unwrap();
        assert_eq!(r.link_type(), LINKTYPE_ETHERNET);
        assert_eq!(r.snaplen(), 65535);
    }

    #[test]
    fn big_endian_input_accepted() {
        // Hand-build a big-endian (swapped) header + one record.
        let mut img = Vec::new();
        img.extend_from_slice(&MAGIC_USEC.to_be_bytes());
        img.extend_from_slice(&2u16.to_be_bytes());
        img.extend_from_slice(&4u16.to_be_bytes());
        img.extend_from_slice(&0u32.to_be_bytes());
        img.extend_from_slice(&0u32.to_be_bytes());
        img.extend_from_slice(&65535u32.to_be_bytes());
        img.extend_from_slice(&1u32.to_be_bytes());
        img.extend_from_slice(&7u32.to_be_bytes()); // sec
        img.extend_from_slice(&5u32.to_be_bytes()); // usec
        img.extend_from_slice(&3u32.to_be_bytes()); // incl
        img.extend_from_slice(&3u32.to_be_bytes()); // orig
        img.extend_from_slice(&[9, 9, 9]);
        let pkts = from_pcap_bytes(&img).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].ts, Time::from_nanos(7_000_005_000));
        assert_eq!(pkts[0].data, vec![9, 9, 9]);
    }

    #[test]
    fn nanosecond_magic() {
        let mut img = Vec::new();
        img.extend_from_slice(&MAGIC_NSEC.to_le_bytes());
        img.extend_from_slice(&[0u8; 20]);
        img.extend_from_slice(&1u32.to_le_bytes()); // sec
        img.extend_from_slice(&42u32.to_le_bytes()); // nsec
        img.extend_from_slice(&0u32.to_le_bytes());
        img.extend_from_slice(&0u32.to_le_bytes());
        let pkts = from_pcap_bytes(&img).unwrap();
        assert_eq!(pkts[0].ts, Time::from_nanos(1_000_000_042));
    }

    #[test]
    fn roundtrip_both_magics_identical_times() {
        // The same packets written at microsecond and nanosecond
        // resolution must read back with identical timestamps (the
        // samples are quantized to whole microseconds, so neither
        // resolution loses precision).
        let pkts = sample_packets();
        let mut w_usec = PcapWriter::new(Vec::new(), LINKTYPE_ETHERNET).unwrap();
        let mut w_nsec = PcapWriter::new_nanos(Vec::new(), LINKTYPE_ETHERNET).unwrap();
        for p in &pkts {
            w_usec.write_packet(p).unwrap();
            w_nsec.write_packet(p).unwrap();
        }
        let back_usec = from_pcap_bytes(&w_usec.into_inner()).unwrap();
        let back_nsec = from_pcap_bytes(&w_nsec.into_inner()).unwrap();
        assert_eq!(back_usec, pkts);
        assert_eq!(back_nsec, pkts);
        assert_eq!(back_usec, back_nsec);
    }

    #[test]
    fn nanosecond_writer_preserves_sub_usec_precision() {
        let p = RawPacket::new(Time::from_nanos(3_000_000_123), vec![1]);
        let mut w = PcapWriter::new_nanos(Vec::new(), LINKTYPE_ETHERNET).unwrap();
        w.write_packet(&p).unwrap();
        let back = from_pcap_bytes(&w.into_inner()).unwrap();
        assert_eq!(back[0].ts, Time::from_nanos(3_000_000_123));
    }

    fn img_with_frac(magic: u32, frac: u32) -> Vec<u8> {
        let mut img = Vec::new();
        img.extend_from_slice(&magic.to_le_bytes());
        img.extend_from_slice(&[0u8; 20]);
        img.extend_from_slice(&1u32.to_le_bytes()); // sec
        img.extend_from_slice(&frac.to_le_bytes());
        img.extend_from_slice(&0u32.to_le_bytes()); // incl_len
        img.extend_from_slice(&0u32.to_le_bytes()); // orig_len
        img
    }

    #[test]
    fn out_of_range_fractional_timestamps_rejected() {
        // Regression: a usec-resolution record with frac >= 1e6 (or nsec
        // with frac >= 1e9) silently overflowed into later seconds,
        // reordering the trace, instead of being rejected.
        assert!(from_pcap_bytes(&img_with_frac(MAGIC_USEC, 1_000_000)).is_err());
        assert!(from_pcap_bytes(&img_with_frac(MAGIC_USEC, u32::MAX)).is_err());
        assert!(from_pcap_bytes(&img_with_frac(MAGIC_NSEC, 1_000_000_000)).is_err());
        assert!(from_pcap_bytes(&img_with_frac(MAGIC_NSEC, u32::MAX)).is_err());
        // The maximal in-range values are fine.
        let usec_max = from_pcap_bytes(&img_with_frac(MAGIC_USEC, 999_999)).unwrap();
        assert_eq!(usec_max[0].ts, Time::from_nanos(1_999_999_000));
        let nsec_max = from_pcap_bytes(&img_with_frac(MAGIC_NSEC, 999_999_999)).unwrap();
        assert_eq!(nsec_max[0].ts, Time::from_nanos(1_999_999_999));
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(from_pcap_bytes(&[0u8; 24]).is_err());
        assert!(from_pcap_bytes(b"short").is_err());
    }

    #[test]
    fn truncated_record_is_error() {
        let mut img = to_pcap_bytes(&sample_packets());
        img.truncate(img.len() - 2);
        assert!(from_pcap_bytes(&img).is_err());
    }

    #[test]
    fn implausible_length_rejected() {
        let mut img = Vec::new();
        img.extend_from_slice(&MAGIC_USEC.to_le_bytes());
        img.extend_from_slice(&[0u8; 20]);
        img.extend_from_slice(&0u32.to_le_bytes());
        img.extend_from_slice(&0u32.to_le_bytes());
        img.extend_from_slice(&u32::MAX.to_le_bytes()); // incl_len
        img.extend_from_slice(&0u32.to_le_bytes());
        assert!(from_pcap_bytes(&img).is_err());
    }

    #[test]
    fn truncated_capture_preserves_orig_len() {
        let mut p = RawPacket::new(Time::from_secs(1), vec![0u8; 64]);
        p.orig_len = 1500;
        let back = from_pcap_bytes(&to_pcap_bytes(&[p.clone()])).unwrap();
        assert_eq!(back[0].orig_len, 1500);
        assert_eq!(back[0].data.len(), 64);
    }
}
