//! Log-file records and the normalization used by the agreement metrics.
//!
//! The evaluation compares `http.log`, `files.log` and `dns.log` output
//! between parser stacks and between script engines (Tables 2 and 3). The
//! paper first *normalizes* logs "to account for a number of minor expected
//! differences, including unique'ing them so that each entry appears only
//! once", then reports the fraction of one side's entries that have an
//! identical instance on the other side. [`normalize`] and [`agreement`]
//! implement exactly that procedure.

use hilti_rt::time::Time;

use crate::events::ConnId;

/// One `http.log` entry (the fields Bro's default HTTP script records that
/// our scripts reproduce).
#[derive(Clone, Debug, PartialEq)]
pub struct HttpLogEntry {
    pub ts: Time,
    pub uid: String,
    pub id: ConnId,
    pub method: String,
    pub uri: String,
    pub version: String,
    pub status: Option<u32>,
    pub reason: String,
    pub request_len: u64,
    pub response_len: u64,
    pub mime_type: Option<String>,
    pub host: Option<String>,
}

impl HttpLogEntry {
    /// Tab-separated rendering, one line per entry.
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.ts,
            self.uid,
            self.id.orig_h,
            self.id.resp_h,
            self.method,
            self.host.as_deref().unwrap_or("-"),
            self.uri,
            self.version,
            self.status
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            self.reason,
            self.request_len,
            self.response_len,
        ) + &format!("\t{}", self.mime_type.as_deref().unwrap_or("-"))
    }
}

/// One `files.log` entry.
#[derive(Clone, Debug, PartialEq)]
pub struct FilesLogEntry {
    pub ts: Time,
    pub uid: String,
    pub mime_type: Option<String>,
    pub size: u64,
    pub sha1: String,
}

impl FilesLogEntry {
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}",
            self.ts,
            self.uid,
            self.mime_type.as_deref().unwrap_or("-"),
            self.size,
            self.sha1,
        )
    }
}

/// One `dns.log` entry.
#[derive(Clone, Debug, PartialEq)]
pub struct DnsLogEntry {
    pub ts: Time,
    pub uid: String,
    pub id: ConnId,
    pub trans_id: u16,
    pub query: String,
    pub qtype_name: String,
    pub rcode_name: String,
    pub answers: Vec<String>,
    pub ttls: Vec<u32>,
}

impl DnsLogEntry {
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.ts,
            self.uid,
            self.id.orig_h,
            self.id.resp_h,
            self.trans_id,
            self.query,
            self.qtype_name,
            self.rcode_name,
            if self.answers.is_empty() {
                "-".to_string()
            } else {
                self.answers.join(",")
            },
        ) + &format!(
            "\t{}",
            if self.ttls.is_empty() {
                "-".to_string()
            } else {
                self.ttls
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            }
        )
    }
}

/// Normalizes log lines for comparison: strips volatile columns
/// (timestamps, uids — they legitimately differ run-to-run in ordering and
/// identifier assignment), sorts, and uniques. Mirrors §6.4's normalization
/// ("adjustments for slight timing and ordering differences ... unique'ing
/// them so that each entry appears only once").
pub fn normalize(lines: &[String]) -> Vec<String> {
    let mut out: Vec<String> = lines
        .iter()
        .map(|l| {
            // Drop the first two tab-separated fields (ts, uid) when
            // present; keep the semantic remainder.
            let mut parts = l.splitn(3, '\t');
            let _ts = parts.next();
            let _uid = parts.next();
            parts.next().unwrap_or("").to_owned()
        })
        .filter(|l| !l.is_empty())
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Result of comparing two normalized logs.
#[derive(Clone, Debug, PartialEq)]
pub struct Agreement {
    pub total_a: usize,
    pub total_b: usize,
    pub identical: usize,
    /// Fraction of side A's entries with an identical instance on side B.
    pub fraction: f64,
}

impl Agreement {
    pub fn percent(&self) -> f64 {
        self.fraction * 100.0
    }
}

/// Computes the Table 2/3 agreement metric between two raw logs: normalize
/// both sides, then count side A's entries that appear identically in B.
pub fn agreement(a: &[String], b: &[String]) -> Agreement {
    let na = normalize(a);
    let nb = normalize(b);
    let set_b: std::collections::HashSet<&String> = nb.iter().collect();
    let identical = na.iter().filter(|l| set_b.contains(l)).count();
    let fraction = if na.is_empty() {
        1.0
    } else {
        identical as f64 / na.len() as f64
    };
    Agreement {
        total_a: na.len(),
        total_b: nb.len(),
        identical,
        fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilti_rt::addr::Port;

    fn conn_id() -> ConnId {
        ConnId {
            orig_h: "10.0.0.1".parse().unwrap(),
            orig_p: Port::tcp(40000),
            resp_h: "1.2.3.4".parse().unwrap(),
            resp_p: Port::tcp(80),
        }
    }

    #[test]
    fn http_line_renders_all_fields() {
        let e = HttpLogEntry {
            ts: Time::from_secs(10),
            uid: "C1".into(),
            id: conn_id(),
            method: "GET".into(),
            uri: "/index.html".into(),
            version: "1.1".into(),
            status: Some(200),
            reason: "OK".into(),
            request_len: 0,
            response_len: 512,
            mime_type: Some("text/html".into()),
            host: Some("example.com".into()),
        };
        let line = e.to_line();
        assert!(line.contains("GET"));
        assert!(line.contains("/index.html"));
        assert!(line.contains("200"));
        assert!(line.contains("text/html"));
        assert!(line.contains("example.com"));
        assert_eq!(line.matches('\t').count(), 12);
    }

    #[test]
    fn missing_fields_render_dashes() {
        let e = HttpLogEntry {
            ts: Time::ZERO,
            uid: "C1".into(),
            id: conn_id(),
            method: "GET".into(),
            uri: "/".into(),
            version: "1.1".into(),
            status: None,
            reason: String::new(),
            request_len: 0,
            response_len: 0,
            mime_type: None,
            host: None,
        };
        let line = e.to_line();
        assert!(line.contains("\t-\t")); // at least one dash column
    }

    #[test]
    fn dns_line_joins_answers() {
        let e = DnsLogEntry {
            ts: Time::ZERO,
            uid: "C2".into(),
            id: conn_id(),
            trans_id: 99,
            query: "example.com".into(),
            qtype_name: "A".into(),
            rcode_name: "NOERROR".into(),
            answers: vec!["1.2.3.4".into(), "5.6.7.8".into()],
            ttls: vec![300, 600],
        };
        let line = e.to_line();
        assert!(line.contains("1.2.3.4,5.6.7.8"));
        assert!(line.contains("300,600"));
    }

    #[test]
    fn empty_answers_render_dash() {
        let e = DnsLogEntry {
            ts: Time::ZERO,
            uid: "C2".into(),
            id: conn_id(),
            trans_id: 1,
            query: "q".into(),
            qtype_name: "A".into(),
            rcode_name: "NXDOMAIN".into(),
            answers: vec![],
            ttls: vec![],
        };
        let line = e.to_line();
        assert!(line.ends_with("-\t-") || line.ends_with("-"));
    }

    #[test]
    fn normalize_strips_ts_and_uid() {
        let lines = vec![
            "1.000000\tC1\tGET\t/a".to_string(),
            "2.000000\tC2\tGET\t/a".to_string(),
            "1.500000\tC3\tGET\t/b".to_string(),
        ];
        let n = normalize(&lines);
        assert_eq!(n, vec!["GET\t/a".to_string(), "GET\t/b".to_string()]);
    }

    #[test]
    fn agreement_metric() {
        let a = vec![
            "1\tC1\tx".to_string(),
            "2\tC2\ty".to_string(),
            "3\tC3\tz".to_string(),
        ];
        let b = vec![
            "9\tD1\tx".to_string(),
            "8\tD2\ty".to_string(),
            "7\tD3\tw".to_string(),
        ];
        let ag = agreement(&a, &b);
        assert_eq!(ag.total_a, 3);
        assert_eq!(ag.identical, 2);
        assert!((ag.percent() - 66.666).abs() < 0.1);
    }

    #[test]
    fn agreement_of_identical_logs_is_100() {
        let a = vec!["1\tC\tsame".to_string(); 10];
        let ag = agreement(&a, &a);
        assert_eq!(ag.percent(), 100.0);
        assert_eq!(ag.total_a, 1); // unique'd
    }

    #[test]
    fn agreement_of_empty_is_100() {
        let ag = agreement(&[], &[]);
        assert_eq!(ag.percent(), 100.0);
    }
}
