//! Flow table: 5-tuple connection tracking with TCP state and stream
//! reassembly.
//!
//! The flow table is the stateful core every monitor reimplements (§2): it
//! orients packets into originator/responder direction, tracks the TCP
//! three-way handshake, assigns Bro-style connection uids, and hands payload
//! through per-direction [`StreamReassembler`]s to a pluggable application
//! consumer. UDP "flows" are tracked by tuple only.

use std::collections::HashMap;
use std::sync::Arc;

use hilti_rt::addr::{Addr, Port};
use hilti_rt::hashutil::flow_hash;
use hilti_rt::time::Time;

use crate::decode::{DecodedFrame, DecodedPacket, Transport};
use crate::events::ConnId;
use crate::reassembly::{SegmentOut, StreamReassembler};
use crate::trace::PayloadRef;

/// TCP connection establishment state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpState {
    /// SYN seen from the originator.
    SynSent,
    /// SYN+ACK seen from the responder.
    SynAckSeen,
    /// Handshake complete (final ACK seen).
    Established,
    /// FIN or RST observed.
    Closing,
}

/// Per-flow record. The uid is interned (`Arc<str>`): every delivery,
/// timer, owner-map entry and parser key shares one allocation instead
/// of cloning the string per packet.
pub struct Flow {
    pub id: ConnId,
    pub uid: Arc<str>,
    pub first_ts: Time,
    pub last_ts: Time,
    pub tcp_state: Option<TcpState>,
    /// Reassembler for originator→responder payload (TCP only).
    pub orig_stream: Option<StreamReassembler>,
    /// Reassembler for responder→originator payload (TCP only).
    pub resp_stream: Option<StreamReassembler>,
    pub orig_pkts: u64,
    pub resp_pkts: u64,
}

/// What the flow table tells its consumer about one packet.
pub struct FlowDelivery<'a> {
    pub flow: &'a Flow,
    /// True when this packet travels originator→responder.
    pub is_orig: bool,
    /// True exactly once, when the TCP handshake completes.
    pub established_now: bool,
    /// Newly in-order application payload (TCP: reassembled; UDP: the
    /// datagram itself).
    pub payload: Vec<u8>,
    /// True when this packet ends the connection (FIN/RST), once.
    pub finished_now: bool,
}

/// Zero-copy counterpart of [`FlowDelivery`], produced by
/// [`FlowTable::process_shared`]: the payload is a [`PayloadRef`] into
/// the shared trace arena whenever the bytes are an in-order slice of
/// the packet just processed, and an owned buffer only when reassembly
/// had to merge buffered segments.
pub struct FlowDeliveryShared<'a> {
    pub flow: &'a Flow,
    pub is_orig: bool,
    pub established_now: bool,
    pub payload: PayloadRef,
    pub finished_now: bool,
}

/// The flow table.
pub struct FlowTable {
    flows: HashMap<(u64, Addr, Port, Addr, Port), Flow>,
    uid_counter: u64,
    established_total: u64,
}

impl FlowTable {
    pub fn new() -> Self {
        FlowTable {
            flows: HashMap::new(),
            uid_counter: 0,
            established_total: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.flows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Number of fully established TCP connections observed.
    pub fn established_total(&self) -> u64 {
        self.established_total
    }

    /// Canonical lookup key: endpoints sorted, plus the symmetric hash.
    fn key(
        src: Addr,
        dst: Addr,
        sport: u16,
        dport: u16,
        sp: Port,
        dp: Port,
    ) -> (u64, Addr, Port, Addr, Port) {
        let h = flow_hash(src, sp, dst, dp);
        if (src.raw(), sport) <= (dst.raw(), dport) {
            (h, src, sp, dst, dp)
        } else {
            (h, dst, dp, src, sp)
        }
    }

    /// Processes one decoded packet, returning the delivery description.
    pub fn process(&mut self, pkt: &DecodedPacket) -> FlowDelivery<'_> {
        let (flow_idx, is_orig, established_now, finished_now, seg) = self.process_core(
            pkt.ts,
            pkt.src,
            pkt.dst,
            pkt.sport,
            pkt.dport,
            &pkt.transport,
            &pkt.payload,
        );
        let payload = match seg {
            SegmentOut::Empty => Vec::new(),
            SegmentOut::Passthrough { skip } => pkt.payload[skip..].to_vec(),
            SegmentOut::Owned(v) => v,
        };
        FlowDelivery {
            flow: self.flows.get(&flow_idx).expect("flow just touched"),
            is_orig,
            established_now,
            payload,
            finished_now,
        }
    }

    /// Zero-copy variant of [`process`](Self::process): the caller hands
    /// the decoded frame plus the frame's byte offset within the shared
    /// trace arena, and in-order payload comes back as an `(offset, len)`
    /// [`PayloadRef`] into that arena instead of a fresh allocation.
    pub fn process_shared<'a>(
        &'a mut self,
        frame: &DecodedFrame,
        frame_data: &[u8],
        frame_base: u64,
    ) -> FlowDeliveryShared<'a> {
        let payload_bytes = &frame_data[frame.payload.clone()];
        let (flow_idx, is_orig, established_now, finished_now, seg) = self.process_core(
            frame.ts,
            frame.src,
            frame.dst,
            frame.sport,
            frame.dport,
            &frame.transport,
            payload_bytes,
        );
        let payload = match seg {
            SegmentOut::Empty => PayloadRef::Empty,
            SegmentOut::Passthrough { skip } => {
                let len = (payload_bytes.len() - skip) as u32;
                if len == 0 {
                    PayloadRef::Empty
                } else {
                    PayloadRef::Shared {
                        off: frame_base + (frame.payload.start + skip) as u64,
                        len,
                    }
                }
            }
            SegmentOut::Owned(v) => PayloadRef::Owned(v),
        };
        FlowDeliveryShared {
            flow: self.flows.get(&flow_idx).expect("flow just touched"),
            is_orig,
            established_now,
            payload,
            finished_now,
        }
    }

    /// The shared per-packet state machine: flow lookup/creation,
    /// orientation, handshake and teardown tracking, and reassembly. The
    /// payload comes back as a [`SegmentOut`] so each frontend decides
    /// whether to materialize it.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn process_core(
        &mut self,
        ts: Time,
        src: Addr,
        dst: Addr,
        sport: u16,
        dport: u16,
        transport: &Transport,
        payload: &[u8],
    ) -> ((u64, Addr, Port, Addr, Port), bool, bool, bool, SegmentOut) {
        let proto = transport.protocol();
        let sp = Port {
            number: sport,
            protocol: proto,
        };
        let dp = Port {
            number: dport,
            protocol: proto,
        };
        let key = Self::key(src, dst, sport, dport, sp, dp);
        let uid_counter = &mut self.uid_counter;
        let flow = self.flows.entry(key).or_insert_with(|| {
            *uid_counter += 1;
            // Orientation: the first packet's sender is the originator
            // (for TCP with SYN this is the active opener).
            Flow {
                id: ConnId {
                    orig_h: src,
                    orig_p: sp,
                    resp_h: dst,
                    resp_p: dp,
                },
                uid: format!("C{}{:x}", uid_counter, key.0 & 0xffff_ffff).into(),
                first_ts: ts,
                last_ts: ts,
                tcp_state: None,
                orig_stream: None,
                resp_stream: None,
                orig_pkts: 0,
                resp_pkts: 0,
            }
        });
        flow.last_ts = ts;
        let is_orig = src == flow.id.orig_h && sp == flow.id.orig_p;
        if is_orig {
            flow.orig_pkts += 1;
        } else {
            flow.resp_pkts += 1;
        }

        let mut established_now = false;
        let mut finished_now = false;
        let seg = match transport {
            Transport::Udp => {
                if payload.is_empty() {
                    SegmentOut::Empty
                } else {
                    SegmentOut::Passthrough { skip: 0 }
                }
            }
            Transport::Tcp(tcp) => {
                // Handshake tracking.
                match (flow.tcp_state, tcp.syn(), tcp.ack_flag(), is_orig) {
                    (None, true, false, true) => {
                        flow.tcp_state = Some(TcpState::SynSent);
                        flow.orig_stream = Some(StreamReassembler::new(tcp.seq));
                    }
                    (Some(TcpState::SynSent), true, true, false) => {
                        flow.tcp_state = Some(TcpState::SynAckSeen);
                        flow.resp_stream = Some(StreamReassembler::new(tcp.seq));
                    }
                    (Some(TcpState::SynAckSeen), false, true, true) => {
                        flow.tcp_state = Some(TcpState::Established);
                        established_now = true;
                        self.established_total += 1;
                    }
                    _ => {}
                }
                if (tcp.fin() || tcp.rst())
                    && flow.tcp_state.is_some()
                    && flow.tcp_state != Some(TcpState::Closing)
                {
                    flow.tcp_state = Some(TcpState::Closing);
                    finished_now = true;
                }
                // Payload through the per-direction reassembler. Midstream
                // flows (no SYN observed) get a reassembler seeded on first
                // data, so partial connections still parse — real traces
                // contain plenty of those (§6.1's "crud").
                let stream = if is_orig {
                    &mut flow.orig_stream
                } else {
                    &mut flow.resp_stream
                };
                if !payload.is_empty() {
                    let r = stream
                        .get_or_insert_with(|| StreamReassembler::new(tcp.seq.wrapping_sub(1)));
                    r.segment_ref(tcp.seq, payload)
                } else {
                    SegmentOut::Empty
                }
            }
        };
        (key, is_orig, established_now, finished_now, seg)
    }

    /// Iterates over all live flows.
    pub fn flows(&self) -> impl Iterator<Item = &Flow> {
        self.flows.values()
    }

    /// Removes flows idle since before `cutoff`; returns how many.
    pub fn expire_idle(&mut self, cutoff: Time) -> usize {
        self.expire_idle_uids(cutoff).len()
    }

    /// Removes flows idle since before `cutoff`, returning their uids in
    /// sorted order so callers can tear down per-flow analyzer state
    /// deterministically.
    pub fn expire_idle_uids(&mut self, cutoff: Time) -> Vec<Arc<str>> {
        let mut dead = Vec::new();
        self.flows.retain(|_, f| {
            if f.last_ts >= cutoff {
                true
            } else {
                dead.push(f.uid.clone());
                false
            }
        });
        dead.sort();
        dead
    }
}

impl Default for FlowTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Stable, symmetric shard hash over a decoded packet's 5-tuple: both
/// directions of a connection map to the same value, so `shard_hash(p) % N`
/// pins every packet of a flow to one shard — the paper's hash-based
/// virtual-thread placement (§3.2) applied to the analysis pipeline. The
/// value is independent of worker count, platform, and process (FNV-1a
/// with an avalanche finalizer; no per-process seeding).
pub fn shard_hash(p: &DecodedPacket) -> u64 {
    flow_hash(p.src, p.src_port(), p.dst, p.dst_port())
}

/// [`shard_hash`] over a [`DecodedFrame`] (the zero-copy decode path);
/// same value as for the equivalent [`DecodedPacket`].
pub fn shard_hash_frame(f: &DecodedFrame) -> u64 {
    flow_hash(f.src, f.src_port(), f.dst, f.dst_port())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{build_tcp_frame, build_udp_frame, decode_ethernet, tcp_flags};
    use crate::pcap::RawPacket;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[allow(clippy::too_many_arguments)]
    fn tcp_pkt(
        src: &str,
        dst: &str,
        sport: u16,
        dport: u16,
        seq: u32,
        ack: u32,
        flags: u8,
        payload: &[u8],
        ts: u64,
    ) -> DecodedPacket {
        let frame = build_tcp_frame(a(src), a(dst), sport, dport, seq, ack, flags, payload);
        decode_ethernet(&RawPacket::new(Time::from_secs(ts), frame)).unwrap()
    }

    fn udp_pkt(src: &str, dst: &str, sport: u16, dport: u16, payload: &[u8]) -> DecodedPacket {
        let frame = build_udp_frame(a(src), a(dst), sport, dport, payload);
        decode_ethernet(&RawPacket::new(Time::from_secs(1), frame)).unwrap()
    }

    #[test]
    fn handshake_detected_once() {
        let mut t = FlowTable::new();
        let syn = tcp_pkt(
            "10.0.0.1",
            "1.2.3.4",
            4000,
            80,
            100,
            0,
            tcp_flags::SYN,
            b"",
            1,
        );
        let synack = tcp_pkt(
            "1.2.3.4",
            "10.0.0.1",
            80,
            4000,
            500,
            101,
            tcp_flags::SYN | tcp_flags::ACK,
            b"",
            1,
        );
        let ack = tcp_pkt(
            "10.0.0.1",
            "1.2.3.4",
            4000,
            80,
            101,
            501,
            tcp_flags::ACK,
            b"",
            1,
        );
        assert!(!t.process(&syn).established_now);
        assert!(!t.process(&synack).established_now);
        let d = t.process(&ack);
        assert!(d.established_now);
        assert!(d.is_orig);
        // A second ACK does not re-establish.
        let ack2 = tcp_pkt(
            "10.0.0.1",
            "1.2.3.4",
            4000,
            80,
            101,
            501,
            tcp_flags::ACK,
            b"",
            2,
        );
        assert!(!t.process(&ack2).established_now);
        assert_eq!(t.established_total(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn orientation_follows_first_packet() {
        let mut t = FlowTable::new();
        let syn = tcp_pkt(
            "10.0.0.1",
            "1.2.3.4",
            4000,
            80,
            100,
            0,
            tcp_flags::SYN,
            b"",
            1,
        );
        let d = t.process(&syn);
        assert_eq!(d.flow.id.orig_h, a("10.0.0.1"));
        assert_eq!(d.flow.id.resp_p, Port::tcp(80));
        // Reply packet maps to the same flow, is_orig = false.
        let synack = tcp_pkt(
            "1.2.3.4",
            "10.0.0.1",
            80,
            4000,
            1,
            101,
            tcp_flags::SYN | tcp_flags::ACK,
            b"",
            1,
        );
        let d = t.process(&synack);
        assert!(!d.is_orig);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn payload_is_reassembled_per_direction() {
        let mut t = FlowTable::new();
        t.process(&tcp_pkt(
            "10.0.0.1",
            "1.2.3.4",
            4000,
            80,
            100,
            0,
            tcp_flags::SYN,
            b"",
            1,
        ));
        t.process(&tcp_pkt(
            "1.2.3.4",
            "10.0.0.1",
            80,
            4000,
            500,
            101,
            tcp_flags::SYN | tcp_flags::ACK,
            b"",
            1,
        ));
        t.process(&tcp_pkt(
            "10.0.0.1",
            "1.2.3.4",
            4000,
            80,
            101,
            501,
            tcp_flags::ACK,
            b"",
            1,
        ));
        // Out-of-order client data.
        let d1 = t.process(&tcp_pkt(
            "10.0.0.1",
            "1.2.3.4",
            4000,
            80,
            105,
            501,
            tcp_flags::ACK,
            b"XX",
            2,
        ));
        assert!(d1.payload.is_empty());
        let d2 = t.process(&tcp_pkt(
            "10.0.0.1",
            "1.2.3.4",
            4000,
            80,
            101,
            501,
            tcp_flags::ACK,
            b"GET ",
            2,
        ));
        assert_eq!(d2.payload, b"GET XX");
        // Server data is a separate stream.
        let d3 = t.process(&tcp_pkt(
            "1.2.3.4",
            "10.0.0.1",
            80,
            4000,
            501,
            107,
            tcp_flags::ACK,
            b"HTTP",
            3,
        ));
        assert_eq!(d3.payload, b"HTTP");
        assert!(!d3.is_orig);
    }

    #[test]
    fn fin_finishes_once() {
        let mut t = FlowTable::new();
        t.process(&tcp_pkt(
            "10.0.0.1",
            "1.2.3.4",
            4000,
            80,
            100,
            0,
            tcp_flags::SYN,
            b"",
            1,
        ));
        let fin = tcp_pkt(
            "10.0.0.1",
            "1.2.3.4",
            4000,
            80,
            101,
            0,
            tcp_flags::FIN | tcp_flags::ACK,
            b"",
            5,
        );
        assert!(t.process(&fin).finished_now);
        assert!(!t.process(&fin).finished_now);
    }

    #[test]
    fn midstream_tcp_still_delivers() {
        // No SYN observed (partial capture): payload must still flow.
        let mut t = FlowTable::new();
        let d = t.process(&tcp_pkt(
            "10.0.0.1",
            "1.2.3.4",
            4000,
            80,
            9999,
            1,
            tcp_flags::ACK,
            b"mid",
            1,
        ));
        assert_eq!(d.payload, b"mid");
        assert!(!d.established_now);
    }

    #[test]
    fn udp_flows_deliver_datagrams() {
        let mut t = FlowTable::new();
        let q = udp_pkt("10.0.0.1", "8.8.8.8", 5000, 53, b"query");
        let r = udp_pkt("8.8.8.8", "10.0.0.1", 53, 5000, b"reply");
        let d = t.process(&q);
        assert_eq!(d.payload, b"query");
        assert!(d.is_orig);
        let d = t.process(&r);
        assert_eq!(d.payload, b"reply");
        assert!(!d.is_orig);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_tuples_distinct_flows() {
        let mut t = FlowTable::new();
        t.process(&udp_pkt("10.0.0.1", "8.8.8.8", 5000, 53, b"a"));
        t.process(&udp_pkt("10.0.0.1", "8.8.8.8", 5001, 53, b"b"));
        t.process(&udp_pkt("10.0.0.2", "8.8.8.8", 5000, 53, b"c"));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn uids_are_unique() {
        let mut t = FlowTable::new();
        let mut uids = std::collections::HashSet::new();
        for i in 0..100u16 {
            let d = t.process(&udp_pkt("10.0.0.1", "8.8.8.8", 10000 + i, 53, b"x"));
            uids.insert(d.flow.uid.clone());
        }
        assert_eq!(uids.len(), 100);
    }

    #[test]
    fn idle_expiry() {
        let mut t = FlowTable::new();
        t.process(&udp_pkt("10.0.0.1", "8.8.8.8", 5000, 53, b"a"));
        let mut late = udp_pkt("10.0.0.2", "8.8.8.8", 5000, 53, b"b");
        late.ts = Time::from_secs(100);
        t.process(&late);
        assert_eq!(t.expire_idle(Time::from_secs(50)), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn shard_hash_is_direction_symmetric() {
        // Both directions of a connection must land on the same shard, or
        // per-flow parser state would split across workers.
        let fwd = tcp_pkt(
            "10.0.0.1",
            "192.168.1.9",
            50000,
            80,
            1,
            0,
            tcp_flags::SYN,
            b"",
            1,
        );
        let rev = tcp_pkt(
            "192.168.1.9",
            "10.0.0.1",
            80,
            50000,
            1,
            2,
            tcp_flags::SYN | tcp_flags::ACK,
            b"",
            1,
        );
        assert_eq!(shard_hash(&fwd), shard_hash(&rev));
        let u1 = udp_pkt("10.0.0.1", "8.8.8.8", 5000, 53, b"q");
        let u2 = udp_pkt("8.8.8.8", "10.0.0.1", 53, 5000, b"r");
        assert_eq!(shard_hash(&u1), shard_hash(&u2));
    }

    #[test]
    fn shard_hash_is_stable_across_calls_and_spreads() {
        // Worker placement must not depend on process state: repeated
        // hashing of the same tuple is constant, and distinct tuples
        // spread over small shard counts rather than collapsing.
        let p = udp_pkt("10.0.0.1", "8.8.8.8", 5000, 53, b"q");
        assert_eq!(shard_hash(&p), shard_hash(&p));
        let mut shards = std::collections::HashSet::new();
        for i in 0..64u16 {
            let d = udp_pkt("10.0.0.1", "8.8.8.8", 10000 + i, 53, b"x");
            shards.insert(shard_hash(&d) % 4);
        }
        assert_eq!(shards.len(), 4, "64 tuples must cover all 4 shards");
    }
}
