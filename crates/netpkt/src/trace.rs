//! Shared immutable trace storage for zero-copy dispatch.
//!
//! Copying every packet's payload into a per-delivery `Vec<u8>` is the
//! single biggest allocation source in a replay pipeline. A
//! [`TraceBuffer`] instead loads the whole trace into one immutable,
//! `Arc`-shared byte arena up front; deliveries then carry a
//! [`PayloadRef`] — an `(offset, len)` slice into the arena for the
//! common in-order case, falling back to an owned buffer only when TCP
//! reassembly had to stitch segments together. Worker threads resolve
//! slices against their own `Arc` clone, so the per-packet hot path
//! moves 16 bytes instead of the payload.

use std::sync::Arc;

use hilti_rt::bytestring::{ArenaSlice, FeedChunk};
use hilti_rt::time::Time;

use crate::pcap::RawPacket;

/// Per-frame metadata within the arena.
#[derive(Clone, Copy, Debug)]
struct FrameMeta {
    ts: Time,
    off: u64,
    len: u32,
}

/// An immutable packet trace: every frame's bytes concatenated into one
/// arena, plus per-frame `(timestamp, offset, length)` metadata.
pub struct TraceBuffer {
    data: Vec<u8>,
    frames: Vec<FrameMeta>,
}

impl TraceBuffer {
    /// Loads a trace into a shared arena (one copy, up front).
    pub fn from_packets(packets: &[RawPacket]) -> Arc<TraceBuffer> {
        let total: usize = packets.iter().map(|p| p.data.len()).sum();
        let mut data = Vec::with_capacity(total);
        let mut frames = Vec::with_capacity(packets.len());
        for p in packets {
            frames.push(FrameMeta {
                ts: p.ts,
                off: data.len() as u64,
                len: p.data.len() as u32,
            });
            data.extend_from_slice(&p.data);
        }
        Arc::new(TraceBuffer { data, frames })
    }

    /// Number of frames in the trace.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total arena bytes (the on-wire size of the trace).
    pub fn total_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// One frame's bytes and capture timestamp.
    pub fn frame(&self, i: usize) -> (&[u8], Time) {
        let m = self.frames[i];
        (
            &self.data[m.off as usize..m.off as usize + m.len as usize],
            m.ts,
        )
    }

    /// Arena offset of frame `i` (the base for payload ranges within it).
    pub fn frame_offset(&self, i: usize) -> u64 {
        self.frames[i].off
    }

    /// Resolves an arena range.
    pub fn slice(&self, off: u64, len: u32) -> &[u8] {
        &self.data[off as usize..off as usize + len as usize]
    }

    /// An [`ArenaSlice`] over an arena range: a refcounted window a
    /// `hilti_rt` byte string can hold as a borrowed chunk, keeping this
    /// buffer alive without copying the bytes.
    pub fn arena_slice(self: &Arc<Self>, off: u64, len: u32) -> ArenaSlice {
        let arena: Arc<dyn AsRef<[u8]> + Send + Sync> = Arc::clone(self) as _;
        ArenaSlice::new(arena, off as usize, len as usize)
    }
}

impl AsRef<[u8]> for TraceBuffer {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// A delivery payload: either a slice of the shared [`TraceBuffer`]
/// (zero-copy, the common case) or an owned buffer (TCP reassembly had
/// to merge out-of-order segments).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PayloadRef {
    Empty,
    /// `(offset, len)` into the trace arena.
    Shared {
        off: u64,
        len: u32,
    },
    Owned(Vec<u8>),
}

impl PayloadRef {
    pub fn len(&self) -> usize {
        match self {
            PayloadRef::Empty => 0,
            PayloadRef::Shared { len, .. } => *len as usize,
            PayloadRef::Owned(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The payload bytes, resolved against the trace arena.
    pub fn resolve<'a>(&'a self, buf: &'a TraceBuffer) -> &'a [u8] {
        match self {
            PayloadRef::Empty => &[],
            PayloadRef::Shared { off, len } => buf.slice(*off, *len),
            PayloadRef::Owned(v) => v,
        }
    }

    /// The payload as a parser [`FeedChunk`]: `Shared` payloads become
    /// borrowed arena slices (zero-copy into the parser's byte string),
    /// owned reassembly buffers become copy chunks.
    pub fn feed_chunk<'a>(&'a self, buf: &Arc<TraceBuffer>) -> FeedChunk<'a> {
        match self {
            PayloadRef::Empty => FeedChunk::Copy(&[]),
            PayloadRef::Shared { off, len } => FeedChunk::Borrow(buf.arena_slice(*off, *len)),
            PayloadRef::Owned(v) => FeedChunk::Copy(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(ts: u64, data: &[u8]) -> RawPacket {
        RawPacket::new(Time::from_secs(ts), data.to_vec())
    }

    #[test]
    fn frames_round_trip_through_the_arena() {
        let packets = vec![pkt(1, b"alpha"), pkt(2, b""), pkt(3, b"gamma!")];
        let buf = TraceBuffer::from_packets(&packets);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.total_bytes(), 11);
        for (i, p) in packets.iter().enumerate() {
            let (bytes, ts) = buf.frame(i);
            assert_eq!(bytes, &p.data[..]);
            assert_eq!(ts, p.ts);
        }
        assert_eq!(buf.frame_offset(2), 5);
    }

    #[test]
    fn payload_refs_resolve() {
        let buf = TraceBuffer::from_packets(&[pkt(1, b"hello world")]);
        assert_eq!(
            PayloadRef::Shared { off: 6, len: 5 }.resolve(&buf),
            b"world"
        );
        assert_eq!(PayloadRef::Owned(b"own".to_vec()).resolve(&buf), b"own");
        assert_eq!(PayloadRef::Empty.resolve(&buf), b"");
        assert!(PayloadRef::Empty.is_empty());
        assert_eq!(PayloadRef::Shared { off: 0, len: 5 }.len(), 5);
    }

    #[test]
    fn arena_slices_feed_bytes_without_copy() {
        use hilti_rt::bytestring::Bytes;
        let buf = TraceBuffer::from_packets(&[pkt(1, b"hello world")]);
        let b = Bytes::new();
        b.append_chunk(PayloadRef::Shared { off: 6, len: 5 }.feed_chunk(&buf))
            .unwrap();
        assert_eq!(b.to_vec(), b"world");
        assert_eq!(b.borrowed_len(), 5, "shared payloads are borrowed");
        b.append_chunk(PayloadRef::Owned(b"!".to_vec()).feed_chunk(&buf))
            .unwrap();
        assert_eq!(b.to_vec(), b"world!");
        assert_eq!(b.borrowed_len(), 5, "owned payloads are copied");
    }
}
