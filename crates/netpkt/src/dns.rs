//! The *standard* DNS parser: manually written message decoding.
//!
//! Plays the role of Bro's handwritten DNS analyzer in §6.4: the baseline
//! the generated BinPAC++ DNS parser is compared against. It decodes a
//! complete UDP datagram at a time (the optimization the paper notes the
//! standard parser has over the always-incremental BinPAC++ one).
//!
//! Two deliberate semantic quirks reproduce the paper's Table 2 notes:
//! * TXT records: this parser extracts **only the first** character-string
//!   ("Bro's parser extracts only one entry from TXT records, BinPAC++
//!   all").
//! * It aborts eagerly on malformed input, whereas the BinPAC++ parser "does
//!   not abort as easily for traffic on port 53 that is not in fact DNS".

use std::fmt;

use hilti_rt::addr::Addr;

use crate::events::{dns_types, DnsAnswer};

/// Decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DnsError {
    Truncated,
    BadPointer,
    TooManyJumps,
    NameTooLong,
    ExcessiveCount,
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::Truncated => write!(f, "truncated DNS message"),
            DnsError::BadPointer => write!(f, "bad compression pointer"),
            DnsError::TooManyJumps => write!(f, "compression pointer loop"),
            DnsError::NameTooLong => write!(f, "name exceeds 255 octets"),
            DnsError::ExcessiveCount => write!(f, "implausible record count"),
        }
    }
}

impl std::error::Error for DnsError {}

/// One parsed question.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnsQuestion {
    pub name: String,
    pub qtype: u16,
    pub qclass: u16,
}

/// A parsed DNS message (header + sections).
#[derive(Clone, Debug, PartialEq)]
pub struct DnsMessage {
    pub id: u16,
    pub is_response: bool,
    pub opcode: u8,
    pub rcode: u16,
    pub questions: Vec<DnsQuestion>,
    pub answers: Vec<DnsAnswer>,
    pub authority_count: u16,
    pub additional_count: u16,
}

/// Upper bound on records per section we are willing to decode.
const MAX_RECORDS: u16 = 512;
/// Maximum compression-pointer jumps while reading one name.
const MAX_JUMPS: usize = 32;

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DnsError> {
        let b = *self.data.get(self.pos).ok_or(DnsError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, DnsError> {
        Ok(u16::from_be_bytes([self.u8()?, self.u8()?]))
    }

    fn u32(&mut self) -> Result<u32, DnsError> {
        Ok(u32::from_be_bytes([
            self.u8()?,
            self.u8()?,
            self.u8()?,
            self.u8()?,
        ]))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DnsError> {
        if self.pos + n > self.data.len() {
            return Err(DnsError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a (possibly compressed) domain name starting at the cursor.
    fn name(&mut self) -> Result<String, DnsError> {
        let mut labels: Vec<String> = Vec::new();
        let mut total = 0usize;
        let mut jumps = 0usize;
        let mut pos = self.pos;
        let mut end_after_first_jump: Option<usize> = None;
        loop {
            let len = *self.data.get(pos).ok_or(DnsError::Truncated)?;
            if len & 0xc0 == 0xc0 {
                // Compression pointer.
                let lo = *self.data.get(pos + 1).ok_or(DnsError::Truncated)?;
                let target = ((usize::from(len) & 0x3f) << 8) | usize::from(lo);
                if end_after_first_jump.is_none() {
                    end_after_first_jump = Some(pos + 2);
                }
                if target >= self.data.len() {
                    return Err(DnsError::BadPointer);
                }
                jumps += 1;
                if jumps > MAX_JUMPS {
                    return Err(DnsError::TooManyJumps);
                }
                pos = target;
                continue;
            }
            if len & 0xc0 != 0 {
                return Err(DnsError::BadPointer); // reserved label types
            }
            pos += 1;
            if len == 0 {
                break;
            }
            let len = usize::from(len);
            if pos + len > self.data.len() {
                return Err(DnsError::Truncated);
            }
            total += len + 1;
            if total > 255 {
                return Err(DnsError::NameTooLong);
            }
            labels.push(String::from_utf8_lossy(&self.data[pos..pos + len]).into_owned());
            pos += len;
        }
        self.pos = end_after_first_jump.unwrap_or(pos);
        Ok(labels.join("."))
    }
}

/// Parses one complete DNS message.
pub fn parse_message(data: &[u8]) -> Result<DnsMessage, DnsError> {
    let mut c = Cursor { data, pos: 0 };
    let id = c.u16()?;
    let flags = c.u16()?;
    let qdcount = c.u16()?;
    let ancount = c.u16()?;
    let nscount = c.u16()?;
    let arcount = c.u16()?;
    if qdcount > MAX_RECORDS
        || ancount > MAX_RECORDS
        || nscount > MAX_RECORDS
        || arcount > MAX_RECORDS
    {
        return Err(DnsError::ExcessiveCount);
    }
    let mut questions = Vec::with_capacity(usize::from(qdcount));
    for _ in 0..qdcount {
        let name = c.name()?;
        let qtype = c.u16()?;
        let qclass = c.u16()?;
        questions.push(DnsQuestion {
            name,
            qtype,
            qclass,
        });
    }
    let mut answers = Vec::with_capacity(usize::from(ancount));
    for _ in 0..ancount {
        if let Some(a) = parse_rr(&mut c, TxtMode::FirstOnly)? {
            answers.push(a);
        }
    }
    // Authority/additional sections: decoded for validity, not surfaced
    // (like Bro's default dns.log).
    for _ in 0..nscount + arcount {
        let _ = parse_rr(&mut c, TxtMode::FirstOnly)?;
    }
    Ok(DnsMessage {
        id,
        is_response: flags & 0x8000 != 0,
        opcode: ((flags >> 11) & 0xf) as u8,
        rcode: flags & 0xf,
        questions,
        answers,
        authority_count: nscount,
        additional_count: arcount,
    })
}

/// How TXT rdata is rendered (the standard/BinPAC++ semantic difference).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxtMode {
    /// Only the first character-string (Bro's standard parser).
    FirstOnly,
    /// All character-strings, joined (the BinPAC++ parser).
    All,
}

/// Parses one resource record; returns `None` for OPT pseudo-records.
#[allow(clippy::needless_lifetimes)]
fn parse_rr(c: &mut Cursor<'_>, txt: TxtMode) -> Result<Option<DnsAnswer>, DnsError> {
    let name = c.name()?;
    let rtype = c.u16()?;
    let _class = c.u16()?;
    let ttl = c.u32()?;
    let rdlen = usize::from(c.u16()?);
    let rdata_start = c.pos;
    let rdata = c.take(rdlen)?;
    if rtype == 41 {
        return Ok(None); // OPT (EDNS) — not an answer
    }
    let rendered = render_rdata(c.data, rdata_start, rdata, rtype, txt)?;
    Ok(Some(DnsAnswer {
        name,
        rtype,
        ttl,
        rdata: rendered,
    }))
}

/// Renders rdata into the textual form dns.log uses. `msg`/`rdata_start`
/// give access to the whole message for compressed names inside rdata.
pub fn render_rdata(
    msg: &[u8],
    rdata_start: usize,
    rdata: &[u8],
    rtype: u16,
    txt: TxtMode,
) -> Result<String, DnsError> {
    Ok(match rtype {
        dns_types::A => {
            if rdata.len() != 4 {
                return Err(DnsError::Truncated);
            }
            Addr::from_v4_bytes([rdata[0], rdata[1], rdata[2], rdata[3]]).to_string()
        }
        dns_types::AAAA => {
            if rdata.len() != 16 {
                return Err(DnsError::Truncated);
            }
            let mut b = [0u8; 16];
            b.copy_from_slice(rdata);
            Addr::from_v6_bytes(b).to_string()
        }
        dns_types::CNAME | dns_types::NS | dns_types::PTR => {
            let mut c = Cursor {
                data: msg,
                pos: rdata_start,
            };
            c.name()?
        }
        dns_types::MX => {
            if rdata.len() < 3 {
                return Err(DnsError::Truncated);
            }
            let mut c = Cursor {
                data: msg,
                pos: rdata_start + 2,
            };
            c.name()?
        }
        dns_types::TXT => {
            let mut strings = Vec::new();
            let mut pos = 0usize;
            while pos < rdata.len() {
                let len = usize::from(rdata[pos]);
                pos += 1;
                if pos + len > rdata.len() {
                    return Err(DnsError::Truncated);
                }
                strings.push(String::from_utf8_lossy(&rdata[pos..pos + len]).into_owned());
                pos += len;
                if txt == TxtMode::FirstOnly {
                    break;
                }
            }
            strings.join(" ")
        }
        dns_types::SOA => {
            let mut c = Cursor {
                data: msg,
                pos: rdata_start,
            };
            c.name()?
        }
        _ => format!("<rdata:{} bytes>", rdata.len()),
    })
}

// ---------------------------------------------------------------------------
// Message builder (used by synth and tests).

/// Appends an uncompressed name encoding of `name` to `out`.
pub fn write_name(out: &mut Vec<u8>, name: &str) {
    for label in name.split('.') {
        if label.is_empty() {
            continue;
        }
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
}

/// Builder for DNS wire messages (queries and responses).
pub struct DnsBuilder {
    buf: Vec<u8>,
    ancount: u16,
}

impl DnsBuilder {
    /// Starts a message with the given header fields.
    pub fn new(id: u16, response: bool, rcode: u16) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&id.to_be_bytes());
        let mut flags: u16 = 0;
        if response {
            flags |= 0x8000 | 0x0400; // QR + AA
        } else {
            flags |= 0x0100; // RD
        }
        flags |= rcode & 0xf;
        buf.extend_from_slice(&flags.to_be_bytes());
        buf.extend_from_slice(&[0, 0, 0, 0, 0, 0, 0, 0]); // counts, patched later
        DnsBuilder { buf, ancount: 0 }
    }

    /// Adds the (single) question.
    pub fn question(mut self, name: &str, qtype: u16) -> Self {
        write_name(&mut self.buf, name);
        self.buf.extend_from_slice(&qtype.to_be_bytes());
        self.buf.extend_from_slice(&1u16.to_be_bytes()); // IN
        let qd = u16::from_be_bytes([self.buf[4], self.buf[5]]) + 1;
        self.buf[4..6].copy_from_slice(&qd.to_be_bytes());
        self
    }

    /// Adds an answer record with raw rdata.
    pub fn answer_raw(mut self, name: &str, rtype: u16, ttl: u32, rdata: &[u8]) -> Self {
        write_name(&mut self.buf, name);
        self.buf.extend_from_slice(&rtype.to_be_bytes());
        self.buf.extend_from_slice(&1u16.to_be_bytes());
        self.buf.extend_from_slice(&ttl.to_be_bytes());
        self.buf
            .extend_from_slice(&(rdata.len() as u16).to_be_bytes());
        self.buf.extend_from_slice(rdata);
        self.ancount += 1;
        self
    }

    /// Adds an A-record answer.
    pub fn answer_a(self, name: &str, ttl: u32, addr: [u8; 4]) -> Self {
        self.answer_raw(name, dns_types::A, ttl, &addr)
    }

    /// Adds a CNAME answer.
    pub fn answer_cname(self, name: &str, ttl: u32, target: &str) -> Self {
        let mut rdata = Vec::new();
        write_name(&mut rdata, target);
        self.answer_raw(name, dns_types::CNAME, ttl, &rdata)
    }

    /// Adds a TXT answer from several character-strings.
    pub fn answer_txt(self, name: &str, ttl: u32, strings: &[&str]) -> Self {
        let mut rdata = Vec::new();
        for s in strings {
            rdata.push(s.len() as u8);
            rdata.extend_from_slice(s.as_bytes());
        }
        self.answer_raw(name, dns_types::TXT, ttl, &rdata)
    }

    /// Adds an MX answer.
    pub fn answer_mx(self, name: &str, ttl: u32, pref: u16, target: &str) -> Self {
        let mut rdata = Vec::new();
        rdata.extend_from_slice(&pref.to_be_bytes());
        write_name(&mut rdata, target);
        self.answer_raw(name, dns_types::MX, ttl, &rdata)
    }

    /// Adds an AAAA answer.
    pub fn answer_aaaa(self, name: &str, ttl: u32, addr: [u8; 16]) -> Self {
        self.answer_raw(name, dns_types::AAAA, ttl, &addr)
    }

    /// Finalizes the wire message.
    pub fn build(mut self) -> Vec<u8> {
        self.buf[6..8].copy_from_slice(&self.ancount.to_be_bytes());
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let msg = DnsBuilder::new(0x1234, false, 0)
            .question("www.example.com", dns_types::A)
            .build();
        let m = parse_message(&msg).unwrap();
        assert_eq!(m.id, 0x1234);
        assert!(!m.is_response);
        assert_eq!(m.questions.len(), 1);
        assert_eq!(m.questions[0].name, "www.example.com");
        assert_eq!(m.questions[0].qtype, dns_types::A);
        assert!(m.answers.is_empty());
    }

    #[test]
    fn response_with_a_record() {
        let msg = DnsBuilder::new(7, true, 0)
            .question("example.com", dns_types::A)
            .answer_a("example.com", 300, [93, 184, 216, 34])
            .build();
        let m = parse_message(&msg).unwrap();
        assert!(m.is_response);
        assert_eq!(m.rcode, 0);
        assert_eq!(m.answers.len(), 1);
        assert_eq!(m.answers[0].rdata, "93.184.216.34");
        assert_eq!(m.answers[0].ttl, 300);
    }

    #[test]
    fn cname_and_mx_names() {
        let msg = DnsBuilder::new(7, true, 0)
            .question("mail.example.com", dns_types::MX)
            .answer_cname("mail.example.com", 60, "mx.example.net")
            .answer_mx("mx.example.net", 60, 10, "smtp.example.net")
            .build();
        let m = parse_message(&msg).unwrap();
        assert_eq!(m.answers[0].rdata, "mx.example.net");
        assert_eq!(m.answers[1].rdata, "smtp.example.net");
    }

    #[test]
    fn txt_first_only_semantics() {
        let msg = DnsBuilder::new(7, true, 0)
            .question("t.example.com", dns_types::TXT)
            .answer_txt("t.example.com", 60, &["first", "second", "third"])
            .build();
        let m = parse_message(&msg).unwrap();
        // The standard parser takes only the first string (Table 2 note).
        assert_eq!(m.answers[0].rdata, "first");
    }

    #[test]
    fn aaaa_record() {
        let mut addr = [0u8; 16];
        addr[0] = 0x20;
        addr[1] = 0x01;
        addr[15] = 0x01;
        let msg = DnsBuilder::new(7, true, 0)
            .question("v6.example.com", dns_types::AAAA)
            .answer_aaaa("v6.example.com", 60, addr)
            .build();
        let m = parse_message(&msg).unwrap();
        assert_eq!(m.answers[0].rdata, "2001::1");
    }

    #[test]
    fn nxdomain_rcode() {
        let msg = DnsBuilder::new(9, true, 3)
            .question("missing.example.com", dns_types::A)
            .build();
        let m = parse_message(&msg).unwrap();
        assert_eq!(m.rcode, 3);
    }

    #[test]
    fn compression_pointer() {
        // Hand-build: question "example.com", answer name is a pointer to
        // offset 12 (the question name).
        let mut msg = DnsBuilder::new(7, true, 0)
            .question("example.com", dns_types::A)
            .build();
        // Append an answer using a compression pointer for its name.
        msg.extend_from_slice(&[0xc0, 12]); // pointer to offset 12
        msg.extend_from_slice(&dns_types::A.to_be_bytes());
        msg.extend_from_slice(&1u16.to_be_bytes());
        msg.extend_from_slice(&60u32.to_be_bytes());
        msg.extend_from_slice(&4u16.to_be_bytes());
        msg.extend_from_slice(&[1, 2, 3, 4]);
        msg[6..8].copy_from_slice(&1u16.to_be_bytes());
        let m = parse_message(&msg).unwrap();
        assert_eq!(m.answers[0].name, "example.com");
        assert_eq!(m.answers[0].rdata, "1.2.3.4");
    }

    #[test]
    fn pointer_loop_rejected() {
        // A name that points at itself.
        let mut msg = DnsBuilder::new(7, false, 0).build();
        msg.extend_from_slice(&[0xc0, 12]); // offset 12 is this pointer itself
        msg.extend_from_slice(&dns_types::A.to_be_bytes());
        msg.extend_from_slice(&1u16.to_be_bytes());
        msg[4..6].copy_from_slice(&1u16.to_be_bytes());
        assert_eq!(parse_message(&msg), Err(DnsError::TooManyJumps));
    }

    #[test]
    fn truncations_rejected() {
        let msg = DnsBuilder::new(7, true, 0)
            .question("example.com", dns_types::A)
            .answer_a("example.com", 300, [1, 2, 3, 4])
            .build();
        for cut in [3, 11, 13, 20, msg.len() - 1] {
            assert!(parse_message(&msg[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn excessive_counts_rejected() {
        let mut msg = DnsBuilder::new(7, false, 0).build();
        msg[4] = 0xff;
        msg[5] = 0xff; // qdcount 65535
        assert_eq!(parse_message(&msg), Err(DnsError::ExcessiveCount));
    }

    #[test]
    fn non_dns_crud_fails() {
        assert!(
            parse_message(b"GET / HTTP/1.1\r\n").is_err() || {
                // If it happens to parse a header, the counts will be absurd.
                false
            }
        );
        assert!(parse_message(&[]).is_err());
        assert!(parse_message(&[0; 5]).is_err());
    }

    #[test]
    fn name_too_long_rejected() {
        let mut msg = DnsBuilder::new(7, false, 0).build();
        // 10 labels of 60 bytes = 610 > 255.
        for _ in 0..10 {
            msg.push(60);
            msg.extend_from_slice(&[b'a'; 60]);
        }
        msg.push(0);
        msg.extend_from_slice(&[0, 1, 0, 1]);
        msg[4..6].copy_from_slice(&1u16.to_be_bytes());
        assert_eq!(parse_message(&msg), Err(DnsError::NameTooLong));
    }

    #[test]
    fn opt_records_skipped() {
        let mut msg = DnsBuilder::new(7, true, 0)
            .question("example.com", dns_types::A)
            .build();
        // Additional OPT record.
        msg.push(0); // root name
        msg.extend_from_slice(&41u16.to_be_bytes());
        msg.extend_from_slice(&4096u16.to_be_bytes());
        msg.extend_from_slice(&0u32.to_be_bytes());
        msg.extend_from_slice(&0u16.to_be_bytes());
        msg[10..12].copy_from_slice(&1u16.to_be_bytes()); // arcount=1
        let m = parse_message(&msg).unwrap();
        assert!(m.answers.is_empty());
        assert_eq!(m.additional_count, 1);
    }
}
