//! The host-application event vocabulary.
//!
//! Bro's event engine turns protocol activity into typed events
//! (`connection_established`, `http_request`, ... — §4 "Bro Script
//! Compiler"). Both of our parser stacks — the handwritten standard parsers
//! and the BinPAC++/HILTI generated ones — emit this same vocabulary, so the
//! analysis scripts (crate `broscript`) run unchanged on either, which is
//! exactly the property the paper's evaluation exploits when comparing the
//! two (§6.4, §6.5).

use hilti_rt::addr::{Addr, Port};
use hilti_rt::time::Time;

/// Connection endpoints, in originator/responder orientation (Bro's
/// `conn_id` record).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConnId {
    pub orig_h: Addr,
    pub orig_p: Port,
    pub resp_h: Addr,
    pub resp_p: Port,
}

impl ConnId {
    /// Bro-style rendering, e.g. for debugging logs.
    pub fn render(&self) -> String {
        format!(
            "{}:{} -> {}:{}",
            self.orig_h, self.orig_p.number, self.resp_h, self.resp_p.number
        )
    }
}

/// One resource record in a DNS answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnsAnswer {
    pub name: String,
    pub rtype: u16,
    pub ttl: u32,
    /// Human-readable answer data (address text, target name, TXT payload).
    pub rdata: String,
}

/// A protocol event, as delivered to analysis scripts.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    ConnectionEstablished {
        ts: Time,
        uid: String,
        id: ConnId,
    },
    ConnectionFinished {
        ts: Time,
        uid: String,
        id: ConnId,
    },
    HttpRequest {
        ts: Time,
        uid: String,
        id: ConnId,
        method: String,
        uri: String,
        version: String,
    },
    HttpReply {
        ts: Time,
        uid: String,
        id: ConnId,
        status: u32,
        reason: String,
        version: String,
    },
    HttpHeader {
        ts: Time,
        uid: String,
        /// True if sent by the originator (client).
        is_orig: bool,
        name: String,
        value: String,
    },
    /// A chunk of message body, in order.
    HttpBodyData {
        ts: Time,
        uid: String,
        is_orig: bool,
        data: Vec<u8>,
    },
    /// End of one HTTP message (request or reply side).
    HttpMessageDone {
        ts: Time,
        uid: String,
        is_orig: bool,
        body_len: u64,
    },
    DnsRequest {
        ts: Time,
        uid: String,
        id: ConnId,
        trans_id: u16,
        query: String,
        qtype: u16,
    },
    DnsReply {
        ts: Time,
        uid: String,
        id: ConnId,
        trans_id: u16,
        rcode: u16,
        answers: Vec<DnsAnswer>,
    },
}

impl Event {
    /// The event's timestamp.
    pub fn ts(&self) -> Time {
        match self {
            Event::ConnectionEstablished { ts, .. }
            | Event::ConnectionFinished { ts, .. }
            | Event::HttpRequest { ts, .. }
            | Event::HttpReply { ts, .. }
            | Event::HttpHeader { ts, .. }
            | Event::HttpBodyData { ts, .. }
            | Event::HttpMessageDone { ts, .. }
            | Event::DnsRequest { ts, .. }
            | Event::DnsReply { ts, .. } => *ts,
        }
    }

    /// The connection uid the event belongs to.
    pub fn uid(&self) -> &str {
        match self {
            Event::ConnectionEstablished { uid, .. }
            | Event::ConnectionFinished { uid, .. }
            | Event::HttpRequest { uid, .. }
            | Event::HttpReply { uid, .. }
            | Event::HttpHeader { uid, .. }
            | Event::HttpBodyData { uid, .. }
            | Event::HttpMessageDone { uid, .. }
            | Event::DnsRequest { uid, .. }
            | Event::DnsReply { uid, .. } => uid,
        }
    }

    /// The event's name, as a Bro script would reference it.
    pub fn name(&self) -> &'static str {
        match self {
            Event::ConnectionEstablished { .. } => "connection_established",
            Event::ConnectionFinished { .. } => "connection_finished",
            Event::HttpRequest { .. } => "http_request",
            Event::HttpReply { .. } => "http_reply",
            Event::HttpHeader { .. } => "http_header",
            Event::HttpBodyData { .. } => "http_body_data",
            Event::HttpMessageDone { .. } => "http_message_done",
            Event::DnsRequest { .. } => "dns_request",
            Event::DnsReply { .. } => "dns_reply",
        }
    }
}

/// DNS record type numbers used across the workspace.
pub mod dns_types {
    pub const A: u16 = 1;
    pub const NS: u16 = 2;
    pub const CNAME: u16 = 5;
    pub const SOA: u16 = 6;
    pub const PTR: u16 = 12;
    pub const MX: u16 = 15;
    pub const TXT: u16 = 16;
    pub const AAAA: u16 = 28;

    /// The display name Bro's dns.log uses.
    pub fn name(t: u16) -> String {
        match t {
            A => "A".into(),
            NS => "NS".into(),
            CNAME => "CNAME".into(),
            SOA => "SOA".into(),
            PTR => "PTR".into(),
            MX => "MX".into(),
            TXT => "TXT".into(),
            AAAA => "AAAA".into(),
            other => format!("query-{other}"),
        }
    }
}

/// DNS response codes.
pub mod dns_rcodes {
    pub const NOERROR: u16 = 0;
    pub const FORMERR: u16 = 1;
    pub const SERVFAIL: u16 = 2;
    pub const NXDOMAIN: u16 = 3;

    pub fn name(r: u16) -> String {
        match r {
            NOERROR => "NOERROR".into(),
            FORMERR => "FORMERR".into(),
            SERVFAIL => "SERVFAIL".into(),
            NXDOMAIN => "NXDOMAIN".into(),
            other => format!("rcode-{other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accessors() {
        let id = ConnId {
            orig_h: "10.0.0.1".parse().unwrap(),
            orig_p: Port::tcp(40000),
            resp_h: "192.168.1.1".parse().unwrap(),
            resp_p: Port::tcp(80),
        };
        let e = Event::HttpRequest {
            ts: Time::from_secs(5),
            uid: "C1".into(),
            id,
            method: "GET".into(),
            uri: "/".into(),
            version: "1.1".into(),
        };
        assert_eq!(e.ts(), Time::from_secs(5));
        assert_eq!(e.uid(), "C1");
        assert_eq!(e.name(), "http_request");
        assert_eq!(id.render(), "10.0.0.1:40000 -> 192.168.1.1:80");
    }

    #[test]
    fn dns_names() {
        assert_eq!(dns_types::name(dns_types::A), "A");
        assert_eq!(dns_types::name(dns_types::AAAA), "AAAA");
        assert_eq!(dns_types::name(999), "query-999");
        assert_eq!(dns_rcodes::name(0), "NOERROR");
        assert_eq!(dns_rcodes::name(3), "NXDOMAIN");
        assert_eq!(dns_rcodes::name(77), "rcode-77");
    }
}
