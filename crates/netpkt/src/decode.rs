//! Link/network/transport header decoding: Ethernet II, IPv4, IPv6, TCP,
//! UDP.
//!
//! Decoding is deliberately conservative — networking code "processes
//! untrusted input" and must fail safe (§2 "Robust & Secure Execution"):
//! every length field is validated against the actual capture, and any
//! malformation yields a typed [`DecodeError`] rather than a panic or an
//! out-of-bounds slice.

use std::fmt;

use hilti_rt::addr::{Addr, Port, Protocol};
use hilti_rt::time::Time;

use crate::pcap::RawPacket;

/// Why a packet could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    TooShort(&'static str),
    UnsupportedEtherType(u16),
    UnsupportedIpVersion(u8),
    BadHeaderLength(&'static str),
    UnsupportedTransport(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TooShort(what) => write!(f, "truncated {what}"),
            DecodeError::UnsupportedEtherType(t) => write!(f, "ethertype {t:#06x}"),
            DecodeError::UnsupportedIpVersion(v) => write!(f, "IP version {v}"),
            DecodeError::BadHeaderLength(what) => write!(f, "bad {what} header length"),
            DecodeError::UnsupportedTransport(p) => write!(f, "IP protocol {p}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// TCP flag bits.
pub mod tcp_flags {
    pub const FIN: u8 = 0x01;
    pub const SYN: u8 = 0x02;
    pub const RST: u8 = 0x04;
    pub const PSH: u8 = 0x08;
    pub const ACK: u8 = 0x10;
}

/// Decoded TCP segment metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TcpInfo {
    pub seq: u32,
    pub ack: u32,
    pub flags: u8,
    pub window: u16,
}

impl TcpInfo {
    pub fn syn(&self) -> bool {
        self.flags & tcp_flags::SYN != 0
    }
    pub fn ack_flag(&self) -> bool {
        self.flags & tcp_flags::ACK != 0
    }
    pub fn fin(&self) -> bool {
        self.flags & tcp_flags::FIN != 0
    }
    pub fn rst(&self) -> bool {
        self.flags & tcp_flags::RST != 0
    }
}

/// Transport-layer view of a decoded packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Transport {
    Tcp(TcpInfo),
    Udp,
}

impl Transport {
    pub fn protocol(&self) -> Protocol {
        match self {
            Transport::Tcp(_) => Protocol::Tcp,
            Transport::Udp => Protocol::Udp,
        }
    }
}

/// A fully decoded packet: addressing plus the payload slice offsets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedPacket {
    pub ts: Time,
    pub src: Addr,
    pub dst: Addr,
    pub sport: u16,
    pub dport: u16,
    pub transport: Transport,
    /// Application payload (after all headers).
    pub payload: Vec<u8>,
    /// Offset of the IP header within the original frame (for overlays).
    pub ip_offset: usize,
}

impl DecodedPacket {
    pub fn src_port(&self) -> Port {
        Port {
            number: self.sport,
            protocol: self.transport.protocol(),
        }
    }

    pub fn dst_port(&self) -> Port {
        Port {
            number: self.dport,
            protocol: self.transport.protocol(),
        }
    }
}

/// A decoded frame that *references* its payload instead of copying it:
/// the addressing and transport metadata plus the payload's byte range
/// within the original frame. This is the zero-copy counterpart of
/// [`DecodedPacket`] used by the parallel pipeline, whose deliveries
/// carry `(offset, len)` slices into a shared immutable trace buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedFrame {
    pub ts: Time,
    pub src: Addr,
    pub dst: Addr,
    pub sport: u16,
    pub dport: u16,
    pub transport: Transport,
    /// Application payload range within the frame (after all headers).
    pub payload: std::ops::Range<usize>,
    /// Offset of the IP header within the original frame (for overlays).
    pub ip_offset: usize,
}

impl DecodedFrame {
    pub fn src_port(&self) -> Port {
        Port {
            number: self.sport,
            protocol: self.transport.protocol(),
        }
    }

    pub fn dst_port(&self) -> Port {
        Port {
            number: self.dport,
            protocol: self.transport.protocol(),
        }
    }
}

const ETHERTYPE_IPV4: u16 = 0x0800;
const ETHERTYPE_IPV6: u16 = 0x86dd;
const IPPROTO_TCP: u8 = 6;
const IPPROTO_UDP: u8 = 17;

/// Decodes an Ethernet frame down to the transport payload.
pub fn decode_ethernet(pkt: &RawPacket) -> Result<DecodedPacket, DecodeError> {
    let f = decode_frame(&pkt.data, pkt.ts)?;
    Ok(DecodedPacket {
        ts: f.ts,
        src: f.src,
        dst: f.dst,
        sport: f.sport,
        dport: f.dport,
        payload: pkt.data[f.payload.clone()].to_vec(),
        transport: f.transport,
        ip_offset: f.ip_offset,
    })
}

/// Decodes an Ethernet frame without copying the payload: all validation
/// of [`decode_ethernet`], but the payload stays a byte range into
/// `data`.
pub fn decode_frame(data: &[u8], ts: Time) -> Result<DecodedFrame, DecodeError> {
    if data.len() < 14 {
        return Err(DecodeError::TooShort("ethernet header"));
    }
    let ethertype = u16::from_be_bytes([data[12], data[13]]);
    match ethertype {
        ETHERTYPE_IPV4 => decode_ipv4(data, ts, 14),
        ETHERTYPE_IPV6 => decode_ipv6(data, ts, 14),
        other => Err(DecodeError::UnsupportedEtherType(other)),
    }
}

fn decode_ipv4(data: &[u8], ts: Time, off: usize) -> Result<DecodedFrame, DecodeError> {
    if data.len() < off + 20 {
        return Err(DecodeError::TooShort("ipv4 header"));
    }
    let version = data[off] >> 4;
    if version != 4 {
        return Err(DecodeError::UnsupportedIpVersion(version));
    }
    let ihl = (data[off] & 0x0f) as usize * 4;
    if ihl < 20 || data.len() < off + ihl {
        return Err(DecodeError::BadHeaderLength("ipv4"));
    }
    let total_len = u16::from_be_bytes([data[off + 2], data[off + 3]]) as usize;
    if total_len < ihl || data.len() < off + total_len {
        return Err(DecodeError::BadHeaderLength("ipv4 total length"));
    }
    let proto = data[off + 9];
    let src = Addr::from_v4_bytes([
        data[off + 12],
        data[off + 13],
        data[off + 14],
        data[off + 15],
    ]);
    let dst = Addr::from_v4_bytes([
        data[off + 16],
        data[off + 17],
        data[off + 18],
        data[off + 19],
    ]);
    decode_transport(data, ts, off, off + ihl, off + total_len, proto, src, dst)
}

fn decode_ipv6(data: &[u8], ts: Time, off: usize) -> Result<DecodedFrame, DecodeError> {
    if data.len() < off + 40 {
        return Err(DecodeError::TooShort("ipv6 header"));
    }
    let version = data[off] >> 4;
    if version != 6 {
        return Err(DecodeError::UnsupportedIpVersion(version));
    }
    let payload_len = u16::from_be_bytes([data[off + 4], data[off + 5]]) as usize;
    let next_header = data[off + 6];
    if data.len() < off + 40 + payload_len {
        return Err(DecodeError::BadHeaderLength("ipv6 payload length"));
    }
    let mut src_b = [0u8; 16];
    src_b.copy_from_slice(&data[off + 8..off + 24]);
    let mut dst_b = [0u8; 16];
    dst_b.copy_from_slice(&data[off + 24..off + 40]);
    // Extension headers are not chased (like the paper's parsers, we handle
    // the common case; unknown next-headers are surfaced as unsupported).
    decode_transport(
        data,
        ts,
        off,
        off + 40,
        off + 40 + payload_len,
        next_header,
        Addr::from_v6_bytes(src_b),
        Addr::from_v6_bytes(dst_b),
    )
}

#[allow(clippy::too_many_arguments)]
fn decode_transport(
    data: &[u8],
    ts: Time,
    ip_off: usize,
    tp_off: usize,
    ip_end: usize,
    proto: u8,
    src: Addr,
    dst: Addr,
) -> Result<DecodedFrame, DecodeError> {
    match proto {
        IPPROTO_TCP => {
            if ip_end < tp_off + 20 {
                return Err(DecodeError::TooShort("tcp header"));
            }
            let sport = u16::from_be_bytes([data[tp_off], data[tp_off + 1]]);
            let dport = u16::from_be_bytes([data[tp_off + 2], data[tp_off + 3]]);
            let seq = u32::from_be_bytes([
                data[tp_off + 4],
                data[tp_off + 5],
                data[tp_off + 6],
                data[tp_off + 7],
            ]);
            let ack = u32::from_be_bytes([
                data[tp_off + 8],
                data[tp_off + 9],
                data[tp_off + 10],
                data[tp_off + 11],
            ]);
            let data_off = (data[tp_off + 12] >> 4) as usize * 4;
            if data_off < 20 || ip_end < tp_off + data_off {
                return Err(DecodeError::BadHeaderLength("tcp"));
            }
            let flags = data[tp_off + 13];
            let window = u16::from_be_bytes([data[tp_off + 14], data[tp_off + 15]]);
            Ok(DecodedFrame {
                ts,
                src,
                dst,
                sport,
                dport,
                transport: Transport::Tcp(TcpInfo {
                    seq,
                    ack,
                    flags,
                    window,
                }),
                payload: tp_off + data_off..ip_end,
                ip_offset: ip_off,
            })
        }
        IPPROTO_UDP => {
            if ip_end < tp_off + 8 {
                return Err(DecodeError::TooShort("udp header"));
            }
            let sport = u16::from_be_bytes([data[tp_off], data[tp_off + 1]]);
            let dport = u16::from_be_bytes([data[tp_off + 2], data[tp_off + 3]]);
            let udp_len = u16::from_be_bytes([data[tp_off + 4], data[tp_off + 5]]) as usize;
            if udp_len < 8 || tp_off + udp_len > ip_end {
                return Err(DecodeError::BadHeaderLength("udp"));
            }
            Ok(DecodedFrame {
                ts,
                src,
                dst,
                sport,
                dport,
                transport: Transport::Udp,
                payload: tp_off + 8..tp_off + udp_len,
                ip_offset: ip_off,
            })
        }
        other => Err(DecodeError::UnsupportedTransport(other)),
    }
}

// ---------------------------------------------------------------------------
// Frame builders (used by synth and tests).

/// Computes the standard internet checksum over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Builds an Ethernet+IPv4+TCP frame around `payload`.
#[allow(clippy::too_many_arguments)]
pub fn build_tcp_frame(
    src: Addr,
    dst: Addr,
    sport: u16,
    dport: u16,
    seq: u32,
    ack: u32,
    flags: u8,
    payload: &[u8],
) -> Vec<u8> {
    let src4 = src.as_v4_u32().expect("builder supports IPv4");
    let dst4 = dst.as_v4_u32().expect("builder supports IPv4");
    let mut frame = Vec::with_capacity(54 + payload.len());
    // Ethernet: synthetic MACs, ethertype IPv4.
    frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]);
    frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]);
    frame.extend_from_slice(&ETHERTYPE_IPV4.to_be_bytes());
    // IPv4 header.
    let total_len = (20 + 20 + payload.len()) as u16;
    let ip_start = frame.len();
    frame.push(0x45);
    frame.push(0);
    frame.extend_from_slice(&total_len.to_be_bytes());
    frame.extend_from_slice(&[0, 0, 0x40, 0]); // id, DF
    frame.push(64); // TTL
    frame.push(IPPROTO_TCP);
    frame.extend_from_slice(&[0, 0]); // checksum placeholder
    frame.extend_from_slice(&src4.to_be_bytes());
    frame.extend_from_slice(&dst4.to_be_bytes());
    let csum = internet_checksum(&frame[ip_start..ip_start + 20]);
    frame[ip_start + 10..ip_start + 12].copy_from_slice(&csum.to_be_bytes());
    // TCP header (no options).
    frame.extend_from_slice(&sport.to_be_bytes());
    frame.extend_from_slice(&dport.to_be_bytes());
    frame.extend_from_slice(&seq.to_be_bytes());
    frame.extend_from_slice(&ack.to_be_bytes());
    frame.push(5 << 4); // data offset 5 words
    frame.push(flags);
    frame.extend_from_slice(&0xffffu16.to_be_bytes()); // window
    frame.extend_from_slice(&[0, 0, 0, 0]); // checksum, urgent (unset)
    frame.extend_from_slice(payload);
    frame
}

/// Builds an Ethernet+IPv4+UDP frame around `payload`.
pub fn build_udp_frame(src: Addr, dst: Addr, sport: u16, dport: u16, payload: &[u8]) -> Vec<u8> {
    let src4 = src.as_v4_u32().expect("builder supports IPv4");
    let dst4 = dst.as_v4_u32().expect("builder supports IPv4");
    let mut frame = Vec::with_capacity(42 + payload.len());
    frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]);
    frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]);
    frame.extend_from_slice(&ETHERTYPE_IPV4.to_be_bytes());
    let total_len = (20 + 8 + payload.len()) as u16;
    let ip_start = frame.len();
    frame.push(0x45);
    frame.push(0);
    frame.extend_from_slice(&total_len.to_be_bytes());
    frame.extend_from_slice(&[0, 0, 0x40, 0]);
    frame.push(64);
    frame.push(IPPROTO_UDP);
    frame.extend_from_slice(&[0, 0]);
    frame.extend_from_slice(&src4.to_be_bytes());
    frame.extend_from_slice(&dst4.to_be_bytes());
    let csum = internet_checksum(&frame[ip_start..ip_start + 20]);
    frame[ip_start + 10..ip_start + 12].copy_from_slice(&csum.to_be_bytes());
    frame.extend_from_slice(&sport.to_be_bytes());
    frame.extend_from_slice(&dport.to_be_bytes());
    frame.extend_from_slice(&((8 + payload.len()) as u16).to_be_bytes());
    frame.extend_from_slice(&[0, 0]); // UDP checksum optional for v4
    frame.extend_from_slice(payload);
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn tcp_roundtrip() {
        let frame = build_tcp_frame(
            a("10.0.0.1"),
            a("192.168.1.1"),
            40000,
            80,
            1000,
            2000,
            tcp_flags::PSH | tcp_flags::ACK,
            b"GET / HTTP/1.1\r\n",
        );
        let pkt = RawPacket::new(Time::from_secs(1), frame);
        let d = decode_ethernet(&pkt).unwrap();
        assert_eq!(d.src, a("10.0.0.1"));
        assert_eq!(d.dst, a("192.168.1.1"));
        assert_eq!((d.sport, d.dport), (40000, 80));
        assert_eq!(d.payload, b"GET / HTTP/1.1\r\n");
        match &d.transport {
            Transport::Tcp(t) => {
                assert_eq!(t.seq, 1000);
                assert_eq!(t.ack, 2000);
                assert!(t.ack_flag());
                assert!(!t.syn());
            }
            _ => panic!("expected TCP"),
        }
    }

    #[test]
    fn udp_roundtrip() {
        let frame = build_udp_frame(a("1.2.3.4"), a("8.8.8.8"), 5353, 53, b"query");
        let d = decode_ethernet(&RawPacket::new(Time::ZERO, frame)).unwrap();
        assert_eq!(d.payload, b"query");
        assert_eq!(d.transport, Transport::Udp);
        assert_eq!(d.dst_port(), Port::udp(53));
    }

    #[test]
    fn ip_checksum_is_valid() {
        let frame = build_tcp_frame(a("1.1.1.1"), a("2.2.2.2"), 1, 2, 0, 0, tcp_flags::SYN, b"");
        // Checksum over the IP header must verify to zero.
        assert_eq!(internet_checksum(&frame[14..34]), 0);
    }

    #[test]
    fn checksum_known_vector() {
        // Example from RFC 1071 discussions.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn rejects_truncations_at_every_layer() {
        let full = build_tcp_frame(a("1.1.1.1"), a("2.2.2.2"), 1, 2, 0, 0, 0, b"payload");
        for cut in [4usize, 13, 20, 33, 40, 53] {
            let pkt = RawPacket::new(Time::ZERO, full[..cut.min(full.len())].to_vec());
            assert!(decode_ethernet(&pkt).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_lying_length_fields() {
        let mut frame = build_tcp_frame(a("1.1.1.1"), a("2.2.2.2"), 1, 2, 0, 0, 0, b"x");
        // Claim a larger IPv4 total length than captured.
        frame[14 + 2] = 0xff;
        frame[14 + 3] = 0xff;
        assert!(decode_ethernet(&RawPacket::new(Time::ZERO, frame)).is_err());

        let mut frame2 = build_udp_frame(a("1.1.1.1"), a("2.2.2.2"), 1, 2, b"x");
        // Claim a UDP length smaller than the header.
        frame2[14 + 20 + 4] = 0;
        frame2[14 + 20 + 5] = 4;
        assert!(decode_ethernet(&RawPacket::new(Time::ZERO, frame2)).is_err());
    }

    #[test]
    fn unsupported_ethertype() {
        let mut frame = vec![0u8; 20];
        frame[12] = 0x08;
        frame[13] = 0x06; // ARP
        match decode_ethernet(&RawPacket::new(Time::ZERO, frame)) {
            Err(DecodeError::UnsupportedEtherType(0x0806)) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn ipv6_udp_decodes() {
        // Hand-build a v6 UDP packet.
        let mut frame = Vec::new();
        frame.extend_from_slice(&[0u8; 12]);
        frame.extend_from_slice(&ETHERTYPE_IPV6.to_be_bytes());
        let payload = b"dns!";
        frame.push(0x60);
        frame.extend_from_slice(&[0, 0, 0]);
        frame.extend_from_slice(&((8 + payload.len()) as u16).to_be_bytes());
        frame.push(IPPROTO_UDP);
        frame.push(64); // hop limit
        let src: Addr = "2001:db8::1".parse().unwrap();
        let dst: Addr = "2001:db8::2".parse().unwrap();
        frame.extend_from_slice(&src.raw().to_be_bytes());
        frame.extend_from_slice(&dst.raw().to_be_bytes());
        frame.extend_from_slice(&5353u16.to_be_bytes());
        frame.extend_from_slice(&53u16.to_be_bytes());
        frame.extend_from_slice(&((8 + payload.len()) as u16).to_be_bytes());
        frame.extend_from_slice(&[0, 0]);
        frame.extend_from_slice(payload);
        let d = decode_ethernet(&RawPacket::new(Time::ZERO, frame)).unwrap();
        assert_eq!(d.src, src);
        assert_eq!(d.dst, dst);
        assert!(d.src.is_v6());
        assert_eq!(d.payload, b"dns!");
    }

    #[test]
    fn trailing_ethernet_padding_ignored() {
        // Short frames get padded to 60 bytes on the wire; the IP total
        // length must bound the payload, not the capture length.
        let mut frame = build_tcp_frame(a("1.1.1.1"), a("2.2.2.2"), 1, 2, 0, 0, 0, b"");
        while frame.len() < 60 {
            frame.push(0xaa);
        }
        let d = decode_ethernet(&RawPacket::new(Time::ZERO, frame)).unwrap();
        assert!(d.payload.is_empty());
    }
}
