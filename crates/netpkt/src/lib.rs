//! # netpkt — packet substrate for the HILTI reproduction
//!
//! Everything between raw trace bytes and protocol events:
//!
//! * [`pcap`] — reader/writer for the classic libpcap trace format,
//!   implemented from the on-disk layout (the paper's workloads are libpcap
//!   traces captured with tcpdump, §6.1).
//! * [`decode`] — Ethernet/IPv4/IPv6/TCP/UDP header decoding.
//! * [`flow`] — 5-tuple flow table with TCP connection-state tracking
//!   (detects the three-way handshake that drives Bro's
//!   `connection_established` event).
//! * [`reassembly`] — per-direction TCP stream reassembly delivering
//!   in-order payload to application parsers.
//! * [`synth`] — deterministic synthetic HTTP/DNS trace generation, the
//!   workload substitute for the paper's UC Berkeley border traces (see
//!   DESIGN.md §1).
//! * [`http`], [`dns`] — the *standard* handwritten protocol parsers, the
//!   baselines that §6.4 compares the generated BinPAC++ parsers against.
//! * [`events`] — the host-application event vocabulary both parser stacks
//!   emit (the analog of Bro's event engine interface).
//! * [`logs`] — `http.log` / `files.log` / `dns.log` record formats and the
//!   normalization used by the Table 2/3 agreement metrics.

pub mod decode;
pub mod dns;
pub mod events;
pub mod flow;
pub mod http;
pub mod logs;
pub mod pcap;
pub mod reassembly;
pub mod synth;
pub mod trace;

pub use decode::{DecodedFrame, DecodedPacket, Transport};
pub use events::Event;
pub use pcap::{PcapReader, PcapWriter, RawPacket};
pub use trace::{PayloadRef, TraceBuffer};
