//! Deterministic synthetic trace generation.
//!
//! The paper drives its evaluation with full-payload HTTP and DNS traces
//! captured at the UC Berkeley border (§6.1). Those traces cannot ship with
//! a reproduction, so this module synthesizes workloads with the properties
//! the evaluation actually exercises: many interleaved sessions between
//! distinct host pairs, realistic request/reply structure, diverse bodies
//! and record types, reordering/retransmission at the TCP layer, and a dash
//! of non-conforming "crud" (§2) — all reproducible from a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hilti_rt::addr::Addr;
use hilti_rt::time::Time;

use crate::decode::{build_tcp_frame, build_udp_frame, tcp_flags};
use crate::dns::DnsBuilder;
use crate::events::dns_types;
use crate::pcap::RawPacket;

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    pub seed: u64,
    /// HTTP sessions or DNS transactions to generate.
    pub count: usize,
    /// Size of the client-address pool.
    pub clients: usize,
    /// Size of the server-address pool.
    pub servers: usize,
    /// Fraction (0..=100) of sessions that are non-protocol "crud".
    pub crud_percent: u8,
}

impl SynthConfig {
    pub fn new(seed: u64, count: usize) -> Self {
        SynthConfig {
            seed,
            count,
            clients: 200,
            servers: 50,
            crud_percent: 2,
        }
    }
}

/// TCP maximum segment size used when segmenting payload.
const MSS: usize = 1400;

struct TcpScripted<'a> {
    rng: &'a mut StdRng,
    packets: &'a mut Vec<RawPacket>,
    client: Addr,
    server: Addr,
    cport: u16,
    sport: u16,
    seq_c: u32,
    seq_s: u32,
    t_ns: u64,
}

impl<'a> TcpScripted<'a> {
    fn now(&mut self) -> Time {
        // Advance 50–500 µs per packet; quantized to whole microseconds so
        // timestamps survive the pcap roundtrip exactly.
        self.t_ns += 50_000 + self.rng.gen_range(0..450) * 1_000;
        Time::from_nanos(self.t_ns)
    }

    fn push(&mut self, from_client: bool, flags: u8, payload: &[u8]) {
        let (src, dst, sp, dp, seq, ack) = if from_client {
            (
                self.client,
                self.server,
                self.cport,
                self.sport,
                self.seq_c,
                self.seq_s,
            )
        } else {
            (
                self.server,
                self.client,
                self.sport,
                self.cport,
                self.seq_s,
                self.seq_c,
            )
        };
        let ts = self.now();
        let frame = build_tcp_frame(src, dst, sp, dp, seq, ack, flags, payload);
        self.packets.push(RawPacket::new(ts, frame));
        let consumed = payload.len() as u32
            + u32::from(flags & tcp_flags::SYN != 0)
            + u32::from(flags & tcp_flags::FIN != 0);
        if from_client {
            self.seq_c = self.seq_c.wrapping_add(consumed);
        } else {
            self.seq_s = self.seq_s.wrapping_add(consumed);
        }
    }

    fn handshake(&mut self) {
        self.push(true, tcp_flags::SYN, b"");
        self.push(false, tcp_flags::SYN | tcp_flags::ACK, b"");
        self.push(true, tcp_flags::ACK, b"");
    }

    /// Sends `data` segmented at MSS; occasionally swaps two adjacent
    /// segments (reordering) or duplicates one (retransmission).
    fn data(&mut self, from_client: bool, data: &[u8]) {
        let start = self.packets.len();
        for chunk in data.chunks(MSS) {
            self.push(from_client, tcp_flags::ACK | tcp_flags::PSH, chunk);
        }
        let n = self.packets.len() - start;
        if n >= 2 && self.rng.gen_ratio(1, 10) {
            let i = start + self.rng.gen_range(0..n - 1);
            self.packets.swap(i, i + 1);
        }
        if n >= 1 && self.rng.gen_ratio(1, 20) {
            let i = start + self.rng.gen_range(0..n);
            let dup = self.packets[i].clone();
            self.packets.push(dup);
        }
    }

    fn close(&mut self) {
        self.push(true, tcp_flags::FIN | tcp_flags::ACK, b"");
        self.push(false, tcp_flags::FIN | tcp_flags::ACK, b"");
        self.push(true, tcp_flags::ACK, b"");
    }
}

const METHODS: &[(&str, u32)] = &[("GET", 70), ("POST", 15), ("HEAD", 10), ("PUT", 5)];
const PATH_STEMS: &[&str] = &[
    "/index.html",
    "/",
    "/images/logo",
    "/api/v1/items",
    "/static/app.js",
    "/css/site.css",
    "/download/file",
    "/search",
    "/users/profile",
    "/feed.xml",
];
const HOSTS: &[&str] = &[
    "www.example.com",
    "cdn.example.net",
    "api.service.org",
    "mirror.campus.edu",
    "media.photos.example",
    "updates.vendor.io",
];
const USER_AGENTS: &[&str] = &[
    "Mozilla/5.0 (X11; Linux x86_64)",
    "curl/7.88.1",
    "Wget/1.21",
    "python-requests/2.31",
    "Mozilla/5.0 (Macintosh)",
];

/// MIME bodies: (content-type header value, body builder).
fn make_body(rng: &mut StdRng, kind: usize, size: usize) -> (&'static str, Vec<u8>) {
    match kind {
        0 => {
            let mut b = b"<html><head><title>t</title></head><body>".to_vec();
            while b.len() < size {
                b.extend_from_slice(b"<p>lorem ipsum dolor sit amet</p>");
            }
            b.extend_from_slice(b"</body></html>");
            ("text/html", b)
        }
        1 => {
            let mut b = b"GIF89a".to_vec();
            b.resize(size.max(8), 0);
            rng.fill(&mut b[6..]);
            ("image/gif", b)
        }
        2 => {
            let mut b = vec![0x89, b'P', b'N', b'G', 0x0d, 0x0a, 0x1a, 0x0a];
            b.resize(size.max(10), 0);
            rng.fill(&mut b[8..]);
            ("image/png", b)
        }
        3 => {
            let mut b = b"{\"items\":[".to_vec();
            while b.len() < size {
                b.extend_from_slice(b"{\"id\":12345,\"name\":\"widget\"},");
            }
            b.extend_from_slice(b"null]}");
            ("application/json", b)
        }
        4 => {
            // Plain text without recognizable magic — exercises the
            // declared-type fallback in MIME detection.
            let mut b = Vec::with_capacity(size);
            while b.len() < size {
                b.extend_from_slice(b"plain log line 42\n");
            }
            ("text/plain", b)
        }
        _ => {
            let mut b = vec![0x1f, 0x8b, 0x08, 0x00];
            b.resize(size.max(6), 0);
            rng.fill(&mut b[4..]);
            ("application/gzip", b)
        }
    }
}

fn pick_weighted<'x>(rng: &mut StdRng, table: &[(&'x str, u32)]) -> &'x str {
    let total: u32 = table.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for (item, w) in table {
        if roll < *w {
            return item;
        }
        roll -= w;
    }
    table[0].0
}

/// Generates an HTTP workload trace; packets are sorted by timestamp.
pub fn http_trace(cfg: &SynthConfig) -> Vec<RawPacket> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut packets = Vec::new();
    // Sessions start staggered over a window so flows interleave when the
    // final sort merges them.
    for s in 0..cfg.count {
        let client = Addr::v4(
            10,
            1,
            (rng.gen_range(0..cfg.clients) / 250) as u8,
            (rng.gen_range(0..cfg.clients) % 250 + 1) as u8,
        );
        let server = Addr::v4(
            93,
            184,
            (rng.gen_range(0..cfg.servers) / 250) as u8,
            (rng.gen_range(0..cfg.servers) % 250 + 1) as u8,
        );
        let base_ns = (s as u64) * 3_000_000 + rng.gen_range(0..2_000) * 1_000;
        let mut sess = TcpScripted {
            client,
            server,
            cport: rng.gen_range(20000..60000),
            sport: 80,
            seq_c: rng.gen(),
            seq_s: rng.gen(),
            t_ns: base_ns,
            rng: &mut rng,
            packets: &mut packets,
        };
        sess.handshake();
        let crud = sess.rng.gen_range(0..100) < u32::from(cfg.crud_percent);
        if crud {
            // Non-HTTP garbage on port 80.
            let mut junk = vec![0u8; 64 + sess.rng.gen_range(0..256)];
            sess.rng.fill(&mut junk[..]);
            sess.data(true, &junk);
            sess.close();
            continue;
        }
        let n_requests = 1 + sess.rng.gen_range(0..3);
        for _ in 0..n_requests {
            let method = pick_weighted(sess.rng, METHODS);
            let stem = PATH_STEMS[sess.rng.gen_range(0..PATH_STEMS.len())];
            let uri = if sess.rng.gen_ratio(1, 3) {
                format!("{stem}?id={}", sess.rng.gen_range(0..100000))
            } else {
                stem.to_owned()
            };
            let host = HOSTS[sess.rng.gen_range(0..HOSTS.len())];
            let ua = USER_AGENTS[sess.rng.gen_range(0..USER_AGENTS.len())];
            // Request.
            let mut req = format!(
                "{method} {uri} HTTP/1.1\r\nHost: {host}\r\nUser-Agent: {ua}\r\nAccept: */*\r\n"
            );
            let post_body = if method == "POST" || method == "PUT" {
                let size = sess.rng.gen_range(16..600);
                let (_ct, body) = make_body(sess.rng, 3, size);
                req.push_str(&format!(
                    "Content-Type: application/json\r\nContent-Length: {}\r\n",
                    body.len()
                ));
                Some(body)
            } else {
                None
            };
            req.push_str("\r\n");
            let mut req_bytes = req.into_bytes();
            if let Some(b) = post_body {
                req_bytes.extend_from_slice(&b);
            }
            sess.data(true, &req_bytes);

            // Response.
            let status_roll = sess.rng.gen_range(0..100);
            let (status, reason): (u32, &str) = match status_roll {
                0..=74 => (200, "OK"),
                75..=82 => (404, "Not Found"),
                83..=89 => (304, "Not Modified"),
                90..=94 => (206, "Partial Content"),
                95..=97 => (302, "Found"),
                _ => (500, "Internal Server Error"),
            };
            let mut resp = format!("HTTP/1.1 {status} {reason}\r\nServer: synthd/1.0\r\nDate: Mon, 06 Jul 2026 10:00:00 GMT\r\n");
            if method == "HEAD" || status == 304 {
                // Header-only; advertise a length that must NOT be consumed.
                resp.push_str(&format!(
                    "Content-Length: {}\r\n\r\n",
                    sess.rng.gen_range(100..5000)
                ));
                sess.data(false, resp.as_bytes());
            } else {
                let kind = sess.rng.gen_range(0..6);
                let size = sess.rng.gen_range(32..4096);
                let (ct, body) = make_body(sess.rng, kind, size);
                resp.push_str(&format!("Content-Type: {ct}\r\n"));
                if status == 206 {
                    resp.push_str(&format!(
                        "Content-Range: bytes 0-{}/{}\r\n",
                        body.len() - 1,
                        body.len() * 2
                    ));
                }
                if sess.rng.gen_ratio(1, 5) {
                    // Chunked transfer-coding.
                    resp.push_str("Transfer-Encoding: chunked\r\n\r\n");
                    let mut payload = resp.into_bytes();
                    for chunk in body.chunks(512) {
                        payload.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
                        payload.extend_from_slice(chunk);
                        payload.extend_from_slice(b"\r\n");
                    }
                    payload.extend_from_slice(b"0\r\n\r\n");
                    sess.data(false, &payload);
                } else {
                    resp.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
                    let mut payload = resp.into_bytes();
                    payload.extend_from_slice(&body);
                    sess.data(false, &payload);
                }
            }
        }
        sess.close();
    }
    packets.sort_by_key(|p| p.ts);
    packets
}

/// Deterministic high-flow-count throughput workload: `flows` small,
/// well-formed HTTP sessions (one GET each, ~9 packets) built from a
/// handful of pre-rendered request/response templates, so generation
/// stays cheap even at 10^6 flows and benchmarks measure the pipeline,
/// not the generator. Every flow has a distinct 5-tuple (unique for
/// `flows` < 2^22). Sessions are timestamp-interleaved within chunks of
/// 64 flows, which exercises concurrent per-flow parser state without a
/// whole-trace sort; occasional reordering/retransmission from
/// [`TcpScripted::data`] keeps the owned-payload reassembly path warm.
pub fn throughput_trace(seed: u64, flows: usize) -> Vec<RawPacket> {
    let mut rng = StdRng::seed_from_u64(seed);
    let reqs: Vec<Vec<u8>> = PATH_STEMS
        .iter()
        .enumerate()
        .map(|(i, stem)| {
            let host = HOSTS[i % HOSTS.len()];
            let ua = USER_AGENTS[i % USER_AGENTS.len()];
            format!(
                "GET {stem} HTTP/1.1\r\nHost: {host}\r\nUser-Agent: {ua}\r\nAccept: */*\r\n\r\n"
            )
            .into_bytes()
        })
        .collect();
    let resps: Vec<Vec<u8>> = (0..8usize)
        .map(|i| {
            let size = 200 + i * 150;
            let mut body = Vec::with_capacity(size + 24);
            while body.len() < size {
                body.extend_from_slice(b"stream analysis payload ");
            }
            body.truncate(size);
            let mut r = format!(
                "HTTP/1.1 200 OK\r\nServer: synthd/1.0\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .into_bytes();
            r.extend_from_slice(&body);
            r
        })
        .collect();

    const CHUNK: usize = 64;
    let mut packets = Vec::with_capacity(flows * 9 + flows / 16);
    let mut done = 0usize;
    while done < flows {
        let n = CHUNK.min(flows - done);
        let start = packets.len();
        for f in done..done + n {
            let client = Addr::v4(
                10,
                (((f >> 16) & 0x3f) + 1) as u8,
                ((f >> 8) & 0xff) as u8,
                (f & 0xff) as u8,
            );
            let server = Addr::v4(93, 184, ((f / 7) % 250) as u8, ((f / 3) % 250 + 1) as u8);
            let mut sess = TcpScripted {
                client,
                server,
                cport: 20000 + (f % 40000) as u16,
                sport: 80,
                seq_c: rng.gen(),
                seq_s: rng.gen(),
                t_ns: (f as u64) * 120_000,
                rng: &mut rng,
                packets: &mut packets,
            };
            sess.handshake();
            sess.data(true, &reqs[f % reqs.len()]);
            sess.data(false, &resps[f % resps.len()]);
            sess.close();
        }
        // Interleave the chunk's sessions (each already ts-sorted).
        packets[start..].sort_by_key(|p| p.ts);
        done += n;
    }
    packets
}

/// Deterministic high-flow-count DNS throughput workload: `flows`
/// well-formed query/response pairs over UDP/53, each on a distinct
/// 5-tuple (unique for `flows` < 2^22). The DNS companion to
/// [`throughput_trace`]: tiny fixed-shape messages so soak and
/// throughput harnesses measure the pipeline, not the generator, and
/// every query gets an answer so a lossless run logs exactly `flows`
/// entries.
pub fn throughput_dns_trace(seed: u64, flows: usize) -> Vec<RawPacket> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut packets = Vec::with_capacity(flows * 2);
    for f in 0..flows {
        let client = Addr::v4(
            10,
            (((f >> 16) & 0x3f) + 65) as u8,
            ((f >> 8) & 0xff) as u8,
            (f & 0xff) as u8,
        );
        let server = Addr::v4(8, 8, ((f / 11) % 250) as u8, ((f / 5) % 250 + 1) as u8);
        let cport = 20000 + (f % 40000) as u16;
        let trans_id = (f as u16) ^ 0x5A17;
        let name = DNS_NAMES[f % DNS_NAMES.len()];
        let base = Time::from_nanos((f as u64) * 60_000);

        let query = DnsBuilder::new(trans_id, false, 0)
            .question(name, dns_types::A)
            .build();
        packets.push(RawPacket::new(
            base,
            build_udp_frame(client, server, cport, 53, &query),
        ));

        let rtt = 1_000_000 + rng.gen_range(0..500) * 1_000;
        let resp = DnsBuilder::new(trans_id, true, 0)
            .question(name, dns_types::A)
            .answer_a(
                name,
                60 + (f % 3600) as u32,
                [93, 184, ((f % 249) + 1) as u8, ((f % 199) + 1) as u8],
            )
            .build();
        packets.push(RawPacket::new(
            base + hilti_rt::time::Interval::from_nanos(rtt),
            build_udp_frame(client, server, cport, 53, &resp),
        ));
    }
    packets.sort_by_key(|p| p.ts);
    packets
}

/// Adversarial trace generation: deterministic counts of each protocol
/// malformation, so harnesses can assert exact per-category error totals.
///
/// Every malformed session models a real attack on analyzer robustness:
/// state that is opened but never completed (resource-exhaustion via
/// idle flows), bodies that never end (unbounded buffering), and header
/// streams with no terminator (per-flow heap growth). The generator is
/// fully deterministic from `seed`.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    pub seed: u64,
    /// Well-formed HTTP sessions mixed into the trace.
    pub normal: usize,
    /// Sessions that stop after the initial SYN: the flow table entry is
    /// created but no data ever arrives (idle-expiration pressure).
    pub truncated_handshakes: usize,
    /// Responses advertising a large `Content-Length` but cut off after a
    /// small prefix, with no FIN — the parser waits forever.
    pub mid_body_cuts: usize,
    /// Requests streaming header lines without the terminating blank
    /// line — per-flow buffering grows until something bounds it.
    pub header_bombs: usize,
    /// Chunked responses that keep sending chunks and never emit the
    /// terminating zero chunk.
    pub infinite_chunks: usize,
}

impl ChaosConfig {
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            normal: 10,
            truncated_handshakes: 4,
            mid_body_cuts: 4,
            header_bombs: 3,
            infinite_chunks: 3,
        }
    }

    pub fn total_sessions(&self) -> usize {
        self.normal
            + self.truncated_handshakes
            + self.mid_body_cuts
            + self.header_bombs
            + self.infinite_chunks
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ChaosKind {
    Normal,
    TruncatedHandshake,
    MidBodyCut,
    HeaderBomb,
    InfiniteChunk,
}

/// Generates an adversarial HTTP workload per `cfg`; packets are sorted
/// by timestamp and sessions of all categories interleave.
pub fn chaos_http_trace(cfg: &ChaosConfig) -> Vec<RawPacket> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut kinds = Vec::with_capacity(cfg.total_sessions());
    kinds.extend(std::iter::repeat_n(ChaosKind::Normal, cfg.normal));
    kinds.extend(std::iter::repeat_n(
        ChaosKind::TruncatedHandshake,
        cfg.truncated_handshakes,
    ));
    kinds.extend(std::iter::repeat_n(
        ChaosKind::MidBodyCut,
        cfg.mid_body_cuts,
    ));
    kinds.extend(std::iter::repeat_n(ChaosKind::HeaderBomb, cfg.header_bombs));
    kinds.extend(std::iter::repeat_n(
        ChaosKind::InfiniteChunk,
        cfg.infinite_chunks,
    ));
    // Deterministic interleave: Fisher-Yates off the seeded generator.
    for i in (1..kinds.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        kinds.swap(i, j);
    }

    let mut packets = Vec::new();
    for (s, kind) in kinds.iter().enumerate() {
        let client = Addr::v4(10, 9, (s / 250) as u8, (s % 250 + 1) as u8);
        let server = Addr::v4(93, 184, 0, (rng.gen_range(0..40) + 1) as u8);
        let base_ns = (s as u64) * 3_000_000 + rng.gen_range(0..2_000) * 1_000;
        let mut sess = TcpScripted {
            client,
            server,
            cport: rng.gen_range(20000..60000),
            sport: 80,
            seq_c: rng.gen(),
            seq_s: rng.gen(),
            t_ns: base_ns,
            rng: &mut rng,
            packets: &mut packets,
        };
        match kind {
            ChaosKind::TruncatedHandshake => {
                // SYN into the void; the flow table entry goes stale.
                sess.push(true, tcp_flags::SYN, b"");
                continue;
            }
            ChaosKind::Normal => {
                sess.handshake();
                let req = b"GET /index.html HTTP/1.1\r\nHost: www.example.com\r\n\r\n";
                sess.data(true, req);
                let body = b"<html>ok</html>";
                let resp = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                );
                let mut payload = resp.into_bytes();
                payload.extend_from_slice(body);
                sess.data(false, &payload);
                sess.close();
            }
            ChaosKind::MidBodyCut => {
                sess.handshake();
                sess.data(
                    true,
                    b"GET /download/file HTTP/1.1\r\nHost: cdn.example.net\r\n\r\n",
                );
                // Promise 100 KiB, deliver 2 KiB, go silent (no FIN).
                let mut payload =
                    b"HTTP/1.1 200 OK\r\nContent-Type: application/gzip\r\nContent-Length: 102400\r\n\r\n"
                        .to_vec();
                payload.extend_from_slice(&vec![0x1f; 2048]);
                sess.data(false, &payload);
            }
            ChaosKind::HeaderBomb => {
                sess.handshake();
                // A header stream with no terminating blank line: ~48 KiB
                // of headers, then silence.
                let mut req = b"GET / HTTP/1.1\r\nHost: www.example.com\r\n".to_vec();
                for i in 0..1200 {
                    req.extend_from_slice(
                        format!("X-Padding-{i}: aaaaaaaaaaaaaaaaaaaaaaaa\r\n").as_bytes(),
                    );
                }
                sess.data(true, &req);
            }
            ChaosKind::InfiniteChunk => {
                sess.handshake();
                sess.data(
                    true,
                    b"GET /feed.xml HTTP/1.1\r\nHost: api.service.org\r\n\r\n",
                );
                let mut payload =
                    b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nTransfer-Encoding: chunked\r\n\r\n"
                        .to_vec();
                // Chunks keep coming; the terminating `0` chunk never does.
                for _ in 0..200 {
                    payload.extend_from_slice(b"100\r\n");
                    payload.extend_from_slice(&[b'z'; 0x100]);
                    payload.extend_from_slice(b"\r\n");
                }
                sess.data(false, &payload);
            }
        }
    }
    packets.sort_by_key(|p| p.ts);
    packets
}

/// Generates a DNS trace of `normal` well-formed A lookups plus
/// `compression_loops` messages whose name is a self-referencing
/// compression pointer — the classic parser-loop attack. Deterministic
/// from `seed`.
pub fn chaos_dns_trace(seed: u64, normal: usize, compression_loops: usize) -> Vec<RawPacket> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut packets = Vec::new();
    for i in 0..normal + compression_loops {
        let client = Addr::v4(10, 8, (i / 250) as u8, (i % 250 + 1) as u8);
        let server = Addr::v4(8, 8, 8, 8);
        let cport: u16 = rng.gen_range(1024..65000);
        let base = Time::from_nanos((i as u64) * 700_000 + rng.gen_range(0..500) * 1_000);
        if i < normal {
            let trans_id: u16 = rng.gen();
            let name = DNS_NAMES[rng.gen_range(0..DNS_NAMES.len())];
            let query = DnsBuilder::new(trans_id, false, 0)
                .question(name, dns_types::A)
                .build();
            packets.push(RawPacket::new(
                base,
                build_udp_frame(client, server, cport, 53, &query),
            ));
            let resp = DnsBuilder::new(trans_id, true, 0)
                .question(name, dns_types::A)
                .answer_a(name, 300, [93, 184, 1, 1])
                .build();
            packets.push(RawPacket::new(
                base + hilti_rt::time::Interval::from_nanos(2_000_000),
                build_udp_frame(server, client, 53, cport, &resp),
            ));
        } else {
            // Header claiming one question, whose name at offset 12 is a
            // compression pointer back to offset 12: following it loops.
            let trans_id: u16 = rng.gen();
            let mut msg = Vec::new();
            msg.extend_from_slice(&trans_id.to_be_bytes());
            msg.extend_from_slice(&[0x01, 0x00]); // flags: standard query
            msg.extend_from_slice(&[0x00, 0x01]); // qdcount = 1
            msg.extend_from_slice(&[0x00, 0x00, 0x00, 0x00, 0x00, 0x00]);
            msg.extend_from_slice(&[0xc0, 0x0c]); // name: pointer to itself
            msg.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]); // A, IN
            packets.push(RawPacket::new(
                base,
                build_udp_frame(client, server, cport, 53, &msg),
            ));
        }
    }
    packets.sort_by_key(|p| p.ts);
    packets
}

const DNS_NAMES: &[&str] = &[
    "www.example.com",
    "mail.campus.edu",
    "cdn.assets.net",
    "api.cloud.io",
    "ns1.provider.org",
    "tracker.ads.example",
    "git.devhub.dev",
    "db.internal.corp",
    "login.sso.example",
    "video.stream.tv",
];

/// Generates a DNS workload trace (UDP port 53 request/reply pairs).
pub fn dns_trace(cfg: &SynthConfig) -> Vec<RawPacket> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut packets = Vec::new();
    for i in 0..cfg.count {
        let client = Addr::v4(
            10,
            2,
            (rng.gen_range(0..cfg.clients) / 250) as u8,
            (rng.gen_range(0..cfg.clients) % 250 + 1) as u8,
        );
        let server = Addr::v4(
            8,
            8,
            8,
            (rng.gen_range(0..cfg.servers.max(1)) % 250 + 1) as u8,
        );
        let cport: u16 = rng.gen_range(1024..65000);
        let base = Time::from_nanos((i as u64) * 800_000 + rng.gen_range(0..500) * 1_000);

        if rng.gen_range(0..100) < u32::from(cfg.crud_percent) {
            // Crud: random bytes on port 53.
            let mut junk = vec![0u8; rng.gen_range(4..80)];
            rng.fill(&mut junk[..]);
            packets.push(RawPacket::new(
                base,
                build_udp_frame(client, server, cport, 53, &junk),
            ));
            continue;
        }

        let trans_id: u16 = rng.gen();
        let name = DNS_NAMES[rng.gen_range(0..DNS_NAMES.len())];
        let qtype = match rng.gen_range(0..100) {
            0..=59 => dns_types::A,
            60..=74 => dns_types::AAAA,
            75..=84 => dns_types::CNAME,
            85..=92 => dns_types::TXT,
            _ => dns_types::MX,
        };
        let query = DnsBuilder::new(trans_id, false, 0)
            .question(name, qtype)
            .build();
        packets.push(RawPacket::new(
            base,
            build_udp_frame(client, server, cport, 53, &query),
        ));

        // Response ~1–40 ms later; 5% of queries go unanswered.
        if rng.gen_ratio(1, 20) {
            continue;
        }
        let rtt = 1_000_000 + rng.gen_range(0..39_000) * 1_000;
        let resp_ts = base + hilti_rt::time::Interval::from_nanos(rtt);
        let nxdomain = rng.gen_ratio(1, 12);
        let mut b =
            DnsBuilder::new(trans_id, true, if nxdomain { 3 } else { 0 }).question(name, qtype);
        if !nxdomain {
            let n_answers = 1 + rng.gen_range(0..3);
            for k in 0..n_answers {
                match qtype {
                    t if t == dns_types::A => {
                        b = b.answer_a(
                            name,
                            rng.gen_range(30..3600),
                            [93, 184, rng.gen_range(1..250), rng.gen_range(1..250)],
                        );
                    }
                    t if t == dns_types::AAAA => {
                        let mut addr = [0u8; 16];
                        addr[0] = 0x20;
                        addr[1] = 0x01;
                        addr[15] = rng.gen_range(1..255);
                        b = b.answer_aaaa(name, rng.gen_range(30..3600), addr);
                    }
                    t if t == dns_types::CNAME => {
                        let target = DNS_NAMES[rng.gen_range(0..DNS_NAMES.len())];
                        b = b.answer_cname(name, rng.gen_range(30..3600), target);
                        // CNAME chains terminate in an A record.
                        if k == n_answers - 1 {
                            b = b.answer_a(target, 300, [93, 184, 1, 1]);
                        }
                    }
                    t if t == dns_types::TXT => {
                        // Multi-string TXT records exercise the standard/
                        // BinPAC++ semantic difference (Table 2); most TXT
                        // records carry one string, as in real traffic.
                        let n_strings = if rng.gen_ratio(1, 24) {
                            2 + rng.gen_range(0..2)
                        } else {
                            1
                        };
                        let strings: Vec<String> = (0..n_strings)
                            .map(|j| format!("v=spf{j} include:example.com"))
                            .collect();
                        let refs: Vec<&str> = strings.iter().map(String::as_str).collect();
                        b = b.answer_txt(name, rng.gen_range(30..3600), &refs);
                    }
                    _ => {
                        let target = DNS_NAMES[rng.gen_range(0..DNS_NAMES.len())];
                        b = b.answer_mx(name, rng.gen_range(30..3600), 10, target);
                    }
                }
            }
        }
        let resp = b.build();
        packets.push(RawPacket::new(
            resp_ts,
            build_udp_frame(server, client, 53, cport, &resp),
        ));
    }
    packets.sort_by_key(|p| p.ts);
    packets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode_ethernet, Transport};

    #[test]
    fn http_trace_is_deterministic() {
        let cfg = SynthConfig::new(42, 20);
        let a = http_trace(&cfg);
        let b = http_trace(&cfg);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = http_trace(&SynthConfig::new(1, 10));
        let b = http_trace(&SynthConfig::new(2, 10));
        assert_ne!(a, b);
    }

    #[test]
    fn http_packets_decode_and_target_port_80() {
        let pkts = http_trace(&SynthConfig::new(7, 15));
        let mut tcp = 0;
        for p in &pkts {
            let d = decode_ethernet(p).expect("generated packets must decode");
            assert!(matches!(d.transport, Transport::Tcp(_)));
            assert!(d.dport == 80 || d.sport == 80);
            tcp += 1;
        }
        assert!(tcp > 15 * 4, "expected handshake+data per session");
    }

    #[test]
    fn throughput_trace_has_distinct_decodable_flows() {
        let flows = 300;
        let a = throughput_trace(9, flows);
        assert_eq!(a, throughput_trace(9, flows), "must be deterministic");
        let mut table = crate::flow::FlowTable::new();
        for p in &a {
            let d = decode_ethernet(p).expect("generated packets must decode");
            table.process(&d);
        }
        assert_eq!(table.len(), flows, "one flow table entry per session");
        // 8 packets per session (handshake, request, response, close),
        // plus occasional retransmissions.
        assert!(a.len() >= flows * 8, "{}", a.len());
    }

    #[test]
    fn timestamps_sorted() {
        let pkts = http_trace(&SynthConfig::new(3, 25));
        assert!(pkts.windows(2).all(|w| w[0].ts <= w[1].ts));
        let pkts = dns_trace(&SynthConfig::new(3, 50));
        assert!(pkts.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn dns_trace_decodes_and_parses_mostly() {
        let cfg = SynthConfig::new(11, 100);
        let pkts = dns_trace(&cfg);
        let mut parsed = 0;
        let mut failed = 0;
        for p in &pkts {
            let d = decode_ethernet(p).unwrap();
            assert_eq!(d.transport, Transport::Udp);
            match crate::dns::parse_message(&d.payload) {
                Ok(_) => parsed += 1,
                Err(_) => failed += 1,
            }
        }
        assert!(parsed > 150, "parsed={parsed}");
        // Crud packets mostly fail to parse.
        assert!(failed >= 1, "expected some crud, failed={failed}");
    }

    #[test]
    fn dns_responses_match_queries() {
        let pkts = dns_trace(&SynthConfig::new(5, 50));
        let mut queries = std::collections::HashMap::new();
        let mut matched = 0;
        for p in &pkts {
            let d = decode_ethernet(p).unwrap();
            if let Ok(m) = crate::dns::parse_message(&d.payload) {
                if m.is_response {
                    if queries.remove(&m.id).is_some() {
                        matched += 1;
                    }
                } else {
                    queries.insert(m.id, ());
                }
            }
        }
        assert!(matched > 30, "matched={matched}");
    }

    #[test]
    fn http_roundtrips_through_pcap() {
        let pkts = http_trace(&SynthConfig::new(9, 5));
        let img = crate::pcap::to_pcap_bytes(&pkts);
        let back = crate::pcap::from_pcap_bytes(&img).unwrap();
        assert_eq!(back, pkts);
    }

    #[test]
    fn chaos_http_trace_is_deterministic_and_decodes() {
        let cfg = ChaosConfig::new(99);
        let a = chaos_http_trace(&cfg);
        let b = chaos_http_trace(&cfg);
        assert_eq!(a, b);
        assert!(pksorted(&a));
        for p in &a {
            let d = decode_ethernet(p).expect("chaos packets still decode at L2-L4");
            assert!(matches!(d.transport, Transport::Tcp(_)));
        }
        // Different seeds interleave differently.
        assert_ne!(a, chaos_http_trace(&ChaosConfig::new(100)));
    }

    fn pksorted(pkts: &[RawPacket]) -> bool {
        pkts.windows(2).all(|w| w[0].ts <= w[1].ts)
    }

    #[test]
    fn chaos_dns_compression_loops_are_rejected_not_spun() {
        let pkts = chaos_dns_trace(21, 10, 5);
        let mut ok = 0;
        let mut loops = 0;
        for p in &pkts {
            let d = decode_ethernet(p).unwrap();
            match crate::dns::parse_message(&d.payload) {
                Ok(_) => ok += 1,
                Err(crate::dns::DnsError::TooManyJumps) => loops += 1,
                Err(e) => panic!("unexpected parse error {e:?}"),
            }
        }
        // 10 query/response pairs parse; the 5 loop packets are rejected.
        assert_eq!(ok, 20);
        assert_eq!(loops, 5);
    }
}
