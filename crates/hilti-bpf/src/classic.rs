//! Classic BPF: the accumulator pseudo-machine of McCanne & Jacobson, its
//! code generator, and its interpreter.
//!
//! This is the §6.2 baseline: the traditional implementation that
//! "translates filters into code for its custom internal stack machine,
//! which it then interprets at runtime". Instructions operate on an
//! accumulator `A`, reading packet bytes at absolute offsets, with
//! conditional jumps encoded as (jump-if-true, jump-if-false) deltas —
//! the exact encoding the BSD kernel uses.

use hilti_rt::error::{RtError, RtResult};

use crate::expr::{Dir, FilterExpr};

/// Instruction classes (`code` field encodings, subset of the BSD set).
pub mod op {
    /// A = u32 at absolute offset k (big-endian).
    pub const LD_W_ABS: u16 = 0x20;
    /// A = u16 at absolute offset k.
    pub const LD_H_ABS: u16 = 0x28;
    /// A = u8 at absolute offset k.
    pub const LD_B_ABS: u16 = 0x30;
    /// A = A & k.
    pub const AND_K: u16 = 0x54;
    /// pc += (A == k) ? jt : jf.
    pub const JEQ_K: u16 = 0x15;
    /// return k (accept when k != 0).
    pub const RET_K: u16 = 0x06;
}

/// One BPF instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BpfInsn {
    pub code: u16,
    pub jt: u8,
    pub jf: u8,
    pub k: u32,
}

impl BpfInsn {
    pub fn stmt(code: u16, k: u32) -> BpfInsn {
        BpfInsn {
            code,
            jt: 0,
            jf: 0,
            k,
        }
    }

    pub fn jump(code: u16, k: u32, jt: u8, jf: u8) -> BpfInsn {
        BpfInsn { code, jt, jf, k }
    }
}

/// A compiled classic-BPF program.
#[derive(Clone, Debug)]
pub struct BpfProgram {
    pub insns: Vec<BpfInsn>,
}

/// Interprets `prog` over a raw Ethernet frame; true = accept.
///
/// Out-of-bounds loads reject the packet, as in the kernel.
pub fn bpf_filter(prog: &BpfProgram, pkt: &[u8]) -> bool {
    let mut a: u32 = 0;
    let mut pc: usize = 0;
    // Fail-safe bound on executed instructions; exhaustion rejects the
    // packet, like any other fault in kernel BPF.
    let mut fuel =
        hilti_rt::limits::FuelMeter::new(Some(prog.insns.len().saturating_mul(4) as u64 + 64));
    while pc < prog.insns.len() {
        if fuel.charge(1).is_err() {
            return false;
        }
        let i = prog.insns[pc];
        match i.code {
            op::LD_W_ABS => {
                let k = i.k as usize;
                if k + 4 > pkt.len() {
                    return false;
                }
                a = u32::from_be_bytes([pkt[k], pkt[k + 1], pkt[k + 2], pkt[k + 3]]);
                pc += 1;
            }
            op::LD_H_ABS => {
                let k = i.k as usize;
                if k + 2 > pkt.len() {
                    return false;
                }
                a = u32::from(u16::from_be_bytes([pkt[k], pkt[k + 1]]));
                pc += 1;
            }
            op::LD_B_ABS => {
                let k = i.k as usize;
                if k >= pkt.len() {
                    return false;
                }
                a = u32::from(pkt[k]);
                pc += 1;
            }
            op::AND_K => {
                a &= i.k;
                pc += 1;
            }
            op::JEQ_K => {
                pc += 1 + if a == i.k {
                    usize::from(i.jt)
                } else {
                    usize::from(i.jf)
                };
            }
            op::RET_K => return i.k != 0,
            _ => return false, // unknown opcode: fail safe
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Code generation.
//
// Each expression node compiles into a fragment whose conditional jumps
// target symbolic TRUE/FALSE exits; `link` resolves them to the accept /
// reject trailer. This mirrors the structure of the BSD `bpf_compile`.

#[derive(Clone, Copy, Debug)]
enum Target {
    /// Fall through to the next instruction.
    Next,
    /// Jump to the TRUE exit.
    True,
    /// Jump to the FALSE exit.
    False,
    /// Jump `d` instructions past the fall-through (local resolution of
    /// short-circuit exits inside or/not fragments).
    Skip(u8),
}

#[derive(Clone, Debug)]
struct SymInsn {
    code: u16,
    k: u32,
    jt: Target,
    jf: Target,
}

/// Frame layout constants (Ethernet II + IPv4, no options assumed for the
/// port loads — the paper's proof-of-concept scope).
const ETHERTYPE_OFF: u32 = 12;
const ETHERTYPE_IPV4: u32 = 0x0800;
const IP_OFF: u32 = 14;
const IP_PROTO_OFF: u32 = IP_OFF + 9;
const IP_SRC_OFF: u32 = IP_OFF + 12;
const IP_DST_OFF: u32 = IP_OFF + 16;
/// Transport header offset assuming IHL=5 (20-byte IP header).
const TP_OFF: u32 = IP_OFF + 20;

/// Compiles a filter expression to classic BPF.
pub fn compile_classic(expr: &FilterExpr) -> RtResult<BpfProgram> {
    let mut frag: Vec<SymInsn> = Vec::new();
    // Every filter implicitly requires IPv4 (the paper's scope).
    emit_ip_check(&mut frag);
    emit(expr, &mut frag)?;
    link(frag)
}

fn emit_ip_check(out: &mut Vec<SymInsn>) {
    out.push(SymInsn {
        code: op::LD_H_ABS,
        k: ETHERTYPE_OFF,
        jt: Target::Next,
        jf: Target::Next,
    });
    out.push(SymInsn {
        code: op::JEQ_K,
        k: ETHERTYPE_IPV4,
        jt: Target::Next,
        jf: Target::False,
    });
}

/// Emits code that falls through on match and jumps FALSE on mismatch.
fn emit(expr: &FilterExpr, out: &mut Vec<SymInsn>) -> RtResult<()> {
    match expr {
        FilterExpr::Ip => {} // already guaranteed by the prologue
        FilterExpr::Tcp => emit_proto(out, 6),
        FilterExpr::Udp => emit_proto(out, 17),
        FilterExpr::Host(dir, a) => {
            let v4 = a
                .as_v4_u32()
                .ok_or_else(|| RtError::value("classic BPF backend is IPv4-only"))?;
            emit_addr_cmp(out, *dir, v4, u32::MAX)?;
        }
        FilterExpr::Net(dir, n) => {
            let prefix = n
                .prefix()
                .as_v4_u32()
                .ok_or_else(|| RtError::value("classic BPF backend is IPv4-only"))?;
            let mask = if n.is_empty() {
                0
            } else {
                u32::MAX << (32 - u32::from(n.len()))
            };
            emit_addr_cmp(out, *dir, prefix, mask)?;
        }
        FilterExpr::Port(dir, num) => {
            // Port offsets assume a 20-byte IP header; the HILTI backend
            // shares the assumption so both engines agree bit-for-bit.
            let (first, second) = match dir {
                Dir::Src => (TP_OFF, None),
                Dir::Dst => (TP_OFF + 2, None),
                Dir::Either => (TP_OFF, Some(TP_OFF + 2)),
            };
            out.push(SymInsn {
                code: op::LD_H_ABS,
                k: first,
                jt: Target::Next,
                jf: Target::Next,
            });
            match second {
                None => out.push(SymInsn {
                    code: op::JEQ_K,
                    k: u32::from(*num),
                    jt: Target::Next,
                    jf: Target::False,
                }),
                Some(off2) => {
                    // match → skip the second comparison.
                    out.push(SymInsn {
                        code: op::JEQ_K,
                        k: u32::from(*num),
                        jt: Target::True,
                        jf: Target::Next,
                    });
                    out.push(SymInsn {
                        code: op::LD_H_ABS,
                        k: off2,
                        jt: Target::Next,
                        jf: Target::Next,
                    });
                    out.push(SymInsn {
                        code: op::JEQ_K,
                        k: u32::from(*num),
                        jt: Target::Next,
                        jf: Target::False,
                    });
                }
            }
        }
        FilterExpr::And(l, r) => {
            emit(l, out)?;
            emit(r, out)?;
        }
        FilterExpr::Or(l, r) => {
            // Layout: [l-fragment][bridge: jump TRUE][r-fragment].
            // l falls through on match -> the bridge short-circuits TRUE;
            // l's FALSE exits retarget to the start of r.
            let base = out.len();
            emit(l, out)?;
            let bridge_pc = out.len();
            let len = bridge_pc - base;
            for (off, insn) in out[base..].iter_mut().enumerate() {
                let skip = (len - off) as u8;
                if matches!(insn.jt, Target::False) {
                    insn.jt = Target::Skip(skip);
                }
                if matches!(insn.jf, Target::False) {
                    insn.jf = Target::Skip(skip);
                }
            }
            // Unconditional jump (both branches equal) to TRUE.
            out.push(SymInsn {
                code: op::JEQ_K,
                k: 0,
                jt: Target::True,
                jf: Target::True,
            });
            emit(r, out)?;
        }
        FilterExpr::Not(e) => {
            // Layout: [inner][bridge: jump FALSE]. Inner falls through on
            // match -> the bridge rejects; inner's FALSE exits (mismatch)
            // retarget past the bridge = the NOT matched, fall through.
            // Inner TRUE exits (short-circuit matches) become FALSE.
            let base = out.len();
            emit(e, out)?;
            let bridge_pc = out.len();
            let len = bridge_pc - base;
            for (off, insn) in out[base..].iter_mut().enumerate() {
                let skip = (len - off) as u8;
                if matches!(insn.jt, Target::True) {
                    insn.jt = Target::False;
                } else if matches!(insn.jt, Target::False) {
                    insn.jt = Target::Skip(skip);
                }
                if matches!(insn.jf, Target::True) {
                    insn.jf = Target::False;
                } else if matches!(insn.jf, Target::False) {
                    insn.jf = Target::Skip(skip);
                }
            }
            out.push(SymInsn {
                code: op::JEQ_K,
                k: 0,
                jt: Target::False,
                jf: Target::False,
            });
        }
    }
    Ok(())
}

/// Resolves symbolic targets into the final program with an accept/reject
/// trailer.
fn link(frag: Vec<SymInsn>) -> RtResult<BpfProgram> {
    let n = frag.len();
    // Trailer: [n] = RET 1 (accept), [n+1] = RET 0 (reject).
    let accept = n;
    let reject = n + 1;
    let mut insns = Vec::with_capacity(n + 2);
    for (pc, s) in frag.iter().enumerate() {
        let resolve = |t: Target| -> RtResult<u8> {
            let dst = match t {
                Target::Next => pc + 1,
                Target::True => accept,
                Target::False => reject,
                Target::Skip(d) => pc + 1 + usize::from(d),
            };
            let delta = dst - (pc + 1);
            u8::try_from(delta).map_err(|_| RtError::value("filter too large for BPF jumps"))
        };
        match s.code {
            op::JEQ_K => insns.push(BpfInsn::jump(
                op::JEQ_K,
                s.k,
                resolve(s.jt)?,
                resolve(s.jf)?,
            )),
            code => insns.push(BpfInsn::stmt(code, s.k)),
        }
    }
    insns.push(BpfInsn::stmt(op::RET_K, 1));
    insns.push(BpfInsn::stmt(op::RET_K, 0));
    Ok(BpfProgram { insns })
}

fn emit_proto(out: &mut Vec<SymInsn>, proto: u32) {
    out.push(SymInsn {
        code: op::LD_B_ABS,
        k: IP_PROTO_OFF,
        jt: Target::Next,
        jf: Target::Next,
    });
    out.push(SymInsn {
        code: op::JEQ_K,
        k: proto,
        jt: Target::Next,
        jf: Target::False,
    });
}

fn emit_addr_cmp(out: &mut Vec<SymInsn>, dir: Dir, value: u32, mask: u32) -> RtResult<()> {
    let masked = value & mask;
    let one = |out: &mut Vec<SymInsn>, off: u32, last_jf: Target| {
        out.push(SymInsn {
            code: op::LD_W_ABS,
            k: off,
            jt: Target::Next,
            jf: Target::Next,
        });
        if mask != u32::MAX {
            out.push(SymInsn {
                code: op::AND_K,
                k: mask,
                jt: Target::Next,
                jf: Target::Next,
            });
        }
        out.push(SymInsn {
            code: op::JEQ_K,
            k: masked,
            jt: Target::Next,
            jf: last_jf,
        });
    };
    match dir {
        Dir::Src => one(out, IP_SRC_OFF, Target::False),
        Dir::Dst => one(out, IP_DST_OFF, Target::False),
        Dir::Either => {
            // src match short-circuits to TRUE; else compare dst.
            out.push(SymInsn {
                code: op::LD_W_ABS,
                k: IP_SRC_OFF,
                jt: Target::Next,
                jf: Target::Next,
            });
            if mask != u32::MAX {
                out.push(SymInsn {
                    code: op::AND_K,
                    k: mask,
                    jt: Target::Next,
                    jf: Target::Next,
                });
            }
            out.push(SymInsn {
                code: op::JEQ_K,
                k: masked,
                jt: Target::True,
                jf: Target::Next,
            });
            one(out, IP_DST_OFF, Target::False);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse_filter;
    use hilti_rt::addr::Addr;
    use netpkt::decode::{build_tcp_frame, build_udp_frame, tcp_flags};

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn tcp_frame(src: &str, dst: &str, sport: u16, dport: u16) -> Vec<u8> {
        build_tcp_frame(a(src), a(dst), sport, dport, 1, 0, tcp_flags::ACK, b"x")
    }

    fn check(filter: &str, pkt: &[u8]) -> bool {
        let prog = compile_classic(&parse_filter(filter).unwrap()).unwrap();
        bpf_filter(&prog, pkt)
    }

    #[test]
    fn host_filter() {
        let p = tcp_frame("192.168.1.1", "8.8.8.8", 1234, 80);
        assert!(check("host 192.168.1.1", &p));
        assert!(check("src host 192.168.1.1", &p));
        assert!(!check("dst host 192.168.1.1", &p));
        assert!(!check("host 9.9.9.9", &p));
    }

    #[test]
    fn net_filter() {
        let p = tcp_frame("10.0.5.77", "8.8.8.8", 1234, 80);
        assert!(check("net 10.0.5.0/24", &p));
        assert!(check("src net 10.0.5.0/24", &p));
        assert!(!check("dst net 10.0.5.0/24", &p));
        assert!(!check("net 10.0.6.0/24", &p));
        assert!(check("net 10.0.0.0/8", &p));
    }

    #[test]
    fn port_and_proto() {
        let tcp = tcp_frame("1.1.1.1", "2.2.2.2", 1234, 80);
        let udp = build_udp_frame(a("1.1.1.1"), a("2.2.2.2"), 5353, 53, b"q");
        assert!(check("tcp", &tcp));
        assert!(!check("udp", &tcp));
        assert!(check("udp", &udp));
        assert!(check("port 80", &tcp));
        assert!(check("dst port 80", &tcp));
        assert!(!check("src port 80", &tcp));
        assert!(check("port 53", &udp));
    }

    #[test]
    fn boolean_combinations() {
        let p = tcp_frame("192.168.1.1", "8.8.8.8", 1234, 80);
        assert!(check("host 192.168.1.1 or src net 10.0.5.0/24", &p));
        assert!(check("tcp and port 80", &p));
        assert!(!check("tcp and port 443", &p));
        assert!(check("not host 9.9.9.9", &p));
        assert!(!check("not host 192.168.1.1", &p));
        assert!(check("not ( port 443 or port 22 )", &p));
    }

    #[test]
    fn non_ip_rejected() {
        let mut arp = vec![0u8; 60];
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert!(!check("host 1.2.3.4", &arp));
        assert!(!check("not host 1.2.3.4", &arp)); // still not IP
    }

    #[test]
    fn short_packets_rejected() {
        let p = tcp_frame("1.1.1.1", "2.2.2.2", 1, 2);
        assert!(!check("port 80", &p[..20]));
        assert!(!check("host 1.1.1.1", &[]));
    }

    #[test]
    fn agrees_with_reference_on_corpus() {
        use crate::expr::PacketView;
        let filters = [
            "host 192.168.1.1 or src net 10.0.5.0/24",
            "tcp and dst port 80",
            "udp",
            "not ( net 10.0.0.0/8 )",
            "src host 1.2.3.4 and not dst port 443",
        ];
        let mut packets = Vec::new();
        for i in 0..50u8 {
            packets.push(tcp_frame(
                &format!("10.0.{}.{}", i % 6, i + 1),
                &format!("192.168.1.{}", (i % 3) + 1),
                1000 + u16::from(i),
                if i % 2 == 0 { 80 } else { 443 },
            ));
        }
        for f in filters {
            let expr = parse_filter(f).unwrap();
            let prog = compile_classic(&expr).unwrap();
            for pkt in &packets {
                let d = netpkt::decode::decode_ethernet(&netpkt::RawPacket::new(
                    hilti_rt::time::Time::ZERO,
                    pkt.clone(),
                ))
                .unwrap();
                let view = PacketView {
                    is_ip: true,
                    proto: Some(match d.transport {
                        netpkt::Transport::Tcp(_) => 6,
                        netpkt::Transport::Udp => 17,
                    }),
                    src: Some(d.src),
                    dst: Some(d.dst),
                    sport: Some(d.sport),
                    dport: Some(d.dport),
                };
                assert_eq!(bpf_filter(&prog, pkt), expr.matches(&view), "filter {f:?}");
            }
        }
    }
}
