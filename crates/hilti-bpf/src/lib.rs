//! # hilti-bpf — a BPF-style packet filter engine on HILTI (§4, §6.2)
//!
//! The paper's first host application: a compiler for Berkeley Packet
//! Filter expressions. "BPF traditionally translates filters into code for
//! its custom internal stack machine, which it then interprets at runtime.
//! Compiling filters into native code via HILTI avoids the overhead of
//! interpreting."
//!
//! Three pieces:
//! * [`expr`] — the filter-expression front end (`host 192.168.1.1 or src
//!   net 10.0.5.0/24`).
//! * [`classic`] — classic BPF: the McCanne/Jacobson accumulator machine
//!   instruction set, a code generator for it, and its interpreter — the
//!   baseline §6.2 compares against.
//! * [`compile`] — the HILTI backend: filters become HILTI functions over
//!   the `IP::Header` overlay (Figure 4), compiled and run by the VM.
//!
//! Like the paper's proof of concept, the engine covers IPv4 header
//! conditions (hosts, nets, ports, protocols, boolean combinations).

pub mod classic;
pub mod compile;
pub mod expr;

pub use compile::HiltiFilter;
pub use expr::{parse_filter, FilterExpr};
