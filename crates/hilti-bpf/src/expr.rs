//! BPF filter-expression front end.
//!
//! Grammar (tcpdump-style subset):
//!
//! ```text
//! expr  := or
//! or    := and ('or' and)*
//! and   := unary ('and' unary)*
//! unary := 'not' unary | '(' expr ')' | primitive
//! primitive := [dir] 'host' ADDR
//!            | [dir] 'net' CIDR
//!            | [dir] 'port' NUM
//!            | 'tcp' | 'udp' | 'ip'
//! dir   := 'src' | 'dst'
//! ```

use hilti_rt::addr::{Addr, Network};
use hilti_rt::error::{RtError, RtResult};

/// Direction qualifier of a primitive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    Either,
    Src,
    Dst,
}

/// Parsed filter expression.
#[derive(Clone, Debug, PartialEq)]
pub enum FilterExpr {
    Host(Dir, Addr),
    Net(Dir, Network),
    Port(Dir, u16),
    Tcp,
    Udp,
    Ip,
    Not(Box<FilterExpr>),
    And(Box<FilterExpr>, Box<FilterExpr>),
    Or(Box<FilterExpr>, Box<FilterExpr>),
}

/// Parses a filter expression.
pub fn parse_filter(src: &str) -> RtResult<FilterExpr> {
    let tokens: Vec<&str> = src.split_whitespace().collect();
    let mut p = P { tokens, pos: 0 };
    let e = p.or_expr()?;
    if p.pos != p.tokens.len() {
        return Err(RtError::value(format!(
            "trailing tokens in filter: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(e)
}

struct P<'a> {
    tokens: Vec<&'a str>,
    pos: usize,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<&'a str> {
        self.tokens.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<&'a str> {
        let t = self.peek();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn or_expr(&mut self) -> RtResult<FilterExpr> {
        let mut left = self.and_expr()?;
        while self.peek() == Some("or") {
            self.bump();
            let right = self.and_expr()?;
            left = FilterExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> RtResult<FilterExpr> {
        let mut left = self.unary()?;
        while self.peek() == Some("and") {
            self.bump();
            let right = self.unary()?;
            left = FilterExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> RtResult<FilterExpr> {
        match self.peek() {
            Some("not") => {
                self.bump();
                Ok(FilterExpr::Not(Box::new(self.unary()?)))
            }
            Some("(") => {
                self.bump();
                let e = self.or_expr()?;
                if self.bump() != Some(")") {
                    return Err(RtError::value("unbalanced parenthesis in filter"));
                }
                Ok(e)
            }
            _ => self.primitive(),
        }
    }

    fn primitive(&mut self) -> RtResult<FilterExpr> {
        let dir = match self.peek() {
            Some("src") => {
                self.bump();
                Dir::Src
            }
            Some("dst") => {
                self.bump();
                Dir::Dst
            }
            _ => Dir::Either,
        };
        match self.bump() {
            Some("host") => {
                let a = self
                    .bump()
                    .ok_or_else(|| RtError::value("host needs an address"))?;
                Ok(FilterExpr::Host(dir, a.parse()?))
            }
            Some("net") => {
                let n = self
                    .bump()
                    .ok_or_else(|| RtError::value("net needs a CIDR"))?;
                Ok(FilterExpr::Net(dir, n.parse()?))
            }
            Some("port") => {
                let p = self
                    .bump()
                    .ok_or_else(|| RtError::value("port needs a number"))?;
                let num: u16 = p
                    .parse()
                    .map_err(|_| RtError::value(format!("bad port {p:?}")))?;
                Ok(FilterExpr::Port(dir, num))
            }
            Some("tcp") if dir == Dir::Either => Ok(FilterExpr::Tcp),
            Some("udp") if dir == Dir::Either => Ok(FilterExpr::Udp),
            Some("ip") if dir == Dir::Either => Ok(FilterExpr::Ip),
            other => Err(RtError::value(format!(
                "unexpected token {other:?} in filter"
            ))),
        }
    }
}

/// Reference semantics of a filter over a decoded IPv4 frame: used by tests
/// to validate both engines independently. `None` fields mean the packet
/// did not decode that far.
pub struct PacketView {
    pub is_ip: bool,
    pub proto: Option<u8>,
    pub src: Option<Addr>,
    pub dst: Option<Addr>,
    pub sport: Option<u16>,
    pub dport: Option<u16>,
}

impl FilterExpr {
    /// Reference evaluation (oracle).
    pub fn matches(&self, p: &PacketView) -> bool {
        match self {
            FilterExpr::Ip => p.is_ip,
            FilterExpr::Tcp => p.proto == Some(6),
            FilterExpr::Udp => p.proto == Some(17),
            FilterExpr::Host(dir, a) => match dir {
                Dir::Src => p.src == Some(*a),
                Dir::Dst => p.dst == Some(*a),
                Dir::Either => p.src == Some(*a) || p.dst == Some(*a),
            },
            FilterExpr::Net(dir, n) => {
                let hit = |x: &Option<Addr>| x.map(|a| n.contains(&a)).unwrap_or(false);
                match dir {
                    Dir::Src => hit(&p.src),
                    Dir::Dst => hit(&p.dst),
                    Dir::Either => hit(&p.src) || hit(&p.dst),
                }
            }
            FilterExpr::Port(dir, num) => match dir {
                Dir::Src => p.sport == Some(*num),
                Dir::Dst => p.dport == Some(*num),
                Dir::Either => p.sport == Some(*num) || p.dport == Some(*num),
            },
            FilterExpr::Not(e) => !e.matches(p),
            FilterExpr::And(a, b) => a.matches(p) && b.matches(p),
            FilterExpr::Or(a, b) => a.matches(p) || b.matches(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_filter_parses() {
        // The §6.2 filter: `host 192.168.1.1 or src net 10.0.5.0/24`.
        let e = parse_filter("host 192.168.1.1 or src net 10.0.5.0/24").unwrap();
        match e {
            FilterExpr::Or(l, r) => {
                assert!(matches!(*l, FilterExpr::Host(Dir::Either, _)));
                assert!(matches!(*r, FilterExpr::Net(Dir::Src, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_and_binds_tighter() {
        let e = parse_filter("tcp and port 80 or udp").unwrap();
        assert!(matches!(e, FilterExpr::Or(_, _)));
        if let FilterExpr::Or(l, _) = e {
            assert!(matches!(*l, FilterExpr::And(_, _)));
        }
    }

    #[test]
    fn parens_and_not() {
        let e = parse_filter("not ( host 1.2.3.4 or host 5.6.7.8 )").unwrap();
        assert!(matches!(e, FilterExpr::Not(_)));
    }

    #[test]
    fn directions() {
        assert!(matches!(
            parse_filter("src port 80").unwrap(),
            FilterExpr::Port(Dir::Src, 80)
        ));
        assert!(matches!(
            parse_filter("dst host 10.0.0.1").unwrap(),
            FilterExpr::Host(Dir::Dst, _)
        ));
    }

    #[test]
    fn errors() {
        assert!(parse_filter("host").is_err());
        assert!(parse_filter("net notanet").is_err());
        assert!(parse_filter("( tcp").is_err());
        assert!(parse_filter("tcp garbage").is_err());
        assert!(parse_filter("port http").is_err());
    }

    #[test]
    fn reference_semantics() {
        let e = parse_filter("host 192.168.1.1 or src net 10.0.5.0/24").unwrap();
        let mk = |src: &str, dst: &str| PacketView {
            is_ip: true,
            proto: Some(6),
            src: Some(src.parse().unwrap()),
            dst: Some(dst.parse().unwrap()),
            sport: Some(1234),
            dport: Some(80),
        };
        assert!(e.matches(&mk("192.168.1.1", "8.8.8.8")));
        assert!(e.matches(&mk("8.8.8.8", "192.168.1.1")));
        assert!(e.matches(&mk("10.0.5.99", "8.8.8.8")));
        assert!(!e.matches(&mk("8.8.8.8", "10.0.5.99"))); // dst, not src
        assert!(!e.matches(&mk("8.8.8.8", "9.9.9.9")));
    }
}
