//! The HILTI backend: BPF filters compiled to HILTI code (Figure 4).
//!
//! The compiler emits textual HILTI source — an `IP::Header` overlay plus a
//! `filter(ref<bytes> packet) → bool` function in the straight-line style
//! of the paper's Figure 4 — and builds it into a [`hilti::Program`]
//! executed by the bytecode VM. Malformed/short packets are handled the
//! HILTI way: out-of-bounds field access raises `Hilti::IndexError`, which
//! the generated code catches and maps to "no match" (fail-safe, §7).

use hilti::host::Program;
use hilti::passes::OptLevel;
use hilti::value::Value;
use hilti_rt::bytestring::Bytes;
use hilti_rt::error::RtResult;

use crate::expr::{Dir, FilterExpr};

/// Transport header offset assuming IHL=5 (shared with the classic
/// backend so both engines agree bit-for-bit).
const TP_OFF: u64 = 34;

/// Generates the HILTI source for a filter (the paper's Figure 4 output).
pub fn generate_source(expr: &FilterExpr) -> String {
    let mut g = Gen {
        lines: Vec::new(),
        locals: Vec::new(),
        counter: 0,
    };
    let result = g.gen(expr);
    let mut src = String::new();
    src.push_str("module Bpf\n\n");
    src.push_str("type Eth::Header = overlay {\n");
    src.push_str("    ethertype: int<16> at 12 unpack UInt16BigEndian\n");
    src.push_str("}\n\n");
    src.push_str("type IP::Header = overlay {\n");
    src.push_str("    version: int<8> at 14 unpack UInt8InBigEndian(4, 7),\n");
    src.push_str("    hdr_len: int<8> at 14 unpack UInt8InBigEndian(0, 3),\n");
    src.push_str("    proto: int<8> at 23 unpack UInt8BigEndian,\n");
    src.push_str("    src: addr at 26 unpack IPv4InNetworkOrder,\n");
    src.push_str("    dst: addr at 30 unpack IPv4InNetworkOrder,\n");
    src.push_str(&format!(
        "    sport: int<16> at {TP_OFF} unpack UInt16BigEndian,\n"
    ));
    src.push_str(&format!(
        "    dport: int<16> at {} unpack UInt16BigEndian\n",
        TP_OFF + 2
    ));
    src.push_str("}\n\n");
    src.push_str("bool filter(ref<bytes> packet) {\n");
    for l in &g.locals {
        src.push_str(&format!("    local bool {l}\n"));
    }
    src.push_str("    local int<64> ety\n");
    src.push_str("    local addr av\n");
    src.push_str("    local int<64> pv\n");
    src.push_str("    local int<64> pr\n");
    src.push_str("    try {\n");
    // IPv4 prologue.
    src.push_str("        ety = overlay.get Eth::Header ethertype packet\n");
    src.push_str("        local bool is_ip\n");
    src.push_str("        is_ip = int.eq ety 2048\n");
    src.push_str("        if.else is_ip body not_ip\n");
    src.push_str("    } catch ( ref<Hilti::IndexError> e ) {\n");
    src.push_str("        return False\n");
    src.push_str("    }\n");
    src.push_str("not_ip:\n");
    src.push_str("    return False\n");
    src.push_str("body:\n");
    src.push_str("    try {\n");
    for l in &g.lines {
        src.push_str(&format!("        {l}\n"));
    }
    src.push_str(&format!("        return {result}\n"));
    src.push_str("    } catch ( ref<Hilti::IndexError> e2 ) {\n");
    src.push_str("        return False\n");
    src.push_str("    }\n");
    src.push_str("}\n");
    src
}

struct Gen {
    lines: Vec<String>,
    locals: Vec<String>,
    counter: u32,
}

impl Gen {
    fn temp(&mut self) -> String {
        self.counter += 1;
        let name = format!("b{}", self.counter);
        self.locals.push(name.clone());
        name
    }

    /// Emits code computing `expr` into a fresh bool local; returns its name.
    fn gen(&mut self, expr: &FilterExpr) -> String {
        match expr {
            FilterExpr::Ip => {
                // Inside `body` the packet is known IPv4.
                let t = self.temp();
                self.lines.push(format!("{t} = assign True"));
                t
            }
            FilterExpr::Tcp => self.gen_proto(6),
            FilterExpr::Udp => self.gen_proto(17),
            FilterExpr::Host(dir, a) => self.gen_addr_test(*dir, &a.to_string()),
            FilterExpr::Net(dir, n) => self.gen_addr_test(*dir, &n.to_string()),
            FilterExpr::Port(dir, num) => {
                let t = self.temp();
                match dir {
                    Dir::Src => {
                        self.lines
                            .push("pv = overlay.get IP::Header sport packet".into());
                        self.lines.push(format!("{t} = int.eq pv {num}"));
                    }
                    Dir::Dst => {
                        self.lines
                            .push("pv = overlay.get IP::Header dport packet".into());
                        self.lines.push(format!("{t} = int.eq pv {num}"));
                    }
                    Dir::Either => {
                        let t2 = self.temp();
                        self.lines
                            .push("pv = overlay.get IP::Header sport packet".into());
                        self.lines.push(format!("{t} = int.eq pv {num}"));
                        self.lines
                            .push("pv = overlay.get IP::Header dport packet".into());
                        self.lines.push(format!("{t2} = int.eq pv {num}"));
                        self.lines.push(format!("{t} = or {t} {t2}"));
                    }
                }
                t
            }
            FilterExpr::Not(e) => {
                let inner = self.gen(e);
                let t = self.temp();
                self.lines.push(format!("{t} = not {inner}"));
                t
            }
            FilterExpr::And(l, r) => {
                let a = self.gen(l);
                let b = self.gen(r);
                let t = self.temp();
                self.lines.push(format!("{t} = and {a} {b}"));
                t
            }
            FilterExpr::Or(l, r) => {
                let a = self.gen(l);
                let b = self.gen(r);
                let t = self.temp();
                self.lines.push(format!("{t} = or {a} {b}"));
                t
            }
        }
    }

    fn gen_proto(&mut self, proto: u8) -> String {
        let t = self.temp();
        self.lines
            .push("pr = overlay.get IP::Header proto packet".into());
        self.lines.push(format!("{t} = int.eq pr {proto}"));
        t
    }

    /// Address/network test in Figure 4 style: `equal` against an addr or
    /// net literal (addr-vs-net `equal` means membership).
    fn gen_addr_test(&mut self, dir: Dir, literal: &str) -> String {
        let t = self.temp();
        match dir {
            Dir::Src => {
                self.lines
                    .push("av = overlay.get IP::Header src packet".into());
                self.lines.push(format!("{t} = equal av {literal}"));
            }
            Dir::Dst => {
                self.lines
                    .push("av = overlay.get IP::Header dst packet".into());
                self.lines.push(format!("{t} = equal av {literal}"));
            }
            Dir::Either => {
                let t2 = self.temp();
                self.lines
                    .push("av = overlay.get IP::Header src packet".into());
                self.lines.push(format!("{t} = equal av {literal}"));
                self.lines
                    .push("av = overlay.get IP::Header dst packet".into());
                self.lines.push(format!("{t2} = equal av {literal}"));
                self.lines.push(format!("{t} = or {t} {t2}"));
            }
        }
        t
    }
}

/// A BPF filter compiled to HILTI and ready to run on the VM.
pub struct HiltiFilter {
    program: Program,
    source: String,
}

impl HiltiFilter {
    /// Compiles a filter expression all the way to executable bytecode.
    pub fn compile(expr: &FilterExpr, opt: OptLevel) -> RtResult<HiltiFilter> {
        let source = generate_source(expr);
        let program = Program::from_sources(&[&source], opt)?;
        Ok(HiltiFilter { program, source })
    }

    /// Compiles from filter text.
    pub fn from_filter(filter: &str) -> RtResult<HiltiFilter> {
        Self::compile(&crate::expr::parse_filter(filter)?, OptLevel::Full)
    }

    /// The generated HILTI source (Figure 4 analog).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Runs the filter over one raw Ethernet frame.
    pub fn matches(&mut self, frame: &[u8]) -> RtResult<bool> {
        let v = self.program.run(
            "Bpf::filter",
            &[Value::Bytes(Bytes::frozen_from_slice(frame))],
        )?;
        v.as_bool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::{bpf_filter, compile_classic};
    use crate::expr::parse_filter;
    use hilti_rt::addr::Addr;
    use netpkt::decode::{build_tcp_frame, build_udp_frame, tcp_flags};

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn tcp_frame(src: &str, dst: &str, sport: u16, dport: u16) -> Vec<u8> {
        build_tcp_frame(a(src), a(dst), sport, dport, 1, 0, tcp_flags::ACK, b"x")
    }

    #[test]
    fn generated_source_compiles_and_matches() {
        let mut f = HiltiFilter::from_filter("host 192.168.1.1 or src net 10.0.5.0/24").unwrap();
        assert!(f.source().contains("overlay.get IP::Header src packet"));
        assert!(f
            .matches(&tcp_frame("192.168.1.1", "8.8.8.8", 1, 80))
            .unwrap());
        assert!(f.matches(&tcp_frame("10.0.5.7", "8.8.8.8", 1, 80)).unwrap());
        assert!(!f.matches(&tcp_frame("8.8.8.8", "10.0.5.7", 1, 80)).unwrap());
        assert!(!f.matches(&tcp_frame("9.9.9.9", "8.8.8.8", 1, 80)).unwrap());
    }

    #[test]
    fn short_and_non_ip_packets_fail_safe() {
        let mut f = HiltiFilter::from_filter("host 1.2.3.4").unwrap();
        assert!(!f.matches(&[]).unwrap());
        assert!(!f.matches(&[0u8; 10]).unwrap());
        let mut arp = vec![0u8; 60];
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert!(!f.matches(&arp).unwrap());
    }

    #[test]
    fn ports_and_protocols() {
        let mut f = HiltiFilter::from_filter("tcp and dst port 80").unwrap();
        assert!(f
            .matches(&tcp_frame("1.1.1.1", "2.2.2.2", 999, 80))
            .unwrap());
        assert!(!f
            .matches(&tcp_frame("1.1.1.1", "2.2.2.2", 80, 999))
            .unwrap());
        let udp = build_udp_frame(a("1.1.1.1"), a("2.2.2.2"), 5353, 80, b"q");
        assert!(!f.matches(&udp).unwrap());
        let mut g = HiltiFilter::from_filter("udp").unwrap();
        assert!(g.matches(&udp).unwrap());
    }

    #[test]
    fn engines_agree_on_synthetic_trace() {
        // The §6.2 correctness check: "both applications indeed return the
        // same number of matches" — strengthened to per-packet agreement.
        let filters = [
            "host 93.184.0.1 or src net 10.1.0.0/16",
            "tcp and dst port 80",
            "not ( src net 10.0.0.0/8 )",
            "port 80",
        ];
        let trace = netpkt::synth::http_trace(&netpkt::synth::SynthConfig::new(77, 30));
        for filt in filters {
            let expr = parse_filter(filt).unwrap();
            let classic = compile_classic(&expr).unwrap();
            let mut hilti_f = HiltiFilter::compile(&expr, OptLevel::Full).unwrap();
            let mut classic_matches = 0u32;
            let mut hilti_matches = 0u32;
            for pkt in &trace {
                let c = bpf_filter(&classic, &pkt.data);
                let h = hilti_f.matches(&pkt.data).unwrap();
                assert_eq!(c, h, "filter {filt:?} disagrees on a packet");
                classic_matches += u32::from(c);
                hilti_matches += u32::from(h);
            }
            assert_eq!(classic_matches, hilti_matches);
        }
    }

    #[test]
    fn not_filter_agrees() {
        let expr = parse_filter("not host 10.1.0.1").unwrap();
        let classic = compile_classic(&expr).unwrap();
        let mut hf = HiltiFilter::compile(&expr, OptLevel::Full).unwrap();
        for (src, want) in [("10.1.0.1", false), ("10.1.0.2", true)] {
            let p = tcp_frame(src, "8.8.8.8", 1, 2);
            assert_eq!(bpf_filter(&classic, &p), want);
            assert_eq!(hf.matches(&p).unwrap(), want);
        }
    }
}
