//! Integration tests for the adaptive tiering layer (profile-guided
//! re-lowering with inline caches).
//!
//! Covers the IC state machine end to end — hit, miss-refill, polymorphic
//! cap, de-optimization — plus output/fuel parity across tiering modes and
//! the `engine.tierup` / `ic.*` telemetry surface.

use hilti::host::{BuildOptions, Program};
use hilti::passes::OptLevel;
use hilti::tier::{TierConfig, TieringMode};
use hilti::Value;
use hilti_rt::bytestring::Bytes;

const SRC: &str = r#"
module M

type T1 = struct { int<64> a, int<64> b }
type T2 = struct { int<64> b, int<64> a }
type T3 = struct { int<64> c, int<64> d, int<64> b }
type T4 = struct { int<64> x, int<64> y, int<64> z, int<64> b }
type T5 = struct { int<64> p, int<64> b, int<64> q }
type T6 = struct { int<64> b, int<64> c }
type NoB = struct { int<64> a }

type Hdr = overlay {
    tag: int<16> at 0 unpack UInt16BigEndian,
    len: int<16> at 2 unpack UInt16BigEndian
}

int<64> getb(any s) {
    local int<64> v
    v = struct.get s b
    return v
}

int<64> setb(any s, int<64> v) {
    struct.set s b v
    return v
}

any mk1() {
    local any s
    s = new T1
    struct.set s a 10
    struct.set s b 1
    return s
}

any mk2() {
    local any s
    s = new T2
    struct.set s b 2
    return s
}

any mk3() {
    local any s
    s = new T3
    struct.set s b 3
    return s
}

any mk4() {
    local any s
    s = new T4
    struct.set s b 4
    return s
}

any mk5() {
    local any s
    s = new T5
    struct.set s b 5
    return s
}

any mk6() {
    local any s
    s = new T6
    struct.set s b 6
    return s
}

any mk_unset() {
    local any s
    s = new T1
    return s
}

any mk_nob() {
    local any s
    s = new NoB
    return s
}

int<16> hdr_len(ref<bytes> pkt) {
    local int<16> v
    v = overlay.get Hdr len pkt
    return v
}

int<64> double(int<64> x) {
    local int<64> y
    y = int.add x x
    return y
}

int<64> callit(any c, int<64> x) {
    local int<64> r
    r = callable.call c x
    return r
}

any mkcb() {
    local any c
    c = callable.bind double
    return c
}

int<64> fib(int<64> n) {
    local bool base
    local int<64> a
    local int<64> b
    local int<64> r
    base = int.lt n 2
    if.else base ret rec
ret:
    return n
rec:
    a = int.sub n 1
    a = call fib (a)
    b = int.sub n 2
    b = call fib (b)
    r = int.add a b
    return r
}
"#;

fn build(mode: TieringMode) -> Program {
    let mut p = Program::from_sources_opts(
        &[SRC],
        OptLevel::Full,
        BuildOptions {
            tiering: Some(mode),
            ..Default::default()
        },
    )
    .unwrap();
    // Tiny thresholds so short test workloads cross them.
    p.context_mut().set_tiering_config(
        mode,
        TierConfig {
            hot_invocations: 2,
            hot_retired: 16,
            ic_cap: 4,
        },
    );
    p
}

fn site<'r>(
    report: &'r hilti::tier::TierReport,
    func: &str,
    kind: &str,
) -> &'r hilti::tier::IcSiteReport {
    report
        .functions
        .iter()
        .find(|f| f.name == func)
        .unwrap_or_else(|| panic!("{func} not tiered: {report:?}"))
        .ic_sites
        .iter()
        .find(|s| s.kind == kind)
        .unwrap_or_else(|| panic!("no {kind} site in {func}: {report:?}"))
}

#[test]
fn ic_hit_after_monomorphic_miss_refill() {
    let mut p = build(TieringMode::Eager);
    let s = p.run("M::mk1", &[]).unwrap();
    for _ in 0..10 {
        let v = p.run("M::getb", &[s.clone()]).unwrap();
        assert!(v.equals(&Value::Int(1)), "{v:?}");
    }
    let report = p.context().tier_report();
    assert!(report.tierups >= 1);
    let ic = site(&report, "M::getb", "struct.get");
    assert_eq!(ic.misses, 1, "{ic:?}");
    assert_eq!(ic.hits, 9, "{ic:?}");
    assert_eq!(ic.entries, 1, "{ic:?}");
    assert!(!ic.deopt);
}

#[test]
fn ic_refills_per_receiver_type_up_to_cap() {
    let mut p = build(TieringMode::Eager);
    let s1 = p.run("M::mk1", &[]).unwrap();
    let s2 = p.run("M::mk2", &[]).unwrap();
    // Two receiver types: one miss each, hits thereafter. The field lives
    // at a different index in each struct, so a stale cache entry would
    // return the wrong field value — correctness proves the guard works.
    for _ in 0..4 {
        assert!(p
            .run("M::getb", &[s1.clone()])
            .unwrap()
            .equals(&Value::Int(1)));
        assert!(p
            .run("M::getb", &[s2.clone()])
            .unwrap()
            .equals(&Value::Int(2)));
    }
    let report = p.context().tier_report();
    let ic = site(&report, "M::getb", "struct.get");
    assert_eq!(ic.entries, 2, "{ic:?}");
    assert_eq!(ic.misses, 2, "{ic:?}");
    assert_eq!(ic.hits, 6, "{ic:?}");
    assert!(!ic.deopt);
}

#[test]
fn ic_polymorphic_cap_deoptimizes_but_stays_correct() {
    let mut p = build(TieringMode::Eager);
    let vals: Vec<Value> = (1..=6)
        .map(|i| p.run(&format!("M::mk{i}"), &[]).unwrap())
        .collect();
    // Six receiver types against a cap of four: the site must de-optimize
    // to the generic lookup — and keep producing correct answers.
    for round in 0..3 {
        for (i, s) in vals.iter().enumerate() {
            let v = p.run("M::getb", &[s.clone()]).unwrap();
            assert!(
                v.equals(&Value::Int(i as i64 + 1)),
                "round {round} type T{} gave {v:?}",
                i + 1
            );
        }
    }
    let report = p.context().tier_report();
    let ic = site(&report, "M::getb", "struct.get");
    assert!(ic.deopt, "{ic:?}");
    assert_eq!(ic.entries, 0, "de-opt clears the cache: {ic:?}");
}

#[test]
fn struct_set_ic_writes_through() {
    let mut p = build(TieringMode::Eager);
    let s = p.run("M::mk1", &[]).unwrap();
    for k in 0..5 {
        p.run("M::setb", &[s.clone(), Value::Int(100 + k)]).unwrap();
    }
    let v = p.run("M::getb", &[s]).unwrap();
    assert!(v.equals(&Value::Int(104)), "{v:?}");
    let report = p.context().tier_report();
    let ic = site(&report, "M::setb", "struct.set");
    assert_eq!(ic.misses, 1, "{ic:?}");
    assert_eq!(ic.hits, 4, "{ic:?}");
}

#[test]
fn overlay_ic_caches_resolved_overlay_type() {
    let mut p = build(TieringMode::Eager);
    let pkt = Value::Bytes(Bytes::frozen_from_slice(&[0x00, 0x07, 0x00, 0x2a]));
    for _ in 0..6 {
        let v = p.run("M::hdr_len", &[pkt.clone()]).unwrap();
        assert!(v.equals(&Value::Int(42)), "{v:?}");
    }
    let report = p.context().tier_report();
    let ic = site(&report, "M::hdr_len", "overlay.get");
    assert_eq!(ic.misses, 1, "{ic:?}");
    assert_eq!(ic.hits, 5, "{ic:?}");
}

#[test]
fn callable_ic_caches_callee_resolution() {
    let mut p = build(TieringMode::Eager);
    let c = p.run("M::mkcb", &[]).unwrap();
    for _ in 0..6 {
        let v = p.run("M::callit", &[c.clone(), Value::Int(21)]).unwrap();
        assert!(v.equals(&Value::Int(42)), "{v:?}");
    }
    let report = p.context().tier_report();
    let ic = site(&report, "M::callit", "callable.call");
    assert_eq!(ic.misses, 1, "{ic:?}");
    assert_eq!(ic.hits, 5, "{ic:?}");
}

#[test]
fn tiering_modes_agree_on_output_and_fuel() {
    // The same recursive workload under static specialization and all four
    // tiering modes: byte-identical results and identical fuel.
    let mut stat =
        Program::from_sources_opts(&[SRC], OptLevel::Full, BuildOptions::default()).unwrap();
    let want = stat.run("M::fib", &[Value::Int(15)]).unwrap();
    let want_fuel = stat.context().fuel_spent();
    assert!(want.equals(&Value::Int(610)), "{want:?}");

    for mode in [
        TieringMode::Off,
        TieringMode::Lazy,
        TieringMode::Eager,
        TieringMode::Threaded,
    ] {
        let mut p = build(mode);
        let got = p.run("M::fib", &[Value::Int(15)]).unwrap();
        let fuel = p.context().fuel_spent();
        assert!(got.equals(&want), "{mode:?}: {got:?} != {want:?}");
        assert_eq!(fuel, want_fuel, "{mode:?} fuel diverged");
        let tierups = p.context().tier_report().tierups;
        match mode {
            TieringMode::Off => assert_eq!(tierups, 0),
            _ => assert!(tierups >= 1, "{mode:?} never tiered"),
        }
    }
}

#[test]
fn ic_errors_match_generic_messages() {
    // IC fast paths must raise byte-identical exceptions to the generic
    // ops they replace: wrong receiver type, missing field, unset field.
    let cases: Vec<(&str, Vec<Value>)> = vec![
        ("M::getb", vec![Value::Int(3)]),
        ("M::setb", vec![Value::Bool(true), Value::Int(1)]),
    ];
    for (func, args) in cases {
        let mut off = build(TieringMode::Off);
        let mut eager = build(TieringMode::Eager);
        // Warm the eager build so the erroring call runs tiered code.
        let e_off = off.run(func, &args).unwrap_err();
        let e_tier = eager.run(func, &args).unwrap_err();
        let _ = eager.run(func, &args).unwrap_err();
        assert_eq!(e_off.kind, e_tier.kind, "{func}");
        assert_eq!(e_off.message, e_tier.message, "{func}");
    }

    // Struct-typed receivers that still fail: no such field / unset field.
    for maker in ["M::mk_nob", "M::mk_unset"] {
        let mut off = build(TieringMode::Off);
        let mut eager = build(TieringMode::Eager);
        let s_off = off.run(maker, &[]).unwrap();
        let s_tier = eager.run(maker, &[]).unwrap();
        let e_off = off.run("M::getb", &[s_off]).unwrap_err();
        let e_tier = eager.run("M::getb", &[s_tier.clone()]).unwrap_err();
        let e_tier2 = eager.run("M::getb", &[s_tier]).unwrap_err();
        assert_eq!(e_off.kind, e_tier.kind, "{maker}");
        assert_eq!(e_off.message, e_tier.message, "{maker}");
        assert_eq!(e_off.message, e_tier2.message, "{maker} (warm)");
    }
}

#[test]
fn tierup_and_ic_telemetry_counters() {
    use hilti_rt::telemetry::Telemetry;

    let mut p = build(TieringMode::Eager);
    let tel = Telemetry::new();
    p.context_mut().set_telemetry(&tel);
    let s = p.run("M::mk1", &[]).unwrap();
    for _ in 0..8 {
        p.run("M::getb", &[s.clone()]).unwrap();
    }
    let snap = tel.snapshot();
    assert!(snap.counter("engine.tierup") >= 1, "{:?}", snap.counters);
    assert!(snap.counter("ic.hit") >= 7, "{:?}", snap.counters);
    assert!(snap.counter("ic.miss") >= 1, "{:?}", snap.counters);
    assert!(
        snap.events_of_kind("tier_up") >= 1,
        "{}",
        snap.events_jsonl()
    );
}

#[test]
fn observational_modes_pin_generic_tier() {
    // Tracing executions must not tier up: the trace is defined against
    // generic bytecode and must stay byte-identical across modes.
    let mut p = build(TieringMode::Eager);
    p.context_mut().trace = true;
    let s = p.run("M::mk1", &[]).unwrap();
    for _ in 0..6 {
        p.run("M::getb", &[s.clone()]).unwrap();
    }
    assert_eq!(p.context().tier_report().tierups, 0);
}

#[test]
fn threaded_tier_dominates_hot_recursion() {
    // Once `fib` crosses the hotness threshold the threaded executor should
    // retire essentially all remaining fuel; only warmup and tier-boundary
    // single-steps stay generic.
    let mut p = build(TieringMode::Threaded);
    let got = p.run("M::fib", &[Value::Int(20)]).unwrap();
    assert!(got.equals(&Value::Int(6765)), "{got:?}");
    let mix = p.context().tier_mix();
    assert!(
        mix.threaded * 10 > mix.total() * 9,
        "threaded share too low: {mix:?}"
    );
}

#[test]
#[ignore]
fn perf_probe() {
    for mode in [TieringMode::Off, TieringMode::Lazy, TieringMode::Threaded] {
        let mut p = Program::from_sources_opts(
            &[SRC],
            OptLevel::Full,
            BuildOptions {
                tiering: Some(mode),
                ..Default::default()
            },
        )
        .unwrap();
        let t = std::time::Instant::now();
        let got = p.run("M::fib", &[Value::Int(28)]).unwrap();
        let el = t.elapsed();
        let mix = p.context().tier_mix();
        let fuel = p.context().fuel_spent();
        eprintln!(
            "{mode:?}: {el:?} result={got:?} fuel={fuel} ns/unit={:.1} mix={mix:?}",
            el.as_nanos() as f64 / fuel as f64
        );
    }
}

#[test]
fn observational_modes_never_enter_threaded_code() {
    // Tracing, stats and profiling (and armed fault injection) must see
    // the canonical instruction stream: with any of them enabled the
    // dispatch loop never enters tiered code, so their outputs are
    // byte-identical across tiering modes by construction.
    let mut off = build(TieringMode::Off);
    off.context_mut().trace = true;
    let want = off.run("M::fib", &[Value::Int(12)]).unwrap();
    let want_trace = off.context_mut().take_trace();
    assert!(!want_trace.is_empty());

    let mut traced = build(TieringMode::Threaded);
    traced.context_mut().trace = true;
    let got = traced.run("M::fib", &[Value::Int(12)]).unwrap();
    let got_trace = traced.context_mut().take_trace();
    assert!(got.equals(&want));
    assert_eq!(want_trace, got_trace, "trace diverged under threaded mode");
    let mix = traced.context().tier_mix();
    assert_eq!(
        mix.threaded, 0,
        "tracing must pin the generic tier: {mix:?}"
    );
    assert_eq!(mix.specialized, 0, "{mix:?}");

    for set in [
        (|c: &mut hilti::vm::Context| c.stats = true) as fn(&mut hilti::vm::Context),
        |c| c.profile = true,
    ] {
        let mut p = build(TieringMode::Threaded);
        set(p.context_mut());
        let got = p.run("M::fib", &[Value::Int(12)]).unwrap();
        assert!(got.equals(&want));
        let mix = p.context().tier_mix();
        assert_eq!(mix.threaded + mix.specialized, 0, "{mix:?}");
        assert_eq!(mix.generic, mix.total(), "{mix:?}");
    }
}

#[test]
fn threaded_ic_miss_deopts_and_recovers() {
    // A monomorphic hot function compiles to threaded code with a bound IC
    // slot; feeding a new receiver type misses in the threaded hit path,
    // deopts to the generic arm (which owns the refill), and subsequent
    // calls keep working — with both shapes now cached.
    let mut p = build(TieringMode::Threaded);
    let s1 = p.run("M::mk1", &[]).unwrap();
    let s2 = p.run("M::mk2", &[]).unwrap();
    for _ in 0..4 {
        let v = p.run("M::getb", std::slice::from_ref(&s1)).unwrap();
        assert!(v.equals(&Value::Int(1)), "{v:?}");
    }
    let v = p.run("M::getb", std::slice::from_ref(&s2)).unwrap();
    assert!(
        v.equals(&Value::Int(2)),
        "post-deopt miss mishandled: {v:?}"
    );
    let v = p.run("M::getb", std::slice::from_ref(&s1)).unwrap();
    assert!(v.equals(&Value::Int(1)), "{v:?}");

    let report = p.context().tier_report();
    let ic = site(&report, "M::getb", "struct.get");
    assert!(ic.misses >= 2, "warmup + T2 refill: {ic:?}");
    assert!(ic.hits >= 3, "{ic:?}");
    let mix = p.context().tier_mix();
    assert!(mix.threaded > 0, "never entered threaded code: {mix:?}");
    assert!(mix.generic > 0, "deopt path never ran: {mix:?}");
}
