//! Resource-governance integration tests: fuel metering, heap budgets,
//! call-depth limits, and deterministic fault injection.
//!
//! The central property is *engine parity*: the bytecode VM (specialized
//! and unspecialized) and the tree-walking interpreter charge fuel on the
//! same schedule — one unit per IR body instruction plus one per block
//! terminator — so a program run under any fuel limit produces the same
//! outcome and the same printed output on every engine.

use hilti::host::BuildOptions;
use hilti::passes::OptLevel;
use hilti::{Program, Value};
use hilti_rt::error::ExceptionKind;
use hilti_rt::limits::ResourceLimits;

fn build(src: &str, specialize: bool) -> Program {
    Program::from_sources_opts(
        &[src],
        OptLevel::None,
        BuildOptions {
            specialize,
            ..Default::default()
        },
    )
    .expect("test program compiles")
}

fn fuel(n: u64) -> ResourceLimits {
    ResourceLimits {
        fuel: Some(n),
        ..Default::default()
    }
}

/// A counted loop that prints each iteration, so fuel exhaustion at any
/// point leaves an observable output prefix.
const LOOP_SRC: &str = r#"
module G
int<64> looper(int<64> n) {
    local int<64> i
    local bool m
    i = assign 0
loop:
    call Hilti::print i
    i = int.add i 1
    m = int.lt i n
    if.else m loop done
done:
    return i
}
"#;

fn outcome(r: Result<Value, hilti_rt::error::RtError>) -> Result<i64, ExceptionKind> {
    match r {
        Ok(v) => Ok(v.as_int().expect("int result")),
        Err(e) => Err(e.kind),
    }
}

#[test]
fn fuel_parity_between_engines_across_all_limits() {
    let mut interp = build(LOOP_SRC, false);
    let mut vm_spec = build(LOOP_SRC, true);
    let mut vm_nospec = build(LOOP_SRC, false);
    let args = [Value::Int(8)];

    // Reference run, unmetered.
    let full = interp.run_interpreted("G::looper", &args).unwrap();
    assert!(full.equals(&Value::Int(8)));
    let full_out = interp.take_output();
    assert_eq!(full_out.len(), 8);

    // Sweep every fuel value up to well past what the program needs: the
    // three engines must agree on the outcome *and* on the output prefix
    // at every single limit.
    for f in 0..=80u64 {
        interp.set_limits(fuel(f));
        let oracle = outcome(interp.run_interpreted("G::looper", &args));
        let oracle_out = interp.take_output();

        for (label, p) in [("vm+spec", &mut vm_spec), ("vm", &mut vm_nospec)] {
            p.set_limits(fuel(f));
            let got = outcome(p.run("G::looper", &args));
            let out = p.take_output();
            assert_eq!(oracle, got, "{label} diverged from interpreter at fuel={f}");
            assert_eq!(oracle_out, out, "{label} output diverged at fuel={f}");
        }

        // Whatever was printed before running dry is a prefix of the
        // unmetered run's output.
        assert!(
            oracle_out.len() <= full_out.len() && oracle_out[..] == full_out[..oracle_out.len()],
            "fuel={f}: output is not a prefix of the unmetered run"
        );
        if let Err(kind) = oracle {
            assert_eq!(kind, ExceptionKind::ResourceExhausted, "fuel={f}");
        }
    }

    // Generous fuel: both engines finish and report identical remaining
    // fuel (the strongest form of charge-schedule parity).
    interp.set_limits(fuel(10_000));
    interp.run_interpreted("G::looper", &args).unwrap();
    let left_interp = interp.context().fuel_remaining().unwrap();
    vm_spec.set_limits(fuel(10_000));
    vm_spec.run("G::looper", &args).unwrap();
    let left_vm = vm_spec.context().fuel_remaining().unwrap();
    assert_eq!(left_interp, left_vm, "engines charged different totals");
}

#[test]
fn fuel_bounds_infinite_loops_in_both_engines() {
    const SPIN: &str = r#"
module G
void spin() {
loop:
    jump loop
}
"#;
    let mut p = build(SPIN, true);
    p.set_limits(fuel(100_000));
    let e = p.run_void("G::spin", &[]).unwrap_err();
    assert_eq!(e.kind, ExceptionKind::ResourceExhausted);

    let mut p = build(SPIN, false);
    p.set_limits(fuel(100_000));
    let e = p.run_interpreted("G::spin", &[]).unwrap_err();
    assert_eq!(e.kind, ExceptionKind::ResourceExhausted);
}

#[test]
fn fuel_cannot_be_outrun_by_catching() {
    // A handler that catches ResourceExhausted gets no free instructions:
    // the meter is pinned at zero, so the program still terminates with
    // the exhaustion error instead of looping inside the handler.
    const CATCHER: &str = r#"
module G
int<64> greedy() {
    local int<64> i
    i = assign 0
    try {
loop:
        i = int.add i 1
        jump loop
    } catch ( ref<Hilti::ResourceExhausted> e ) {
        return -1
    }
    return i
}
"#;
    let mut p = build(CATCHER, true);
    p.set_limits(fuel(5_000));
    let e = p.run("G::greedy", &[]).unwrap_err();
    assert_eq!(e.kind, ExceptionKind::ResourceExhausted);
    assert_eq!(p.context().fuel_remaining(), Some(0));
}

const RECURSE_SRC: &str = r#"
module G
int<64> down(int<64> n) {
    local bool base
    local int<64> r
    base = int.leq n 0
    if.else base stop rec
stop:
    return 0
rec:
    r = int.sub n 1
    r = call down (r)
    r = int.add r 1
    return r
}
"#;

#[test]
fn call_depth_limit_enforced_in_both_engines() {
    let limits = ResourceLimits {
        max_call_depth: Some(64),
        ..Default::default()
    };

    let mut p = build(RECURSE_SRC, true);
    p.set_limits(limits);
    let e = p.run("G::down", &[Value::Int(1000)]).unwrap_err();
    assert_eq!(e.kind, ExceptionKind::ResourceExhausted);
    // Shallow recursion still fits.
    assert!(p
        .run("G::down", &[Value::Int(20)])
        .unwrap()
        .equals(&Value::Int(20)));

    let mut p = build(RECURSE_SRC, false);
    p.set_limits(limits);
    let e = p
        .run_interpreted("G::down", &[Value::Int(1000)])
        .unwrap_err();
    assert_eq!(e.kind, ExceptionKind::ResourceExhausted);
    assert!(p
        .run_interpreted("G::down", &[Value::Int(20)])
        .unwrap()
        .equals(&Value::Int(20)));
}

#[test]
fn depth_limit_is_catchable_at_the_call_site() {
    const GUARDED: &str = r#"
module G
int<64> down(int<64> n) {
    local bool base
    local int<64> r
    base = int.leq n 0
    if.else base stop rec
stop:
    return 0
rec:
    r = int.sub n 1
    r = call down (r)
    r = int.add r 1
    return r
}
int<64> guard() {
    local int<64> r
    try {
        r = call down (1000)
    } catch ( ref<Hilti::ResourceExhausted> e ) {
        return -1
    }
    return r
}
"#;
    let mut p = build(GUARDED, true);
    p.set_limits(ResourceLimits {
        max_call_depth: Some(64),
        ..Default::default()
    });
    assert!(p.run("G::guard", &[]).unwrap().equals(&Value::Int(-1)));
}

#[test]
fn heap_budget_bounds_bytes_growth() {
    const FILLER: &str = r#"
module G
int<64> fill(int<64> n) {
    local ref<bytes> b
    local int<64> i
    local bool m
    b = new bytes
    i = assign 0
loop:
    bytes.append b "0123456789abcdef"
    i = int.add i 1
    m = int.lt i n
    if.else m loop done
done:
    return i
}
"#;
    // Unmetered: 1000 iterations * 16 bytes is fine.
    let mut p = build(FILLER, true);
    assert!(p
        .run("G::fill", &[Value::Int(1000)])
        .unwrap()
        .equals(&Value::Int(1000)));

    // A 256-byte budget stops the program long before that, and the peak
    // accounted usage never exceeds the configured cap.
    let mut p = build(FILLER, true);
    p.set_limits(ResourceLimits {
        max_heap_bytes: Some(256),
        ..Default::default()
    });
    let e = p.run("G::fill", &[Value::Int(1000)]).unwrap_err();
    assert_eq!(e.kind, ExceptionKind::ResourceExhausted);
    let budget = p.context().heap_budget().unwrap();
    assert!(budget.peak() <= 256, "peak {} > cap", budget.peak());

    // Interpreter: identical enforcement.
    let mut p = build(FILLER, false);
    p.set_limits(ResourceLimits {
        max_heap_bytes: Some(256),
        ..Default::default()
    });
    let e = p
        .run_interpreted("G::fill", &[Value::Int(1000)])
        .unwrap_err();
    assert_eq!(e.kind, ExceptionKind::ResourceExhausted);
}

#[test]
fn heap_budget_bounds_container_growth() {
    const HOARDER: &str = r#"
module G
int<64> hoard(int<64> n) {
    local ref<set<int<64>>> s
    local int<64> i
    local bool m
    s = new set<int<64>>
    i = assign 0
loop:
    set.insert s i
    i = int.add i 1
    m = int.lt i n
    if.else m loop done
done:
    return i
}
"#;
    let mut p = build(HOARDER, true);
    assert!(p
        .run("G::hoard", &[Value::Int(500)])
        .unwrap()
        .equals(&Value::Int(500)));

    let mut p = build(HOARDER, true);
    p.set_limits(ResourceLimits {
        max_heap_bytes: Some(2_000),
        ..Default::default()
    });
    let e = p.run("G::hoard", &[Value::Int(500)]).unwrap_err();
    assert_eq!(e.kind, ExceptionKind::ResourceExhausted);
    let budget = p.context().heap_budget().unwrap();
    assert!(budget.peak() <= 2_000, "peak {} > cap", budget.peak());
}

#[test]
fn zero_deadline_trips_on_every_engine() {
    // deadline_ms = 0 pre-expires the watchdog, so the first amortized
    // check — which arming schedules for the first fuel charge — trips
    // deterministically on every engine, including the interpreter.
    let deadline = ResourceLimits {
        deadline_ms: Some(0),
        ..Default::default()
    };

    let mut p = build(LOOP_SRC, true);
    p.set_limits(deadline);
    let e = p.run("G::looper", &[Value::Int(1000)]).unwrap_err();
    assert_eq!(e.kind, ExceptionKind::ResourceExhausted);

    let mut p = build(LOOP_SRC, false);
    p.set_limits(deadline);
    let e = p.run("G::looper", &[Value::Int(1000)]).unwrap_err();
    assert_eq!(e.kind, ExceptionKind::ResourceExhausted);

    let mut p = build(LOOP_SRC, false);
    p.set_limits(deadline);
    let e = p
        .run_interpreted("G::looper", &[Value::Int(1000)])
        .unwrap_err();
    assert_eq!(e.kind, ExceptionKind::ResourceExhausted);
}

#[test]
fn deadline_cannot_be_outrun_by_catching() {
    // Like fuel, a tripped deadline stays tripped: a handler that catches
    // ResourceExhausted re-trips within one check interval, so a wedged
    // program cannot loop forever inside its own handler.
    const CATCHER: &str = r#"
module G
int<64> greedy() {
    local int<64> i
    i = assign 0
    try {
loop:
        i = int.add i 1
        jump loop
    } catch ( ref<Hilti::ResourceExhausted> e ) {
        return -1
    }
    return i
}
"#;
    let mut p = build(CATCHER, true);
    p.set_limits(ResourceLimits {
        deadline_ms: Some(0),
        ..Default::default()
    });
    let e = p.run("G::greedy", &[]).unwrap_err();
    assert_eq!(e.kind, ExceptionKind::ResourceExhausted);
}

#[test]
fn generous_deadline_does_not_perturb_execution() {
    // A deadline the program comfortably beats must not change the result,
    // the printed output, or the fuel charge schedule.
    let args = [Value::Int(8)];
    let mut plain = build(LOOP_SRC, true);
    plain.set_limits(fuel(10_000));
    let want = plain.run("G::looper", &args).unwrap();
    let want_out = plain.take_output();
    let want_fuel = plain.context().fuel_remaining().unwrap();

    let mut p = build(LOOP_SRC, true);
    p.set_limits(ResourceLimits {
        fuel: Some(10_000),
        deadline_ms: Some(600_000),
        ..Default::default()
    });
    let got = p.run("G::looper", &args).unwrap();
    assert!(got.equals(&want));
    assert_eq!(p.take_output(), want_out);
    assert_eq!(p.context().fuel_remaining().unwrap(), want_fuel);
}

#[test]
fn fault_injection_is_deterministic() {
    let run_with_fault = |after: u64| {
        let mut p = build(LOOP_SRC, true);
        p.context_mut()
            .inject_fault_after(after, hilti_rt::error::RtError::io("injected I/O fault"));
        let r = outcome(p.run("G::looper", &[Value::Int(50)]));
        (r, p.take_output())
    };

    let (r1, out1) = run_with_fault(40);
    let (r2, out2) = run_with_fault(40);
    assert_eq!(r1, r2, "same countdown must fail identically");
    assert_eq!(out1, out2, "same countdown must print identically");
    assert_eq!(r1, Err(ExceptionKind::IoError));

    // A later trigger point strictly extends the observable prefix.
    let (_, out_later) = run_with_fault(120);
    assert!(out_later.len() > out1.len());
    assert_eq!(out1[..], out_later[..out1.len()]);

    // Disarmed (never triggered): the program completes and the armed
    // error does not linger into later runs.
    let mut p = build(LOOP_SRC, true);
    p.context_mut()
        .inject_fault_after(1_000_000, hilti_rt::error::RtError::io("never fires"));
    assert!(p
        .run("G::looper", &[Value::Int(8)])
        .unwrap()
        .equals(&Value::Int(8)));
}

#[test]
fn injected_faults_are_catchable() {
    const GUARDED: &str = r#"
module G
int<64> guard() {
    local int<64> i
    local bool m
    try {
        i = assign 0
loop:
        i = int.add i 1
        m = int.lt i 1000
        if.else m loop done
    } catch ( ref<Hilti::IoError> e ) {
        return -1
    }
done:
    return i
}
"#;
    let mut p = build(GUARDED, true);
    p.context_mut()
        .inject_fault_after(100, hilti_rt::error::RtError::io("flaky disk"));
    assert!(p.run("G::guard", &[]).unwrap().equals(&Value::Int(-1)));
}

#[test]
fn exception_unwinds_across_fiber_suspend_resume() {
    // The incremental-parsing failure pattern: a handler is installed,
    // parsing blocks on missing input (WouldBlock suspends the fiber
    // *inside* the try), the host feeds more data and resumes, and only
    // then does the parse fail — the error must still reach the handler
    // installed before the suspension.
    const SRC: &str = r#"
module G
string parse(ref<bytes> data) {
    local iterator<bytes> it
    local int<64> a
    local string m
    try {
        it = bytes.begin data
        a = iterator.deref it
        exception.throw Hilti::ValueError "bad byte"
    } catch ( ref<Hilti::ValueError> e ) {
        m = exception.message e
        return m
    }
    return "no error"
}
"#;
    let p = build(SRC, true);
    let data = hilti_rt::Bytes::new();
    let mut fiber = p.fiber("G::parse", vec![Value::Bytes(data.clone())]);

    let mut p = p;
    match p.resume(&mut fiber).unwrap() {
        hilti::fiber::Step::Suspended => {}
        other => panic!("expected suspension on empty input, got {other:?}"),
    }
    data.append(&[0x41]).unwrap();
    match p.resume(&mut fiber).unwrap() {
        hilti::fiber::Step::Finished(v) => assert_eq!(v.render(), "bad byte"),
        other => panic!("expected completion after resume, got {other:?}"),
    }
}

#[test]
fn fuel_persists_across_fiber_suspensions() {
    // A suspended fiber does not refill its context's meter: the charge
    // state spans suspend/resume, so a flow cannot evade its budget by
    // blocking on input.
    const SRC: &str = r#"
module G
int<64> read_two(ref<bytes> data) {
    local iterator<bytes> it
    local int<64> a
    local int<64> b
    it = bytes.begin data
    a = iterator.deref it
    it = iterator.incr it 1
    b = iterator.deref it
    a = int.mul a 256
    a = int.add a b
    return a
}
"#;
    let mut p = build(SRC, true);
    p.set_limits(fuel(1_000));
    let data = hilti_rt::Bytes::new();
    let mut fiber = p.fiber("G::read_two", vec![Value::Bytes(data.clone())]);
    assert!(matches!(
        p.resume(&mut fiber).unwrap(),
        hilti::fiber::Step::Suspended
    ));
    let after_first = p.context().fuel_remaining().unwrap();
    assert!(after_first < 1_000);
    data.append(&[0x01, 0x02]).unwrap();
    match p.resume(&mut fiber).unwrap() {
        hilti::fiber::Step::Finished(v) => assert!(v.equals(&Value::Int(0x0102))),
        other => panic!("unexpected {other:?}"),
    }
    assert!(p.context().fuel_remaining().unwrap() < after_first);
}

/// Recursion with a print (a threaded-tier deopt site) on every call, so
/// tiered execution constantly crosses the threaded ↔ generic boundary
/// while fuel runs down.
const REC_PRINT_SRC: &str = r#"
module G
int<64> pfib(int<64> n) {
    local bool base
    local int<64> a
    local int<64> b
    call Hilti::print n
    base = int.lt n 2
    if.else base ret rec
ret:
    return n
rec:
    a = int.sub n 1
    a = call pfib (a)
    b = int.sub n 2
    b = call pfib (b)
    a = int.add a b
    return a
}
"#;

fn tiered(src: &str, mode: hilti::tier::TieringMode) -> Program {
    use hilti::tier::TierConfig;
    let mut p = Program::from_sources_opts(
        &[src],
        OptLevel::None,
        BuildOptions {
            tiering: Some(mode),
            ..Default::default()
        },
    )
    .expect("test program compiles");
    // Tiny thresholds so the sweep workloads tier up almost immediately.
    p.context_mut().set_tiering_config(
        mode,
        TierConfig {
            hot_invocations: 2,
            hot_retired: 16,
            ic_cap: 4,
        },
    );
    p
}

/// All four tiering modes — or just the one named by `HILTI_TIERING`, so
/// the CI tier matrix splits the differential cost across jobs.
fn modes_under_test() -> Vec<hilti::tier::TieringMode> {
    use hilti::tier::TieringMode;
    match TieringMode::from_env() {
        Some(m) => vec![m],
        None => vec![
            TieringMode::Off,
            TieringMode::Lazy,
            TieringMode::Eager,
            TieringMode::Threaded,
        ],
    }
}

#[test]
fn fuel_parity_across_tiering_modes_with_deopt_sites() {
    // The strongest tier-parity property: at *every* fuel limit, every
    // tiering mode reproduces the interpreter's outcome and output prefix
    // exactly — through warmup, tier-up, threaded execution and the deopt
    // single-steps around each print.
    let mut interp = build(REC_PRINT_SRC, false);
    let args = [Value::Int(9)];
    interp.set_limits(fuel(1_000_000));
    interp.run_interpreted("G::pfib", &args).unwrap();
    let need = 1_000_000 - interp.context().fuel_remaining().unwrap();
    interp.take_output();
    assert!(need > 100, "workload too small to be interesting: {need}");

    let oracle: Vec<(Result<i64, ExceptionKind>, Vec<String>)> = (0..=need + 8)
        .map(|f| {
            interp.set_limits(fuel(f));
            let o = outcome(interp.run_interpreted("G::pfib", &args));
            (o, interp.take_output())
        })
        .collect();

    for mode in modes_under_test() {
        // One program per mode: tier state deliberately persists across the
        // sweep, so later limits run fully tiered from the first call.
        let mut p = tiered(REC_PRINT_SRC, mode);
        for (f, (want, want_out)) in oracle.iter().enumerate() {
            p.set_limits(fuel(f as u64));
            let got = outcome(p.run("G::pfib", &args));
            let out = p.take_output();
            assert_eq!(*want, got, "{mode:?} diverged from interpreter at fuel={f}");
            assert_eq!(*want_out, out, "{mode:?} output diverged at fuel={f}");
        }
    }
}

#[test]
fn call_depth_limit_parity_across_tiering_modes() {
    // The threaded executor deopts *before* charging when the next call
    // would cross the depth limit, so the generic arm performs its exact
    // charge-then-raise sequence: same error, same fuel, every mode.
    let limits = ResourceLimits {
        max_call_depth: Some(24),
        fuel: Some(1_000_000),
        ..Default::default()
    };

    let mut oracle = build(RECURSE_SRC, true);
    oracle.set_limits(limits.clone());
    let e = oracle.run("G::down", &[Value::Int(1000)]).unwrap_err();
    assert_eq!(e.kind, ExceptionKind::ResourceExhausted);
    let want_fuel = oracle.context().fuel_spent();

    for mode in modes_under_test() {
        let mut p = tiered(RECURSE_SRC, mode);
        // Warm until `down` is tiered (and threaded-compiled) before the
        // erroring deep run.
        for _ in 0..4 {
            assert!(p
                .run("G::down", &[Value::Int(8)])
                .unwrap()
                .equals(&Value::Int(8)));
        }
        let warm_fuel = p.context().fuel_spent();
        p.set_limits(limits.clone());
        let e = p.run("G::down", &[Value::Int(1000)]).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::ResourceExhausted, "{mode:?}");
        assert_eq!(
            p.context().fuel_spent() - warm_fuel,
            want_fuel,
            "{mode:?} charged a different total on the depth-limited run"
        );
    }
}
