//! End-to-end tests of the `hiltic` compiler driver (§3.1, Figure 3).

use std::process::Command;

fn hiltic() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hiltic"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("hiltic_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

const HELLO: &str = r#"
module Main
import Hilti

void run() {
    call Hilti::print "Hello, World!"
}
"#;

#[test]
fn figure3_run() {
    let f = write_temp("hello.hlt", HELLO);
    let out = hiltic().arg("run").arg(&f).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8_lossy(&out.stdout), "Hello, World!\n");
}

#[test]
fn run_interpreted_flag() {
    let f = write_temp("hello2.hlt", HELLO);
    let out = hiltic().args(["run", "--interp"]).arg(&f).output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), "Hello, World!\n");
}

#[test]
fn check_reports_counts() {
    let f = write_temp("hello3.hlt", HELLO);
    let out = hiltic().arg("check").arg(&f).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 function(s)"), "{text}");
}

#[test]
fn dump_stages() {
    let f = write_temp("hello4.hlt", HELLO);
    let ir = hiltic().arg("dump-ir").arg(&f).output().unwrap();
    assert!(ir.status.success());
    assert!(String::from_utf8_lossy(&ir.stdout).contains("Main::run"));
    let bc = hiltic().arg("dump-bytecode").arg(&f).output().unwrap();
    assert!(bc.status.success());
    assert!(String::from_utf8_lossy(&bc.stdout).contains("CallHost"));
}

#[test]
fn compile_errors_fail_with_diagnostics() {
    let f = write_temp(
        "broken.hlt",
        "module M\nvoid f() {\n    x = int.add 1 2\n}\n",
    );
    let out = hiltic().arg("run").arg(&f).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("undeclared target"));
}

#[test]
fn custom_entry_point() {
    let f = write_temp(
        "entry.hlt",
        "module App\nvoid go() {\n    call Hilti::print \"custom\"\n}\n",
    );
    let out = hiltic()
        .args(["run", "--entry", "App::go"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8_lossy(&out.stdout), "custom\n");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = hiltic()
        .args(["run", "/no/such/file.hlt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn trace_flag_logs_instructions_to_stderr() {
    let f = write_temp("traced.hlt", HELLO);
    let out = hiltic().args(["run", "--trace"]).arg(&f).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    // Program output is unaffected on stdout...
    assert_eq!(String::from_utf8_lossy(&out.stdout), "Hello, World!\n");
    // ...while stderr carries one line per executed instruction.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.lines().any(|l| l.starts_with("trace: Main::run@")),
        "{err}"
    );
}

const THROWER: &str = r#"
module Main
void run() {
    exception.throw Hilti::ValueError "boom"
}
"#;

const CATCHER: &str = r#"
module Main
import Hilti

void run() {
    try {
        exception.throw Hilti::ValueError "boom"
    } catch ( ref<Hilti::ValueError> e ) {
        call Hilti::print "caught"
    }
}
"#;

const SPINNER: &str = r#"
module Main
void run() {
loop:
    jump loop
}
"#;

const GLUTTON: &str = r#"
module Main
void run() {
    local ref<bytes> b
    local int<64> i
    local bool m
    b = new bytes
    i = assign 0
loop:
    bytes.append b "xxxxxxxxxxxxxxxx"
    i = int.add i 1
    m = int.lt i 100000
    if.else m loop done
done:
    return
}
"#;

#[test]
fn uncaught_exception_exits_nonzero_with_kind() {
    let f = write_temp("thrower.hlt", THROWER);
    for extra in [&[][..], &["--interp"][..]] {
        let out = hiltic().arg("run").args(extra).arg(&f).output().unwrap();
        assert!(!out.status.success(), "{extra:?}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("uncaught exception") && err.contains("Hilti::ValueError"),
            "{extra:?}: {err}"
        );
    }
}

#[test]
fn caught_exception_exits_clean() {
    let f = write_temp("catcher.hlt", CATCHER);
    for extra in [&[][..], &["--interp"][..]] {
        let out = hiltic().arg("run").args(extra).arg(&f).output().unwrap();
        assert!(out.status.success(), "{extra:?}: {out:?}");
        assert_eq!(String::from_utf8_lossy(&out.stdout), "caught\n");
        assert!(
            !String::from_utf8_lossy(&out.stderr).contains("uncaught"),
            "{extra:?}"
        );
    }
}

#[test]
fn fuel_flag_bounds_infinite_loops() {
    let f = write_temp("spinner.hlt", SPINNER);
    for extra in [&[][..], &["--interp"][..]] {
        let out = hiltic()
            .args(["run", "--fuel", "100000"])
            .args(extra)
            .arg(&f)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{extra:?}: {out:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("Hilti::ResourceExhausted"),
            "{extra:?}: {out:?}"
        );
    }
    // Plenty of fuel: a terminating program is unaffected.
    let ok = write_temp("hello5.hlt", HELLO);
    let out = hiltic()
        .args(["run", "--fuel", "100000"])
        .arg(&ok)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn max_heap_flag_bounds_state_growth() {
    let f = write_temp("glutton.hlt", GLUTTON);
    let out = hiltic()
        .args(["run", "--max-heap", "4096"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(!out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("Hilti::ResourceExhausted"),
        "{out:?}"
    );
}

#[test]
fn bad_limit_flag_values_fail_cleanly() {
    let f = write_temp("hello6.hlt", HELLO);
    for flag in ["--fuel", "--max-heap", "--max-depth"] {
        let out = hiltic()
            .args(["run", flag, "banana"])
            .arg(&f)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{flag}");
        let out = hiltic().args(["run", flag]).output().unwrap();
        assert!(!out.status.success(), "{flag} without value");
    }
}

#[test]
fn trace_flag_works_interpreted() {
    let f = write_temp("traced2.hlt", HELLO);
    let out = hiltic()
        .args(["run", "--trace", "--interp"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("trace: Main::run"), "{err}");
}

const FIB: &str = r#"
module Main
int<64> fib(int<64> n) {
    local bool base
    local int<64> a
    local int<64> b
    base = int.lt n 2
    if.else base ret rec
ret:
    return n
rec:
    a = int.sub n 1
    a = call fib (a)
    b = int.sub n 2
    b = call fib (b)
    a = int.add a b
    return a
}

int<64> run() {
    local int<64> r
    r = call fib (10)
    return r
}
"#;

#[test]
fn profile_flag_is_deterministic_and_engine_agnostic() {
    let f = write_temp("profiled.hlt", FIB);
    let dir = std::env::temp_dir().join("hiltic_cli_tests");
    let profile_run = |name: &str, extra: &[&str]| -> String {
        let path = dir.join(name);
        let mut cmd = hiltic();
        cmd.arg("run");
        cmd.args(extra);
        cmd.arg("--profile").arg(&path).arg(&f);
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "{out:?}");
        std::fs::read_to_string(&path).unwrap()
    };

    // Two VM runs: byte-identical profile files.
    let a = profile_run("p1.json", &[]);
    let b = profile_run("p2.json", &[]);
    assert_eq!(a, b);
    assert!(a.contains("\"schema\":\"hilti.profile.v1\""), "{a}");
    assert!(a.contains("\"Main::fib\""), "{a}");

    // Interp vs. VM: only the engine field differs; every per-function and
    // per-class total — and therefore total retired instructions — agrees.
    let i = profile_run("p3.json", &["--interp"]);
    assert_eq!(
        a.replace("\"engine\":\"vm\"", "\"engine\":\"interp\""),
        i,
        "vm profile:\n{a}\ninterp profile:\n{i}"
    );

    // The specialized tier must not change the profile either.
    let n = profile_run("p4.json", &["--no-specialize"]);
    assert_eq!(a, n);
}

#[test]
fn metrics_out_writes_telemetry_snapshot() {
    let f = write_temp("metrics.hlt", FIB);
    let path = std::env::temp_dir().join("hiltic_cli_tests/m1.json");
    let out = hiltic()
        .arg("run")
        .arg("--metrics-out")
        .arg(&path)
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let doc = std::fs::read_to_string(&path).unwrap();
    assert!(doc.contains("\"schema\":\"hilti.telemetry.v1\""), "{doc}");
    assert!(doc.contains("\"engine.instructions_retired\""), "{doc}");
    assert!(doc.contains("\"engine.runs\":1"), "{doc}");
}

#[test]
fn stats_prints_percentages_sorted_descending() {
    let f = write_temp("stats.hlt", FIB);
    let out = hiltic().args(["run", "--stats"]).arg(&f).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    let lines: Vec<&str> = err
        .lines()
        .filter(|l| l.starts_with("stats: ") && l.contains('%'))
        .collect();
    assert!(!lines.is_empty(), "{err}");
    // Each histogram line carries a percentage; counts are descending and
    // the shares sum to ~100%.
    let mut counts = Vec::new();
    let mut pct_sum = 0.0f64;
    for l in &lines {
        let mut fields = l.trim_start_matches("stats: ").split_whitespace();
        counts.push(fields.next().unwrap().parse::<u64>().unwrap());
        let pct = fields.next().unwrap().trim_end_matches('%');
        pct_sum += pct.parse::<f64>().unwrap();
    }
    let mut sorted = counts.clone();
    sorted.sort_by(|x, y| y.cmp(x));
    assert_eq!(counts, sorted, "{err}");
    assert!((pct_sum - 100.0).abs() < 1.0, "pct sum {pct_sum}: {err}");
}

#[test]
fn tiering_flag_modes_agree_and_bad_value_rejected() {
    let f = write_temp("tiering.hlt", FIB);
    let mut outputs = Vec::new();
    for mode in ["off", "lazy", "eager", "threaded"] {
        let out = hiltic()
            .args(["run", &format!("--tiering={mode}")])
            .arg(&f)
            .output()
            .unwrap();
        assert!(out.status.success(), "--tiering={mode}: {out:?}");
        outputs.push(String::from_utf8_lossy(&out.stdout).into_owned());
    }
    assert!(outputs[0].contains("=> 55"), "{}", outputs[0]);
    assert!(
        outputs.iter().all(|o| *o == outputs[0]),
        "modes diverged: {outputs:?}"
    );

    let bad = hiltic()
        .args(["run", "--tiering=sometimes"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("off, lazy, eager or threaded"),
        "{bad:?}"
    );
}

#[test]
fn trace_out_writes_chrome_trace_with_build_and_run_spans() {
    let f = write_temp("traced.hlt", HELLO);
    let out_path = std::env::temp_dir().join("hiltic_cli_tests/trace.json");
    let out = hiltic()
        .args(["run", "--trace-out"])
        .arg(&out_path)
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8_lossy(&out.stdout), "Hello, World!\n");
    let doc = std::fs::read_to_string(&out_path).unwrap();
    hilti_rt::telemetry::json::validate(&doc).expect("trace must be valid JSON");
    assert!(doc.contains("\"schema\":\"hilti.trace.v1\""), "{doc}");
    assert!(doc.contains("\"traceEvents\":["), "{doc}");
    // Front-end build maps to the parse stage, execution to script.
    assert!(doc.contains("\"name\":\"parse\""), "{doc}");
    assert!(doc.contains("\"name\":\"script\""), "{doc}");
}

#[test]
fn trace_out_with_stats_prints_latency_summary() {
    let f = write_temp("traced_stats.hlt", HELLO);
    let out_path = std::env::temp_dir().join("hiltic_cli_tests/trace_stats.json");
    let out = hiltic()
        .args(["run", "--stats", "--trace-out"])
        .arg(&out_path)
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("latency (per stage, ns):"), "{err}");
    assert!(err.contains("parse"), "{err}");
}
