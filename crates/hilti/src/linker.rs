//! The HILTI linker: merges compilation units into one executable program.
//!
//! Per §5 "Linker", two jobs need a global view across units:
//!
//! 1. **Thread-local globals.** Each virtual thread owns one array holding a
//!    copy of every global from every unit; only the link stage can compute
//!    that aggregate layout. The linker qualifies global names with their
//!    module, assigns each a slot index, and rewrites instructions to the
//!    final names.
//! 2. **Hooks.** A hook may have bodies in several units; the linker merges
//!    them into one ordered list (higher priority first, then unit order).
//!
//! The linker also performs cross-unit dead-code elimination when asked: any
//! function unreachable from a set of exported roots is dropped (§7: "the
//! HILTI linker can remove any code ... that it can statically determine as
//! unreachable with the host application's parameterization").

use std::collections::{HashMap, HashSet, VecDeque};

use hilti_rt::error::{RtError, RtResult};

use crate::ir::{Const, Function, Module, Opcode, Operand, TypeDef};
use crate::types::Type;

/// A fully linked program, ready for checking / optimization / execution.
#[derive(Clone, Debug, Default)]
pub struct Linked {
    /// All functions, by fully qualified name.
    pub functions: HashMap<String, Function>,
    /// Hook name → bodies, highest priority first.
    pub hooks: HashMap<String, Vec<Function>>,
    /// Merged user-defined types.
    pub types: HashMap<String, TypeDef>,
    /// Global slot layout: qualified name → index.
    pub global_index: HashMap<String, usize>,
    /// Global declarations in slot order: (qualified name, type, initializer).
    pub globals: Vec<(String, Type, Option<Const>)>,
}

impl Linked {
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.get(name)
    }
}

/// Links modules into one program.
pub fn link(modules: Vec<Module>) -> RtResult<Linked> {
    let mut out = Linked::default();

    for mut module in modules {
        // Qualify and register globals.
        let mut rename: HashMap<String, String> = HashMap::new();
        for (name, ty, init) in &module.globals {
            let qualified = format!("{}::{}", module.name, name);
            if out.global_index.contains_key(&qualified) {
                return Err(RtError::value(format!(
                    "duplicate global {qualified} at link time"
                )));
            }
            rename.insert(name.clone(), qualified.clone());
            out.global_index
                .insert(qualified.clone(), out.globals.len());
            out.globals.push((qualified, ty.clone(), init.clone()));
        }

        // Merge types.
        for (name, def) in module.types.drain() {
            if out.types.contains_key(&name) {
                return Err(RtError::value(format!(
                    "duplicate type {name} at link time"
                )));
            }
            out.types.insert(name, def);
        }

        // Rewrite references to this module's globals in all bodies.
        let module_name = module.name.clone();
        for func in module.functions.iter_mut().chain(
            module
                .hooks
                .values_mut()
                .flat_map(|bodies| bodies.iter_mut().map(|b| &mut b.func)),
        ) {
            rewrite_globals(func, &rename, &module_name);
        }

        // Register functions.
        for func in module.functions {
            if out.functions.contains_key(&func.name) {
                return Err(RtError::value(format!(
                    "duplicate function {} at link time",
                    func.name
                )));
            }
            out.functions.insert(func.name.clone(), func);
        }

        // Collect hook bodies (sorted by priority in
        // `link_with_priorities`, which callers should use).
        for (name, bodies) in module.hooks {
            let entry = out.hooks.entry(name).or_default();
            for b in bodies {
                entry.push(b.func.clone());
            }
        }
    }

    qualify_callees(&mut out);
    Ok(out)
}

/// Rewrites bare callee/hook/callable identifiers to their qualified names
/// where the caller's own module defines them — `call fib (n)` inside
/// module `M` resolves to `M::fib`. Names that resolve nowhere stay bare
/// (host functions registered at runtime).
fn qualify_callees(out: &mut Linked) {
    let func_names: HashSet<String> = out.functions.keys().cloned().collect();
    let hook_names: HashSet<String> = out.hooks.keys().cloned().collect();
    let qualify_one = |caller: &str, name: &mut String, table: &HashSet<String>| {
        if name.contains("::") || table.contains(name) {
            return;
        }
        if let Some(module) = caller.rsplit_once("::").map(|(m, _)| m) {
            let candidate = format!("{module}::{name}");
            if table.contains(&candidate) {
                *name = candidate;
            }
        }
    };
    let fix_function = |func: &mut Function| {
        let caller = func.name.clone();
        for block in &mut func.blocks {
            for instr in &mut block.instrs {
                let (pos, table): (usize, &HashSet<String>) = match instr.opcode {
                    Opcode::Call | Opcode::CallVoid | Opcode::CallableBind => (0, &func_names),
                    Opcode::HookRun | Opcode::HookRunVoid => (0, &hook_names),
                    _ => continue,
                };
                if let Some(Operand::Const(Const::Ident(name))) = instr.args.get_mut(pos) {
                    qualify_one(&caller, name, table);
                }
            }
        }
    };
    // Collect-and-reinsert to appease the borrow checker (we read the name
    // tables while mutating bodies).
    let mut functions = std::mem::take(&mut out.functions);
    for f in functions.values_mut() {
        fix_function(f);
    }
    out.functions = functions;
    let mut hooks = std::mem::take(&mut out.hooks);
    for bodies in hooks.values_mut() {
        for f in bodies {
            fix_function(f);
        }
    }
    out.hooks = hooks;
}

/// Links modules, sorting hook bodies by priority (higher first, stable).
pub fn link_with_priorities(modules: Vec<Module>) -> RtResult<Linked> {
    // Collect priorities before the plain link consumes the modules.
    let mut priorities: HashMap<String, Vec<i64>> = HashMap::new();
    for m in &modules {
        for (name, bodies) in &m.hooks {
            priorities
                .entry(name.clone())
                .or_default()
                .extend(bodies.iter().map(|b| b.priority));
        }
    }
    let mut linked = link(modules)?;
    for (name, bodies) in linked.hooks.iter_mut() {
        let prios = priorities.get(name).cloned().unwrap_or_default();
        let mut tagged: Vec<(i64, usize, Function)> = bodies
            .drain(..)
            .enumerate()
            .map(|(i, f)| (prios.get(i).copied().unwrap_or(0), i, f))
            .collect();
        tagged.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        *bodies = tagged.into_iter().map(|(_, _, f)| f).collect();
    }
    Ok(linked)
}

/// Replaces references to module globals with their qualified slot names.
/// Locals and parameters shadow globals.
fn rewrite_globals(func: &mut Function, rename: &HashMap<String, String>, module: &str) {
    let shadowed: HashSet<&String> = func
        .params
        .iter()
        .map(|(n, _)| n)
        .chain(func.locals.iter().map(|(n, _)| n))
        .collect();
    let shadowed: HashSet<String> = shadowed.into_iter().cloned().collect();
    let fix = |op: &mut Operand| {
        if let Operand::Var(name) = op {
            if !shadowed.contains(name) {
                if let Some(q) = rename.get(name) {
                    *name = q.clone();
                } else if name.starts_with(&format!("{module}::")) {
                    // Already qualified.
                }
            }
        }
    };
    for block in &mut func.blocks {
        for instr in &mut block.instrs {
            for arg in &mut instr.args {
                fix(arg);
            }
            if let Some(t) = &instr.target {
                if !shadowed.contains(t) {
                    if let Some(q) = rename.get(t) {
                        instr.target = Some(q.clone());
                    }
                }
            }
        }
        if let crate::ir::Terminator::IfElse(cond, _, _) = &mut block.term {
            fix(cond);
        }
        if let crate::ir::Terminator::Return(Some(v)) = &mut block.term {
            fix(v);
        }
    }
}

/// Drops functions unreachable from `roots` (and from hooks, which hosts
/// can always trigger). Returns the number of functions removed.
pub fn prune_unreachable(linked: &mut Linked, roots: &[&str]) -> usize {
    let mut reachable: HashSet<String> = HashSet::new();
    let mut queue: VecDeque<String> = roots.iter().map(|s| s.to_string()).collect();
    // Hook bodies are externally triggerable; their callees stay.
    let hook_funcs: Vec<Function> = linked.hooks.values().flatten().cloned().collect();
    for f in &hook_funcs {
        queue.push_back(f.name.clone());
        reachable.insert(f.name.clone());
        collect_callees(f, &mut queue);
    }
    while let Some(name) = queue.pop_front() {
        if !reachable.insert(name.clone()) {
            continue;
        }
        if let Some(f) = linked.functions.get(&name) {
            collect_callees(f, &mut queue);
        }
    }
    // Also anything referenced from roots' bodies transitively (collect on
    // first visit above covers it).
    let before = linked.functions.len();
    linked.functions.retain(|name, _| reachable.contains(name));
    before - linked.functions.len()
}

fn collect_callees(f: &Function, queue: &mut VecDeque<String>) {
    for block in &f.blocks {
        for instr in &block.instrs {
            let callee_pos = match instr.opcode {
                Opcode::Call | Opcode::CallVoid | Opcode::CallableBind => Some(0),
                _ => None,
            };
            if let Some(pos) = callee_pos {
                if let Some(Operand::Const(Const::Ident(name))) = instr.args.get(pos) {
                    queue.push_back(name.clone());
                }
            }
            // Timer/callable/thread indirect calls bind through
            // callable.bind, covered above.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    #[test]
    fn globals_get_qualified_slots() {
        let a = parse_module("module A\nglobal int<64> x = 1\nvoid f() {\n  x = int.add x 1\n}\n")
            .unwrap();
        let b = parse_module("module B\nglobal int<64> x = 2\nvoid g() {\n  x = int.add x 10\n}\n")
            .unwrap();
        let linked = link_with_priorities(vec![a, b]).unwrap();
        assert_eq!(linked.globals.len(), 2);
        assert!(linked.global_index.contains_key("A::x"));
        assert!(linked.global_index.contains_key("B::x"));
        // References rewritten.
        let f = linked.function("A::f").unwrap();
        assert_eq!(f.blocks[0].instrs[0].args[0], Operand::var("A::x"));
        let g = linked.function("B::g").unwrap();
        assert_eq!(g.blocks[0].instrs[0].args[0], Operand::var("B::x"));
    }

    #[test]
    fn locals_shadow_globals() {
        let a = parse_module(
            "module A\nglobal int<64> x = 1\nvoid f() {\n  local int<64> x = 5\n  x = int.add x 1\n}\n",
        )
        .unwrap();
        let linked = link_with_priorities(vec![a]).unwrap();
        let f = linked.function("A::f").unwrap();
        // All references stay the bare local.
        for i in &f.blocks[0].instrs {
            for arg in &i.args {
                assert_ne!(arg, &Operand::var("A::x"));
            }
        }
    }

    #[test]
    fn duplicate_functions_rejected() {
        let a = parse_module("module A\nvoid f() {\n}\n").unwrap();
        let b = parse_module("module A\nvoid f() {\n}\n").unwrap();
        assert!(link_with_priorities(vec![a, b]).is_err());
    }

    #[test]
    fn hooks_merge_across_units_by_priority() {
        let a =
            parse_module("module A\nhook void h(int<64> x) {\n  call Hilti::print \"low\"\n}\n")
                .unwrap();
        let b = parse_module(
            "module B\nhook void A::h(int<64> x) &priority = 10 {\n  call Hilti::print \"high\"\n}\n",
        )
        .unwrap();
        let linked = link_with_priorities(vec![a, b]).unwrap();
        let bodies = linked.hooks.get("A::h").unwrap();
        assert_eq!(bodies.len(), 2);
        // Higher priority (from unit B) must run first.
        assert_eq!(bodies[0].name, "A::h");
        let first_print = &bodies[0].blocks[0].instrs[0];
        assert_eq!(
            first_print.args[1],
            Operand::Const(Const::Str("high".into()))
        );
    }

    #[test]
    fn prune_removes_unreachable() {
        let a = parse_module(
            r#"
module A
void used() {
}
void root() {
    call used ()
}
void dead() {
    call also_dead ()
}
void also_dead() {
}
"#,
        )
        .unwrap();
        let mut linked = link_with_priorities(vec![a]).unwrap();
        let removed = prune_unreachable(&mut linked, &["A::root"]);
        assert_eq!(removed, 2);
        assert!(linked.function("A::root").is_some());
        assert!(linked.function("A::used").is_some());
        assert!(linked.function("A::dead").is_none());
    }

    #[test]
    fn prune_keeps_hook_callees() {
        let a = parse_module(
            r#"
module A
hook void h() {
    call helper ()
}
void helper() {
}
"#,
        )
        .unwrap();
        let mut linked = link_with_priorities(vec![a]).unwrap();
        prune_unreachable(&mut linked, &[]);
        assert!(linked.function("A::helper").is_some());
    }
}
